"""Tests for the ``repro serve`` / ``repro chaos`` CLI entry points."""

import warnings

import pytest

from repro.cli import build_parser, main
from repro.service.cli import _chaos_specs


class TestParserWiring:
    def test_serve_and_chaos_are_registered(self):
        parser = build_parser()
        serve = parser.parse_args(["serve", "--port", "0",
                                   "--workers", "3"])
        assert serve.workers == 3 and serve.port == 0
        chaos = parser.parse_args(["chaos", "--seed", "5", "--kills", "2"])
        assert chaos.seed == 5 and chaos.kills == 2

    def test_chaos_rejects_multiple_tears(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["chaos", "--tears", "2"])

    def test_chaos_specs_cycle_designs(self):
        args = build_parser().parse_args(
            ["chaos", "--workloads", "redis,nutch,jvm,mahout",
             "--instructions", "1000"])
        specs = _chaos_specs(args)
        assert [spec.workload for spec in specs] == \
            ["redis", "nutch", "jvm", "mahout"]
        assert len({spec.design for spec in specs}) == 3
        assert all(spec.num_instructions == 1000 for spec in specs)


class TestChaosCommand:
    @pytest.mark.slow
    def test_chaos_run_exits_zero_and_reports(self, tmp_path, capsys):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")   # recovery warns by design
            code = main(["chaos", "--seed", "7", "--instructions", "1200",
                         "--workloads", "bm-x64,bm-lla",
                         "--hangs", "0", "--freezes", "0",
                         "--workdir", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 0
        assert "byte-identical" in out
        # --workdir keeps the artifacts for inspection.
        assert (tmp_path / "chaos" / "store" / "objects").is_dir()

    def test_unknown_workload_is_a_clean_error(self, capsys):
        code = main(["chaos", "--workloads", "nope"])
        assert code == 2
        assert "unknown workload" in capsys.readouterr().err
