"""Ground-truth check of TAGE's incremental folded-history registers.

The folded register must always equal the XOR-fold of the newest
``original_length`` history bits into ``compressed_length`` bits. A drift
bug here silently degrades prediction quality without failing any
behavioural test, so we verify the invariant directly against a naive
recomputation.
"""

import random

import pytest

from repro.branch.tage import TagePredictor, _FoldedHistory
from repro.common.config import BranchPredictorConfig


def naive_fold(bits, original_length, compressed_length):
    """Fold the newest ``original_length`` bits, oldest-first, into
    ``compressed_length`` bits the same way the incremental update does:
    value = ((value << 1) | bit) folded modulo the compressed width."""
    window = bits[-original_length:] if len(bits) >= original_length \
        else [0] * (original_length - len(bits)) + bits
    value = 0
    mask = (1 << compressed_length) - 1
    for bit in window:
        value = ((value << 1) | bit)
        value = (value & mask) ^ (value >> compressed_length)
    return value & mask


class TestFoldedHistory:
    @pytest.mark.parametrize("original,compressed", [
        (8, 4), (12, 5), (16, 8), (7, 3), (32, 10)])
    def test_matches_naive_fold(self, original, compressed):
        rng = random.Random(17)
        fold = _FoldedHistory(original, compressed)
        bits = []
        for step in range(300):
            bit = rng.randrange(2)
            dropped = bits[-original] if len(bits) >= original else 0
            bits.append(bit)
            fold.update(bit, dropped)
            assert fold.value == naive_fold(bits, original, compressed), \
                f"drift at step {step}"

    def test_fold_stays_within_width(self):
        fold = _FoldedHistory(64, 9)
        rng = random.Random(3)
        bits = []
        for _ in range(500):
            bit = rng.randrange(2)
            dropped = bits[-64] if len(bits) >= 64 else 0
            bits.append(bit)
            fold.update(bit, dropped)
            assert 0 <= fold.value < (1 << 9)


class TestPredictorHistoryIntegration:
    def test_indices_differ_with_history(self):
        """Same PC must map to different tagged-table indices under
        different global histories (otherwise history is inert)."""
        config = BranchPredictorConfig(num_tagged_tables=4,
                                       table_entries_log2=10, tag_bits=9,
                                       min_history=4, max_history=64)
        tage_a = TagePredictor(config)
        tage_b = TagePredictor(config)
        rng = random.Random(5)
        for _ in range(100):
            tage_a.update(0x4000 + rng.randrange(64) * 4, rng.random() < 0.5)
            tage_b.update(0x4000 + rng.randrange(64) * 4, rng.random() < 0.7)
        pc = 0x9000
        indices_a = [tage_a._table_index(pc, t) for t in range(4)]
        indices_b = [tage_b._table_index(pc, t) for t in range(4)]
        assert indices_a != indices_b

    def test_history_window_bounded(self):
        config = BranchPredictorConfig(num_tagged_tables=3,
                                       table_entries_log2=8, tag_bits=8,
                                       min_history=2, max_history=16)
        tage = TagePredictor(config)
        for i in range(1000):
            tage.update(0x100 + (i % 7) * 8, i % 3 == 0)
        assert len(tage._history_bits) <= 16 + 1
