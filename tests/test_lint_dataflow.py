"""Tests for the flow-sensitive lint layer: CFG construction, the generic
dataflow solver (reaching definitions, def-use, definite assignment), and
the F-family rules via their fixture triples.

The unit tests pin the modelling choices DESIGN.md section 12 documents —
zero-trip loop edges, exception edges starting at the try body (not the
whole surrounding block), and the at-least-one-iteration assumption of the
definite-assignment analysis — because the F rules' precision depends on
exactly those choices.
"""

import ast
import textwrap

from repro.lint.cfg import build_cfg
from repro.lint.dataflow import (
    DefiniteAssignment,
    build_function_nodes,
    compute_def_use,
    scope_info,
)

from test_lint import rules_of, run_fixture


def cfg_of(source, index=0):
    """CFG of the ``index``-th top-level function of ``source``."""
    tree = ast.parse(textwrap.dedent(source))
    functions = [node for node in tree.body
                 if isinstance(node, ast.FunctionDef)]
    return build_cfg(functions[index])


def assignment_at_exit(source):
    """(analysis, exit IN-state) of the single function in ``source``."""
    cfg = cfg_of(source)
    analysis = DefiniteAssignment(cfg, scope_info(cfg))
    result = analysis.run(cfg)
    return analysis, result.block_in[cfg.exit]


class TestCfg:
    def test_straight_line_is_one_block(self):
        cfg = cfg_of("""
            def f():
                a = 1
                b = a + 1
                return b
        """)
        populated = [b for b in cfg.blocks if b.elements]
        assert len(populated) == 1
        assert [e.kind for e in populated[0].elements] == \
            ["stmt", "stmt", "stmt"]

    def test_if_produces_test_element_and_join(self):
        cfg = cfg_of("""
            def f(flag):
                if flag:
                    a = 1
                else:
                    a = 2
                return a
        """)
        kinds = [e.kind for e in cfg.elements()]
        assert kinds.count("test") == 1
        # The branch head has two successors (then / else).
        heads = [b for b in cfg.blocks
                 if any(e.kind == "test" for e in b.elements)]
        assert len(heads[0].edges) == 2

    def test_while_has_zero_trip_edge(self):
        cfg = cfg_of("""
            def f(n):
                while n:
                    n -= 1
                return n
        """)
        kinds = {edge.kind for block in cfg.blocks for edge in block.edges}
        assert "zero-trip" in kinds

    def test_try_body_gets_exception_edges(self):
        cfg = cfg_of("""
            def f(loader):
                try:
                    value = loader()
                except ValueError:
                    value = None
                return value
        """)
        kinds = {edge.kind for block in cfg.blocks for edge in block.edges}
        assert "exception" in kinds

    def test_code_after_return_is_unreachable(self):
        cfg = cfg_of("""
            def f():
                return 1
                x = 2
        """)
        analysis = DefiniteAssignment(cfg, scope_info(cfg))
        result = analysis.run(cfg)
        dead = [b.id for b in cfg.blocks
                if any(isinstance(e.node, ast.Assign) for e in b.elements)]
        assert dead and all(result.block_in[i] is None for i in dead)

    def test_module_body_builds(self):
        tree = ast.parse("x = 1\n\n\ndef f():\n    return x\n")
        nodes = build_function_nodes(tree)
        assert nodes[0] is tree and len(nodes) == 2
        assert build_cfg(tree).elements()


class TestScopeInfo:
    def test_params_bound_and_escaping(self):
        cfg = cfg_of("""
            def f(a, b=1, *rest, **extra):
                local = a
                captured = b

                def inner():
                    return captured
                return inner
        """)
        scope = scope_info(cfg)
        assert {"a", "b", "rest", "extra"} <= scope.params
        assert "local" in scope.bound
        assert "captured" in scope.escaping
        assert "local" not in scope.escaping

    def test_global_declaration_excluded_from_locals(self):
        cfg = cfg_of("""
            def f():
                global counter
                counter = 1
        """)
        assert "counter" not in scope_info(cfg).local_names


class TestDefUse:
    def test_branch_defs_both_reach_merge_use(self):
        cfg = cfg_of("""
            def f(flag):
                if flag:
                    a = 1
                else:
                    a = 2
                return a
        """)
        chains = compute_def_use(cfg)
        defs_of_a = [d for d in chains.definitions if d.name == "a"]
        assert len(defs_of_a) == 2
        for definition in defs_of_a:
            assert chains.uses_of_def.get(definition.id)

    def test_dead_store_reaches_no_use(self):
        cfg = cfg_of("""
            def f():
                a = 1
                a = 2
                return a
        """)
        chains = compute_def_use(cfg)
        used = {d.id: bool(chains.uses_of_def.get(d.id))
                for d in chains.definitions if d.name == "a"}
        assert sorted(used.values()) == [False, True]

    def test_param_definition_links_to_use(self):
        cfg = cfg_of("""
            def f(a):
                return a + 1
        """)
        chains = compute_def_use(cfg)
        param = next(d for d in chains.definitions if d.name == "a")
        assert param.is_param
        assert chains.uses_of_def.get(param.id)

    def test_comprehension_target_shadows_outer_name(self):
        cfg = cfg_of("""
            def f(items):
                x = 1
                sizes = [x for x in items]
                return sizes
        """)
        chains = compute_def_use(cfg)
        outer = next(d for d in chains.definitions
                     if d.name == "x" and not d.is_param)
        assert not chains.uses_of_def.get(outer.id)


class TestDefiniteAssignment:
    def test_branch_only_assignment_is_not_definite(self):
        analysis, exit_in = assignment_at_exit("""
            def f(flag):
                if flag:
                    value = 1
                return value
        """)
        assert analysis.fact("value") not in exit_in

    def test_default_before_branch_is_definite(self):
        analysis, exit_in = assignment_at_exit("""
            def f(flag):
                value = 0
                if flag:
                    value = 1
                return value
        """)
        assert analysis.fact("value") in exit_in

    def test_loop_body_assumed_to_run_at_least_once(self):
        analysis, exit_in = assignment_at_exit("""
            def f(items):
                for item in items:
                    last = item
                return last
        """)
        assert analysis.fact("last") in exit_in

    def test_exception_path_defeats_try_assignment(self):
        analysis, exit_in = assignment_at_exit("""
            def f(loader):
                try:
                    value = loader()
                except ValueError:
                    pass
                return value
        """)
        assert analysis.fact("value") not in exit_in

    def test_assignment_before_try_survives_exception_edges(self):
        """Exception edges start at the *try body*, not at the whole block
        around it — assignments before the try are not un-assigned by a
        raise inside it."""
        analysis, exit_in = assignment_at_exit("""
            def f(loader):
                value = None
                try:
                    value = loader()
                except ValueError:
                    pass
                return value
        """)
        assert analysis.fact("value") in exit_in


class TestF1UnseededRngReach:
    def test_violation(self):
        report = run_fixture("f1_violation.py")
        assert rules_of(report) == ["F1", "F1"]

    def test_suppressed(self):
        report = run_fixture("f1_suppressed.py")
        assert report.findings == []
        assert report.suppressed == 2

    def test_fixed(self):
        """Seeding on every path — including branch-wise — kills the fact."""
        report = run_fixture("f1_fixed.py")
        assert report.findings == []


class TestF2MutationAfterValidate:
    def test_violation(self):
        report = run_fixture("f2_violation.py")
        assert rules_of(report) == ["F2", "F2"]

    def test_suppressed(self):
        report = run_fixture("f2_suppressed.py")
        assert report.findings == []
        assert report.suppressed == 1

    def test_fixed(self):
        report = run_fixture("f2_fixed.py")
        assert report.findings == []


class TestF3PossiblyUnassigned:
    def test_violation(self):
        report = run_fixture("f3_violation.py")
        assert rules_of(report) == ["F3", "F3"]

    def test_suppressed(self):
        report = run_fixture("f3_suppressed.py")
        assert report.findings == []
        assert report.suppressed == 1

    def test_fixed(self):
        report = run_fixture("f3_fixed.py")
        assert report.findings == []


class TestF4DeadStore:
    def test_violation(self):
        report = run_fixture("f4_violation.py")
        assert rules_of(report) == ["F4", "F4"]

    def test_suppressed(self):
        report = run_fixture("f4_suppressed.py")
        assert report.findings == []
        assert report.suppressed == 1

    def test_fixed(self):
        report = run_fixture("f4_fixed.py")
        assert report.findings == []
