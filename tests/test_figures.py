"""Tests for the per-figure analysis functions."""

import pytest

from repro.analysis.figures import (
    ENTRY_SIZE_BUCKETS,
    fig3_capacity_upc_and_power,
    fig4_capacity_frontend,
    fig5_entry_size_distribution,
    fig6_taken_branch_terminations,
    fig9_spanning_entries,
    fig12_entries_per_pw,
    fig15_decoder_power,
    fig16_upc_improvement,
    fig17_policy_frontend,
    fig18_compacted_lines,
    fig19_compaction_kinds,
    with_average,
)
from repro.common.statistics import Histogram
from repro.core.experiment import SweepResult
from repro.core.metrics import SimulationResult
from repro.power.decoder import DecoderEnergyReport
from repro.uopcache.cache import FillKind
from repro.uopcache.entry import EntryTermination


def fake_result(workload, label, upc=1.0, power=1.0, fetch=0.5,
                dispatch=5.0, latency=20.0):
    result = SimulationResult(workload=workload, config_label=label)
    result.cycles = 1000
    result.uops = int(upc * 1000)
    result.busy_dispatch_cycles = max(1, int(result.uops / dispatch))
    result.uops_from_uop_cache = int(fetch * result.uops)
    result.uops_from_decoder = result.uops - result.uops_from_uop_cache
    result.branch_mispredicts = 10
    result.mispredict_latency_sum = int(latency * 10)
    result.decoder_report = DecoderEnergyReport(
        insts_decoded=100, active_cycles=50, total_cycles=1000,
        energy=power * 1000)
    return result


def sweep_of(rows):
    sweep = SweepResult()
    for row in rows:
        sweep.add(row)
    return sweep


class TestCapacityFigures:
    def _sweep(self):
        return sweep_of([
            fake_result("w", "OC_2K", upc=1.0, power=1.0, fetch=0.4),
            fake_result("w", "OC_64K", upc=1.2, power=0.6, fetch=0.9),
        ])

    def test_fig3(self):
        data = fig3_capacity_upc_and_power(self._sweep())
        assert data["normalized_upc"]["w"]["OC_64K"] == pytest.approx(1.2)
        assert data["normalized_decoder_power"]["w"]["OC_64K"] == \
            pytest.approx(0.6)
        assert "average" in data["normalized_upc"]

    def test_fig4(self):
        data = fig4_capacity_frontend(self._sweep())
        assert data["normalized_oc_fetch_ratio"]["w"]["OC_64K"] == \
            pytest.approx((0.9 * 1.2) / (0.4 * 1.0) / 1.2, rel=0.05)


class TestDistributionFigures:
    def _result_with_hist(self):
        result = fake_result("w", "baseline")
        hist = Histogram("sizes")
        for size in (10, 25, 25, 50):
            hist.record(size)
        result.entry_size_histogram = hist
        result.entry_termination_counts = {
            EntryTermination.TAKEN_BRANCH: 49,
            EntryTermination.ICACHE_LINE_BOUNDARY: 51,
        }
        result.entries_spanning_lines_fraction = 0.25
        pw_hist = Histogram("pw")
        for n in (1, 1, 1, 2, 3):
            pw_hist.record(n)
        result.entries_per_pw_histogram = pw_hist
        return result

    def test_fig5(self):
        table = fig5_entry_size_distribution({"w": self._result_with_hist()})
        assert table["w"]["1-19"] == pytest.approx(0.25)
        assert table["w"]["20-39"] == pytest.approx(0.5)
        assert table["w"]["40-64"] == pytest.approx(0.25)

    def test_fig6(self):
        table = fig6_taken_branch_terminations({"w": self._result_with_hist()})
        assert table["w"] == pytest.approx(0.49)
        assert table["average"] == pytest.approx(0.49)

    def test_fig9(self):
        table = fig9_spanning_entries({"w": self._result_with_hist()})
        assert table["w"] == pytest.approx(0.25)

    def test_fig12(self):
        table = fig12_entries_per_pw({"w": self._result_with_hist()})
        assert table["w"][1] == pytest.approx(0.6)
        assert table["w"][2] == pytest.approx(0.2)
        assert table["w"][3] == pytest.approx(0.2)


class TestPolicyFigures:
    def _sweep(self):
        return sweep_of([
            fake_result("w", "baseline", upc=1.0, power=1.0),
            fake_result("w", "clasp", upc=1.02, power=0.95),
            fake_result("w", "f-pwac", upc=1.06, power=0.85),
        ])

    def test_fig15(self):
        table = fig15_decoder_power(self._sweep())
        assert table["w"]["f-pwac"] == pytest.approx(0.85)

    def test_fig16(self):
        table = fig16_upc_improvement(self._sweep())
        assert table["w"]["f-pwac"] == pytest.approx(6.0)
        assert "g.mean" in table

    def test_fig17_keys(self):
        data = fig17_policy_frontend(self._sweep())
        assert set(data) == {"normalized_oc_fetch_ratio",
                             "normalized_dispatch_bandwidth",
                             "normalized_mispredict_latency"}

    def test_fig18(self):
        result = fake_result("w", "f-pwac")
        result.compacted_fill_fraction = 0.66
        table = fig18_compacted_lines({"w": result})
        assert table["w"] == pytest.approx(0.66)

    def test_fig19(self):
        result = fake_result("w", "f-pwac")
        result.fill_kind_counts = {FillKind.RAC: 30, FillKind.PWAC: 40,
                                   FillKind.F_PWAC: 30, FillKind.ALLOC: 100}
        table = fig19_compaction_kinds({"w": result})
        assert table["w"]["rac"] == pytest.approx(0.3)
        assert table["w"]["pwac"] == pytest.approx(0.4)
        assert table["w"]["f-pwac"] == pytest.approx(0.3)

    def test_fig19_no_compaction(self):
        result = fake_result("w", "baseline")
        result.fill_kind_counts = {FillKind.ALLOC: 10}
        table = fig19_compaction_kinds({"w": result})
        assert table["w"]["rac"] == 0.0


class TestWithAverage:
    def test_appends_average_row(self):
        table = with_average({"a": {"x": 1.0}, "b": {"x": 3.0}})
        assert table["average"]["x"] == pytest.approx(2.0)

    def test_geometric(self):
        table = with_average({"a": {"x": 1.0}, "b": {"x": 4.0}},
                             geometric=True)
        assert table["average"]["x"] == pytest.approx(2.0)
