"""Unit tests for the generic set-associative cache."""

import pytest

from repro.caches.setassoc import SetAssociativeCache
from repro.common.config import CacheLevelConfig, ReplacementKind


def make_cache(size=1024, ways=2, line=64, repl=ReplacementKind.LRU):
    return SetAssociativeCache(CacheLevelConfig(
        name="test", size_bytes=size, associativity=ways, line_bytes=line,
        replacement=repl))


class TestLookupFill:
    def test_cold_miss(self):
        cache = make_cache()
        assert not cache.lookup(0x1000)
        assert cache.misses == 1

    def test_fill_then_hit(self):
        cache = make_cache()
        cache.fill(0x1000)
        assert cache.lookup(0x1000)
        assert cache.hits == 1

    def test_same_line_offsets_hit(self):
        cache = make_cache()
        cache.fill(0x1000)
        assert cache.lookup(0x103F)
        assert not cache.lookup(0x1040)

    def test_fill_returns_eviction(self):
        cache = make_cache(size=256, ways=2, line=64)  # 2 sets x 2 ways
        sets = cache.num_sets
        stride = 64 * sets
        cache.fill(0x0)
        cache.fill(0x0 + stride)
        evicted = cache.fill(0x0 + 2 * stride)
        assert evicted == 0x0

    def test_evicted_address_reconstruction(self):
        cache = make_cache(size=512, ways=1, line=64)
        cache.fill(0x1040)
        evicted = cache.fill(0x1040 + 64 * cache.num_sets)
        assert evicted == 0x1040

    def test_duplicate_fill_no_eviction(self):
        cache = make_cache()
        cache.fill(0x2000)
        assert cache.fill(0x2000) is None
        assert cache.resident_lines() == 1

    def test_lru_order(self):
        cache = make_cache(size=128, ways=2, line=64)   # 1 set x 2 ways
        cache.fill(0x0)
        cache.fill(0x40 * cache.num_sets)  # maps to set 0 too
        cache.lookup(0x0)                  # refresh way holding 0x0
        cache.fill(0x80 * cache.num_sets)
        assert cache.contains(0x0)


class TestInvalidate:
    def test_invalidate_removes(self):
        cache = make_cache()
        cache.fill(0x3000)
        assert cache.invalidate(0x3000)
        assert not cache.contains(0x3000)

    def test_invalidate_missing_returns_false(self):
        assert not make_cache().invalidate(0x3000)

    def test_flush(self):
        cache = make_cache()
        for i in range(8):
            cache.fill(i * 64)
        cache.flush()
        assert cache.resident_lines() == 0


class TestStats:
    def test_hit_rate(self):
        cache = make_cache()
        cache.lookup(0x0)
        cache.fill(0x0)
        cache.lookup(0x0)
        assert cache.hit_rate == pytest.approx(0.5)

    def test_hit_rate_empty(self):
        assert make_cache().hit_rate == 0.0
