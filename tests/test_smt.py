"""Tests for the SMT (shared uop cache) simulator."""

import pytest

from repro.common.config import (
    CompactionPolicy,
    baseline_config,
    compaction_config,
)
from repro.common.errors import SimulationError
from repro.core.simulator import simulate
from repro.core.smt import SmtSimulator, simulate_smt
from repro.workloads.generator import WorkloadProfile, generate_workload

PROFILE_A = WorkloadProfile(name="smt-a", num_functions=24,
                            blocks_per_function=(3, 6),
                            insts_per_block=(1, 5))
PROFILE_B = WorkloadProfile(name="smt-b", num_functions=24,
                            blocks_per_function=(3, 6),
                            insts_per_block=(1, 5))


@pytest.fixture(scope="module")
def traces():
    a = generate_workload(PROFILE_A, seed=1).trace(8000, seed=2)
    b = generate_workload(PROFILE_B, seed=3).trace(8000, seed=4)
    return a, b


class TestSmtBasics:
    def test_requires_two_threads(self, traces):
        with pytest.raises(SimulationError):
            SmtSimulator([traces[0]])

    def test_both_threads_complete(self, traces):
        result = simulate_smt(list(traces), baseline_config(2048))
        assert len(result.per_thread) == 2
        for thread_result, trace in zip(result.per_thread, traces):
            assert thread_result.instructions == len(trace)
            assert thread_result.uops == trace.num_dynamic_uops

    def test_threads_share_one_uop_cache(self, traces):
        smt = SmtSimulator(list(traces), baseline_config(2048))
        assert smt.threads[0].uop_cache is smt.threads[1].uop_cache
        smt.run()
        smt.uop_cache.check_invariants()

    def test_aggregate_metrics(self, traces):
        result = simulate_smt(list(traces), baseline_config(2048))
        assert result.total_uops == sum(r.uops for r in result.per_thread)
        assert result.cycles == max(r.cycles for r in result.per_thread)
        assert 0 < result.aggregate_upc
        assert 0 <= result.aggregate_fetch_ratio <= 1

    def test_deterministic(self, traces):
        a = simulate_smt(list(traces), baseline_config(2048))
        b = simulate_smt(list(traces), baseline_config(2048))
        assert a.cycles == b.cycles
        assert a.total_uops == b.total_uops

    def test_summary_keys(self, traces):
        summary = simulate_smt(list(traces), baseline_config(2048)).summary()
        assert set(summary) == {"aggregate_upc", "aggregate_fetch_ratio",
                                "cycles", "total_uops"}


class TestSharingEffects:
    def test_sharing_reduces_per_thread_fetch_ratio(self, traces):
        """Co-running threads compete for uop cache capacity."""
        solo = simulate(traces[0], baseline_config(2048), "solo")
        shared = simulate_smt(list(traces), baseline_config(2048))
        assert shared.per_thread[0].oc_fetch_ratio <= \
            solo.oc_fetch_ratio + 0.02

    def test_compaction_helps_under_sharing(self, traces):
        base = simulate_smt(list(traces), baseline_config(2048))
        fpwac = simulate_smt(
            list(traces), compaction_config(CompactionPolicy.F_PWAC, 2048))
        assert fpwac.aggregate_fetch_ratio >= \
            base.aggregate_fetch_ratio - 0.005

    def test_three_threads(self, traces):
        c = generate_workload(PROFILE_A, seed=9).trace(5000, seed=9)
        result = simulate_smt([traces[0], traces[1], c],
                              baseline_config(2048))
        assert len(result.per_thread) == 3
