"""Unit tests for the TAGE direction predictor."""

import random

import pytest

from repro.branch.tage import TagePredictor, _update_signed, _update_unsigned
from repro.common.config import BranchPredictorConfig


def small_config(**kwargs):
    defaults = dict(num_tagged_tables=4, table_entries_log2=8, tag_bits=8,
                    min_history=2, max_history=32, base_entries_log2=10)
    defaults.update(kwargs)
    return BranchPredictorConfig(**defaults)


class TestCounters:
    def test_signed_saturates_up(self):
        assert _update_signed(3, True, -4, 3) == 3

    def test_signed_saturates_down(self):
        assert _update_signed(-4, False, -4, 3) == -4

    def test_unsigned_saturates(self):
        assert _update_unsigned(3, True) == 3
        assert _update_unsigned(0, False) == 0


class TestGeometry:
    def test_history_lengths_monotone(self):
        tage = TagePredictor(small_config())
        lengths = tage.history_lengths
        assert len(lengths) == 4
        assert all(a < b for a, b in zip(lengths, lengths[1:]))
        assert lengths[0] == 2
        assert lengths[-1] == 32

    def test_single_table(self):
        tage = TagePredictor(small_config(num_tagged_tables=1))
        assert tage.history_lengths == (2,)


class TestLearning:
    def test_always_taken_branch(self):
        tage = TagePredictor(small_config())
        pc = 0x4000
        for _ in range(50):
            tage.update(pc, True)
        assert tage.predict(pc) is True

    def test_always_not_taken_branch(self):
        tage = TagePredictor(small_config())
        pc = 0x4010
        for _ in range(50):
            tage.update(pc, False)
        assert tage.predict(pc) is False

    def test_alternating_pattern_learned(self):
        """T,NT,T,NT... requires one bit of history; TAGE must learn it."""
        tage = TagePredictor(small_config())
        pc = 0x4020
        outcome = True
        for _ in range(400):
            tage.update(pc, outcome)
            outcome = not outcome
        hits = 0
        for _ in range(100):
            if tage.predict(pc) == outcome:
                hits += 1
            tage.update(pc, outcome)
            outcome = not outcome
        assert hits >= 95

    def test_loop_pattern_learned(self):
        """Taken 7 times then not-taken once (trip count 8)."""
        tage = TagePredictor(small_config())
        pc = 0x4030
        def outcomes():
            while True:
                for i in range(8):
                    yield i != 7
        gen = outcomes()
        for _ in range(800):
            tage.update(pc, next(gen))
        hits = total = 0
        for _ in range(160):
            outcome = next(gen)
            if tage.predict(pc) == outcome:
                hits += 1
            tage.update(pc, outcome)
            total += 1
        assert hits / total >= 0.9

    def test_random_branch_near_chance(self):
        tage = TagePredictor(small_config())
        rng = random.Random(42)
        pc = 0x4040
        hits = total = 0
        for _ in range(2000):
            outcome = rng.random() < 0.5
            if tage.predict(pc) == outcome:
                hits += 1
            tage.update(pc, outcome)
            total += 1
        assert 0.35 <= hits / total <= 0.65

    def test_update_returns_mispredict_flag(self):
        tage = TagePredictor(small_config())
        pc = 0x4050
        for _ in range(30):
            tage.update(pc, True)
        assert tage.update(pc, True) is False
        assert tage.update(pc, False) is True

    def test_many_branches_no_interference_catastrophe(self):
        """Hundreds of biased branches should all be predictable."""
        tage = TagePredictor(small_config())
        rng = random.Random(7)
        branches = {0x5000 + i * 16: (i % 2 == 0) for i in range(200)}
        for _ in range(30):
            for pc, direction in branches.items():
                tage.update(pc, direction)
        hits = sum(1 for pc, d in branches.items() if tage.predict(pc) == d)
        assert hits >= 190

    def test_stats_counted(self):
        tage = TagePredictor(small_config())
        for i in range(10):
            tage.update(0x6000, True)
        assert tage.predictions == 10
        assert 0 <= tage.mispredictions <= 10
        assert 0.0 <= tage.misprediction_rate <= 1.0
