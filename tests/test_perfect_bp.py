"""Tests for the perfect-branch-prediction limit-study mode."""

import dataclasses

import pytest

from repro.branch.predictor import BranchPredictionUnit, PredictionOutcome
from repro.common.config import BranchPredictorConfig, baseline_config
from repro.core.simulator import simulate
from repro.isa.instruction import BranchKind, InstClass, X86Instruction
from repro.workloads.generator import WorkloadProfile, generate_workload

PROFILE = WorkloadProfile(name="perfect-test", num_functions=20,
                          blocks_per_function=(3, 6), insts_per_block=(1, 5),
                          hard_branch_fraction=0.3)


def perfect_config(capacity=2048):
    return dataclasses.replace(
        baseline_config(capacity),
        branch=BranchPredictorConfig(perfect=True))


@pytest.fixture(scope="module")
def trace():
    return generate_workload(PROFILE, seed=31).trace(10_000, seed=32)


class TestPerfectUnit:
    def test_never_mispredicts(self):
        bpu = BranchPredictionUnit(BranchPredictorConfig(perfect=True))
        ret = X86Instruction(address=0x100, length=1,
                             inst_class=InstClass.RET, uop_count=2,
                             branch_kind=BranchKind.RET)
        # Cold return with empty RAS would normally mispredict.
        outcome = bpu.observe(ret, True, 0x9999)
        assert outcome.outcome is PredictionOutcome.CORRECT
        assert bpu.mispredicts == 0

    def test_still_counts_branches(self):
        bpu = BranchPredictionUnit(BranchPredictorConfig(perfect=True))
        jump = X86Instruction(address=0x100, length=2,
                              inst_class=InstClass.BRANCH, uop_count=1,
                              branch_kind=BranchKind.UNCONDITIONAL,
                              branch_target=0x200)
        bpu.observe(jump, True, 0x200)
        assert bpu.branches == 1


class TestPerfectSimulation:
    def test_zero_mispredicts(self, trace):
        result = simulate(trace, perfect_config(), "perfect")
        assert result.branch_mispredicts == 0
        assert result.decode_resteers == 0
        assert result.branch_mpki == 0.0

    def test_never_slower_than_real_bp(self, trace):
        real = simulate(trace, baseline_config(2048), "real")
        perfect = simulate(trace, perfect_config(), "perfect")
        assert perfect.upc >= real.upc

    def test_uop_conservation(self, trace):
        result = simulate(trace, perfect_config(), "perfect")
        assert result.uops == trace.num_dynamic_uops

    def test_front_end_effects_still_present(self, trace):
        """With branches free, capacity still moves performance."""
        small = simulate(trace, perfect_config(2048), "2k")
        large = simulate(trace, perfect_config(16384), "16k")
        assert large.oc_fetch_ratio >= small.oc_fetch_ratio - 0.01
