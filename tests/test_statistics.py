"""Unit tests for the statistics primitives."""

import math
import warnings

import pytest

from repro.common.errors import ReproWarning
from repro.common.statistics import (
    Counter,
    Histogram,
    RunningMean,
    StatGroup,
    arithmetic_mean,
    geometric_mean,
    ratio,
)


class TestCounter:
    def test_starts_at_zero(self):
        assert Counter("c").value == 0

    def test_increment_default(self):
        c = Counter("c")
        c.increment()
        assert c.value == 1

    def test_increment_amount(self):
        c = Counter("c")
        c.increment(5)
        c.increment(2)
        assert c.value == 7

    def test_negative_increment_rejected(self):
        with pytest.raises(ValueError):
            Counter("c").increment(-1)

    def test_reset(self):
        c = Counter("c")
        c.increment(3)
        c.reset()
        assert c.value == 0


class TestHistogram:
    def test_empty_total_and_mean(self):
        h = Histogram("h")
        assert h.total == 0
        assert h.mean() == 0.0

    def test_record_and_total(self):
        h = Histogram("h")
        h.record(3)
        h.record(3)
        h.record(7)
        assert h.total == 3
        assert h.counts == {3: 2, 7: 1}

    def test_weighted_record(self):
        h = Histogram("h")
        h.record(4, weight=10)
        assert h.total == 10

    def test_negative_weight_rejected(self):
        with pytest.raises(ValueError):
            Histogram("h").record(1, weight=-1)

    def test_mean(self):
        h = Histogram("h")
        h.record(2)
        h.record(4)
        assert h.mean() == pytest.approx(3.0)

    def test_fraction_in_inclusive_bounds(self):
        h = Histogram("h")
        for v in (1, 19, 20, 39, 40, 64):
            h.record(v)
        assert h.fraction_in(1, 19) == pytest.approx(2 / 6)
        assert h.fraction_in(20, 39) == pytest.approx(2 / 6)
        assert h.fraction_in(40, 64) == pytest.approx(2 / 6)

    def test_fraction_in_empty(self):
        assert Histogram("h").fraction_in(0, 10) == 0.0

    def test_bucketed_keys(self):
        h = Histogram("h")
        h.record(5)
        buckets = h.bucketed([(1, 19), (20, 39)])
        assert set(buckets) == {"1-19", "20-39"}
        assert buckets["1-19"] == 1.0

    def test_merge(self):
        a, b = Histogram("a"), Histogram("b")
        a.record(1)
        b.record(1)
        b.record(2)
        a.merge(b)
        assert a.counts == {1: 2, 2: 1}


class TestRunningMean:
    def test_empty_mean_is_zero(self):
        assert RunningMean("m").mean == 0.0

    def test_mean_of_values(self):
        m = RunningMean("m")
        for v in (1.0, 2.0, 3.0, 4.0):
            m.record(v)
        assert m.mean == pytest.approx(2.5)
        assert m.count == 4


class TestStatGroup:
    def test_counter_identity(self):
        g = StatGroup("x")
        assert g.counter("hits") is g.counter("hits")

    def test_as_dict_contains_all(self):
        g = StatGroup("pfx")
        g.counter("hits").increment(2)
        g.histogram("sizes").record(10)
        g.running_mean("lat").record(5.0)
        d = g.as_dict()
        assert d["pfx.hits"] == 2
        assert d["pfx.sizes.total"] == 1
        assert d["pfx.lat.mean"] == 5.0


class TestHelpers:
    def test_ratio_zero_denominator(self):
        assert ratio(5, 0) == 0.0

    def test_ratio(self):
        assert ratio(1, 4) == 0.25

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)

    def test_geometric_mean_empty(self):
        assert geometric_mean([]) == 0.0

    def test_geometric_mean_zero_value_is_zero(self):
        # Regression: a zero mid-aggregation used to raise ValueError and
        # kill the whole sweep report; it is the limit of the product.
        with pytest.warns(ReproWarning):
            assert geometric_mean([1.0, 0.0]) == 0.0
        with pytest.warns(ReproWarning):
            assert geometric_mean([0.0]) == 0.0

    def test_geometric_mean_zero_warning_names_count(self):
        # Zeros usually mean a metric never fired (quarantined job, dead
        # counter); the warning must say how many so the sweep log is
        # actionable.
        with pytest.warns(ReproWarning, match=r"2 zero\(s\)"):
            geometric_mean([0.0, 3.0, 0.0])

    def test_geometric_mean_zero_warning_message_under_w_error(self):
        # Under `-W error` (how CI and careful users run) the warning becomes
        # the raised exception, so its message *is* the diagnostic.  Pin the
        # full content: the count of values, the count of zeros, and the
        # probable-cause hint.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            with pytest.raises(
                    ReproWarning,
                    match=r"geometric mean over 3 value\(s\) containing "
                          r"1 zero\(s\) is 0\.0; zeros usually mean a metric "
                          r"never fired \(quarantined job or dead "
                          r"counter\?\)"):
                geometric_mean([2.0, 0.0, 8.0])

    def test_geometric_mean_positive_values_do_not_warn(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert geometric_mean([2.0, 8.0]) == pytest.approx(4.0)

    def test_geometric_mean_rejects_negative(self):
        with pytest.raises(ValueError):
            geometric_mean([1.0, -2.0])

    def test_arithmetic_mean(self):
        assert arithmetic_mean([1, 2, 3]) == pytest.approx(2.0)

    def test_arithmetic_mean_empty(self):
        assert arithmetic_mean([]) == 0.0
