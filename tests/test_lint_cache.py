"""Tests for simlint's incremental analysis cache.

Deterministic drills cover the cache lifecycle (cold populate, warm
replay, fingerprint bust, deletions) and the directed invalidation
closure; hypothesis properties pin the two contracts the CLI relies on:
a warm hit replays byte-identical findings, and a single-file edit
re-analyzes exactly that file plus its recorded dependency closure.
"""

import json
from pathlib import Path

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.lint import LintEngine, all_rules
from repro.lint.cache import (
    IncrementalCache,
    dependency_closure,
    engine_fingerprint,
)

CLEAN = "def f{i}():\n    return {i}\n"
DIRTY = "import time\n\n\ndef f{i}():\n    return time.time()\n"


def make_engine(root):
    return LintEngine(root=root, rules=all_rules(), ignore_scope=True)


def cached_run(root, cache_path, paths=None):
    engine = make_engine(root)
    cache = IncrementalCache.load(cache_path, root,
                                  engine_fingerprint(engine))
    report, stats = cache.run(engine, paths or [root])
    return report, stats, cache


def payload_of(report):
    return json.dumps(
        [f.to_dict() for f in sorted(report.findings,
                                     key=lambda f: f.sort_key())],
        sort_keys=True)


def write_project(root, sources):
    for name, text in sources.items():
        (root / name).write_text(text)


class TestLifecycle:
    def test_cold_then_warm_replays_identical(self, tmp_path):
        write_project(tmp_path, {"a.py": DIRTY.format(i=0),
                                 "b.py": CLEAN.format(i=1)})
        cache_path = tmp_path / ".cache.json"
        cold, cold_stats, _ = cached_run(tmp_path, cache_path)
        warm, warm_stats, _ = cached_run(tmp_path, cache_path)
        assert cold_stats.reanalyzed == 2 and not cold_stats.replayed
        assert warm_stats.reanalyzed == 0 and warm_stats.replayed
        assert payload_of(warm) == payload_of(cold)
        assert warm.files_checked == cold.files_checked

    def test_warm_replay_keeps_suppressed_counts(self, tmp_path):
        write_project(tmp_path, {
            "a.py": "import time\n\n\ndef f():\n"
                    "    return time.time()  # simlint: disable=D3\n"})
        cache_path = tmp_path / ".cache.json"
        cold, _, _ = cached_run(tmp_path, cache_path)
        warm, stats, _ = cached_run(tmp_path, cache_path)
        assert stats.replayed
        assert warm.suppressed == cold.suppressed > 0

    def test_fingerprint_change_discards_cache(self, tmp_path):
        write_project(tmp_path, {"a.py": CLEAN.format(i=0)})
        cache_path = tmp_path / ".cache.json"
        cached_run(tmp_path, cache_path)
        engine = make_engine(tmp_path)
        cache = IncrementalCache.load(cache_path, tmp_path,
                                      "different-fingerprint")
        _, stats = cache.run(engine, [tmp_path])
        assert stats.reanalyzed == 1    # cold again, no stale replay

    def test_deleted_file_drops_its_findings(self, tmp_path):
        write_project(tmp_path, {"a.py": DIRTY.format(i=0),
                                 "b.py": CLEAN.format(i=1)})
        cache_path = tmp_path / ".cache.json"
        cold, _, _ = cached_run(tmp_path, cache_path)
        assert any(f.path == "a.py" for f in cold.findings)
        (tmp_path / "a.py").unlink()
        after, _, _ = cached_run(tmp_path, cache_path)
        assert all(f.path != "a.py" for f in after.findings)
        assert after.files_checked == 1

    def test_new_file_is_analyzed(self, tmp_path):
        write_project(tmp_path, {"a.py": CLEAN.format(i=0)})
        cache_path = tmp_path / ".cache.json"
        cached_run(tmp_path, cache_path)
        write_project(tmp_path, {"b.py": DIRTY.format(i=1)})
        report, stats, _ = cached_run(tmp_path, cache_path)
        assert "b.py" in stats.reanalyzed_files
        assert any(f.path == "b.py" for f in report.findings)


class TestDirectedInvalidation:
    def test_leaf_edit_stays_local(self, tmp_path):
        """Two unrelated files: touching one never dirties the other."""
        write_project(tmp_path, {"a.py": CLEAN.format(i=0),
                                 "b.py": CLEAN.format(i=1)})
        cache_path = tmp_path / ".cache.json"
        cached_run(tmp_path, cache_path)
        (tmp_path / "b.py").write_text(CLEAN.format(i=1) + "# touched\n")
        _, stats, _ = cached_run(tmp_path, cache_path)
        assert stats.reanalyzed_files == ("b.py",)

    def test_callee_edit_dirties_transitive_callers(self, tmp_path):
        """a calls b calls c: editing c re-analyzes the whole chain
        (effect findings in a flow through b into c)."""
        write_project(tmp_path, {
            "a.py": "from b import bar\n\n\ndef foo():\n    return bar()\n",
            "b.py": "from c import baz\n\n\ndef bar():\n    return baz()\n",
            "c.py": "def baz():\n    return 1\n"})
        cache_path = tmp_path / ".cache.json"
        cached_run(tmp_path, cache_path)
        (tmp_path / "c.py").write_text("def baz():\n    return 2\n")
        _, stats, _ = cached_run(tmp_path, cache_path)
        assert stats.reanalyzed_files == ("a.py", "b.py", "c.py")

    def test_caller_edit_dirties_transitive_callees(self, tmp_path):
        """Editing the root re-analyzes what it (transitively) calls:
        hot-region membership of the callees depends on the root."""
        write_project(tmp_path, {
            "a.py": "from b import bar\n\n\ndef foo():\n    return bar()\n",
            "b.py": "from c import baz\n\n\ndef bar():\n    return baz()\n",
            "c.py": "def baz():\n    return 1\n"})
        cache_path = tmp_path / ".cache.json"
        cached_run(tmp_path, cache_path)
        (tmp_path / "a.py").write_text(
            "from b import bar\n\n\ndef foo():\n    return bar() + 1\n")
        _, stats, _ = cached_run(tmp_path, cache_path)
        assert stats.reanalyzed_files == ("a.py", "b.py", "c.py")

    def test_import_edges_invalidate_one_hop_only(self, tmp_path):
        """Pure imports (no calls) couple one hop: editing c dirties its
        importer b but not b's importer a — no transitive import cascade."""
        write_project(tmp_path, {
            "a.py": "import b\n\nA = 1\n",
            "b.py": "import c\n\nB = 1\n",
            "c.py": "C = 1\n"})
        cache_path = tmp_path / ".cache.json"
        cached_run(tmp_path, cache_path)
        (tmp_path / "c.py").write_text("C = 2\n")
        _, stats, _ = cached_run(tmp_path, cache_path)
        assert stats.reanalyzed_files == ("b.py", "c.py")


# -- hypothesis properties ----------------------------------------------------

@st.composite
def projects(draw):
    """A small DAG of modules: each file may import lower-numbered files
    and is either clean or carries a wall-clock (D3) violation."""
    count = draw(st.integers(min_value=2, max_value=6))
    sources = {}
    imports = {}
    for i in range(count):
        name = f"m{i}.py"
        targets = draw(st.sets(
            st.integers(min_value=0, max_value=max(0, i - 1)),
            max_size=min(i, 3))) if i else set()
        lines = [f"import m{j}" for j in sorted(targets)]
        if draw(st.booleans()):
            lines += ["import time", "",
                      f"def f{i}():", "    return time.time()"]
        else:
            lines += ["", f"def f{i}():", f"    return {i}"]
        sources[name] = "\n".join(lines) + "\n"
        imports[name] = {f"m{j}.py" for j in targets}
    victim = draw(st.integers(min_value=0, max_value=count - 1))
    return sources, imports, f"m{victim}.py"


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(projects())
def test_single_edit_reanalyzes_exactly_the_closure(tmp_path, project):
    sources, imports, victim = project
    root = tmp_path / "proj"
    root.mkdir(exist_ok=True)
    for stale in root.glob("*"):
        stale.unlink()
    write_project(root, sources)
    cache_path = tmp_path / "cache.json"
    if cache_path.exists():
        cache_path.unlink()
    cached_run(root, cache_path)

    (root / victim).write_text(sources[victim] + "# touched\n")
    _, stats, _ = cached_run(root, cache_path)

    # Import-only projects couple one undirected hop, nothing more.
    expected = {victim}
    for name, targets in imports.items():
        if victim in targets:
            expected.add(name)
    expected |= imports[victim]
    assert stats.reanalyzed_files == tuple(sorted(expected))


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(projects())
def test_incremental_equals_fresh_run(tmp_path, project):
    """After any single edit, the merged incremental report is
    byte-identical to linting the edited tree from scratch."""
    sources, imports, victim = project
    root = tmp_path / "proj"
    root.mkdir(exist_ok=True)
    for stale in root.glob("*"):
        stale.unlink()
    write_project(root, sources)
    cache_path = tmp_path / "cache.json"
    if cache_path.exists():
        cache_path.unlink()
    cached_run(root, cache_path)

    (root / victim).write_text(
        "import time\n" + sources[victim] +
        f"\n\ndef extra():\n    return time.time()\n")
    incremental, _, _ = cached_run(root, cache_path)
    fresh = make_engine(root).run([root])
    assert payload_of(incremental) == payload_of(fresh)
    assert incremental.suppressed == fresh.suppressed
    assert incremental.files_checked == fresh.files_checked


def test_closure_helper_is_directed():
    calls = {"a": ["b"], "b": ["c"], "c": [], "d": ["b"]}
    # Forward from c: nothing. Reverse from c: b, then a and d.
    assert dependency_closure({"c"}, calls) == {"a", "b", "c", "d"}
    # Forward from a: b, c.  Reverse from a: nothing.
    assert dependency_closure({"a"}, calls) == {"a", "b", "c"}


class TestTiming:
    def test_warm_run_is_much_faster_than_cold(self, tmp_path):
        """The point of the cache: a no-change warm run must not redo the
        whole-program analysis.  Generous 5x bound to stay robust on
        loaded CI machines (the real repo shows >10x)."""
        import time as _time
        sources = {}
        for i in range(30):
            body = [f"import m{i - 1}" if i else "", "import time", "",
                    f"class Worker{i}:",
                    "    def __init__(self):",
                    "        self.total = 0", ""]
            for j in range(6):
                body += [f"    def step{j}(self, x):",
                         f"        self.total += x + {j}",
                         "        return time.monotonic()", ""]
            sources[f"m{i}.py"] = "\n".join(body) + "\n"
        write_project(tmp_path, sources)
        cache_path = tmp_path / "cache.json"

        start = _time.perf_counter()
        cached_run(tmp_path, cache_path)
        cold = _time.perf_counter() - start

        start = _time.perf_counter()
        _, stats, _ = cached_run(tmp_path, cache_path)
        warm = _time.perf_counter() - start

        assert stats.replayed
        assert warm * 5 < cold, (cold, warm)
