"""Tests for the supervised worker pool: retries, restarts, deadlines,
heartbeats, and quarantine — with injected process-level faults."""

import pytest

from repro.common.errors import ServiceError
from repro.service.protocol import JobSpec, execute_spec
from repro.service.supervisor import BatchReport, PoolConfig, WorkerPool
from repro.telemetry import TelemetryHub

INSTRUCTIONS = 1200


def _spec(workload="bm-x64", design="baseline"):
    return JobSpec(workload=workload, design=design,
                   num_instructions=INSTRUCTIONS, seed=7)


def _config(**overrides):
    base = dict(workers=2, retries=2, deadline_seconds=30.0,
                heartbeat_interval_seconds=0.05,
                heartbeat_timeout_seconds=1.0,
                retry_backoff_seconds=0.01, restart_backoff_seconds=0.01,
                seed=7)
    base.update(overrides)
    return PoolConfig(**base)


def _run(assignments, faults=None, hub=None, **config_overrides):
    with WorkerPool(_config(**config_overrides), telemetry=hub,
                    faults=faults) as pool:
        return pool.run_batch(assignments)


class TestPoolConfigValidation:
    def test_rejects_zero_workers(self):
        with pytest.raises(ServiceError):
            PoolConfig(workers=0)

    def test_rejects_negative_retries(self):
        with pytest.raises(ServiceError):
            PoolConfig(retries=-1)

    def test_rejects_nonpositive_deadline(self):
        with pytest.raises(ServiceError):
            PoolConfig(deadline_seconds=0.0)

    def test_rejects_heartbeat_timeout_inside_jitter_band(self):
        with pytest.raises(ServiceError, match="twice the interval"):
            PoolConfig(heartbeat_interval_seconds=0.5,
                       heartbeat_timeout_seconds=0.6)


class TestBatchExecution:
    def test_results_match_inline_execution(self):
        specs = [_spec(design="baseline"), _spec(design="clasp")]
        assignments = [(spec.key, spec) for spec in specs]
        results, report = _run(assignments)
        assert report.ok and len(report.executed) == 2
        assert list(results) == [spec.key for spec in specs]
        for spec in specs:
            assert results[spec.key] == execute_spec(spec)

    def test_run_batch_requires_start(self):
        pool = WorkerPool(_config())
        with pytest.raises(ServiceError, match="not started"):
            pool.run_batch([(_spec().key, _spec())])

    def test_duplicate_keys_rejected(self):
        spec = _spec()
        with WorkerPool(_config()) as pool:
            with pytest.raises(ServiceError, match="duplicate"):
                pool.run_batch([(spec.key, spec), (spec.key, spec)])

    def test_double_start_rejected(self):
        with WorkerPool(_config()) as pool:
            with pytest.raises(ServiceError, match="already started"):
                pool.start()

    def test_empty_batch_is_trivially_complete(self):
        results, report = _run([])
        assert results == {} and report.ok and report.total_jobs == 0


class TestFaultRecovery:
    def test_crash_is_retried_to_success(self):
        spec = _spec()
        results, report = _run([(spec.key, spec)],
                               faults={spec.key: [{"crash": True}]})
        assert report.ok
        assert report.retried == {spec.key: 1}
        assert results[spec.key] == execute_spec(spec)

    def test_exhausted_retries_quarantine_with_history(self):
        spec = _spec()
        hub = TelemetryHub(categories=("service",))
        results, report = _run(
            [(spec.key, spec)], retries=1, hub=hub,
            faults={spec.key: [{"crash": True}, {"crash": True}]})
        assert not report.ok and spec.key not in results
        (failure,) = report.quarantined
        assert failure.job_id == spec.key and failure.attempts == 2
        assert all("injected" in error for error in failure.errors)
        assert hub.summary().get("job_quarantined") == 1

    def test_sigkill_mid_job_restarts_worker_and_completes(self):
        spec = _spec()
        hub = TelemetryHub(categories=("service",))
        results, report = _run([(spec.key, spec)], hub=hub,
                               faults={spec.key: [{"kill": True}]})
        assert report.ok
        assert report.worker_restarts >= 1
        assert hub.summary().get("worker_restart", 0) >= 1
        assert results[spec.key] == execute_spec(spec)
        assert report.retried == {spec.key: 1}

    def test_hang_past_deadline_is_killed_and_retried(self):
        spec = _spec()
        results, report = _run(
            [(spec.key, spec)], deadline_seconds=0.6,
            faults={spec.key: [{"hang": 5.0}]})
        assert report.ok
        assert report.worker_restarts >= 1
        assert report.retried == {spec.key: 1}
        assert results[spec.key] == execute_spec(spec)

    def test_frozen_worker_is_detected_by_heartbeat_monitor(self):
        spec = _spec()
        results, report = _run(
            [(spec.key, spec)], heartbeat_timeout_seconds=0.5,
            heartbeat_interval_seconds=0.05,
            faults={spec.key: [{"freeze": 10.0}]})
        assert report.ok
        assert report.worker_restarts >= 1
        assert results[spec.key] == execute_spec(spec)

    def test_faulted_batch_results_are_bit_identical_to_clean(self):
        specs = [_spec(design="baseline"), _spec(design="clasp"),
                 _spec(workload="bm-lla")]
        assignments = [(spec.key, spec) for spec in specs]
        clean, clean_report = _run(assignments)
        faulted, faulted_report = _run(
            assignments,
            faults={specs[0].key: [{"kill": True}],
                    specs[2].key: [{"crash": True}]})
        assert clean_report.ok and faulted_report.ok
        assert {k: r.to_dict() for k, r in clean.items()} == \
            {k: r.to_dict() for k, r in faulted.items()}


class TestBatchReport:
    def test_describe_mentions_quarantine(self):
        spec = _spec()
        _results, report = _run(
            [(spec.key, spec)], retries=0,
            faults={spec.key: [{"crash": True}]})
        text = report.describe()
        assert "QUARANTINED" in text and spec.key in text

    def test_default_report_is_ok(self):
        assert BatchReport().ok
