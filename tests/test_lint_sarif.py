"""Tests for SARIF 2.1.0 output (``repro lint --format sarif``).

The rendered document is validated against an embedded subset of the
official OASIS SARIF 2.1.0 schema — the subset pins every property this
repo's CI integration relies on (tool.driver rule metadata, result
locations/levels, codeFlows for the interprocedural A-rules) with
``additionalProperties`` left open exactly as the real schema does.
"""

import json
from pathlib import Path

import jsonschema

from repro.cli import main as cli_main
from repro.lint import Finding, LintEngine, Severity, all_rules
from repro.lint.engine import rule_catalog
from repro.lint.sarif import SARIF_SCHEMA_URI, render_sarif

FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"

#: Subset of the OASIS SARIF 2.1.0 schema: everything simlint emits, with
#: the same required/optional split the full schema mandates for these
#: properties.
SARIF_SUBSET_SCHEMA = {
    "$schema": "https://json-schema.org/draft/2020-12/schema",
    "type": "object",
    "required": ["version", "runs"],
    "properties": {
        "$schema": {"type": "string", "format": "uri"},
        "version": {"const": "2.1.0"},
        "runs": {
            "type": "array",
            "minItems": 1,
            "items": {
                "type": "object",
                "required": ["tool"],
                "properties": {
                    "tool": {
                        "type": "object",
                        "required": ["driver"],
                        "properties": {
                            "driver": {
                                "type": "object",
                                "required": ["name"],
                                "properties": {
                                    "name": {"type": "string"},
                                    "informationUri": {"type": "string",
                                                       "format": "uri"},
                                    "rules": {
                                        "type": "array",
                                        "items": {
                                            "type": "object",
                                            "required": ["id"],
                                            "properties": {
                                                "id": {"type": "string"},
                                                "shortDescription": {
                                                    "type": "object",
                                                    "required": ["text"],
                                                },
                                                "fullDescription": {
                                                    "type": "object",
                                                    "required": ["text"],
                                                },
                                            },
                                        },
                                    },
                                },
                            },
                        },
                    },
                    "results": {
                        "type": "array",
                        "items": {
                            "type": "object",
                            "required": ["message"],
                            "properties": {
                                "ruleId": {"type": "string"},
                                "level": {"enum": ["none", "note",
                                                   "warning", "error"]},
                                "message": {
                                    "type": "object",
                                    "required": ["text"],
                                },
                                "locations": {
                                    "type": "array",
                                    "items": {
                                        "type": "object",
                                        "properties": {
                                            "physicalLocation": {
                                                "type": "object",
                                                "properties": {
                                                    "artifactLocation": {
                                                        "type": "object",
                                                        "properties": {
                                                            "uri": {
                                                                "type":
                                                                "string"},
                                                        },
                                                    },
                                                    "region": {
                                                        "type": "object",
                                                        "properties": {
                                                            "startLine": {
                                                                "type":
                                                                "integer",
                                                                "minimum":
                                                                1},
                                                            "startColumn": {
                                                                "type":
                                                                "integer",
                                                                "minimum":
                                                                1},
                                                        },
                                                    },
                                                },
                                            },
                                        },
                                    },
                                },
                                "codeFlows": {
                                    "type": "array",
                                    "items": {
                                        "type": "object",
                                        "required": ["threadFlows"],
                                        "properties": {
                                            "threadFlows": {
                                                "type": "array",
                                                "minItems": 1,
                                                "items": {
                                                    "type": "object",
                                                    "required":
                                                        ["locations"],
                                                },
                                            },
                                        },
                                    },
                                },
                            },
                        },
                    },
                },
            },
        },
    },
}


def lint_findings(*names):
    engine = LintEngine(root=FIXTURES, rules=all_rules(), ignore_scope=True)
    report = engine.run([FIXTURES / name for name in names])
    return report.findings


def validate(document):
    jsonschema.validate(document, SARIF_SUBSET_SCHEMA,
                        format_checker=jsonschema.FormatChecker())


class TestRenderSarif:
    def test_validates_against_sarif_subset_schema(self):
        document = render_sarif(lint_findings("a1_violation",
                                              "c3_violation.py"),
                                rule_catalog())
        validate(document)
        assert document["$schema"] == SARIF_SCHEMA_URI

    def test_empty_run_validates(self):
        document = render_sarif([], rule_catalog())
        validate(document)
        assert document["runs"][0]["results"] == []

    def test_driver_lists_every_registered_rule(self):
        document = render_sarif([], rule_catalog())
        listed = {rule["id"]
                  for rule in document["runs"][0]["tool"]["driver"]["rules"]}
        assert listed == {rule.id for rule in rule_catalog()}
        assert "A1" in listed

    def test_severity_maps_to_level(self):
        findings = [
            Finding(rule="C3", path="m.py", line=1, col=0, message="x",
                    severity=Severity.ERROR),
            Finding(rule="D3", path="m.py", line=2, col=0, message="y",
                    severity=Severity.WARNING),
        ]
        results = render_sarif(findings, rule_catalog())["runs"][0]["results"]
        assert [r["level"] for r in results] == ["error", "warning"]

    def test_region_columns_are_one_based(self):
        finding = Finding(rule="C3", path="m.py", line=3, col=0,
                          message="x")
        result = render_sarif([finding],
                              rule_catalog())["runs"][0]["results"][0]
        region = result["locations"][0]["physicalLocation"]["region"]
        assert region == {"startLine": 3, "startColumn": 1}

    def test_chain_becomes_code_flow(self):
        findings = [f for f in lint_findings("a1_violation")
                    if f.rule == "A1" and f.chain]
        assert findings
        document = render_sarif(findings, rule_catalog())
        validate(document)
        result = document["runs"][0]["results"][0]
        steps = [loc["location"]["message"]["text"]
                 for loc in result["codeFlows"][0]["threadFlows"][0]
                 ["locations"]]
        assert steps == list(findings[0].chain)

    def test_perf_rules_render(self):
        """P findings validate; P5 carries its reachability code flow at
        error level, P1-P4 render as plain warnings."""
        findings = lint_findings("p5_violation.py", "p1_violation.py")
        assert {f.rule for f in findings} == {"P1", "P5"}
        document = render_sarif(findings, rule_catalog())
        validate(document)
        results = document["runs"][0]["results"]
        by_rule = {}
        for result in results:
            by_rule.setdefault(result["ruleId"], []).append(result)
        assert {r["level"] for r in by_rule["P5"]} == {"error"}
        assert {r["level"] for r in by_rule["P1"]} == {"warning"}
        assert all("codeFlows" in r for r in by_rule["P5"])
        listed = {rule["id"]
                  for rule in document["runs"][0]["tool"]["driver"]["rules"]}
        assert {"P1", "P2", "P3", "P4", "P5"} <= listed

    def test_chainless_finding_has_no_code_flow(self):
        finding = Finding(rule="C3", path="m.py", line=1, col=0,
                          message="x")
        result = render_sarif([finding],
                              rule_catalog())["runs"][0]["results"][0]
        assert "codeFlows" not in result


class TestCliSarif:
    def test_violation_emits_sarif_and_exits_one(self, capsys):
        code = cli_main(["lint", str(FIXTURES / "a1_violation"),
                         "--no-baseline", "--ignore-scope",
                         "--format", "sarif"])
        assert code == 1
        document = json.loads(capsys.readouterr().out)
        validate(document)
        results = document["runs"][0]["results"]
        assert {r["ruleId"] for r in results} == {"A1"}
        assert any("codeFlows" in r for r in results)

    def test_clean_tree_emits_empty_results_and_exits_zero(self, capsys):
        code = cli_main(["lint", str(FIXTURES / "c3_fixed.py"),
                         "--no-baseline", "--format", "sarif"])
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        validate(document)
        assert document["runs"][0]["results"] == []

    def test_baselined_findings_are_not_results(self, tmp_path, capsys):
        """SARIF answers "what should block this PR": acknowledged
        findings stay out of the document, matching the exit code."""
        baseline = tmp_path / "baseline.json"
        violation = str(FIXTURES / "c3_violation.py")
        assert cli_main(["lint", violation, "--ignore-scope",
                         "--write-baseline", "--baseline",
                         str(baseline)]) == 0
        capsys.readouterr()
        code = cli_main(["lint", violation, "--ignore-scope",
                         "--baseline", str(baseline),
                         "--format", "sarif"])
        assert code == 0
        document = json.loads(capsys.readouterr().out)
        validate(document)
        assert document["runs"][0]["results"] == []
