"""Tests for the coverage-guided workload fuzzer (repro.oracle.fuzzer)."""

import json
import random

import pytest

from repro.common.errors import OracleError
from repro.oracle import (
    FuzzInput,
    WorkloadFuzzer,
    build_profile,
    minimize,
    replay_repro,
    run_input,
    write_repro,
)
from repro.oracle.fuzzer import _DEFAULT_PARAMS, mutate
from repro.uopcache.cache import UopCache


def _default_input(design="rac", **overrides):
    values = dict(
        design=design,
        profile_params=tuple(sorted(_DEFAULT_PARAMS.items())),
        num_instructions=400,
    )
    values.update(overrides)
    return FuzzInput(**values)


def _break_capacity_check(monkeypatch):
    """Seeded mutation: compacted lines accept entries past byte capacity."""

    def broken(self, set_index, way, entry):
        line = self._sets[set_index][way]
        if not line.valid:
            return False
        return len(line.entries) < self.config.max_entries_per_line

    monkeypatch.setattr(UopCache, "_line_accepts", broken)


class TestFuzzInput:
    def test_round_trips_through_json(self):
        original = _default_input(smc_interval=16, smc_seed=3)
        data = json.loads(json.dumps(original.to_dict()))
        assert FuzzInput.from_dict(data) == original

    def test_with_params_overrides(self):
        base = _default_input()
        shrunk = base.with_params(base.params(), num_instructions=50)
        assert shrunk.num_instructions == 50
        assert shrunk.design == base.design

    def test_build_profile_materializes(self):
        profile = build_profile(_default_input())
        assert profile.name == "fuzz"


class TestRunInput:
    def test_clean_tree_has_no_divergence(self):
        report = run_input(_default_input())
        assert report.ok, report.divergence
        assert report.coverage

    def test_rejects_unknown_design(self):
        with pytest.raises(OracleError, match="unknown design"):
            run_input(_default_input(design="magic"))

    def test_deterministic_for_fixed_input(self):
        fuzz_input = _default_input()
        first = run_input(fuzz_input)
        second = run_input(fuzz_input)
        assert first.counters == second.counters
        assert first.coverage == second.coverage


class TestEngineInputs:
    def test_engine_input_round_trips_through_json(self):
        original = _default_input(engine="adv-smc",
                                  engine_params=(("lines", 4),))
        data = json.loads(json.dumps(original.to_dict()))
        assert FuzzInput.from_dict(data) == original

    def test_engine_input_runs_clean(self):
        report = run_input(_default_input(engine="adv-pwconflict"))
        assert report.ok, report.divergence
        assert report.coverage

    def test_engine_input_ignores_profile_params(self):
        base = _default_input(engine="adv-smc")
        other = _default_input(engine="adv-smc", profile_params=())
        assert run_input(base).counters == run_input(other).counters

    def test_mutation_stays_within_the_engine(self):
        from repro.workloads.engine import create_engine
        rng = random.Random(7)
        parent = _default_input(engine="oscillating")
        for _ in range(25):
            child = mutate(rng, parent, "clasp")
            assert child.engine == "oscillating"
            # Every mutated parameter set must construct cleanly.
            create_engine(child.engine, workload=child.workload,
                          params=dict(child.engine_params))

    def test_fuzzer_rejects_replay_engine(self, tmp_path):
        with pytest.raises(OracleError, match="cannot be fuzzed"):
            WorkloadFuzzer(designs=["clasp"], out_dir=tmp_path,
                           engine="replay")

    def test_fuzzer_rejects_bad_base_params(self, tmp_path):
        with pytest.raises(OracleError, match="unknown parameter"):
            WorkloadFuzzer(designs=["clasp"], out_dir=tmp_path,
                           engine="adv-smc",
                           engine_params={"linez": 4})

    @pytest.mark.fuzz
    def test_engine_fuzz_smoke_runs_clean(self, tmp_path):
        fuzzer = WorkloadFuzzer(designs=["clasp", "pwac"], seed=7,
                                budget=4, out_dir=tmp_path,
                                engine="adv-smc")
        result = fuzzer.run()
        assert result.ok
        assert result.runs == 4
        assert result.coverage


class TestMutate:
    def test_mutation_yields_valid_profiles(self):
        rng = random.Random(7)
        parent = _default_input()
        for _ in range(50):
            child = mutate(rng, parent, "clasp")
            build_profile(child)     # must not raise
            assert child.design == "clasp"
            assert 100 <= child.num_instructions <= 1000

    def test_mutation_is_seed_deterministic(self):
        parent = _default_input()
        a = mutate(random.Random(3), parent, "rac")
        b = mutate(random.Random(3), parent, "rac")
        assert a == b


class TestFuzzerLoop:
    @pytest.mark.fuzz
    def test_smoke_budget_runs_clean(self, tmp_path):
        fuzzer = WorkloadFuzzer(designs=["clasp", "pwac"], seed=7,
                                budget=6, out_dir=tmp_path)
        result = fuzzer.run()
        assert result.ok
        assert result.runs + result.skipped == 6
        assert result.coverage
        assert not list(tmp_path.iterdir())   # no repro files when clean

    def test_rejects_unknown_design(self, tmp_path):
        with pytest.raises(OracleError, match="unknown design"):
            WorkloadFuzzer(designs=["nope"], out_dir=tmp_path)

    def test_rejects_empty_designs(self, tmp_path):
        with pytest.raises(OracleError, match="at least one"):
            WorkloadFuzzer(designs=[], out_dir=tmp_path)

    def test_coverage_grows_the_corpus(self, tmp_path):
        fuzzer = WorkloadFuzzer(designs=["f-pwac"], seed=7, budget=4,
                                out_dir=tmp_path)
        result = fuzzer.run()
        # The three corpus seeds plus at least one coverage-novel input.
        assert result.corpus_size > 3


@pytest.mark.fuzz
class TestMutationCatching:
    """Acceptance: a seeded capacity-check bug is caught and minimized."""

    def test_broken_capacity_check_is_caught_and_minimized(
            self, monkeypatch, tmp_path):
        _break_capacity_check(monkeypatch)
        fuzzer = WorkloadFuzzer(designs=["rac"], seed=7, budget=50,
                                out_dir=tmp_path)
        result = fuzzer.run()
        assert not result.ok, "fuzzer missed the seeded capacity bug"
        assert result.minimized_input is not None
        assert result.minimized_input.num_instructions < 20
        assert result.repro_path is not None and result.repro_path.exists()
        payload = json.loads(result.repro_path.read_text())
        assert payload["divergence"]["counter"]
        # The minimized repro must still diverge when replayed against the
        # (still-broken) tree...
        replayed = replay_repro(result.repro_path)
        assert not replayed.ok

    def test_repro_replays_clean_on_fixed_tree(self, monkeypatch, tmp_path):
        _break_capacity_check(monkeypatch)
        fuzzer = WorkloadFuzzer(designs=["rac"], seed=7, budget=50,
                                out_dir=tmp_path)
        result = fuzzer.run()
        assert not result.ok
        monkeypatch.undo()     # ...and stop diverging once the bug is fixed
        replayed = replay_repro(result.repro_path)
        assert replayed.ok, replayed.divergence


@pytest.mark.fuzz
class TestFuzzCli:
    """End-to-end: the bug drill through ``python -m repro fuzz``."""

    def test_divergence_exits_one_and_replays(self, monkeypatch, tmp_path,
                                              capsys):
        from repro.cli import main

        _break_capacity_check(monkeypatch)
        code = main(["fuzz", "--designs", "rac", "--budget", "50",
                     "--seed", "7", "--quiet", "--out-dir", str(tmp_path)])
        out = capsys.readouterr().out
        assert code == 1
        assert "oracle divergence" in out
        assert "minimized to" in out
        repro_file = next(tmp_path.glob("divergence-*.json"))

        # Replaying against the still-broken tree reports the divergence...
        assert main(["fuzz", "--replay", str(repro_file)]) == 1
        assert "oracle divergence" in capsys.readouterr().out

        # ...and exits clean once the bug is gone.
        monkeypatch.undo()
        assert main(["fuzz", "--replay", str(repro_file)]) == 0
        assert "no divergence" in capsys.readouterr().out


class TestMinimizeAndRepros:
    def test_minimize_rejects_clean_inputs(self):
        with pytest.raises(OracleError, match="does not diverge"):
            minimize(_default_input(), max_runs=4)

    def test_write_repro_refuses_clean_reports(self, tmp_path):
        report = run_input(_default_input())
        with pytest.raises(OracleError, match="without a divergence"):
            write_repro(tmp_path / "x.json", _default_input(), report)

    def test_minimized_repro_is_byte_deterministic(
            self, monkeypatch, tmp_path):
        _break_capacity_check(monkeypatch)
        first = WorkloadFuzzer(designs=["rac"], seed=7, budget=50,
                               out_dir=tmp_path / "a").run()
        second = WorkloadFuzzer(designs=["rac"], seed=7, budget=50,
                                out_dir=tmp_path / "b").run()
        assert first.repro_path.read_text() == second.repro_path.read_text()
