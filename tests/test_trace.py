"""Unit tests for trace representation and validation."""

import pytest

from repro.common.errors import WorkloadError
from repro.isa.instruction import BranchKind, InstClass, X86Instruction
from repro.workloads.program import BasicBlock, Function, Program
from repro.workloads.trace import DynamicInst, Trace


def build_program():
    """Two instructions and a conditional branch back to the first."""
    a = X86Instruction(address=0x100, length=4, inst_class=InstClass.ALU,
                       uop_count=1)
    b = X86Instruction(address=0x104, length=4, inst_class=InstClass.LOAD,
                       uop_count=1, reads_memory=True)
    br = X86Instruction(address=0x108, length=2, inst_class=InstClass.BRANCH,
                        uop_count=1, branch_kind=BranchKind.CONDITIONAL,
                        branch_target=0x100)
    block = BasicBlock(instructions=[a, b, br])
    return Program([Function(name="f", blocks=[block])])


def records_loop_twice():
    return [
        DynamicInst(pc=0x100, next_pc=0x104, mem_addr=None),
        DynamicInst(pc=0x104, next_pc=0x108, mem_addr=0x8000),
        DynamicInst(pc=0x108, next_pc=0x100, mem_addr=None),   # taken
        DynamicInst(pc=0x100, next_pc=0x104, mem_addr=None),
        DynamicInst(pc=0x104, next_pc=0x108, mem_addr=0x8008),
        DynamicInst(pc=0x108, next_pc=0x10A, mem_addr=None),   # not taken
    ]


class TestDynamicInst:
    def test_taken_detection(self):
        program = build_program()
        branch = program.at(0x108)
        taken = DynamicInst(pc=0x108, next_pc=0x100, mem_addr=None)
        fallthrough = DynamicInst(pc=0x108, next_pc=0x10A, mem_addr=None)
        assert taken.taken(branch)
        assert not fallthrough.taken(branch)


class TestTrace:
    def test_len_and_iteration(self):
        trace = Trace(build_program(), records_loop_twice())
        assert len(trace) == 6
        assert [r.pc for r in trace][:3] == [0x100, 0x104, 0x108]

    def test_indexing(self):
        trace = Trace(build_program(), records_loop_twice())
        assert trace[2].pc == 0x108

    def test_empty_rejected(self):
        with pytest.raises(WorkloadError):
            Trace(build_program(), [])

    def test_num_dynamic_uops(self):
        trace = Trace(build_program(), records_loop_twice())
        assert trace.num_dynamic_uops == 6

    def test_validate_accepts_good_trace(self):
        Trace(build_program(), records_loop_twice()).validate()

    def test_validate_rejects_nonbranch_divert(self):
        records = [DynamicInst(pc=0x100, next_pc=0x108, mem_addr=None)]
        with pytest.raises(WorkloadError):
            Trace(build_program(), records).validate()

    def test_validate_rejects_mismatched_successor(self):
        records = [
            DynamicInst(pc=0x100, next_pc=0x104, mem_addr=None),
            DynamicInst(pc=0x108, next_pc=0x10A, mem_addr=None),
        ]
        with pytest.raises(WorkloadError):
            Trace(build_program(), records).validate()

    def test_validate_rejects_undecodable_pc(self):
        records = [DynamicInst(pc=0x999, next_pc=0x99D, mem_addr=None)]
        with pytest.raises(WorkloadError):
            Trace(build_program(), records).validate()

    def test_branch_stats(self):
        trace = Trace(build_program(), records_loop_twice())
        stats = trace.branch_stats()
        assert stats.instructions == 6
        assert stats.branches == 2
        assert stats.conditional_branches == 2
        assert stats.taken_branches == 1
        assert stats.branch_density == pytest.approx(2 / 6)
