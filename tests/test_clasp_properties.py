"""Property-based tests for CLASP entry fusion (hypothesis).

CLASP (Cache Line boundary AgnoStic uoP cache design, paper Section IV)
lets one entry fuse uops from consecutive I-cache lines.  These properties
pin the three guarantees the design depends on:

- a fused entry never covers more than ``clasp_max_lines`` consecutive
  I-cache lines;
- fusion is transparent: the uops of a sealed entry are exactly the pushed
  uops, in program order, none duplicated or dropped;
- SMC invalidation dissolves every entry overlapping the written line, and
  the cache remains servable (refill + hit) afterwards.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.common.config import UopCacheConfig
from repro.uopcache.builder import AccumulationBuffer
from repro.uopcache.cache import UopCache

from helpers import make_entry, make_uops, small_oc_config

pytestmark = pytest.mark.tier1

SLOW = settings(max_examples=25,
                suppress_health_check=[HealthCheck.too_slow],
                deadline=None)

LINE = 64

inst_strategy = st.tuples(
    st.integers(1, 3),      # uop count
    st.integers(1, 15),     # instruction length
    st.integers(0, 1),      # imm/disp slots
    st.booleans(),          # taken
)


def _accumulate(insts, clasp_max_lines, start_pc=0x1000):
    """Push a synthetic instruction stream; return the sealed entries."""
    cfg = UopCacheConfig(clasp=True, clasp_max_lines=clasp_max_lines)
    buf = AccumulationBuffer(cfg, icache_line_bytes=LINE)
    buf.begin(pw_id=start_pc)
    sealed = []
    pushed = []
    pc = start_pc
    for count, length, imm, taken in insts:
        uops = make_uops(pc, count=count, inst_length=length, imm=imm)
        bypassed_before = buf.bypassed_uops
        sealed.extend(buf.push(uops, taken=taken))
        if buf.bypassed_uops == bypassed_before:
            pushed.extend(uops)
        pc += length
    sealed.extend(buf.flush())
    return sealed, pushed


@given(insts=st.lists(inst_strategy, min_size=1, max_size=80),
       max_lines=st.integers(2, 4))
@SLOW
def test_fused_entries_respect_clasp_line_budget(insts, max_lines):
    sealed, _ = _accumulate(insts, max_lines)
    for entry in sealed:
        lines = entry.icache_lines(LINE)
        assert 1 <= len(lines) <= max_lines
        # The covered lines are consecutive: fusion extends forward only.
        assert lines == tuple(range(lines[0],
                                    lines[0] + LINE * len(lines), LINE))


@given(insts=st.lists(inst_strategy, min_size=1, max_size=80),
       max_lines=st.integers(2, 3))
@SLOW
def test_fusion_preserves_uop_order_and_count(insts, max_lines):
    """Concatenating sealed entries reproduces the pushed uop stream."""
    sealed, pushed = _accumulate(insts, max_lines)
    replayed = [uop for entry in sealed for uop in entry.uops]
    assert replayed == pushed


@given(insts=st.lists(inst_strategy, min_size=1, max_size=80))
@SLOW
def test_entries_within_one_entry_are_sequential(insts):
    """Inside one fused entry the instruction byte ranges chain exactly."""
    sealed, _ = _accumulate(insts, 2)
    for entry in sealed:
        next_pc = entry.start_pc
        for uop in entry.uops:
            if uop.slot == 0:
                assert uop.pc == next_pc
                next_pc = uop.next_sequential_pc
        assert next_pc == entry.end_pc


@given(write_slot=st.integers(0, 7),
       spans=st.lists(st.tuples(st.integers(0, 7), st.integers(1, 8)),
                      min_size=1, max_size=24))
@SLOW
def test_smc_invalidation_dissolves_and_restores_servable_state(
        write_slot, spans):
    """An SMC write kills exactly the overlapping entries; the cache then
    accepts a refill of the same address and serves it again."""
    cfg = small_oc_config(clasp=True)
    cache = UopCache(cfg, icache_line_bytes=LINE)
    entries = []
    for slot, num_insts in spans:
        entry = make_entry(0x1000 + slot * LINE + 8, num_insts=num_insts,
                           inst_length=10)
        cache.fill(entry)
        entries.append(entry)
    write_pc = 0x1000 + write_slot * LINE

    resident = [entry for ways in cache._sets for line in ways
                for entry in line.entries]
    resident_before = {entry.start_pc for entry in resident}
    # Invalidation keys off instruction *start* bytes (entry.overlaps_line):
    # an instruction merely straddling into the written line doesn't count.
    overlapping = {entry.start_pc for entry in resident
                   if entry.overlaps_line(write_pc, LINE)}
    removed = cache.invalidate_icache_line(write_pc)
    cache.check_invariants()
    assert removed == len(overlapping)
    survivors = {pc for tags in cache.resident_tags()
                 for (pc, _e, _p, _n) in tags}
    assert survivors == resident_before - overlapping
    for pc in overlapping:
        assert cache.lookup(pc) is None

    # Refill one dissolved region (fresh decode after the SMC write) and
    # confirm the cache serves it: dissolution never wedges a set.
    if overlapping:
        refill_pc = sorted(overlapping)[0]
        refill = make_entry(refill_pc, num_insts=2, inst_length=10)
        cache.fill(refill)
        cache.check_invariants()
        assert cache.lookup(refill_pc) is not None
