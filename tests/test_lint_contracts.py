"""Tests for the whole-program contract rules (X1-X3) and their shared
symbol model: model construction, the fixture triples, the one-build-per-run
caching contract, and a drill that plants a write-only counter into a copy
of the real simulator to prove X1 catches the bug class it exists for.
"""

import ast
import textwrap
from pathlib import Path

from repro.lint import LintEngine, all_rules
from repro.lint import contracts
from repro.lint.contracts import build_symbol_model
from repro.lint.engine import Module

from test_lint import rules_of, run_fixture

REPO_ROOT = Path(__file__).resolve().parents[1]


def module_of(source, rel="repro/core/mod.py"):
    source = textwrap.dedent(source)
    return Module(path=Path(rel), rel=rel, source=source,
                  tree=ast.parse(source))


class TestSymbolModel:
    def test_config_class_fields_and_members(self):
        model = build_symbol_model([module_of("""
            from dataclasses import dataclass
            from typing import Optional


            @dataclass
            class CacheConfig:
                num_ways: int = 8

                def capacity(self):
                    return self.num_ways


            @dataclass
            class SimConfig:
                cache: Optional[CacheConfig] = None
                label: "str" = ""
        """)])
        cache = model.config_classes["CacheConfig"]
        assert cache.fields["num_ways"] == "int"
        assert {"num_ways", "capacity"} <= cache.members
        sim = model.config_classes["SimConfig"]
        # Optional[...] and string annotations both resolve to the type name.
        assert sim.fields["cache"] == "CacheConfig"
        assert sim.fields["label"] == "str"

    def test_plain_class_is_not_a_config(self):
        model = build_symbol_model([module_of("""
            class RuntimeConfig:
                pass
        """)])
        assert model.config_classes == {}

    def test_surface_keys_prefixes_and_open(self):
        model = build_symbol_model([module_of("""
            class A:
                def supply_counters(self):
                    counters = {"hits": 1}
                    counters["misses"] = 2
                    for kind in self.kinds:
                        counters[f"fill_{kind}"] = 3
                    return counters


            class B:
                def supply_counters(self):
                    counters = {}
                    counters.update(self.snapshot())
                    return counters
        """)])
        a, b = model.surfaces
        assert set(a.static_keys) == {"hits", "misses"}
        assert a.prefixes == {"fill_"}
        assert a.covers("fill_decoder") and not a.covers("spills")
        assert not a.open_surface
        assert b.open_surface

    def test_event_model_and_category_table(self):
        model = build_symbol_model([module_of("""
            import enum


            class EventKind(enum.Enum):
                HIT = "hit"
                MISS = "miss"


            KIND_CATEGORY = {
                EventKind.HIT: "cache",
            }


            def publish(hub):
                hub.emit(EventKind.HIT, 1)
                hub.emit(kind, 2)
        """)])
        assert set(model.events.members) == {"HIT", "MISS"}
        assert set(model.events.category_members) == {"HIT"}
        literal, variable = model.emit_sites
        assert literal.member == "HIT" and literal.resolvable
        assert variable.member is None and not variable.resolvable

    def test_increments_and_attribute_reads(self):
        model = build_symbol_model([module_of("""
            class Sim:
                def tick(self):
                    self.cycles += 1
                    self.phantom += 1
                    return self.cycles
        """)])
        assert {i.attr for i in model.increments} == {"cycles", "phantom"}
        assert "cycles" in model.attribute_reads
        assert "phantom" not in model.attribute_reads


class TestX1CounterContract:
    def test_violation(self):
        report = run_fixture("x1_violation")
        assert rules_of(report) == ["X1", "X1"]
        messages = " | ".join(f.message for f in report.findings)
        assert "_phantom" in messages            # write-only counter
        assert "'misses'" in messages            # surface parity hole

    def test_suppressed(self):
        report = run_fixture("x1_suppressed")
        assert report.findings == []
        assert report.suppressed == 2

    def test_fixed(self):
        report = run_fixture("x1_fixed")
        assert report.findings == []


class TestX2TelemetryTaxonomy:
    def test_violation(self):
        report = run_fixture("x2_violation")
        assert rules_of(report) == ["X2", "X2", "X2"]
        messages = " | ".join(f.message for f in report.findings)
        assert "BOGUS" in messages               # undeclared emit
        assert "UNUSED is declared" in messages  # never emitted
        assert "KIND_CATEGORY" in messages       # category gap

    def test_suppressed(self):
        """The declaration-line pragma waives both member findings; the
        emit-site pragma waives the off-taxonomy emit."""
        report = run_fixture("x2_suppressed")
        assert report.findings == []
        assert report.suppressed == 3

    def test_fixed(self):
        report = run_fixture("x2_fixed")
        assert report.findings == []


class TestX3ConfigFields:
    def test_violation(self):
        report = run_fixture("x3_violation")
        assert rules_of(report) == ["X3", "X3"]
        messages = " | ".join(f.message for f in report.findings)
        assert ".num_sets" in messages           # through self.config.cache
        assert ".assoc" in messages              # through a param annotation

    def test_suppressed(self):
        report = run_fixture("x3_suppressed")
        assert report.findings == []
        assert report.suppressed == 1

    def test_fixed(self):
        report = run_fixture("x3_fixed")
        assert report.findings == []


class TestSharedModelCache:
    def test_model_built_once_per_engine_run(self, monkeypatch):
        calls = []
        real = contracts.build_symbol_model

        def counting(modules):
            calls.append(len(list(modules)))
            return real(modules)

        monkeypatch.setattr(contracts, "build_symbol_model", counting)
        report = run_fixture("x1_fixed")
        assert report.findings == []
        assert len(calls) == 1      # X1, X2 and X3 share one build


class TestX1Drill:
    def test_planted_counter_is_caught(self, tmp_path):
        """Plant a counter increment nobody reads into a copy of the real
        simulator; the whole-tree run must flag exactly that counter."""
        source = (REPO_ROOT / "src/repro/core/simulator.py").read_text()
        line = next(l for l in source.splitlines()
                    if "self._mispredicts += 1" in l)
        pad = line[:len(line) - len(line.lstrip())]
        planted_dir = tmp_path / "repro" / "core"
        planted_dir.mkdir(parents=True)
        planted = planted_dir / "simulator.py"
        planted.write_text(source.replace(
            line, line + "\n" + pad + "self._phantom_counter += 1", 1))

        engine = LintEngine(root=REPO_ROOT, rules=all_rules())
        report = engine.run([REPO_ROOT / "src", planted])
        assert [f.rule for f in report.findings] == ["X1"]
        assert "_phantom_counter" in report.findings[0].message
        assert report.findings[0].path == planted.resolve().as_posix()
