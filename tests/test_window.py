"""Unit tests for prediction-window construction."""

import pytest

from repro.branch.window import PredictionWindowBuilder, PwTermination
from repro.common.config import BranchPredictorConfig
from repro.isa.instruction import BranchKind, InstClass, X86Instruction
from repro.workloads.program import BasicBlock, Function, Program
from repro.workloads.trace import DynamicInst, Trace


def build(insts, records):
    program = Program([Function(name="f", blocks=[
        BasicBlock(instructions=list(insts))])])
    return Trace(program, records)


def alu(addr, length=4):
    return X86Instruction(address=addr, length=length,
                          inst_class=InstClass.ALU, uop_count=1)


def cond(addr, target, length=2):
    return X86Instruction(address=addr, length=length,
                          inst_class=InstClass.BRANCH, uop_count=1,
                          branch_kind=BranchKind.CONDITIONAL,
                          branch_target=target)


class TestLineEnd:
    def test_pw_terminates_at_line_boundary(self):
        # 20 x 4-byte ALUs from 0x1000: line boundary at 0x1040.
        insts = [alu(0x1000 + 4 * i) for i in range(20)]
        records = [DynamicInst(pc=i.address, next_pc=i.end_address,
                               mem_addr=None) for i in insts]
        trace = build(insts, records)
        windows = PredictionWindowBuilder(trace).all_windows()
        assert windows[0].termination is PwTermination.LINE_END
        assert windows[0].start_pc == 0x1000
        assert windows[0].end_pc == 0x1040        # 16 insts of 4 bytes
        assert windows[0].num_instructions == 16
        assert windows[1].start_pc == 0x1040

    def test_pw_id_is_start_address(self):
        insts = [alu(0x1000 + 4 * i) for i in range(4)]
        records = [DynamicInst(pc=i.address, next_pc=i.end_address,
                               mem_addr=None) for i in insts]
        windows = PredictionWindowBuilder(build(insts, records)).all_windows()
        assert windows[0].pw_id == 0x1000


class TestTakenBranch:
    def test_taken_branch_ends_pw(self):
        insts = [alu(0x1000), cond(0x1004, 0x1010), alu(0x1010), alu(0x1014)]
        records = [
            DynamicInst(pc=0x1000, next_pc=0x1004, mem_addr=None),
            DynamicInst(pc=0x1004, next_pc=0x1010, mem_addr=None),  # taken
            DynamicInst(pc=0x1010, next_pc=0x1014, mem_addr=None),
            DynamicInst(pc=0x1014, next_pc=0x1018, mem_addr=None),
        ]
        windows = PredictionWindowBuilder(build(insts, records)).all_windows()
        assert windows[0].termination is PwTermination.TAKEN_BRANCH
        assert windows[0].num_instructions == 2
        assert windows[0].next_pc == 0x1010
        assert windows[1].start_pc == 0x1010

    def test_not_taken_branch_does_not_end_pw(self):
        insts = [alu(0x1000), cond(0x1004, 0x1030), alu(0x1006)]
        records = [
            DynamicInst(pc=0x1000, next_pc=0x1004, mem_addr=None),
            DynamicInst(pc=0x1004, next_pc=0x1006, mem_addr=None),  # NT
            DynamicInst(pc=0x1006, next_pc=0x100A, mem_addr=None),
        ]
        windows = PredictionWindowBuilder(build(insts, records)).all_windows()
        assert windows[0].num_instructions == 3


class TestMaxNotTaken:
    def test_max_not_taken_ends_pw(self):
        config = BranchPredictorConfig(max_not_taken_branches_per_pw=2)
        insts = [cond(0x1000, 0x1030), cond(0x1002, 0x1030),
                 cond(0x1004, 0x1030), alu(0x1006)]
        records = [
            DynamicInst(pc=0x1000, next_pc=0x1002, mem_addr=None),
            DynamicInst(pc=0x1002, next_pc=0x1004, mem_addr=None),
            DynamicInst(pc=0x1004, next_pc=0x1006, mem_addr=None),
            DynamicInst(pc=0x1006, next_pc=0x100A, mem_addr=None),
        ]
        windows = PredictionWindowBuilder(
            build(insts, records), config=config).all_windows()
        assert windows[0].termination is PwTermination.MAX_NOT_TAKEN
        assert windows[0].num_instructions == 2
        assert windows[1].start_pc == 0x1004


class TestCoverage:
    def test_windows_cover_trace_exactly(self):
        insts = [alu(0x1000 + 4 * i) for i in range(32)]
        records = [DynamicInst(pc=i.address, next_pc=i.end_address,
                               mem_addr=None) for i in insts]
        windows = PredictionWindowBuilder(build(insts, records)).all_windows()
        covered = []
        for window in windows:
            covered.extend(window.record_indices())
        assert covered == list(range(len(records)))

    def test_windows_contiguous(self):
        insts = [alu(0x1000 + 4 * i) for i in range(32)]
        records = [DynamicInst(pc=i.address, next_pc=i.end_address,
                               mem_addr=None) for i in insts]
        windows = PredictionWindowBuilder(build(insts, records)).all_windows()
        for a, b in zip(windows, windows[1:]):
            assert b.first == a.last + 1

    def test_last_window_trace_end(self):
        insts = [alu(0x1000)]
        records = [DynamicInst(pc=0x1000, next_pc=0x1004, mem_addr=None)]
        windows = PredictionWindowBuilder(build(insts, records)).all_windows()
        assert windows[-1].termination is PwTermination.TRACE_END

    def test_mid_line_start(self):
        """A PW starting mid-line still ends at that line's boundary."""
        insts = [alu(0x1020 + 4 * i) for i in range(12)]
        records = [DynamicInst(pc=i.address, next_pc=i.end_address,
                               mem_addr=None) for i in insts]
        windows = PredictionWindowBuilder(build(insts, records)).all_windows()
        assert windows[0].start_pc == 0x1020
        assert windows[0].end_pc == 0x1040
        assert windows[0].num_instructions == 8
