"""Tests for table/series text rendering."""

from repro.analysis.tables import (
    render_series,
    render_table,
    render_table1,
    render_table2,
)
from repro.common.config import SimulatorConfig, baseline_config
from repro.workloads.suite import PAPER_BRANCH_MPKI, WORKLOAD_NAMES


class TestRenderTable:
    def test_rows_and_columns(self):
        text = render_table({"w1": {"a": 1.0, "b": 2.0}}, title="T")
        assert "T" in text
        assert "w1" in text
        assert "1.000" in text and "2.000" in text

    def test_column_order(self):
        text = render_table({"w": {"b": 2.0, "a": 1.0}},
                            column_order=["a", "b"])
        header = text.splitlines()[0]
        assert header.index("a") < header.index("b")

    def test_missing_cell_blank(self):
        text = render_table({"w1": {"a": 1.0}, "w2": {"b": 2.0}},
                            column_order=["a", "b"])
        assert "w2" in text


class TestRenderSeries:
    def test_basic(self):
        text = render_series({"x": 0.5, "longer-name": 1.5})
        assert "x" in text and "longer-name" in text
        assert "0.500" in text


class TestTable1:
    def test_contains_paper_parameters(self):
        text = render_table1()
        assert "6 per cycle" in text            # dispatch width
        assert "8 per cycle" in text            # retire width
        assert "160 entries" in text
        assert "256 entries" in text
        assert "3-cycle latency, 4 insts/cycle" in text
        assert "32 sets x 8 ways" in text
        assert "56 bits" in text
        assert "TAGE" in text
        assert "32KB" in text
        assert "512KB" in text
        assert "2MB" in text

    def test_reflects_overrides(self):
        text = render_table1(baseline_config(65536).with_uop_cache(clasp=True))
        assert "1024 sets" in text
        assert "CLASP" in text


class TestTable2:
    def test_lists_all_workloads(self):
        text = render_table2()
        for name in WORKLOAD_NAMES:
            assert name in text

    def test_shows_paper_mpki(self):
        text = render_table2()
        assert f"{PAPER_BRANCH_MPKI['bm-lla']:.2f}" in text

    def test_measured_column(self):
        text = render_table2(measured_mpki={name: 1.0
                                            for name in WORKLOAD_NAMES})
        assert "measured" in text
