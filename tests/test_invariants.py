"""Tests for the simulator's strict-mode runtime invariant checker."""

import pytest

from repro.common.errors import SimulationError
from repro.core.experiment import policy_config, workload_trace
from repro.core.simulator import Simulator


def _strict_sim(label="baseline", instructions=4000):
    trace = workload_trace("bm-x64", instructions)
    return Simulator(trace, policy_config(label), label, strict=True)


class TestStrictMode:
    def test_strict_run_completes(self):
        result = _strict_sim().run()
        assert result.instructions == 4000

    def test_strict_matches_non_strict(self):
        trace = workload_trace("bm-x64", 4000)
        loose = Simulator(trace, policy_config("f-pwac"), "f", strict=False).run()
        strict = Simulator(trace, policy_config("f-pwac"), "f", strict=True).run()
        assert strict == loose

    def test_default_is_not_strict(self):
        trace = workload_trace("bm-x64", 1000)
        assert Simulator(trace, policy_config("baseline")).strict is False


class TestViolations:
    def test_uop_conservation_violation(self):
        sim = _strict_sim()
        sim.run()
        sim._uops_from_oc += 3
        with pytest.raises(SimulationError, match="conservation"):
            sim.check_invariants()

    def test_occupancy_violation(self):
        sim = _strict_sim()
        sim.run()
        sim.uop_cache.resident_uops = lambda: 10 ** 9
        with pytest.raises(SimulationError, match="occupancy"):
            sim.check_invariants()

    def test_structural_violation_wrapped(self):
        sim = _strict_sim("f-pwac")
        sim.run()
        # Corrupt the cache's lookup index: a tag that maps to no entry.
        sim.uop_cache._index[0][0xdead] = 0
        with pytest.raises(SimulationError, match="structural"):
            sim.check_invariants()

    def test_fe_cycle_monotonicity_violation(self):
        sim = _strict_sim()
        sim._observe_fetch_action(10)
        with pytest.raises(SimulationError, match="front-end cycle"):
            sim._observe_fetch_action(5)

    def test_backend_cycle_monotonicity_violation(self):
        sim = _strict_sim()
        sim.run()
        sim._max_backend_cycle = sim.backend.last_cycle + 100
        with pytest.raises(SimulationError, match="back-end cycle"):
            sim._observe_fetch_action(sim._max_fe_cycle)

    def test_violation_carries_diagnostic_context(self):
        sim = _strict_sim()
        sim.run()
        sim._uops_from_ic += 1
        with pytest.raises(SimulationError) as excinfo:
            sim.check_invariants()
        message = str(excinfo.value)
        assert "workload='bm-x64'" in message
        assert "instructions=4000" in message
        assert "admitted=" in message

    def test_strict_collect_raises_on_corruption(self):
        sim = _strict_sim()
        for _ in sim.steps():
            pass
        sim._uops_from_loop += 7
        with pytest.raises(SimulationError):
            sim.collect()
