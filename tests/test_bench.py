"""The bench harness: timing utilities, suite runner, report schema,
baseline comparison gates and the ``repro bench`` CLI contract."""

import json
import pathlib

import pytest

from repro.bench import (
    SCHEMA_VERSION,
    SUITES,
    BenchError,
    Measurement,
    SuiteParams,
    compare_reports,
    measure,
    median,
    render_compare,
    render_report,
    run_report,
    run_suite,
    timed,
)
from repro.cli import main
from repro.common.errors import ConfigError

#: A suite small enough to run inside the tier-1 budget but large enough to
#: exercise warmup and the uop cache (a few hundred fills).
_TINY = SuiteParams(name="tiny", instructions=400, repeats=1, warmup_runs=0)
_DESIGNS = ("baseline", "f-pwac")


@pytest.fixture(scope="module")
def tiny_report():
    return run_report([_TINY], designs=_DESIGNS)


# --------------------------------------------------------------------------
# Timing utilities.
# --------------------------------------------------------------------------

class TestTiming:

    def test_median_odd(self):
        assert median([3.0, 1.0, 2.0]) == 2.0

    def test_median_even_averages_middles(self):
        assert median([4.0, 1.0, 3.0, 2.0]) == 2.5

    def test_median_empty_raises(self):
        with pytest.raises(ConfigError):
            median([])

    def test_measurement_median_and_best(self):
        m = Measurement(samples=(0.3, 0.1, 0.2))
        assert m.median_seconds == 0.2
        assert m.best_seconds == 0.1

    def test_measure_runs_warmups_then_repeats(self):
        calls = []
        result = measure(lambda: calls.append(len(calls)),
                         repeats=3, warmup_runs=2)
        assert len(calls) == 5
        assert len(result.samples) == 3
        assert all(sample >= 0.0 for sample in result.samples)

    def test_measure_validates_arguments(self):
        with pytest.raises(ConfigError):
            measure(lambda: None, repeats=0)
        with pytest.raises(ConfigError):
            measure(lambda: None, repeats=1, warmup_runs=-1)

    def test_timed_keeps_result(self):
        value, seconds = timed(lambda: 42)
        assert value == 42
        assert seconds >= 0.0


# --------------------------------------------------------------------------
# Suite runner and report schema.
# --------------------------------------------------------------------------

class TestRunSuite:

    def test_report_shape(self, tiny_report):
        assert tiny_report["schema_version"] == SCHEMA_VERSION
        suite = tiny_report["suites"]["tiny"]
        for field in ("instructions", "workload", "capacity_uops",
                      "max_entries_per_line", "seed", "repeats",
                      "warmup_runs"):
            assert field in suite
        assert set(suite["designs"]) == set(_DESIGNS)

    def test_design_section(self, tiny_report):
        for data in tiny_report["suites"]["tiny"]["designs"].values():
            assert data["counters_equal"] is True
            assert data["sim_instructions"] == _TINY.instructions
            assert data["sim_cycles"] > 0 and data["sim_uops"] > 0
            assert len(data["normal_wall_seconds"]) == _TINY.repeats
            assert len(data["fast_wall_seconds"]) == _TINY.repeats
            assert data["normal_inst_per_sec"] == pytest.approx(
                data["sim_instructions"] / data["normal_median_seconds"])
            assert data["fast_cycles_per_sec"] == pytest.approx(
                data["sim_cycles"] / data["fast_median_seconds"])
            assert data["speedup"] == pytest.approx(
                data["normal_median_seconds"] / data["fast_median_seconds"])

    def test_counters_are_deterministic(self, tiny_report):
        rerun = run_suite(_TINY, designs=("baseline",))
        first = tiny_report["suites"]["tiny"]["designs"]["baseline"]
        again = rerun["designs"]["baseline"]
        for field in ("sim_instructions", "sim_cycles", "sim_uops"):
            assert first[field] == again[field]

    def test_unknown_design_rejected(self):
        with pytest.raises(BenchError):
            run_suite(_TINY, designs=("no-such-design",))

    def test_report_is_json_and_hostless(self, tiny_report):
        text = json.dumps(tiny_report, sort_keys=True)
        assert json.loads(text) == tiny_report
        for banned in ("time", "date", "host", "platform"):
            assert banned not in text.lower().replace(
                "wall_seconds", "").replace("_per_sec", "")

    def test_standard_suites_registered(self):
        assert set(SUITES) == {"full", "smoke"}
        assert SUITES["full"].instructions > SUITES["smoke"].instructions

    def test_render_report_mentions_designs(self, tiny_report):
        text = render_report(tiny_report)
        for design in _DESIGNS:
            assert design in text
        assert "speedup" in text


# --------------------------------------------------------------------------
# Baseline comparison gates.
# --------------------------------------------------------------------------

def _mutated(report, mutate):
    copy = json.loads(json.dumps(report))
    mutate(copy)
    return copy


class TestCompare:

    def test_self_compare_ok(self, tiny_report):
        result = compare_reports(tiny_report, tiny_report, threshold=0.25)
        assert result.ok
        assert any("tiny/baseline" in line for line in result.lines)
        assert "bench compare: ok" in render_compare(result)

    def test_counter_mismatch_always_fails(self, tiny_report):
        baseline = _mutated(tiny_report, lambda r: r["suites"]["tiny"]
                            ["designs"]["baseline"].update(sim_cycles=1))
        result = compare_reports(tiny_report, baseline, threshold=0.0)
        assert not result.ok
        assert any("counter mismatch" in failure
                   for failure in result.failures)

    def test_fast_normal_divergence_flag_fails(self, tiny_report):
        current = _mutated(tiny_report, lambda r: r["suites"]["tiny"]
                           ["designs"]["baseline"]
                           .update(counters_equal=False))
        result = compare_reports(current, tiny_report, threshold=0.0)
        assert any("fast/normal counters diverged" in failure
                   for failure in result.failures)

    def test_wall_regression_past_threshold_fails(self, tiny_report):
        def slow_down(report):
            design = report["suites"]["tiny"]["designs"]["baseline"]
            design["normal_median_seconds"] *= 10.0
        current = _mutated(tiny_report, slow_down)
        assert not compare_reports(current, tiny_report, threshold=0.25).ok
        # threshold 0 disables the (machine-dependent) timing gate entirely.
        assert compare_reports(current, tiny_report, threshold=0.0).ok

    def test_min_speedup_floor(self, tiny_report):
        result = compare_reports(tiny_report, tiny_report, threshold=0.0,
                                 min_speedup=1000.0)
        assert any("below" in failure and "floor" in failure
                   for failure in result.failures)
        assert compare_reports(tiny_report, tiny_report, threshold=0.0,
                               min_speedup=0.0).ok

    def test_identity_mismatch_fails(self, tiny_report):
        baseline = _mutated(tiny_report, lambda r: r["suites"]["tiny"]
                            .update(seed=999))
        result = compare_reports(tiny_report, baseline, threshold=0.0)
        assert any("suite parameters differ" in failure
                   for failure in result.failures)

    def test_default_engine_run_omits_engine_keys(self, tiny_report):
        """Default reports keep the pre-engine layout, so they compare
        cleanly against baselines written before engines existed."""
        assert "engine" not in tiny_report["suites"]["tiny"]
        assert "engine_params" not in tiny_report["suites"]["tiny"]

    def test_engine_suite_does_not_compare_against_synthetic(self,
                                                             tiny_report):
        import dataclasses
        engine_report = run_report(
            [dataclasses.replace(_TINY, engine="adv-pwconflict")],
            designs=_DESIGNS)
        suite = engine_report["suites"]["tiny"]
        assert suite["engine"] == "adv-pwconflict"
        assert suite["engine_params"] == {}
        result = compare_reports(engine_report, tiny_report, threshold=0.0)
        assert any("suite parameters differ" in failure and "engine"
                   in failure for failure in result.failures)
        # Like against like still compares clean.
        assert compare_reports(engine_report, engine_report,
                               threshold=0.0).ok

    def test_design_missing_from_baseline_skipped(self, tiny_report):
        baseline = _mutated(tiny_report, lambda r: r["suites"]["tiny"]
                            ["designs"].pop("f-pwac"))
        result = compare_reports(tiny_report, baseline, threshold=0.0)
        assert result.ok
        assert any("not in baseline" in line for line in result.lines)

    def test_schema_version_mismatch_raises(self, tiny_report):
        stale = _mutated(tiny_report, lambda r: r.update(schema_version=99))
        with pytest.raises(BenchError):
            compare_reports(tiny_report, stale)
        with pytest.raises(BenchError):
            compare_reports(stale, tiny_report)

    def test_non_report_raises(self, tiny_report):
        with pytest.raises(BenchError):
            compare_reports(tiny_report, {"not": "a report"})

    def test_no_shared_suites_raises(self, tiny_report):
        renamed = _mutated(
            tiny_report,
            lambda r: r.update(suites={"other": r["suites"]["tiny"]}))
        with pytest.raises(BenchError):
            compare_reports(tiny_report, renamed)


# --------------------------------------------------------------------------
# CLI contract: exit codes and report files.
# --------------------------------------------------------------------------

_CLI_ARGS = ["bench", "--smoke", "--instructions", "400", "--repeats", "1",
             "--designs", "baseline", "--quiet"]


class TestCli:

    def test_bench_writes_report(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        assert main([*_CLI_ARGS, "--out", str(out)]) == 0
        report = json.loads(out.read_text())
        assert report["schema_version"] == SCHEMA_VERSION
        assert "baseline" in report["suites"]["smoke"]["designs"]
        assert "speedup" in capsys.readouterr().out

    def test_compare_ok_and_regression_exit_codes(self, tmp_path, capsys):
        out = tmp_path / "bench.json"
        assert main([*_CLI_ARGS, "--out", str(out)]) == 0
        assert main([*_CLI_ARGS, "--compare", str(out),
                     "--threshold", "0"]) == 0
        baseline = json.loads(out.read_text())
        baseline["suites"]["smoke"]["designs"]["baseline"]["sim_cycles"] = 1
        out.write_text(json.dumps(baseline))
        capsys.readouterr()
        assert main([*_CLI_ARGS, "--compare", str(out),
                     "--threshold", "0"]) == 1
        assert "counter mismatch" in capsys.readouterr().out

    def test_compare_missing_baseline_is_usage_error(self, tmp_path):
        missing = tmp_path / "nope.json"
        assert main([*_CLI_ARGS, "--compare", str(missing)]) == 2

    def test_unknown_design_is_usage_error(self):
        assert main(["bench", "--smoke", "--designs", "bogus",
                     "--quiet"]) == 2


# --------------------------------------------------------------------------
# Committed baseline (slow lane).
# --------------------------------------------------------------------------

@pytest.mark.slow
def test_smoke_suite_matches_committed_baseline():
    """The committed ``BENCH_8.json`` counters must stay reproducible.

    Timing gates are disabled (``--threshold 0``, no ``--min-speedup``) so
    this is machine-independent: it fails only if the simulation itself —
    or the fast mode's equivalence — drifted from the committed baseline.
    """
    baseline = pathlib.Path(__file__).resolve().parent.parent / "BENCH_8.json"
    assert main(["bench", "--smoke", "--compare", str(baseline),
                 "--threshold", "0", "--quiet"]) == 0
