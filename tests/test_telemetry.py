"""Tests of the telemetry subsystem: hub, sinks, intervals, replay, CLI.

The centerpiece is the replay cross-check: for every compaction policy, the
recorded event stream folded back into counters must reproduce the
simulation's aggregate counters *exactly* (warmup 0 — see
:mod:`repro.telemetry.replay`).
"""

import dataclasses
import io
import json

import pytest

from repro.cli import main
from repro.common.config import (
    SimulatorConfig,
    TelemetryConfig,
    UopCacheConfig,
)
from repro.common.errors import ConfigError
from repro.core.experiment import DEFAULT_SEED, policy_config, workload_trace
from repro.core.simulator import Simulator
from repro.core.smt import SmtSimulator
from repro.runner.job import KIND_POLICY, SweepJob, execute_job
from repro.telemetry import (
    ChromeTraceSink,
    CounterSink,
    EventKind,
    IntervalTracker,
    JsonlSink,
    RingBufferSink,
    TelemetryEvent,
    TelemetryHub,
    TelemetryMismatch,
    crosscheck,
    replay_counters,
)

from helpers import make_entry


def make_sim(workload="bm-x64", design="baseline", instructions=2000,
             categories=None, **overrides):
    """A short telemetry-enabled simulation with an unbounded ring buffer."""
    config = dataclasses.replace(
        policy_config(design, 2048), warmup_instructions=0,
        telemetry=TelemetryConfig(
            enabled=True,
            events=tuple(categories) if categories else
            TelemetryConfig().events),
        **overrides)
    trace = workload_trace(workload, instructions, seed=DEFAULT_SEED)
    sim = Simulator(trace, config, design)
    ring = sim.telemetry.add_sink(RingBufferSink(capacity=None))
    return sim, ring


# --------------------------------------------------------------------------
# Hub.
# --------------------------------------------------------------------------

def test_hub_rejects_unknown_categories():
    with pytest.raises(ConfigError, match="unknown telemetry categories"):
        TelemetryHub(categories=["uopcache", "nonsense"])


def test_hub_counts_without_sinks():
    hub = TelemetryHub()
    hub.emit(EventKind.OC_HIT, pc=0x1000, uops=4)
    hub.emit(EventKind.OC_HIT, pc=0x1010, uops=2)
    hub.emit(EventKind.OC_MISS, pc=0x1020)
    assert hub.summary() == {"oc_hit": 2, "oc_miss": 1}


def test_hub_category_filter_drops_before_sinks():
    hub = TelemetryHub(categories=["uopcache"])
    ring = hub.add_sink(RingBufferSink())
    hub.emit(EventKind.OC_HIT, pc=0x1000, uops=1)
    hub.emit(EventKind.FETCH_ACTION, source="oc", uops=1, insts=1, tid=0)
    assert hub.wants(EventKind.OC_HIT)
    assert not hub.wants(EventKind.FETCH_ACTION)
    assert [e.kind for e in ring.events] == [EventKind.OC_HIT]
    assert hub.summary() == {"oc_hit": 1}


def test_hub_stamps_current_cycle():
    hub = TelemetryHub()
    ring = hub.add_sink(RingBufferSink())
    hub.cycle = 41
    hub.emit(EventKind.OC_MISS, pc=0x1000)
    assert ring.events[0].cycle == 41


# --------------------------------------------------------------------------
# Sinks.
# --------------------------------------------------------------------------

def test_ring_buffer_bounds_and_counts_drops():
    hub = TelemetryHub()
    ring = hub.add_sink(RingBufferSink(capacity=4))
    for pc in range(10):
        hub.emit(EventKind.OC_MISS, pc=pc)
    assert len(ring) == 4
    assert ring.accepted == 10
    assert ring.dropped == 6
    assert [e.args["pc"] for e in ring.events] == [6, 7, 8, 9]


def test_jsonl_sink_writes_one_object_per_line():
    stream = io.StringIO()
    hub = TelemetryHub()
    sink = hub.add_sink(JsonlSink(stream))
    hub.cycle = 7
    hub.emit(EventKind.OC_HIT, pc=0x1000, uops=3)
    hub.close()
    lines = stream.getvalue().splitlines()
    assert sink.written == 1
    assert json.loads(lines[0]) == {
        "kind": "oc_hit", "cycle": 7, "pc": 0x1000, "uops": 3}


def test_counter_sink_buckets_interval_samples():
    sink = CounterSink()
    sink.accept(TelemetryEvent(EventKind.INTERVAL, 1024,
                               {"ipc": 1.23, "upc": 2.5}))
    sink.accept(TelemetryEvent(EventKind.OC_HIT, 1, {"pc": 0}))
    assert sink.intervals == 1
    assert sink.counts == {"interval": 1, "oc_hit": 1}
    assert sink.ipc_histogram.counts[123] == 1
    assert sink.upc_histogram.counts[250] == 1


def test_chrome_trace_sink_structure(tmp_path):
    out = tmp_path / "trace.json"
    hub = TelemetryHub()
    hub.add_sink(ChromeTraceSink(out))
    hub.cycle = 5
    hub.emit(EventKind.OC_MISS, pc=0x1000)
    hub.emit(EventKind.INTERVAL, start=0, end=1024, insts=100, uops=200,
             ipc=0.1, upc=0.2, tid=1)
    hub.close()
    doc = json.loads(out.read_text())
    events = doc["traceEvents"]
    phases = {event["ph"] for event in events}
    assert phases == {"M", "i", "C"}
    counter = next(e for e in events if e["ph"] == "C")
    assert counter["name"] == "throughput"
    assert counter["tid"] == 1
    assert counter["args"] == {"ipc": 0.1, "upc": 0.2}
    instant = next(e for e in events if e["ph"] == "i")
    assert instant["name"] == "oc_miss"
    assert instant["ts"] == 5
    assert "tid" not in instant["args"]
    names = {e["args"]["name"] for e in events if e["ph"] == "M"}
    assert "repro simulator" in names


# --------------------------------------------------------------------------
# Interval tracker.
# --------------------------------------------------------------------------

def test_interval_tracker_emits_periodic_samples():
    hub = TelemetryHub()
    ring = hub.add_sink(RingBufferSink())
    tracker = IntervalTracker(hub, interval_cycles=100)
    tracker.update(50, instructions=10, uops=20)
    assert len(ring) == 0                     # window not complete yet
    tracker.update(250, instructions=40, uops=80)
    samples = ring.events
    assert [(e.args["start"], e.args["end"]) for e in samples] == \
        [(0, 100), (100, 200)]
    # The whole delta lands in the first crossed window.
    assert samples[0].args["insts"] == 40
    assert samples[1].args["insts"] == 0
    tracker.update(255, instructions=46, uops=92)
    tracker.finish(260)
    assert ring.events[-1].args == {
        "start": 200, "end": 260, "insts": 6, "uops": 12,
        "ipc": 6 / 60, "upc": 12 / 60, "tid": 0}


def test_interval_tracker_finish_skips_empty_tail():
    hub = TelemetryHub()
    ring = hub.add_sink(RingBufferSink())
    tracker = IntervalTracker(hub, interval_cycles=100)
    tracker.update(100, instructions=5, uops=9)
    count = len(ring)
    tracker.finish(100)                       # nothing after the boundary
    assert len(ring) == count
    tracker.finish(150)                       # clock moved, no activity
    assert len(ring) == count


# --------------------------------------------------------------------------
# Replay cross-check (the acceptance criterion).
# --------------------------------------------------------------------------

@pytest.mark.parametrize("design", ["baseline", "clasp", "rac", "pwac",
                                    "f-pwac"])
def test_event_replay_reproduces_counters(design):
    sim, ring = make_sim(design=design, instructions=4000)
    result = sim.run()
    replayed = crosscheck(ring.events, result)
    assert replayed["uops"] == result.uops
    assert result.telemetry_events == sim.telemetry.summary()


def test_crosscheck_names_first_mismatching_counter():
    sim, ring = make_sim(instructions=1500)
    result = sim.run()
    tampered = dataclasses.replace(result, uop_cache_hits=result.
                                   uop_cache_hits + 1)
    with pytest.raises(TelemetryMismatch) as excinfo:
        crosscheck(ring.events, tampered)
    assert excinfo.value.counter == "uop_cache_hits"
    assert excinfo.value.last_event is not None
    assert excinfo.value.last_event.kind is EventKind.OC_HIT


def test_crosscheck_reports_fill_kind_breakdown_mismatch():
    sim, ring = make_sim(design="rac", instructions=1500)
    result = sim.run()
    tampered = dataclasses.replace(result)
    from repro.uopcache.cache import FillKind
    tampered.fill_kind_counts = dict(result.fill_kind_counts)
    tampered.fill_kind_counts[FillKind.RAC] = \
        tampered.fill_kind_counts.get(FillKind.RAC, 0) + 1
    with pytest.raises(TelemetryMismatch) as excinfo:
        crosscheck(ring.events, tampered)
    assert excinfo.value.counter == "fill_kind_counts"


def test_crosscheck_mismatch_with_no_events_says_so():
    sim, _ = make_sim(instructions=800)
    result = sim.run()
    with pytest.raises(TelemetryMismatch, match="no event of that kind"):
        crosscheck([], result)


def test_replay_counters_on_empty_stream():
    counters = replay_counters([])
    assert counters["uops"] == 0
    assert counters["fill_kind_counts"] == {}


# --------------------------------------------------------------------------
# Simulator integration.
# --------------------------------------------------------------------------

def test_disabled_telemetry_builds_no_hub():
    trace = workload_trace("bm-x64", 500, seed=DEFAULT_SEED)
    sim = Simulator(trace, SimulatorConfig(), "baseline")
    assert sim.telemetry is None
    result = sim.run()
    assert result.telemetry_events == {}


def test_telemetry_does_not_perturb_results():
    """Enabled vs disabled runs must be bit-identical (minus the counts)."""
    trace = workload_trace("bm-ds", 2000, seed=DEFAULT_SEED)
    plain = Simulator(trace, SimulatorConfig(), "baseline").run().to_dict()
    config = dataclasses.replace(
        SimulatorConfig(), telemetry=TelemetryConfig(enabled=True))
    traced = Simulator(trace, config, "baseline").run().to_dict()
    assert traced["telemetry_events"]
    plain.pop("telemetry_events")
    traced.pop("telemetry_events")
    assert plain == traced


def test_cache_emits_eviction_and_invalidation_events():
    hub = TelemetryHub()
    ring = hub.add_sink(RingBufferSink())
    from repro.uopcache.cache import UopCache
    cache = UopCache(UopCacheConfig(num_sets=1, associativity=1),
                     telemetry=hub)
    cache.fill(make_entry(0x1000))
    cache.fill(make_entry(0x2000))            # evicts the first
    cache.invalidate_icache_line(0x2000)
    kinds = [e.kind for e in ring.events]
    assert EventKind.OC_EVICT in kinds
    assert EventKind.OC_INVALIDATE in kinds
    evict = next(e for e in ring.events if e.kind is EventKind.OC_EVICT)
    assert evict.args["pc"] == 0x1000


def test_force_pw_merge_emits_dissolve_event():
    """F-PWAC forced merge (Fig. 14): relocating the foreign entry emits
    ``oc_dissolve`` naming how many entries (and uops) moved."""
    from repro.common.config import CompactionPolicy
    from repro.uopcache.cache import FillKind, UopCache
    hub = TelemetryHub()
    ring = hub.add_sink(RingBufferSink())
    cache = UopCache(UopCacheConfig(
        num_sets=4, associativity=2,
        compaction=CompactionPolicy.F_PWAC, max_entries_per_line=2),
        telemetry=hub)
    cache.fill(make_entry(0x1000, pw_id=0x1000))      # PW buddy, way 0
    cache.fill(make_entry(0x1010, pw_id=0x2000))      # foreign, RACs into way 0
    result = cache.fill(make_entry(0x1020, pw_id=0x1000))  # forces the merge
    assert result.kind is FillKind.F_PWAC
    dissolve = next(e for e in ring.events
                    if e.kind is EventKind.OC_DISSOLVE)
    assert dissolve.args["moved"] == 1
    assert dissolve.args["moved_uops"] == 2
    cache.check_invariants()


def test_duplicate_fill_emits_marked_fill_event():
    from repro.uopcache.cache import UopCache
    hub = TelemetryHub()
    ring = hub.add_sink(RingBufferSink())
    cache = UopCache(UopCacheConfig(num_sets=4, associativity=2))
    cache.attach_telemetry(hub)
    cache.fill(make_entry(0x1000))
    cache.fill(make_entry(0x1000))
    fills = [e for e in ring.events if e.kind is EventKind.OC_FILL]
    assert fills[-1].args["fill_kind"] == "duplicate"


def test_smt_threads_share_one_hub_with_distinct_tids():
    config = dataclasses.replace(
        SimulatorConfig(), telemetry=TelemetryConfig(enabled=True))
    traces = [workload_trace(name, 1200, seed=DEFAULT_SEED)
              for name in ("bm-x64", "bm-lla")]
    smt = SmtSimulator(traces, config)
    ring = smt.telemetry.add_sink(RingBufferSink(capacity=None))
    smt.run()
    assert all(t.telemetry is smt.telemetry for t in smt.threads)
    tids = {e.args["tid"] for e in ring.events
            if e.kind is EventKind.FETCH_ACTION}
    assert tids == {0, 1}


# --------------------------------------------------------------------------
# Config validation.
# --------------------------------------------------------------------------

def test_telemetry_config_validation():
    with pytest.raises(ConfigError):
        TelemetryConfig(events=("bogus",))
    with pytest.raises(ConfigError):
        TelemetryConfig(events=())
    with pytest.raises(ConfigError):
        TelemetryConfig(interval_cycles=0)
    with pytest.raises(ConfigError):
        TelemetryConfig(ring_buffer_capacity=0)


# --------------------------------------------------------------------------
# Runner / result plumbing.
# --------------------------------------------------------------------------

def test_sweep_job_telemetry_lands_in_journaled_result():
    job = SweepJob(workload="bm-x64", label="rac", kind=KIND_POLICY,
                   num_instructions=1500, telemetry=True)
    result = execute_job(job)
    assert result.telemetry_events["oc_hit"] > 0
    restored = type(result).from_dict(result.to_dict())
    assert restored.telemetry_events == result.telemetry_events


# --------------------------------------------------------------------------
# CLI.
# --------------------------------------------------------------------------

def test_cli_trace_chrome(tmp_path, capsys):
    out = tmp_path / "trace.json"
    code = main(["trace", "bm-x64", "--instructions", "1500",
                 "--out", str(out)])
    assert code == 0
    doc = json.loads(out.read_text())
    assert {"M", "i", "C"} <= {e["ph"] for e in doc["traceEvents"]}
    assert "telemetry:" in capsys.readouterr().out


def test_cli_trace_jsonl_with_category_filter(tmp_path, capsys):
    out = tmp_path / "trace.jsonl"
    code = main(["trace", "bm-x64", "--instructions", "1500",
                 "--format", "jsonl", "--events", "uopcache",
                 "--out", str(out)])
    assert code == 0
    kinds = {json.loads(line)["kind"]
             for line in out.read_text().splitlines()}
    assert kinds and all(k.startswith("oc_") for k in kinds)


def test_cli_trace_rejects_unknown_category(tmp_path, capsys):
    code = main(["trace", "bm-x64", "--events", "bogus",
                 "--out", str(tmp_path / "t.json")])
    assert code == 2
    assert "unknown event category" in capsys.readouterr().err
