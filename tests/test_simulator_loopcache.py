"""Integration tests for the loop cache inside the full simulator."""

import dataclasses

import pytest

from repro.common.config import LoopCacheConfig, baseline_config
from repro.core.simulator import simulate
from repro.workloads.generator import WorkloadProfile, generate_workload

# A loop-heavy profile: long trip counts, many loop blocks.
LOOPY = WorkloadProfile(name="loopy", num_functions=12,
                        blocks_per_function=(3, 6), insts_per_block=(2, 5),
                        loop_fraction=0.35, call_fraction=0.05,
                        hard_branch_fraction=0.0,
                        loop_trip_counts=(16, 32, 64))


@pytest.fixture(scope="module")
def trace():
    return generate_workload(LOOPY, seed=4).trace(15_000, seed=5)


def loop_config(capacity=48, min_iterations=3):
    return dataclasses.replace(
        baseline_config(2048),
        loop_cache=LoopCacheConfig(enabled=True, capacity_uops=capacity,
                                   min_iterations_to_capture=min_iterations))


class TestLoopCacheIntegration:
    def test_serves_uops_on_loopy_code(self, trace):
        result = simulate(trace, loop_config(), "loop")
        assert result.uops_from_loop_cache > 0

    def test_uop_conservation_with_loop_cache(self, trace):
        result = simulate(trace, loop_config(), "loop")
        assert result.uops == (result.uops_from_uop_cache +
                               result.uops_from_decoder +
                               result.uops_from_loop_cache)
        assert result.uops == trace.num_dynamic_uops

    def test_disabled_serves_nothing(self, trace):
        result = simulate(trace, baseline_config(2048), "base")
        assert result.uops_from_loop_cache == 0

    def test_loop_uops_bypass_decoder(self, trace):
        base = simulate(trace, baseline_config(2048), "base")
        loop = simulate(trace, loop_config(), "loop")
        assert loop.uops_from_decoder <= base.uops_from_decoder

    def test_tiny_capacity_captures_less(self, trace):
        big = simulate(trace, loop_config(capacity=64), "big")
        tiny = simulate(trace, loop_config(capacity=4), "tiny")
        assert tiny.uops_from_loop_cache <= big.uops_from_loop_cache

    def test_instruction_count_preserved(self, trace):
        result = simulate(trace, loop_config(), "loop")
        assert result.instructions == len(trace)
