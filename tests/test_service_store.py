"""Tests for the content-addressed result store: atomicity, integrity,
quarantine, and byte-level snapshot equivalence."""

import pytest

from repro.common.errors import ReproWarning, StoreError
from repro.service.store import ResultStore
from repro.telemetry import TelemetryHub

KEY_A = "aa" + "0" * 62
KEY_B = "bb" + "1" * 62
PAYLOAD = {"workload": "bm-x64", "cycles": 123, "nested": {"upc": 1.5}}


class TestPutGet:
    def test_round_trip(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(KEY_A, PAYLOAD)
        assert store.get(KEY_A) == PAYLOAD

    def test_missing_is_none(self, tmp_path):
        assert ResultStore(tmp_path).get(KEY_A) is None

    def test_contains_len_keys(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(KEY_B, PAYLOAD)
        store.put(KEY_A, PAYLOAD)
        assert KEY_A in store and KEY_B in store
        assert len(store) == 2
        assert store.keys() == sorted([KEY_A, KEY_B])

    def test_put_is_idempotent(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.put(KEY_A, PAYLOAD)
        before = path.read_bytes()
        store.put(KEY_A, PAYLOAD)
        assert path.read_bytes() == before

    def test_put_overwrites_changed_payload(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(KEY_A, {"cycles": 1})
        store.put(KEY_A, {"cycles": 2})
        assert store.get(KEY_A) == {"cycles": 2}

    def test_no_temp_files_left_behind(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(KEY_A, PAYLOAD)
        assert not list(tmp_path.rglob("*.tmp"))

    def test_malformed_key_rejected(self, tmp_path):
        store = ResultStore(tmp_path)
        with pytest.raises(StoreError, match="malformed store key"):
            store.put("ZZ-not-hex", PAYLOAD)
        with pytest.raises(StoreError, match="malformed store key"):
            store.get("..")   # path traversal shapes are malformed too

    def test_hashed_layout(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.put(KEY_A, PAYLOAD)
        assert path.parent.name == KEY_A[:2]


class TestCorruptionQuarantine:
    def _corrupt(self, store, key, mutate):
        path = store.object_path(key)
        path.write_bytes(mutate(path.read_bytes()))

    @pytest.mark.parametrize("mutate", [
        lambda raw: raw[:-10],                         # truncated
        lambda raw: raw.replace(b"123", b"999"),       # payload bitrot
        lambda raw: raw[:40] + b"\xf5\xf6" + raw[42:],  # not UTF-8
        lambda raw: b"not json at all\n",
    ], ids=["truncated", "bitrot", "non-utf8", "garbage"])
    def test_corrupt_record_is_quarantined_not_served(self, tmp_path,
                                                      mutate):
        store = ResultStore(tmp_path)
        store.put(KEY_A, PAYLOAD)
        self._corrupt(store, KEY_A, mutate)
        with pytest.warns(ReproWarning, match="corrupt"):
            assert store.get(KEY_A) is None
        # The record was moved aside, not deleted: inspectable, not servable.
        assert not store.object_path(KEY_A).exists()
        assert (store.quarantine_dir / f"{KEY_A}.json").exists()
        assert store.get(KEY_A) is None   # now a plain miss, no warning

    def test_record_naming_wrong_key_is_quarantined(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(KEY_A, PAYLOAD)
        path_b = store.object_path(KEY_B)
        path_b.parent.mkdir(parents=True, exist_ok=True)
        path_b.write_bytes(store.object_path(KEY_A).read_bytes())
        with pytest.warns(ReproWarning, match="names key"):
            assert store.get(KEY_B) is None

    def test_corruption_emits_store_corrupt_event(self, tmp_path):
        hub = TelemetryHub(categories=("service",))
        store = ResultStore(tmp_path, telemetry=hub)
        store.put(KEY_A, PAYLOAD)
        self._corrupt(store, KEY_A, lambda raw: raw[:-5])
        with pytest.warns(ReproWarning):
            store.get(KEY_A)
        assert hub.summary().get("store_corrupt") == 1

    def test_hit_emits_store_hit_event(self, tmp_path):
        hub = TelemetryHub(categories=("service",))
        store = ResultStore(tmp_path, telemetry=hub)
        store.put(KEY_A, PAYLOAD)
        store.get(KEY_A)
        assert hub.summary().get("store_hit") == 1


class TestSnapshot:
    def test_equal_content_is_byte_identical(self, tmp_path):
        left = ResultStore(tmp_path / "left")
        right = ResultStore(tmp_path / "right")
        for store in (left, right):
            store.put(KEY_A, PAYLOAD)
            store.put(KEY_B, {"cycles": 7})
        assert left.snapshot() == right.snapshot()

    def test_snapshot_reflects_payload_difference(self, tmp_path):
        left = ResultStore(tmp_path / "left")
        right = ResultStore(tmp_path / "right")
        left.put(KEY_A, {"cycles": 1})
        right.put(KEY_A, {"cycles": 2})
        assert left.snapshot() != right.snapshot()

    def test_snapshot_excludes_quarantine(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(KEY_A, PAYLOAD)
        path = store.object_path(KEY_A)
        path.write_bytes(path.read_bytes()[:-4])
        with pytest.warns(ReproWarning):
            store.get(KEY_A)
        assert store.snapshot() == {}
