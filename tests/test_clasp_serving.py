"""Tests for CLASP-specific end-to-end behaviour: entries spanning I-cache
lines are built, served in one dispatch, and survive invalidation probes."""

import pytest

from repro.common.config import baseline_config, clasp_config
from repro.core.simulator import Simulator, simulate
from repro.isa.instruction import InstClass, X86Instruction
from repro.workloads.generator import WorkloadProfile, generate_workload
from repro.workloads.program import BasicBlock, Function, Program
from repro.workloads.trace import DynamicInst, Trace


def straightline_program(start=0x1020, count=30, length=6):
    """A long straight run crossing several I-cache lines, ending in a
    backward jump to loop the whole region."""
    insts = [X86Instruction(address=start + i * length, length=length,
                            inst_class=InstClass.ALU, uop_count=1)
             for i in range(count)]
    jump = X86Instruction(
        address=start + count * length, length=2,
        inst_class=InstClass.BRANCH, uop_count=1,
        branch_kind=__import__(
            "repro.isa.instruction", fromlist=["BranchKind"]
        ).BranchKind.UNCONDITIONAL,
        branch_target=start)
    block = BasicBlock(instructions=insts + [jump])
    return Program([Function(name="f", blocks=[block])])


def looping_trace(program, iterations=40):
    records = []
    insts = sorted(program.instructions(), key=lambda i: i.address)
    for _ in range(iterations):
        for inst in insts:
            next_pc = inst.branch_target if inst.is_branch else \
                inst.end_address
            records.append(DynamicInst(pc=inst.address, next_pc=next_pc,
                                       mem_addr=None))
    return Trace(program, records, name="clasp-loop")


@pytest.fixture(scope="module")
def trace():
    return looping_trace(straightline_program())


class TestClaspServing:
    def test_baseline_entries_never_span(self, trace):
        result = simulate(trace, baseline_config(2048), "base")
        assert result.entries_spanning_lines_fraction == 0.0

    def test_clasp_builds_spanning_entries(self, trace):
        result = simulate(trace, clasp_config(2048), "clasp")
        assert result.entries_spanning_lines_fraction > 0.0

    def test_clasp_fewer_entries_for_same_code(self, trace):
        base = simulate(trace, baseline_config(2048), "base")
        clasp = simulate(trace, clasp_config(2048), "clasp")
        assert clasp.uop_cache_fills <= base.uop_cache_fills

    def test_clasp_dispatches_wider(self, trace):
        """Fused entries deliver more uops per OC dispatch cycle."""
        base = Simulator(trace, baseline_config(2048), "base")
        base_result = base.run()
        clasp = Simulator(trace, clasp_config(2048), "clasp")
        clasp_result = clasp.run()
        base_rate = base_result.uops_from_uop_cache / max(1, base.fe_cycles_oc)
        clasp_rate = clasp_result.uops_from_uop_cache / \
            max(1, clasp.fe_cycles_oc)
        assert clasp_rate >= base_rate

    def test_same_uops_delivered(self, trace):
        base = simulate(trace, baseline_config(2048), "base")
        clasp = simulate(trace, clasp_config(2048), "clasp")
        assert base.uops == clasp.uops == trace.num_dynamic_uops

    def test_spanning_entry_invalidated_from_either_line(self, trace):
        sim = Simulator(trace, clasp_config(2048), "clasp")
        sim.run()
        oc = sim.uop_cache
        # Find a spanning entry and probe its SECOND line.
        spanning = None
        for ways in oc._sets:
            for line in ways:
                for entry in line.entries:
                    if entry.spans_icache_lines(64):
                        spanning = entry
                        break
        assert spanning is not None
        second_line = spanning.icache_lines(64)[1]
        before = oc.resident_entries()
        removed = oc.invalidate_icache_line(second_line)
        assert removed >= 1
        assert oc.resident_entries() == before - removed
        oc.check_invariants()


class TestClaspOnRealWorkload:
    def test_clasp_no_worse_on_suite_sample(self):
        profile = WorkloadProfile(name="clasp-real", num_functions=30,
                                  blocks_per_function=(3, 8),
                                  insts_per_block=(2, 8))
        trace = generate_workload(profile, seed=21).trace(12_000, seed=22)
        base = simulate(trace, baseline_config(2048), "base")
        clasp = simulate(trace, clasp_config(2048), "clasp")
        assert clasp.upc >= base.upc * 0.98
