"""Golden-run regression tests: fixed-seed result snapshots.

Each golden file is the full ``SimulationResult.to_dict()`` of one short,
deterministic run (fixed workload, design, length, seed).  Any behavioural
change in the simulator — intended or not — shows up as a field-level diff
here, with the first divergent counter named in the failure message.

Regenerating after an *intended* change::

    REPRO_REGEN_GOLDEN=1 PYTHONPATH=src python -m pytest tests/test_golden.py

then review the diff of ``tests/golden/*.json`` like any other code change.
"""

import dataclasses
import json
import os
from pathlib import Path

import pytest

from repro.core.experiment import DEFAULT_SEED, policy_config, workload_trace
from repro.core.simulator import Simulator

GOLDEN_DIR = Path(__file__).parent / "golden"

#: (workload, design, instructions).  Short runs keep the suite fast while
#: still exercising fills, evictions, compaction and branch mispredicts.
GOLDEN_RUNS = [
    ("bm-x64", "baseline", 2500),
    ("bm-lla", "f-pwac", 2500),
    ("bm-pb", "clasp", 2500),
    ("redis", "rac", 2500),
    ("bm-ds", "pwac", 2500),
]

#: All designs, snapshotted once per new workload engine (one
#: representative engine per engine family: trace replay, phase-structured
#: generation, adversarial generation).  The replay engine's packed input
#: is produced at test time from the synthetic engine, so its goldens pin
#: the full pack -> unpack -> simulate path.
ENGINE_DESIGNS = ("baseline", "clasp", "rac", "pwac", "f-pwac")
ENGINE_GOLDEN_ENGINES = ("replay", "oscillating", "adv-fragment")
ENGINE_GOLDEN_RUNS = [(engine, design, 2500)
                      for engine in ENGINE_GOLDEN_ENGINES
                      for design in ENGINE_DESIGNS]


def _golden_path(workload: str, design: str) -> Path:
    return GOLDEN_DIR / f"{workload}_{design}.json"


def _engine_golden_path(workload: str, design: str, engine: str) -> Path:
    return GOLDEN_DIR / f"{workload}_{design}_{engine}.json"


def _run(workload: str, design: str, instructions: int) -> dict:
    config = dataclasses.replace(policy_config(design, 2048),
                                 warmup_instructions=0)
    trace = workload_trace(workload, instructions, seed=DEFAULT_SEED)
    return Simulator(trace, config, design).run().to_dict()


def _first_divergence(expected, actual, path=""):
    """Depth-first search for the first differing leaf; None if equal."""
    if isinstance(expected, dict) and isinstance(actual, dict):
        for key in sorted(set(expected) | set(actual)):
            where = f"{path}.{key}" if path else str(key)
            if key not in expected:
                return (where, "<absent in golden>", actual[key])
            if key not in actual:
                return (where, expected[key], "<absent in result>")
            found = _first_divergence(expected[key], actual[key], where)
            if found:
                return found
        return None
    if isinstance(expected, list) and isinstance(actual, list):
        for index in range(max(len(expected), len(actual))):
            where = f"{path}[{index}]"
            if index >= len(expected):
                return (where, "<absent in golden>", actual[index])
            if index >= len(actual):
                return (where, expected[index], "<absent in result>")
            found = _first_divergence(expected[index], actual[index], where)
            if found:
                return found
        return None
    if expected != actual:
        return (path, expected, actual)
    return None


@pytest.mark.parametrize("workload,design,instructions", GOLDEN_RUNS,
                         ids=[f"{w}-{d}" for w, d, _ in GOLDEN_RUNS])
def test_golden_run(workload, design, instructions):
    path = _golden_path(workload, design)
    actual = _run(workload, design, instructions)
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        path.parent.mkdir(exist_ok=True)
        path.write_text(json.dumps(actual, indent=2, sort_keys=True) + "\n")
        pytest.skip(f"regenerated {path.name}")
    assert path.exists(), (
        f"golden file {path} missing; run with REPRO_REGEN_GOLDEN=1 "
        "to create it")
    expected = json.loads(path.read_text())
    divergence = _first_divergence(expected, actual)
    if divergence:
        where, want, got = divergence
        pytest.fail(
            f"golden mismatch for {workload}/{design} at '{where}': "
            f"golden={want!r} result={got!r}\n"
            "If the simulator change is intentional, regenerate with "
            "REPRO_REGEN_GOLDEN=1 and review the JSON diff.")


@pytest.fixture(scope="module")
def packed_trace_path(tmp_path_factory):
    """A packed copy of the default synthetic bm-x64 trace, built once."""
    from repro.workloads.engine import create_engine
    from repro.workloads.tracefile import pack_trace

    trace = create_engine("synthetic", workload="bm-x64").build_trace(
        2500, DEFAULT_SEED)
    path = tmp_path_factory.mktemp("golden-replay") / "bm-x64.uoptrace"
    pack_trace(trace, path, provenance={"engine": "synthetic"})
    return path


@pytest.mark.parametrize("engine,design,instructions", ENGINE_GOLDEN_RUNS,
                         ids=[f"{e}-{d}" for e, d, _ in ENGINE_GOLDEN_RUNS])
def test_engine_golden_run(engine, design, instructions, packed_trace_path):
    workload = "bm-x64"
    engine_params = {"path": str(packed_trace_path)} \
        if engine == "replay" else {}
    config = dataclasses.replace(policy_config(design, 2048),
                                 warmup_instructions=0)
    trace = workload_trace(workload, instructions, seed=DEFAULT_SEED,
                           engine=engine, engine_params=engine_params)
    actual = Simulator(trace, config, design).run().to_dict()
    path = _engine_golden_path(workload, design, engine)
    if os.environ.get("REPRO_REGEN_GOLDEN"):
        if path.exists():
            pytest.skip(f"{path.name} already committed; goldens are "
                        "append-only (delete explicitly to rewrite)")
        path.parent.mkdir(exist_ok=True)
        path.write_text(json.dumps(actual, indent=2, sort_keys=True) + "\n")
        pytest.skip(f"regenerated {path.name}")
    assert path.exists(), (
        f"golden file {path} missing; run with REPRO_REGEN_GOLDEN=1 "
        "to create it")
    expected = json.loads(path.read_text())
    divergence = _first_divergence(expected, actual)
    if divergence:
        where, want, got = divergence
        pytest.fail(
            f"golden mismatch for {workload}/{design}@{engine} at "
            f"'{where}': golden={want!r} result={got!r}\n"
            "If the simulator change is intentional, regenerate with "
            "REPRO_REGEN_GOLDEN=1 and review the JSON diff.")


def test_golden_files_have_no_strays():
    """Every committed golden file corresponds to a configured run."""
    expected = {_golden_path(w, d).name for w, d, _ in GOLDEN_RUNS}
    expected |= {_engine_golden_path("bm-x64", d, e).name
                 for e, d, _ in ENGINE_GOLDEN_RUNS}
    present = {p.name for p in GOLDEN_DIR.glob("*.json")}
    assert present == expected
