"""Tests for the simulation service orchestrator and its HTTP front end:
dedup caching, store/journal cross-healing, explicit gaps, and the API."""

import asyncio
import json

import pytest

from repro.common.errors import ReproWarning, ServiceError
from repro.service.protocol import JobSpec
from repro.service.server import (
    MAX_BODY_BYTES,
    ServiceServer,
    SimulationService,
)
from repro.service.supervisor import PoolConfig

INSTRUCTIONS = 1200


def _spec(workload="bm-x64", design="baseline"):
    return JobSpec(workload=workload, design=design,
                   num_instructions=INSTRUCTIONS, seed=7)


def _config(**overrides):
    base = dict(workers=2, retries=2, deadline_seconds=30.0,
                retry_backoff_seconds=0.01, restart_backoff_seconds=0.01)
    base.update(overrides)
    return PoolConfig(**base)


def _service(tmp_path, **kwargs):
    kwargs.setdefault("pool_config", _config())
    return SimulationService(tmp_path / "store",
                             checkpoint_dir=tmp_path / "ckpt", **kwargs)


class TestSimulationService:
    def test_execute_dedupes_and_caches(self, tmp_path):
        spec = _spec()
        with _service(tmp_path) as service:
            first = service.execute([spec, spec])
            assert first.ok and not first.cached
            assert list(first.results) == [spec.key]
            again = service.execute([spec])
            assert again.cached == [spec.key]
            assert again.results == first.results
            assert again.report is None    # nothing reached the pool

    def test_results_survive_service_restart(self, tmp_path):
        spec = _spec()
        with _service(tmp_path) as service:
            before = service.execute([spec]).results[spec.key]
        with _service(tmp_path) as revived:
            after = revived.execute([spec])
            assert after.cached == [spec.key]
            assert after.results[spec.key] == before

    def test_corrupt_store_record_heals_from_journal(self, tmp_path):
        spec = _spec()
        with _service(tmp_path) as service:
            service.execute([spec])
            path = service.store.object_path(spec.key)
            pristine = path.read_bytes()
            path.write_bytes(pristine[:-6] + b"zzzzz\n")
        with _service(tmp_path) as revived:
            with pytest.warns(ReproWarning, match="corrupt"):
                batch = revived.execute([spec])
            # Healed from the journal without recomputation, byte-identical.
            assert batch.cached == [spec.key]
            assert revived.store.object_path(spec.key).read_bytes() == \
                pristine

    def test_lost_store_object_heals_from_journal(self, tmp_path):
        spec = _spec()
        with _service(tmp_path) as service:
            service.execute([spec])
            pristine = service.store.object_path(spec.key).read_bytes()
            service.store.object_path(spec.key).unlink()
        with _service(tmp_path) as revived:
            batch = revived.execute([spec])
            assert batch.cached == [spec.key]
            assert revived.store.object_path(spec.key).read_bytes() == \
                pristine

    def test_quarantined_jobs_are_explicit_gaps(self, tmp_path):
        good, bad = _spec(), _spec(design="clasp")
        with _service(tmp_path, pool_config=_config(retries=0),
                      faults={bad.key: [{"crash": True}]}) as service:
            batch = service.execute([good, bad])
        assert not batch.ok
        assert good.key in batch.results
        assert bad.key not in batch.results
        assert any("injected" in error
                   for error in batch.failures[bad.key])
        assert batch.to_dict()["complete"] is False

    def test_execute_requires_start(self, tmp_path):
        service = _service(tmp_path)
        with pytest.raises(ServiceError, match="not started"):
            service.execute([_spec()])

    def test_stats_counts_layers(self, tmp_path):
        spec = _spec()
        with _service(tmp_path) as service:
            service.execute([spec])
            stats = service.stats()
        assert stats["store_records"] == 1
        assert stats["journal_records"] == 1


# ---------------------------------------------------------------- HTTP layer

async def _request(port, method, target, payload=None):
    reader, writer = await asyncio.open_connection("127.0.0.1", port)
    body = json.dumps(payload).encode() if payload is not None else b""
    head = (f"{method} {target} HTTP/1.1\r\n"
            f"Host: localhost\r\nContent-Length: {len(body)}\r\n"
            f"\r\n").encode()
    writer.write(head + body)
    await writer.drain()
    status_line = await reader.readline()
    status = int(status_line.split()[1])
    length = 0
    while True:
        line = await reader.readline()
        if line in (b"\r\n", b"\n", b""):
            break
        if line.lower().startswith(b"content-length:"):
            length = int(line.split(b":")[1])
    data = await reader.readexactly(length)
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, OSError):
        pass
    return status, json.loads(data)


@pytest.fixture()
def served(tmp_path):
    """A started service + server; yields (port, service) to async tests."""
    service = _service(tmp_path)
    service.start()
    server = ServiceServer(service)

    async def run(scenario):
        await server.start()
        try:
            return await scenario(server.port, service)
        finally:
            await server.stop()

    try:
        yield lambda scenario: asyncio.run(run(scenario))
    finally:
        service.close()


JOB = {"workload": "bm-x64", "num_instructions": INSTRUCTIONS}


class TestParseJobsEngineDefaults:
    """The serve-level default engine is injected into bare specs only."""

    @staticmethod
    def _body(*jobs):
        return json.dumps({"jobs": list(jobs)}).encode("utf-8")

    def test_default_engine_injected_when_spec_omits_one(self):
        from repro.service.server import _parse_jobs
        specs = _parse_jobs(self._body({"workload": "bm-x64"}),
                            "adv-smc", {"lines": 4})
        assert specs[0].engine == "adv-smc"
        assert specs[0].engine_params == (("lines", 4),)

    def test_spec_engine_always_wins(self):
        from repro.service.server import _parse_jobs
        specs = _parse_jobs(
            self._body({"workload": "bm-x64", "engine": "synthetic"}),
            "adv-smc", {"lines": 4})
        assert specs[0].engine == "synthetic"
        assert specs[0].engine_params == ()

    def test_synthetic_default_leaves_submissions_untouched(self):
        from repro.service.server import _parse_jobs
        specs = _parse_jobs(self._body({"workload": "bm-x64"}))
        assert specs[0] == JobSpec(workload="bm-x64")


class TestServiceServer:
    def test_health(self, served):
        async def scenario(port, _service):
            return await _request(port, "GET", "/health")
        status, payload = served(scenario)
        assert status == 200 and payload["status"] == "ok"

    def test_submit_then_run_then_result(self, served):
        async def scenario(port, _service):
            submit = await _request(port, "POST", "/submit",
                                    {"jobs": [JOB]})
            run1 = await _request(port, "POST", "/run", {"jobs": [JOB]})
            run2 = await _request(port, "POST", "/run", {"jobs": [JOB]})
            key = run1[1]["keys"][0]
            result = await _request(port, "GET", f"/result/{key}")
            return submit, run1, run2, key, result
        submit, run1, run2, key, result = served(scenario)
        assert submit[0] == 200
        assert submit[1]["jobs"][0]["cached"] is False
        assert run1[0] == 200 and run1[1]["complete"]
        assert key in run1[1]["results"] and not run1[1]["cached"]
        assert run2[1]["cached"] == [key]   # duplicate = free cache hit
        assert run2[1]["results"] == run1[1]["results"]
        assert result[0] == 200
        assert result[1]["result"] == run1[1]["results"][key]

    def test_result_miss_is_404(self, served):
        async def scenario(port, _service):
            return await _request(port, "GET", "/result/" + "ab" * 32)
        status, payload = served(scenario)
        assert status == 404 and "no result" in payload["error"]

    def test_unknown_route_is_404(self, served):
        async def scenario(port, _service):
            return await _request(port, "GET", "/nope")
        assert served(scenario)[0] == 404

    def test_wrong_method_is_405(self, served):
        async def scenario(port, _service):
            return await _request(port, "GET", "/run")
        assert served(scenario)[0] == 405

    def test_bad_spec_is_400(self, served):
        async def scenario(port, _service):
            return await _request(port, "POST", "/run",
                                  {"jobs": [{"workload": "nope"}]})
        status, payload = served(scenario)
        assert status == 400 and "unknown workload" in payload["error"]

    def test_non_json_body_is_400(self, served):
        async def scenario(port, _service):
            reader, writer = await asyncio.open_connection("127.0.0.1",
                                                           port)
            writer.write(b"POST /run HTTP/1.1\r\nContent-Length: 3\r\n"
                         b"\r\n{{{")
            await writer.drain()
            status = int((await reader.readline()).split()[1])
            writer.close()
            return status
        assert served(scenario) == 400

    def test_empty_jobs_is_400(self, served):
        async def scenario(port, _service):
            return await _request(port, "POST", "/run", {"jobs": []})
        assert served(scenario)[0] == 400

    def test_oversized_body_is_413(self, served):
        async def scenario(port, _service):
            reader, writer = await asyncio.open_connection("127.0.0.1",
                                                           port)
            writer.write(b"POST /run HTTP/1.1\r\n"
                         b"Content-Length: %d\r\n\r\n"
                         % (MAX_BODY_BYTES + 1))
            await writer.drain()
            status = int((await reader.readline()).split()[1])
            writer.close()
            return status
        assert served(scenario) == 413
