"""Unit tests for configuration validation and Table I defaults."""

import dataclasses

import pytest

from repro.common.config import (
    BranchPredictorConfig,
    CacheLevelConfig,
    CompactionPolicy,
    CoreConfig,
    DecoderConfig,
    LoopCacheConfig,
    MemoryHierarchyConfig,
    PowerConfig,
    ReplacementKind,
    SimulatorConfig,
    UopCacheConfig,
    baseline_config,
    clasp_config,
    compaction_config,
)
from repro.common.errors import ConfigError


class TestTableIDefaults:
    """The defaults must match the paper's Table I."""

    def test_core(self):
        core = CoreConfig()
        assert core.dispatch_width == 6
        assert core.retire_width == 8
        assert core.issue_queue_entries == 160
        assert core.rob_entries == 256
        assert core.uop_queue_entries == 120
        assert core.frequency_ghz == 3.0

    def test_decoder(self):
        dec = DecoderConfig()
        assert dec.latency_cycles == 3
        assert dec.bandwidth_insts_per_cycle == 4

    def test_uop_cache_geometry(self):
        oc = UopCacheConfig()
        assert oc.num_sets == 32
        assert oc.associativity == 8
        assert oc.uop_bits == 56
        assert oc.max_uops_per_entry == 8
        assert oc.max_imm_disp_per_entry == 4
        assert oc.max_ucoded_per_entry == 4
        assert oc.bandwidth_uops_per_cycle == 8
        assert oc.replacement is ReplacementKind.LRU
        # 32 sets x 8 ways x 8 uops = 2K uops, the paper's baseline.
        assert oc.capacity_uops == 2048

    def test_baseline_has_no_optimizations(self):
        oc = UopCacheConfig()
        assert not oc.clasp
        assert oc.compaction is CompactionPolicy.NONE

    def test_memory_hierarchy(self):
        mem = MemoryHierarchyConfig()
        assert mem.l1i.size_bytes == 32 * 1024
        assert mem.l1i.associativity == 8
        assert mem.l1d.associativity == 4
        assert mem.l2.size_bytes == 512 * 1024
        assert mem.l3.size_bytes == 2 * 1024 * 1024
        assert mem.l3.replacement is ReplacementKind.RRIP
        assert mem.icache_fetch_bytes_per_cycle == 32

    def test_l1i_set_count(self):
        assert MemoryHierarchyConfig().l1i.num_sets == 64


class TestUopCacheConfig:
    def test_uop_bytes(self):
        assert UopCacheConfig().uop_bytes == 7

    def test_usable_line_bytes(self):
        oc = UopCacheConfig()
        assert oc.usable_line_bytes == oc.line_bytes - oc.metadata_bytes

    def test_with_capacity_uops(self):
        oc = UopCacheConfig().with_capacity_uops(65536)
        assert oc.capacity_uops == 65536
        assert oc.num_sets == 1024
        assert oc.associativity == 8

    def test_with_capacity_rejects_indivisible(self):
        with pytest.raises(ConfigError):
            UopCacheConfig().with_capacity_uops(100)

    def test_rejects_non_power_of_two_sets(self):
        with pytest.raises(ConfigError):
            UopCacheConfig(num_sets=33)

    def test_rejects_zero_ways(self):
        with pytest.raises(ConfigError):
            UopCacheConfig(associativity=0)

    def test_rejects_clasp_one_line(self):
        with pytest.raises(ConfigError):
            UopCacheConfig(clasp_max_lines=1)


class TestCacheLevelConfig:
    def test_num_sets(self):
        level = CacheLevelConfig(name="x", size_bytes=32 * 1024, associativity=8)
        assert level.num_sets == 64

    def test_rejects_non_pow2_sets(self):
        with pytest.raises(ConfigError):
            CacheLevelConfig(name="x", size_bytes=3 * 1024, associativity=8)

    def test_rejects_indivisible_size(self):
        with pytest.raises(ConfigError):
            CacheLevelConfig(name="x", size_bytes=1000, associativity=3)


class TestValidation:
    def test_core_rejects_zero_dispatch(self):
        with pytest.raises(ConfigError):
            CoreConfig(dispatch_width=0)

    def test_decoder_rejects_zero_latency(self):
        with pytest.raises(ConfigError):
            DecoderConfig(latency_cycles=0)

    def test_branch_rejects_bad_history(self):
        with pytest.raises(ConfigError):
            BranchPredictorConfig(min_history=10, max_history=5)

    def test_power_rejects_zero_decode_energy(self):
        with pytest.raises(ConfigError):
            PowerConfig(decode_energy_per_inst=0)

    def test_loop_cache_rejects_zero_capacity(self):
        with pytest.raises(ConfigError):
            LoopCacheConfig(capacity_uops=0)

    def test_simulator_rejects_negative_warmup(self):
        with pytest.raises(ConfigError):
            SimulatorConfig(warmup_instructions=-1)


class TestConfigFactories:
    def test_baseline_config_capacity(self):
        assert baseline_config(4096).uop_cache.capacity_uops == 4096

    def test_clasp_config(self):
        cfg = clasp_config()
        assert cfg.uop_cache.clasp
        assert cfg.uop_cache.compaction is CompactionPolicy.NONE

    def test_compaction_config_enables_clasp(self):
        cfg = compaction_config(CompactionPolicy.F_PWAC)
        assert cfg.uop_cache.clasp
        assert cfg.uop_cache.compaction is CompactionPolicy.F_PWAC
        assert cfg.uop_cache.max_entries_per_line == 2

    def test_compaction_config_max_three(self):
        cfg = compaction_config(CompactionPolicy.RAC, max_entries_per_line=3)
        assert cfg.uop_cache.max_entries_per_line == 3

    def test_with_uop_cache_copies(self):
        base = baseline_config()
        modified = base.with_uop_cache(clasp=True)
        assert modified.uop_cache.clasp
        assert not base.uop_cache.clasp

    def test_configs_frozen(self):
        cfg = baseline_config()
        with pytest.raises(dataclasses.FrozenInstanceError):
            cfg.warmup_instructions = 5
