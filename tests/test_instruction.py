"""Unit tests for the static x86 instruction model."""

import pytest

from repro.common.errors import WorkloadError
from repro.isa.instruction import (
    MAX_X86_INST_LEN,
    BranchKind,
    InstClass,
    X86Instruction,
)


def make_inst(address=0x1000, length=4, inst_class=InstClass.ALU,
              uop_count=1, **kwargs):
    return X86Instruction(address=address, length=length,
                          inst_class=inst_class, uop_count=uop_count, **kwargs)


class TestConstruction:
    def test_basic_fields(self):
        inst = make_inst()
        assert inst.address == 0x1000
        assert inst.end_address == 0x1004
        assert inst.next_sequential == 0x1004

    def test_max_length_accepted(self):
        assert make_inst(length=MAX_X86_INST_LEN).length == 15

    def test_zero_length_rejected(self):
        with pytest.raises(WorkloadError):
            make_inst(length=0)

    def test_overlong_rejected(self):
        with pytest.raises(WorkloadError):
            make_inst(length=16)

    def test_zero_uops_rejected(self):
        with pytest.raises(WorkloadError):
            make_inst(uop_count=0)

    def test_negative_address_rejected(self):
        with pytest.raises(WorkloadError):
            make_inst(address=-4)

    def test_direct_branch_requires_target(self):
        with pytest.raises(WorkloadError):
            make_inst(inst_class=InstClass.BRANCH,
                      branch_kind=BranchKind.CONDITIONAL)

    def test_ret_needs_no_target(self):
        inst = make_inst(inst_class=InstClass.RET, length=1,
                         branch_kind=BranchKind.RET)
        assert inst.branch_target is None

    def test_indirect_needs_no_target(self):
        inst = make_inst(inst_class=InstClass.BRANCH,
                         branch_kind=BranchKind.INDIRECT)
        assert inst.is_branch


class TestBranchClassification:
    def test_non_branch(self):
        inst = make_inst()
        assert not inst.is_branch
        assert not inst.is_conditional_branch
        assert not inst.is_unconditional_transfer

    def test_conditional(self):
        inst = make_inst(inst_class=InstClass.BRANCH,
                         branch_kind=BranchKind.CONDITIONAL,
                         branch_target=0x2000)
        assert inst.is_branch
        assert inst.is_conditional_branch
        assert not inst.is_unconditional_transfer

    @pytest.mark.parametrize("kind", [
        BranchKind.UNCONDITIONAL, BranchKind.CALL, BranchKind.INDIRECT_CALL,
        BranchKind.RET, BranchKind.INDIRECT,
    ])
    def test_unconditional_transfers(self, kind):
        target = 0x2000 if kind in (BranchKind.UNCONDITIONAL,
                                    BranchKind.CALL) else None
        inst = make_inst(inst_class=InstClass.BRANCH, branch_kind=kind,
                         branch_target=target)
        assert inst.is_unconditional_transfer


class TestCacheLines:
    def test_within_one_line(self):
        inst = make_inst(address=0x1000, length=4)
        assert inst.cache_lines(64) == (0x1000,)
        assert not inst.spans_line_boundary(64)

    def test_straddles_boundary(self):
        inst = make_inst(address=0x103E, length=4)  # bytes 0x103E..0x1041
        assert inst.cache_lines(64) == (0x1000, 0x1040)
        assert inst.spans_line_boundary(64)

    def test_ends_exactly_at_boundary(self):
        inst = make_inst(address=0x103C, length=4)  # last byte 0x103F
        assert inst.cache_lines(64) == (0x1000,)
        assert not inst.spans_line_boundary(64)

    def test_starts_at_line_start(self):
        inst = make_inst(address=0x1040, length=4)
        assert inst.cache_lines(64) == (0x1040,)
