"""Tests for the fault-tolerant sweep runner (checkpoint, retry, quarantine,
resume, and serial/parallel parity)."""

import json

import pytest

from repro.common.errors import (
    CheckpointError,
    ReproError,
    ReproWarning,
    RunnerError,
)
from repro.core.experiment import run_policy_sweep, run_single, policy_config
from repro.core.metrics import SimulationResult
from repro.runner import (
    CheckpointJournal,
    FaultPlan,
    RunnerConfig,
    SweepJob,
    SweepRunner,
    build_capacity_jobs,
    build_policy_jobs,
    execute_job,
)

WORKLOADS = ["bm-x64", "bm-lla"]
LABELS = ("baseline", "clasp")
INSTRUCTIONS = 1500


def _jobs(workloads=WORKLOADS, labels=LABELS, instructions=INSTRUCTIONS):
    return build_policy_jobs(workloads, labels, 2048, 2, instructions)


class TestJobs:
    def test_job_id(self):
        job = SweepJob(workload="bm-x64", label="rac", kind="policy")
        assert job.job_id == "bm-x64/rac"

    def test_canonical_order_is_workload_major(self):
        jobs = _jobs()
        assert [j.job_id for j in jobs] == [
            "bm-x64/baseline", "bm-x64/clasp",
            "bm-lla/baseline", "bm-lla/clasp"]

    def test_capacity_jobs_label(self):
        jobs = build_capacity_jobs(["bm-x64"], (2048, 65536), 1000)
        assert [j.label for j in jobs] == ["OC_2K", "OC_64K"]

    def test_execute_unknown_kind(self):
        job = SweepJob(workload="bm-x64", label="x", kind="nope")
        with pytest.raises(RunnerError):
            execute_job(job)

    def test_execute_matches_direct_simulation(self):
        job = _jobs(["bm-x64"], ("baseline",))[0]
        direct = run_single("bm-x64", policy_config("baseline", 2048),
                            "baseline", num_instructions=INSTRUCTIONS)
        assert execute_job(job) == direct


class TestResultRoundTrip:
    def test_dict_round_trip_equality(self):
        result = run_single("bm-x64", policy_config("f-pwac"), "f-pwac",
                            num_instructions=4000)
        payload = json.loads(json.dumps(result.to_dict()))
        assert SimulationResult.from_dict(payload) == result

    def test_round_trip_preserves_derived_metrics(self):
        result = run_single("bm-x64", policy_config("baseline"), "b",
                            num_instructions=4000)
        restored = SimulationResult.from_dict(result.to_dict())
        assert restored.upc == result.upc
        assert restored.decoder_power == result.decoder_power
        assert restored.entry_size_histogram.mean() == \
            result.entry_size_histogram.mean()


class TestCheckpointJournal:
    def _result(self, workload="w", label="c"):
        result = SimulationResult(workload=workload, config_label=label)
        result.cycles = 123
        result.uops = 456
        return result

    def test_record_and_load(self, tmp_path):
        journal = CheckpointJournal(tmp_path)
        journal.record("w/a", self._result("w", "a"))
        journal.record("w/b", self._result("w", "b"))
        loaded = CheckpointJournal(tmp_path).load()
        assert set(loaded) == {"w/a", "w/b"}
        assert loaded["w/a"].cycles == 123

    def test_load_missing_is_empty(self, tmp_path):
        assert CheckpointJournal(tmp_path / "nope").load() == {}

    def test_torn_trailing_line_is_dropped(self, tmp_path):
        journal = CheckpointJournal(tmp_path)
        journal.record("w/a", self._result())
        with open(journal.path, "a", encoding="utf-8") as handle:
            handle.write('{"version":1,"job_id":"w/b","resu')   # torn write
        with pytest.warns(ReproWarning, match="trailing record"):
            loaded = CheckpointJournal(tmp_path).load()
        assert set(loaded) == {"w/a"}

    def test_truncation_mid_record_recovers_and_journal_stays_usable(
            self, tmp_path):
        """A record cut mid-write is dropped; the journal keeps working."""
        journal = CheckpointJournal(tmp_path)
        journal.record("w/a", self._result("w", "a"))
        intact_size = journal.path.stat().st_size
        journal.record("w/b", self._result("w", "b"))
        full_size = journal.path.stat().st_size
        # Cut the second record mid-line, as a crash during write would.
        with open(journal.path, "r+b") as handle:
            handle.truncate(intact_size + (full_size - intact_size) // 2)
        with pytest.warns(ReproWarning, match="trailing record"):
            loaded = CheckpointJournal(tmp_path).load()
        assert set(loaded) == {"w/a"}
        # Recovery physically truncated the torn bytes, so appends after
        # resume produce a clean journal (no warning on the next load).
        journal2 = CheckpointJournal(tmp_path)
        journal2.record("w/b", self._result("w", "b"))
        reloaded = CheckpointJournal(tmp_path).load()
        assert set(reloaded) == {"w/a", "w/b"}

    def test_bitrot_in_trailing_record_recovers(self, tmp_path):
        journal = CheckpointJournal(tmp_path)
        journal.record("w/a", self._result("w", "a"))
        journal.record("w/b", self._result("w", "b"))
        raw = bytearray(journal.path.read_bytes())
        raw[-10] ^= 0x04        # flip one bit inside the last record
        journal.path.write_bytes(bytes(raw))
        with pytest.warns(ReproWarning, match="trailing record"):
            loaded = CheckpointJournal(tmp_path).load()
        assert set(loaded) == {"w/a"}

    def test_recovery_emits_checkpoint_recovered_event(self, tmp_path):
        from repro.telemetry import TelemetryHub
        journal = CheckpointJournal(tmp_path)
        journal.record("w/a", self._result())
        with open(journal.path, "a", encoding="utf-8") as handle:
            handle.write('torn')
        hub = TelemetryHub(categories=("service",))
        with pytest.warns(ReproWarning):
            CheckpointJournal(tmp_path, telemetry=hub).load()
        assert hub.summary() == {"checkpoint_recovered": 1}

    def test_mid_file_corruption_raises(self, tmp_path):
        journal = CheckpointJournal(tmp_path)
        journal.record("w/a", self._result())
        good = journal.path.read_text(encoding="utf-8")
        journal.path.write_text("garbage\n" + good, encoding="utf-8")
        with pytest.raises(CheckpointError):
            CheckpointJournal(tmp_path).load()

    def test_version_mismatch_raises(self, tmp_path):
        import zlib
        journal = CheckpointJournal(tmp_path)
        journal.path.parent.mkdir(parents=True, exist_ok=True)
        body = json.dumps({"version": 99, "job_id": "w/a", "result": {}},
                          sort_keys=True, separators=(",", ":"))
        crc = zlib.crc32(body.encode("utf-8")) & 0xFFFFFFFF
        line = json.dumps({"body": body, "crc": crc},
                          separators=(",", ":"))
        journal.path.write_text(line + "\n", encoding="utf-8")
        with pytest.raises(CheckpointError):
            journal.load()


class TestJitteredBackoff:
    def test_deterministic_for_same_inputs(self):
        from repro.runner import jittered_backoff
        a = jittered_backoff(0.1, 5.0, 2, seed=7, stream="backoff/w/a")
        b = jittered_backoff(0.1, 5.0, 2, seed=7, stream="backoff/w/a")
        assert a == b

    def test_varies_across_attempts_jobs_and_seeds(self):
        from repro.runner import jittered_backoff
        base = jittered_backoff(0.1, 5.0, 2, seed=7, stream="backoff/w/a")
        assert jittered_backoff(0.1, 5.0, 3, seed=7,
                                stream="backoff/w/a") != base
        assert jittered_backoff(0.1, 5.0, 2, seed=7,
                                stream="backoff/w/b") != base
        assert jittered_backoff(0.1, 5.0, 2, seed=8,
                                stream="backoff/w/a") != base

    def test_jitter_stays_within_half_to_full_nominal(self):
        from repro.runner import jittered_backoff
        for attempt in range(6):
            nominal = min(0.1 * (2 ** attempt), 5.0)
            delay = jittered_backoff(0.1, 5.0, attempt, seed=3,
                                     stream="s")
            assert nominal * 0.5 <= delay < nominal

    def test_cap_bounds_the_exponential(self):
        from repro.runner import jittered_backoff
        assert jittered_backoff(1.0, 2.0, 50, seed=1, stream="s") < 2.0

    def test_zero_base_is_zero(self):
        from repro.runner import jittered_backoff
        assert jittered_backoff(0.0, 5.0, 3, seed=1, stream="s") == 0.0

    def test_executor_backoff_is_deterministic_per_job(self):
        from repro.runner.executor import SweepRunner
        runner = SweepRunner(RunnerConfig(jobs=1))
        job_a, job_b = _jobs(["bm-x64"], ("baseline", "clasp"))[:2]
        assert runner._backoff_delay(job_a, 0) == \
            runner._backoff_delay(job_a, 0)
        assert runner._backoff_delay(job_a, 0) != \
            runner._backoff_delay(job_b, 0)
        assert runner._backoff_delay(job_a, 0) != \
            runner._backoff_delay(job_a, 1)


class TestRunnerConfigValidation:
    def test_rejects_zero_jobs(self):
        with pytest.raises(RunnerError):
            RunnerConfig(jobs=0)

    def test_rejects_negative_retries(self):
        with pytest.raises(RunnerError):
            RunnerConfig(retries=-1)

    def test_rejects_resume_without_checkpoint(self):
        with pytest.raises(RunnerError):
            RunnerConfig(resume=True)

    def test_rejects_nonpositive_timeout(self):
        with pytest.raises(RunnerError):
            RunnerConfig(timeout_seconds=0)


class TestSerialRunner:
    def test_duplicate_job_ids_rejected(self):
        job = _jobs(["bm-x64"], ("baseline",))[0]
        with pytest.raises(RunnerError):
            SweepRunner(RunnerConfig()).run([job, job])

    def test_crash_retry_then_success(self):
        jobs = _jobs(["bm-x64"], ("baseline",))
        plan = FaultPlan(crash={"bm-x64/baseline": 2})
        runner = SweepRunner(RunnerConfig(retries=2, backoff_seconds=0.0),
                             fault_plan=plan)
        results, report = runner.run(jobs)
        assert "bm-x64/baseline" in results
        assert report.ok
        assert report.retried == {"bm-x64/baseline": 2}

    def test_exhausted_retries_quarantine(self):
        jobs = _jobs(["bm-x64"], LABELS)
        plan = FaultPlan(crash={"bm-x64/clasp": 99})
        runner = SweepRunner(RunnerConfig(retries=1, backoff_seconds=0.0),
                             fault_plan=plan)
        results, report = runner.run(jobs)
        # The sweep completed with the healthy job despite the sick one.
        assert set(results) == {"bm-x64/baseline"}
        assert not report.ok
        (failure,) = report.quarantined
        assert failure.job_id == "bm-x64/clasp"
        assert failure.attempts == 2
        assert all("InjectedFaultError" in error for error in failure.errors)
        assert "QUARANTINED bm-x64/clasp" in report.describe()

    def test_checkpoint_resume_skips_completed(self, tmp_path):
        jobs = _jobs(["bm-x64"], LABELS)
        plan = FaultPlan(crash={"bm-x64/clasp": 99})
        first = SweepRunner(
            RunnerConfig(retries=0, backoff_seconds=0.0,
                         checkpoint_dir=tmp_path),
            fault_plan=plan)
        results, report = first.run(jobs)
        assert set(results) == {"bm-x64/baseline"}

        second = SweepRunner(RunnerConfig(checkpoint_dir=tmp_path,
                                          resume=True))
        results2, report2 = second.run(jobs)
        assert set(results2) == {"bm-x64/baseline", "bm-x64/clasp"}
        assert report2.resumed == ["bm-x64/baseline"]     # not re-run
        assert report2.executed == ["bm-x64/clasp"]       # only the missing one
        # The resumed result is the journaled one, bit-for-bit.
        assert results2["bm-x64/baseline"] == results["bm-x64/baseline"]

    def test_existing_journal_without_resume_rejected(self, tmp_path):
        jobs = _jobs(["bm-x64"], ("baseline",))
        SweepRunner(RunnerConfig(checkpoint_dir=tmp_path)).run(jobs)
        with pytest.raises(RunnerError):
            SweepRunner(RunnerConfig(checkpoint_dir=tmp_path)).run(jobs)


class TestParallelRunner:
    def test_parallel_matches_serial_bit_identical(self):
        jobs = _jobs()
        serial, _ = SweepRunner(RunnerConfig(jobs=1)).run(jobs)
        parallel, report = SweepRunner(RunnerConfig(jobs=2)).run(jobs)
        assert report.ok
        assert list(parallel) == list(serial)     # canonical order preserved
        assert parallel == serial                 # results bit-identical

    def test_fault_injected_sweep_quarantines_and_resumes(self, tmp_path):
        """The acceptance scenario: one job crashes twice (heals via retry),
        one job hangs past its timeout every attempt (quarantined); the
        sweep completes, reports, and --resume re-runs only what's missing."""
        jobs = _jobs()
        plan = FaultPlan(crash={"bm-x64/clasp": 2},
                         hang={"bm-lla/baseline": 99}, hang_seconds=30.0)
        runner = SweepRunner(
            RunnerConfig(jobs=2, retries=2, backoff_seconds=0.0,
                         timeout_seconds=1.0, checkpoint_dir=tmp_path),
            fault_plan=plan)
        results, report = runner.run(jobs)

        assert set(results) == {"bm-x64/baseline", "bm-x64/clasp",
                                "bm-lla/clasp"}
        assert report.retried == {"bm-x64/clasp": 2}
        (failure,) = report.quarantined
        assert failure.job_id == "bm-lla/baseline"
        assert failure.attempts == 3
        assert all("timed out" in error for error in failure.errors)

        # Resume (faults gone, as after fixing the cause): only the
        # quarantined job is re-run; everything else comes from the journal.
        resumed = SweepRunner(RunnerConfig(jobs=2, checkpoint_dir=tmp_path,
                                           resume=True))
        results2, report2 = resumed.run(jobs)
        assert report2.ok
        assert report2.executed == ["bm-lla/baseline"]
        assert sorted(report2.resumed) == sorted(results)
        assert set(results2) == {job.job_id for job in jobs}
        for job_id, result in results.items():
            assert results2[job_id] == result


class TestSweepIntegration:
    def test_policy_sweep_parallel_tables_identical(self):
        kwargs = dict(workloads=["bm-x64"], labels=LABELS,
                      num_instructions=2000)
        serial = run_policy_sweep(**kwargs)
        parallel = run_policy_sweep(runner=RunnerConfig(jobs=2), **kwargs)
        table_s = serial.normalized(lambda r: r.upc, "baseline")
        table_p = parallel.normalized(lambda r: r.upc, "baseline")
        assert table_s == table_p     # bit-identical aggregate tables

    def test_sweep_report_attached(self):
        sweep = run_policy_sweep(workloads=["bm-x64"], labels=("baseline",),
                                 num_instructions=1500)
        assert sweep.report is not None
        assert sweep.report.ok
        assert sweep.report.total_jobs == 1

    def test_sweep_with_quarantine_is_partial_but_usable(self):
        plan = FaultPlan(crash={"bm-x64/clasp": 99})
        sweep = run_policy_sweep(
            workloads=WORKLOADS, labels=LABELS,
            num_instructions=INSTRUCTIONS,
            runner=RunnerConfig(retries=0, backoff_seconds=0.0),
            fault_plan=plan)
        assert not sweep.report.ok
        with pytest.raises(ReproError):
            sweep.metric("bm-x64", "clasp", lambda r: r.upc)
        table = sweep.normalized(lambda r: r.upc, "baseline")
        assert "clasp" not in table["bm-x64"]
        assert "clasp" in table["bm-lla"]
        means = sweep.mean_over_workloads(table)
        assert set(means) == {"baseline", "clasp"}
