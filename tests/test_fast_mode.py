"""Counters-only fast mode: proven equivalent to the normal serve loop.

Three layers of proof, mirroring how the optimizations were built:

- *golden parity*: fast mode must reproduce every committed golden snapshot
  field-for-field — the same files the normal path is pinned to, never
  regenerated for fast mode;
- *differential*: the oracle's fast-vs-normal runner on all five designs
  (full ``SimulationResult`` surface, loop cache enabled too);
- *properties* (hypothesis): the TAGE static-index cache and the fused
  ``observe()`` match the reference ``predict()``/``update()`` pair on
  arbitrary branch streams, and the backend's batched ``admit_inst()``
  matches per-uop ``admit()`` on arbitrary latency streams.
"""

import dataclasses
import json

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.backend.core import OutOfOrderBackend
from repro.branch.tage import TagePredictor
from repro.common.config import (
    BranchPredictorConfig,
    SimulatorConfig,
    TelemetryConfig,
)
from repro.common.errors import ConfigError
from repro.core.experiment import (
    DEFAULT_SEED,
    POLICY_LABELS,
    policy_config,
    workload_trace,
)
from repro.core.simulator import Simulator
from repro.isa.uop import Uop, UopKind
from repro.oracle import diff_fast_mode

from test_golden import GOLDEN_RUNS, _first_divergence, _golden_path

SLOW = settings(max_examples=25,
                suppress_health_check=[HealthCheck.too_slow],
                deadline=None)

#: A small TAGE (4 tables, 64-entry) so hypothesis reaches collisions,
#: allocations and useful-bit decay within short branch streams.
_SMALL_TAGE = BranchPredictorConfig(num_tagged_tables=4,
                                    table_entries_log2=6,
                                    base_entries_log2=6)

#: (pc, taken) branch streams over a small PC set (collisions on purpose).
_branch_streams = st.lists(
    st.tuples(st.integers(0, 2 ** 20).map(lambda v: v * 2),
              st.booleans()),
    max_size=300)


# --------------------------------------------------------------------------
# Config surface.
# --------------------------------------------------------------------------

class TestFastModeConfig:

    def test_with_fast_mode_round_trip(self):
        config = SimulatorConfig()
        assert not config.fast_mode
        fast = config.with_fast_mode()
        assert fast.fast_mode and not config.fast_mode
        assert not fast.with_fast_mode(False).fast_mode

    def test_fast_mode_rejects_telemetry(self):
        with pytest.raises(ConfigError):
            SimulatorConfig(fast_mode=True,
                            telemetry=TelemetryConfig(enabled=True))


# --------------------------------------------------------------------------
# Golden parity: the committed snapshots, via the fast path.
# --------------------------------------------------------------------------

@pytest.mark.parametrize("workload,design,instructions", GOLDEN_RUNS,
                         ids=[f"{w}-{d}" for w, d, _ in GOLDEN_RUNS])
def test_fast_mode_reproduces_golden(workload, design, instructions):
    path = _golden_path(workload, design)
    assert path.exists(), f"golden file {path} missing"
    config = dataclasses.replace(policy_config(design, 2048),
                                 warmup_instructions=0).with_fast_mode()
    trace = workload_trace(workload, instructions, seed=DEFAULT_SEED)
    actual = Simulator(trace, config, design).run().to_dict()
    expected = json.loads(path.read_text())
    divergence = _first_divergence(expected, actual)
    if divergence:
        where, want, got = divergence
        pytest.fail(f"fast mode diverges from golden {workload}/{design} "
                    f"at '{where}': golden={want!r} fast={got!r}")


# --------------------------------------------------------------------------
# Differential: full result surface, every design, warmup and loop cache.
# --------------------------------------------------------------------------

@pytest.mark.parametrize("design", POLICY_LABELS)
def test_fast_vs_normal_all_designs(design):
    trace = workload_trace("bm-x64", 4000, seed=DEFAULT_SEED)
    config = policy_config(design, 1024)
    report = diff_fast_mode(trace, config, design, raise_on_divergence=True)
    assert report.ok and report.counters


def test_fast_vs_normal_with_warmup_and_loop_cache():
    trace = workload_trace("bm-x64", 4000, seed=DEFAULT_SEED)
    config = dataclasses.replace(
        policy_config("f-pwac", 1024), warmup_instructions=1000,
        loop_cache=dataclasses.replace(
            SimulatorConfig().loop_cache, enabled=True))
    diff_fast_mode(trace, config, "f-pwac", raise_on_divergence=True)


def test_diff_fast_mode_reports_field_path():
    trace = workload_trace("bm-x64", 1500, seed=DEFAULT_SEED)
    report = diff_fast_mode(trace, policy_config("baseline", 1024), "b")
    assert report.ok
    assert "behavior:mispredict" in report.coverage


# --------------------------------------------------------------------------
# TAGE: static index cache and fused observe().
# --------------------------------------------------------------------------

@given(stream=_branch_streams, probe_pc=st.integers(0, 2 ** 20))
@SLOW
def test_index_statics_match_table_index(stream, probe_pc):
    """(static ^ fold) & mask must equal the reference hash at any history."""
    tage = TagePredictor(_SMALL_TAGE)
    for pc, taken in stream:
        tage.observe(pc, taken)
    statics = tage._index_statics(probe_pc)
    for table in range(tage._num_tables):
        fast_index = (statics[table] ^
                      tage._index_folds[table].value) & tage._index_mask
        assert fast_index == tage._table_index(probe_pc, table)


def _tage_state(tage):
    return {
        "tags": tage._table_tags,
        "counters": tage._table_counters,
        "useful": tage._table_useful,
        "base": tage._base,
        "use_alt": tage._use_alt_on_new,
        "rng": tage._rng_state,
        "history": tage._history_bits,
        "folds": [[fold.value for fold in triple]
                  for triple in tage._fold_triples],
        "predictions": tage.predictions,
        "mispredictions": tage.mispredictions,
    }


@given(stream=_branch_streams)
@SLOW
def test_observe_equals_predict_then_update(stream):
    """The fused walk must leave twin predictors in identical states."""
    fused = TagePredictor(_SMALL_TAGE)
    reference = TagePredictor(_SMALL_TAGE)
    for pc, taken in stream:
        fused_prediction = fused.observe(pc, taken)
        reference_prediction = reference.predict(pc)
        mispredicted = reference.update(pc, taken)
        assert fused_prediction == reference_prediction
        assert mispredicted == (reference_prediction != taken)
        assert _tage_state(fused) == _tage_state(reference)


# --------------------------------------------------------------------------
# Backend: batched admit_inst() vs per-uop admit().
# --------------------------------------------------------------------------

def _backend_state(backend):
    return {
        "dispatch": (backend._dispatch.cycle, backend._dispatch.used,
                     backend._dispatch.busy_cycles),
        "retire": (backend._retire.cycle, backend._retire.used,
                   backend._retire.busy_cycles),
        "dispatch_ring": list(backend._dispatch_ring),
        "retire_ring": list(backend._retire_ring),
        "last_retire": backend._last_retire,
        "uops_retired": backend.uops_retired,
        "last_cycle": backend.last_cycle,
    }


@given(insts=st.lists(
    st.tuples(st.lists(st.sampled_from(list(UopKind)),
                       min_size=1, max_size=4),
              st.integers(0, 3)),
    max_size=120))
@SLOW
def test_admit_inst_matches_per_uop_admit(insts):
    """Same uop streams, same arrivals: identical timing and limiter state."""
    batched = OutOfOrderBackend()
    reference = OutOfOrderBackend()
    arrival = 0
    for kinds, gap in insts:
        arrival += gap
        uops = [Uop(pc=arrival * 16, inst_length=4, kind=kind,
                    slot=slot, num_slots=len(kinds))
                for slot, kind in enumerate(kinds)]
        # Loads are encoded as -1, exactly as the fast serve loop does.
        latencies = tuple(-1 if uop.kind is UopKind.LOAD
                          else uop.exec_latency for uop in uops)
        complete = batched.admit_inst(latencies, arrival)
        timing = None
        for uop in uops:
            timing = reference.admit(uop, arrival)
        assert timing is not None and complete == timing.complete
        assert _backend_state(batched) == _backend_state(reference)


def test_admit_inst_empty_instruction_returns_arrival():
    backend = OutOfOrderBackend()
    assert backend.admit_inst((), 17) == 17
    assert backend.uops_retired == 0
