"""Unit tests for the accumulation buffer (entry construction sequencing)."""

import pytest

from repro.common.config import UopCacheConfig
from repro.common.errors import CacheError
from repro.uopcache.builder import AccumulationBuffer
from repro.uopcache.entry import EntryTermination

from helpers import make_uops


def make_buffer(**kwargs):
    return AccumulationBuffer(UopCacheConfig(**kwargs))


class TestSequentialAccumulation:
    def test_sequential_instructions_share_entry(self):
        buf = make_buffer()
        buf.begin(pw_id=0x1000)
        assert buf.push(make_uops(0x1000, 2), taken=False) == []
        assert buf.push(make_uops(0x1004, 2), taken=False) == []
        entries = buf.flush()
        assert len(entries) == 1
        assert entries[0].num_uops == 4
        assert entries[0].start_pc == 0x1000
        assert entries[0].end_pc == 0x1008

    def test_taken_branch_seals(self):
        buf = make_buffer()
        buf.begin(pw_id=0x1000)
        sealed = buf.push(make_uops(0x1000, 1), taken=True)
        assert len(sealed) == 1
        assert sealed[0].termination is EntryTermination.TAKEN_BRANCH
        assert not buf.accumulating

    def test_line_boundary_seals(self):
        buf = make_buffer()
        buf.begin(pw_id=0x1000)
        buf.push(make_uops(0x1038, 1, inst_length=8), taken=False)
        sealed = buf.push(make_uops(0x1040, 1), taken=False)
        assert len(sealed) == 1
        assert sealed[0].termination is EntryTermination.ICACHE_LINE_BOUNDARY
        assert sealed[0].end_pc == 0x1040

    def test_clasp_allows_two_lines(self):
        buf = AccumulationBuffer(UopCacheConfig(clasp=True))
        buf.begin(pw_id=0x1000)
        buf.push(make_uops(0x1038, 1, inst_length=8), taken=False)
        sealed = buf.push(make_uops(0x1040, 1), taken=False)
        assert sealed == []
        entries = buf.flush()
        assert entries[0].spans_icache_lines(64)

    def test_clasp_caps_at_max_lines(self):
        # 16-byte "I-cache lines" keep the sequential chain short.
        buf = AccumulationBuffer(
            UopCacheConfig(clasp=True, clasp_max_lines=2),
            icache_line_bytes=16)
        buf.begin(pw_id=0x1000)
        buf.push(make_uops(0x1008, 1, inst_length=8), taken=False)   # line 0
        assert buf.push(make_uops(0x1010, 1, inst_length=8),
                        taken=False) == []                           # line 1
        sealed = buf.push(make_uops(0x1018, 1, inst_length=8), taken=False)
        assert sealed == []                                          # line 1
        sealed = buf.push(make_uops(0x1020, 1, inst_length=8), taken=False)
        assert len(sealed) == 1                                      # line 2
        assert sealed[0].termination is EntryTermination.ICACHE_LINE_BOUNDARY

    def test_capacity_violation_seals_then_continues(self):
        buf = make_buffer()
        buf.begin(pw_id=0x1000)
        for i in range(4):
            assert buf.push(make_uops(0x1000 + 2 * i, 2, inst_length=2),
                            taken=False) == []
        sealed = buf.push(make_uops(0x1008, 2, inst_length=2), taken=False)
        assert len(sealed) == 1
        assert sealed[0].termination is EntryTermination.MAX_UOPS
        assert sealed[0].num_uops == 8
        assert buf.accumulating

    def test_flush_seals_partial_as_pw_end(self):
        buf = make_buffer()
        buf.begin(pw_id=0x1000)
        buf.push(make_uops(0x1000, 1), taken=False)
        entries = buf.flush()
        assert entries[0].termination is EntryTermination.PW_END

    def test_flush_empty_returns_nothing(self):
        buf = make_buffer()
        assert buf.flush() == []

    def test_abandon_drops_partial(self):
        buf = make_buffer()
        buf.begin(pw_id=0x1000)
        buf.push(make_uops(0x1000, 1), taken=False)
        buf.abandon()
        assert buf.flush() == []


class TestDiscontinuity:
    def test_non_sequential_push_seals_first(self):
        """A push that does not continue sequentially must seal the open
        entry — the regression behind backward-spanning entries."""
        buf = make_buffer()
        buf.begin(pw_id=0x1000)
        buf.push(make_uops(0x1030, 1, inst_length=4), taken=False)
        # Loop back into the SAME line at a lower address.
        sealed = buf.push(make_uops(0x1010, 1, inst_length=4), taken=False)
        assert len(sealed) == 1
        assert sealed[0].start_pc == 0x1030
        assert sealed[0].end_pc == 0x1034
        entries = buf.flush()
        assert entries[0].start_pc == 0x1010
        assert entries[0].end_pc > entries[0].start_pc

    def test_forward_gap_also_seals(self):
        buf = make_buffer()
        buf.begin(pw_id=0x1000)
        buf.push(make_uops(0x1000, 1, inst_length=4), taken=False)
        sealed = buf.push(make_uops(0x1020, 1, inst_length=4), taken=False)
        assert len(sealed) == 1


class TestPwIdentity:
    def test_entry_carries_pw_id_at_open(self):
        buf = make_buffer()
        buf.begin(pw_id=0xAAAA)
        buf.push(make_uops(0x1000, 1), taken=False)
        # PW changes mid-entry: the entry keeps the opening PW's id.
        buf.begin(pw_id=0xBBBB)
        buf.push(make_uops(0x1004, 1), taken=False)
        entries = buf.flush()
        assert entries[0].pw_id == 0xAAAA

    def test_new_entry_uses_latest_pw_id(self):
        buf = make_buffer()
        buf.begin(pw_id=0xAAAA)
        buf.push(make_uops(0x1000, 1), taken=True)
        buf.begin(pw_id=0xBBBB)
        buf.push(make_uops(0x2000, 1), taken=True)
        # second sealed entry must carry 0xBBBB
        # (push returns sealed entries immediately)


class TestBypass:
    def test_oversized_instruction_bypasses(self):
        cfg = UopCacheConfig()   # 8 uops max; 9-uop instruction can't fit
        buf = AccumulationBuffer(cfg)
        buf.begin(pw_id=0x1000)
        sealed = buf.push(make_uops(0x1000, 9), taken=False)
        assert sealed == []
        assert buf.bypassed_uops == 9
        assert not buf.accumulating

    def test_bypass_seals_open_entry(self):
        buf = make_buffer()
        buf.begin(pw_id=0x1000)
        buf.push(make_uops(0x1000, 2, inst_length=4), taken=False)
        sealed = buf.push(make_uops(0x1004, 9, inst_length=4), taken=False)
        assert len(sealed) == 1
        assert sealed[0].num_uops == 2

    def test_empty_push_rejected(self):
        buf = make_buffer()
        with pytest.raises(CacheError):
            buf.push((), taken=False)
