"""A5 drill, suppressed: a put_nowait the author claims is loop-adjacent."""

import asyncio
import threading


class Bridge:
    def __init__(self) -> None:
        self.queue = asyncio.Queue()
        self._thread = threading.Thread(target=self.feed)

    def feed(self) -> None:
        self.queue.put_nowait(1)  # simlint: disable=A5
