"""P1 fixture: the per-iteration build is intentional and acknowledged."""


class Simulator:
    def __init__(self):
        self.cycle = 0
        self.limit = 100

    def steps(self):
        while self.cycle < self.limit:
            kinds = ["load", "store", "branch"]  # simlint: disable=P1
            self.cycle += len(kinds)
