"""F2 fixture: fields mutated after a path that validated the object."""


def mutate_after_validate(config):
    config.validate()
    config.ways = 8


def mutate_after_branchy_validate(config, flag):
    if flag:
        config.validate()
    config.num_sets += 1
