"""D2 fixture, fixed: deterministic order via sorted(); order-insensitive
consumers (len, min, sorted) stay allowed."""


def drain(pending):
    ready = set(pending)
    order = [item for item in sorted(ready)]
    for item in sorted(ready):
        order.append(item)
    return len(ready), min(ready), order
