"""X2 fixture (fixed): members, emits, and categories agree exactly."""

import enum


class EventKind(enum.Enum):
    CACHE_HIT = "cache_hit"
    CACHE_MISS = "cache_miss"


KIND_CATEGORY = {
    EventKind.CACHE_HIT: "cache",
    EventKind.CACHE_MISS: "cache",
}
