"""X2 fixture (fixed): every emit is a declared member, all members emit."""

from events import EventKind


def publish(hub):
    hub.emit(EventKind.CACHE_HIT, 1)
    hub.emit(EventKind.CACHE_MISS, 2)
