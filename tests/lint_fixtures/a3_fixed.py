"""A3 drill (fixed): coroutines coordinate with asyncio.Lock, and any
threading.Lock critical section contains no suspension point."""

import asyncio
import threading


class Shared:
    def __init__(self) -> None:
        self.lock = asyncio.Lock()
        self.sync_lock = threading.Lock()
        self.value = 0

    async def update(self) -> None:
        async with self.lock:
            await asyncio.sleep(0)
            self.value += 1

    def bump(self) -> None:
        with self.sync_lock:
            self.value += 1

    def snapshot(self) -> int:
        return self.value
