"""X3 fixture (fixed): the config dataclasses the reads are checked
against."""

from dataclasses import dataclass
from typing import Optional


@dataclass
class CacheConfig:
    num_ways: int = 8
    line_size: int = 64

    def capacity(self):
        return self.num_ways * self.line_size


@dataclass
class SimConfig:
    cache: Optional[CacheConfig] = None
    window: int = 16
