"""X3 fixture (fixed): every config read names a declared field, property,
or method, following annotations through nested configs."""

from config import CacheConfig, SimConfig


class Pipeline:
    def __init__(self, config: SimConfig):
        self.config = config

    def ways(self):
        return self.config.cache.num_ways

    def bytes_total(self):
        return self.config.cache.capacity() * self.config.window


def line_bytes(cfg: CacheConfig):
    return cfg.line_size
