"""F4 fixture: the dead store is acknowledged with a pragma."""


def leftover_scaffolding():
    temp = expensive()  # simlint: disable=F4
    return 42


def expensive():
    return 99
