"""A4 drill, suppressed: the loop-side write acknowledges the race."""

import threading


class Monitor:
    def __init__(self) -> None:
        self.beats = 0
        self._thread = threading.Thread(target=self._heartbeat)
        self._thread.start()

    def _heartbeat(self) -> None:
        self.beats += 1

    async def reset(self) -> None:
        self.beats = 0  # simlint: disable=A4

    def snapshot(self) -> int:
        return self.beats
