"""A2 drill, suppressed: a deliberately fire-and-forgotten coroutine."""

import asyncio


async def refresh() -> None:
    await asyncio.sleep(0)


async def main() -> None:
    refresh()  # simlint: disable=A2
    await asyncio.sleep(0)
