"""F3 fixture (fixed): a default before the branch, full branch coverage,
or the documented at-least-one-iteration loop assumption."""


def default_first(flag):
    value = 0
    if flag:
        value = 1
    return value


def both_branches(flag):
    if flag:
        value = 1
    else:
        value = 2
    return value


def exception_path_with_default(loader):
    try:
        payload = loader()
    except ValueError:
        payload = None
    return payload


def assigned_in_loop(items):
    for item in items:
        last = item
    return last
