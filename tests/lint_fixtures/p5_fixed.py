"""P5 fixture, fixed: every hub call is dominated by a None guard —
inline, via an early return, or behind a truthiness check."""


class FastPath:
    def __init__(self, telemetry=None):
        self.telemetry = telemetry
        self.served = 0

    def run(self):
        while self.served < 100:
            if self.telemetry is not None:
                self.telemetry.emit("serve", self.served)
            self._account()

    def _account(self):
        self.served += 1
        if self.telemetry is None:
            return
        self.telemetry.emit("account", self.served)
