"""F2 fixture: the mutation is acknowledged with a pragma."""


def mutate_after_validate(config):
    config.validate()
    config.ways = 8  # simlint: disable=F2
