"""D1 fixture, fixed: every draw comes from a seeded instance."""

import random

import numpy as np

RNG = random.Random(1234)


def jitter(rng: random.Random) -> float:
    return rng.random()


def make_generator(seed: int):
    return np.random.default_rng(seed)
