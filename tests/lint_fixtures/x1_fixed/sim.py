"""X1 fixture (fixed): every counter is read, surfaces agree."""


class SimCounters:
    def __init__(self):
        self._hits = 0
        self._misses = 0

    def record(self, hit):
        if hit:
            self._hits += 1
        else:
            self._misses += 1

    def supply_counters(self):
        return {
            "hits": self._hits,
            "misses": self._misses,
        }
