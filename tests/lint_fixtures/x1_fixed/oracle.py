"""X1 fixture peer (fixed): covers every key the simulator exposes."""


class OracleCounters:
    def supply_counters(self):
        return {"hits": 0, "misses": 0}
