"""P1 fixture: loop-invariant allocations built on every hot iteration."""


class Simulator:
    def __init__(self):
        self.cycle = 0
        self.limit = 100

    def steps(self):
        while self.cycle < self.limit:
            kinds = ["load", "store", "branch"]
            table = {kind: 0 for kind in ("load", "store", "branch")}
            self.cycle += len(table) + len(kinds)
