"""C2 fixture: validated dataclass field mutated after __post_init__."""

from dataclasses import dataclass


@dataclass
class Knobs:
    width: int = 1

    def __post_init__(self) -> None:
        if self.width < 1:
            raise ValueError("width must be >= 1")

    def widen(self) -> None:
        self.width += 1

    def reset(self) -> None:
        object.__setattr__(self, "width", 0)
