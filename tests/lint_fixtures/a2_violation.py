"""A2 drill: coroutines created but never awaited or scheduled."""

import asyncio


async def refresh() -> None:
    await asyncio.sleep(0)


async def main() -> None:
    refresh()                 # discarded outright: the body never runs
    pending = refresh()       # bound, then forgotten
    await asyncio.sleep(0)
