"""X2 fixture: a declared-but-never-emitted member with a category gap."""

import enum


class EventKind(enum.Enum):
    CACHE_HIT = "cache_hit"
    CACHE_MISS = "cache_miss"
    UNUSED = "unused"


KIND_CATEGORY = {
    EventKind.CACHE_HIT: "cache",
    EventKind.CACHE_MISS: "cache",
}
