"""X2 fixture: one emit names a member the taxonomy never declared."""

from events import EventKind


def publish(hub):
    hub.emit(EventKind.CACHE_HIT, 1)
    hub.emit(EventKind.CACHE_MISS, 2)
    hub.emit(EventKind.BOGUS, 3)
