"""P3 fixture: linear membership scans inside the hot loop."""

STOP_KINDS = ["serialize", "fence"]


class Simulator:
    def __init__(self):
        self.cycle = 0
        self.limit = 100
        self.kind = "load"

    def steps(self):
        kind = self.kind
        while self.cycle < self.limit:
            if kind in ("load", "store", "branch"):
                self.cycle += 1
            if kind in STOP_KINDS:
                break
