"""P1 fixture, fixed: invariant allocations hoisted; per-iteration data
that genuinely depends on the loop stays inline and is not flagged."""


class Simulator:
    def __init__(self):
        self.cycle = 0
        self.limit = 100

    def steps(self):
        kinds = ["load", "store", "branch"]
        table = {kind: 0 for kind in kinds}
        while self.cycle < self.limit:
            row = [self.cycle, len(table)]  # depends on the loop: fine
            self.cycle += len(row) + len(kinds)


def cold_helper():
    """Not reachable from Simulator.steps, so its loop is not hot."""
    total = 0
    for i in range(8):
        scratch = [1, 2, 3]
        total += len(scratch) + i
    return total
