"""Call-graph fixture: methods, closures, aliased imports, self dispatch."""

from util import jitter, slow_write as persist


class Sink:
    def emit(self, text: str) -> None:
        persist(text)


class Engine:
    def __init__(self, sink: Sink) -> None:
        self.sink = sink
        self.ticks = 0

    def run(self) -> None:
        def flush() -> None:
            self.sink.emit("tick")

        self.ticks += 1
        flush()

    def pace(self) -> None:
        jitter()

    def ping(self) -> None:
        self.tock()

    def tock(self) -> None:
        self.ticks += 1


def ping_all(engine: Engine) -> None:
    engine.ping()
