"""Call-graph fixture: stdlib effects behind module and member aliases."""

import time as clock


def slow_write(text: str) -> None:
    with open("journal.log", "a", encoding="utf-8") as handle:
        handle.write(text)


def jitter() -> None:
    clock.sleep(0.01)


def entropy() -> float:
    import random
    return random.random()
