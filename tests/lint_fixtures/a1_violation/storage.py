"""A1 drill, blocking side: a store whose fetch reads disk."""

from pathlib import Path


class Store:
    def __init__(self, root: Path) -> None:
        self.root = root

    def fetch(self, key: str) -> bytes:
        return (self.root / key).read_bytes()
