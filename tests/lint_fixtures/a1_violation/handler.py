"""A1 drill, async side: handlers that reach blocking calls.

``handle`` blocks *transitively* (through Store.fetch, defined in a
different module — only the call graph can see it); ``throttle`` blocks
*directly* via time.sleep.
"""

import time

from storage import Store


class Handler:
    def __init__(self, store: Store) -> None:
        self.store = store

    async def handle(self, key: str) -> bytes:
        return self.store.fetch(key)

    async def throttle(self) -> None:
        time.sleep(0.5)
