"""X3 fixture: reads of fields the config dataclasses never declared."""

from config import CacheConfig, SimConfig


class Pipeline:
    def __init__(self, config: SimConfig):
        self.config = config

    def sets(self):
        return self.config.cache.num_sets


def associativity(cfg: CacheConfig):
    return cfg.assoc
