"""P3 fixture, fixed: membership goes through sets built once."""

STOP_KINDS = frozenset(("serialize", "fence"))
FAST_KINDS = frozenset(("load", "store", "branch"))


class Simulator:
    def __init__(self):
        self.cycle = 0
        self.limit = 100
        self.kind = "load"

    def steps(self):
        kind = self.kind
        while self.cycle < self.limit:
            if kind in FAST_KINDS:
                self.cycle += 1
            if kind in STOP_KINDS:
                break
