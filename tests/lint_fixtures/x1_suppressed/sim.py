"""X1 fixture: both contract violations acknowledged with pragmas."""


class SimCounters:
    def __init__(self):
        self._hits = 0
        self._phantom = 0

    def record_hit(self):
        self._hits += 1
        self._phantom += 1  # simlint: disable=X1

    def supply_counters(self):
        return {
            "hits": self._hits,
            "misses": 0,  # simlint: disable=X1
        }
