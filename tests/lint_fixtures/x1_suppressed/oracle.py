"""X1 fixture peer: surface intentionally narrower (see sim.py pragmas)."""


class OracleCounters:
    def supply_counters(self):
        return {"hits": 0}
