"""P2 fixture, fixed: invariant loads hoisted to locals; loads that a
loop-body store or an owner method call can rebind stay inline."""

WINDOW = 16


class Core:
    def __init__(self):
        self.ports = 4

    def rebalance(self):
        self.ports += 1


class Simulator:
    def __init__(self):
        self.cycle = 0
        self.limit = 100
        self.core = Core()

    def steps(self):
        limit = self.limit
        window = WINDOW
        width = self.core.ports
        while self.cycle < limit:
            self.core.rebalance()
            live = self.core.ports  # rebalance() mutates core: not invariant
            self.cycle += width + window + live
