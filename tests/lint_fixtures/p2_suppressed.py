"""P2 fixture: the re-resolved load is intentional and acknowledged."""

WINDOW = 16


class Simulator:
    def __init__(self):
        self.cycle = 0
        self.limit = 100

    def steps(self):
        while self.cycle < self.limit:
            # simlint: disable-next-line=P2
            self.cycle += WINDOW + WINDOW
