"""P3 fixture: the two-element scan is intentional and acknowledged."""


class Simulator:
    def __init__(self):
        self.cycle = 0
        self.limit = 100
        self.kind = "load"

    def steps(self):
        while self.cycle < self.limit:
            if self.kind in ("load", "store"):  # simlint: disable=P3
                self.cycle += 1
