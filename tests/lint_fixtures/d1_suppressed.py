"""D1 fixture: the same draws, explicitly acknowledged."""

import random

import numpy as np


def jitter() -> float:
    return random.random() + np.random.rand()  # simlint: disable=D1


def make_generator():
    return np.random.default_rng()  # simlint: disable=D1
