"""X2 fixture: the reserved member is waived on its declaration line."""

import enum


class EventKind(enum.Enum):
    CACHE_HIT = "cache_hit"
    CACHE_MISS = "cache_miss"
    UNUSED = "unused"  # simlint: disable=X2


KIND_CATEGORY = {
    EventKind.CACHE_HIT: "cache",
    EventKind.CACHE_MISS: "cache",
}
