"""X2 fixture: the off-taxonomy emit is acknowledged with a pragma."""

from events import EventKind


def publish(hub):
    hub.emit(EventKind.CACHE_HIT, 1)
    hub.emit(EventKind.CACHE_MISS, 2)
    hub.emit(EventKind.BOGUS, 3)  # simlint: disable=X2
