"""A3 drill, suppressed."""

import asyncio
import threading


async def brief_hold() -> None:
    guard = threading.Lock()
    with guard:  # simlint: disable=A3
        await asyncio.sleep(0)
