"""D3 fixture: a wall-clock read acknowledged (log decoration only)."""

import time


def log_prefix() -> float:
    return time.time()  # simlint: disable=D3
