"""C5 fixture: float accumulation over unordered iterables (2 violations)."""


def total_power(samples):
    readings = set(samples)
    direct = sum(readings)
    scaled = sum(reading * 2.0 for reading in readings)
    return direct + scaled
