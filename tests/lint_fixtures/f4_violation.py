"""F4 fixture: stores no read can ever observe."""


def leftover_scaffolding():
    temp = expensive()
    return 42


def overwritten_before_read():
    total = 0
    total = expensive()
    return total


def expensive():
    return 99
