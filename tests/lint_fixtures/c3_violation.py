"""C3 fixture: mutable default arguments (3 violations)."""

from collections import defaultdict


def run(jobs=[], options={}):
    return jobs, options


def tally(counts=defaultdict(int)):
    return counts
