"""F1 fixture: draws reached by an unseeded RNG construction."""

import random


def draw_unseeded():
    rng = random.Random()
    return rng.random()


def draw_on_one_path(flag, seed):
    rng = random.Random()
    if flag:
        rng.seed(seed)
    return rng.randint(0, 10)
