"""F3 fixture: the possibly-unassigned use is acknowledged with a pragma."""


def branch_only(flag):
    if flag:
        value = 1
    return value  # simlint: disable=F3
