"""C5 fixture: an integer-only set sum, acknowledged as order-safe."""


def total_hits(ids):
    hits = set(ids)
    return sum(hits)  # simlint: disable=C5
