"""P4 fixture, fixed: the invariant lookup is hoisted; loop-varying keys
and written-through subscripts stay inline."""


class Simulator:
    def __init__(self):
        self.cycle = 0
        self.limit = 100
        self.stats = {"cycles": 0, "uops": 0}
        self.rows = [0] * 8

    def steps(self):
        counters = self.stats
        rows = self.rows
        cycles_seen = counters["cycles"]
        while self.cycle < self.limit:
            if cycles_seen < 10:
                self.cycle += cycles_seen + 1
            index = self.cycle % 8
            rows[index] += rows[index] and 1  # key varies per trip
            counters["uops"] = counters["uops"] + 1  # written through: inline
