"""F1 fixture: violations silenced by line and next-line pragmas."""

import random


def draw_unseeded():
    rng = random.Random()
    return rng.random()  # simlint: disable=F1


def draw_next_line():
    rng = random.Random()
    # simlint: disable-next-line=F1
    return rng.random()
