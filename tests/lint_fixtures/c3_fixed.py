"""C3 fixture, fixed: None defaults, containers created per call."""

from typing import Dict, List, Optional


def run(jobs: Optional[List[str]] = None,
        options: Optional[Dict[str, str]] = None):
    return list(jobs or []), dict(options or {})
