"""F3 fixture: locals that are unassigned on at least one path."""


def branch_only(flag):
    if flag:
        value = 1
    return value


def exception_path(loader):
    try:
        payload = loader()
    except ValueError:
        pass
    return payload
