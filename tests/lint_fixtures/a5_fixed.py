"""A5 drill (fixed): the thread side uses a thread-safe queue.Queue; the
event loop drains it — asyncio primitives never leave the loop."""

import asyncio
import queue
import threading


class Bridge:
    def __init__(self) -> None:
        self.queue = queue.Queue()
        self._thread = threading.Thread(target=self.feed)

    def feed(self) -> None:
        self.queue.put_nowait(1)

    async def drain(self) -> None:
        while True:
            item = self.queue.get_nowait()
            if item is None:
                break
            await asyncio.sleep(0)
