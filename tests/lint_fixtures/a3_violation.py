"""A3 drill: awaiting while a threading.Lock is held."""

import asyncio
import threading


class Shared:
    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.value = 0

    async def update(self) -> None:
        with self.lock:
            await asyncio.sleep(0)
            self.value += 1

    def snapshot(self) -> int:
        return self.value


async def local_variant() -> None:
    guard = threading.Lock()
    with guard:
        await asyncio.sleep(0)
