"""P5 fixture: telemetry hub calls reachable from the fast serve loop
without a dominating None guard — one direct, one through a helper."""


class FastPath:
    def __init__(self, telemetry=None):
        self.telemetry = telemetry
        self.served = 0

    def run(self):
        while self.served < 100:
            self.telemetry.emit("serve", self.served)
            self._account()

    def _account(self):
        self.served += 1
        self.telemetry.emit("account", self.served)
