"""P5 fixture: the unguarded call is intentional (hub injected non-None
by construction) and acknowledged."""


class FastPath:
    def __init__(self, telemetry):
        self.telemetry = telemetry
        self.served = 0

    def run(self):
        while self.served < 100:
            self.telemetry.emit("serve", self.served)  # simlint: disable=P5
            self.served += 1
