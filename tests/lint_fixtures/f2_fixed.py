"""F2 fixture (fixed): reads after validation, mutation before it, or a
fresh object."""


def read_after_validate(config):
    config.validate()
    return config.ways


def mutate_then_validate(config):
    config.ways = 8
    config.validate()
    return config


def rebuild_after_validate(config, make):
    config.validate()
    config = make()
    config.ways = 8
    return config
