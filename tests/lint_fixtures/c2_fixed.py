"""C2 fixture, fixed: derive a fresh, re-validated instance instead."""

import dataclasses
from dataclasses import dataclass


@dataclass
class Knobs:
    width: int = 1

    def __post_init__(self) -> None:
        if self.width < 1:
            raise ValueError("width must be >= 1")

    def widened(self) -> "Knobs":
        return dataclasses.replace(self, width=self.width + 1)
