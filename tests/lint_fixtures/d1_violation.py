"""D1 fixture: module-level RNG draws (3 violations)."""

import random

import numpy as np


def jitter() -> float:
    return random.random() + np.random.rand()


def make_generator():
    return np.random.default_rng()
