"""C1 fixture: a collector with a typo'd counter store."""

from .metrics import SimulationResult


def collect(result: SimulationResult) -> SimulationResult:
    result.cycles = 10
    result.cycels_total = 3
    return result
