"""C1 fixture: a result class with a counter nothing ever increments."""

from dataclasses import dataclass


@dataclass
class SimulationResult:
    workload: str = ""
    cycles: int = 0
    dead_counter: int = 0
