"""D3 fixture, fixed: monotonic clocks for timeouts, cycles for sim time."""

import time


def elapsed(start: float) -> float:
    return time.monotonic() - start


def sim_timestamp(cycle: int, frequency_ghz: float) -> float:
    return cycle / (frequency_ghz * 1e9)
