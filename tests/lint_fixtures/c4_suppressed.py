"""C4 fixture: a deliberately-ignored broad handler, acknowledged."""


def best_effort_cleanup(step):
    try:
        step()
    except Exception:  # simlint: disable=C4
        pass
