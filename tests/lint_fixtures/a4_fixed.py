"""A4 drill (fixed): both writers take the same threading.Lock."""

import threading


class Monitor:
    def __init__(self) -> None:
        self.beats = 0
        self._lock = threading.Lock()
        self._thread = threading.Thread(target=self._heartbeat)
        self._thread.start()

    def _heartbeat(self) -> None:
        with self._lock:
            self.beats += 1

    async def reset(self) -> None:
        with self._lock:
            self.beats = 0

    def snapshot(self) -> int:
        return self.beats
