"""C3 fixture: a shared mutable default acknowledged (module-level cache)."""


def memoized(cache={}):  # simlint: disable=C3
    return cache
