"""F1 fixture (fixed): every path seeds the RNG before the first draw."""

import random


def draw_seeded(seed):
    rng = random.Random(seed)
    return rng.random()


def seed_before_draw(seed):
    rng = random.Random()
    rng.seed(seed)
    return rng.random()


def seeded_on_every_path(flag, seed):
    rng = random.Random()
    if flag:
        rng.seed(seed)
    else:
        rng.seed(seed + 1)
    return rng.random()
