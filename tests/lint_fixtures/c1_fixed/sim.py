"""C1 fixture, fixed: the collector writes only declared counters."""

from .metrics import SimulationResult


def collect(result: SimulationResult) -> SimulationResult:
    result.cycles = 10
    return result
