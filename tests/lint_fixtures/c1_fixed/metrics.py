"""C1 fixture, fixed: every registered counter has a writer."""

from dataclasses import dataclass


@dataclass
class SimulationResult:
    workload: str = ""
    cycles: int = 0
