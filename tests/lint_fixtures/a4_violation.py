"""A4 drill: one attribute, written from the event loop and from a
heartbeat thread, with no common lock."""

import threading


class Monitor:
    def __init__(self) -> None:
        self.beats = 0
        self._thread = threading.Thread(target=self._heartbeat)
        self._thread.start()

    def _heartbeat(self) -> None:
        self.beats += 1

    async def reset(self) -> None:
        self.beats = 0

    def snapshot(self) -> int:
        return self.beats
