"""P2 fixture: loop-invariant attribute and global loads re-resolved per
iteration."""

WINDOW = 16


class Core:
    def __init__(self):
        self.ports = 4


class Simulator:
    def __init__(self):
        self.cycle = 0
        self.limit = 100
        self.core = Core()

    def steps(self):
        while self.cycle < self.limit:
            width = self.core.ports  # depth-2 chain, never reassigned
            spare = self.core.ports - 1
            self.cycle += width + spare + WINDOW + WINDOW
