"""C2 fixture: a post-validation mutation acknowledged."""

from dataclasses import dataclass


@dataclass
class Knobs:
    width: int = 1

    def __post_init__(self) -> None:
        if self.width < 1:
            raise ValueError("width must be >= 1")

    def widen(self) -> None:
        self.width += 1  # simlint: disable=C2
