"""P4 fixture: the same invariant subscript resolved twice per iteration."""


class Simulator:
    def __init__(self):
        self.cycle = 0
        self.limit = 100
        self.stats = {"cycles": 0, "uops": 0}

    def steps(self):
        counters = self.stats
        while self.cycle < self.limit:
            if counters["cycles"] < 10:
                total = counters["cycles"] + 1
                self.cycle += total
