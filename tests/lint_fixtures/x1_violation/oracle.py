"""X1 fixture peer: its surface is missing the simulator's "misses" key."""


class OracleCounters:
    def supply_counters(self):
        return {"hits": 0}
