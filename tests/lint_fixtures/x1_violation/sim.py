"""X1 fixture: a write-only counter and a surface key the peer lacks."""


class SimCounters:
    def __init__(self):
        self._hits = 0
        self._phantom = 0

    def record_hit(self):
        self._hits += 1
        self._phantom += 1

    def supply_counters(self):
        return {
            "hits": self._hits,
            "misses": 0,
        }
