"""C1 fixture: the dead counter acknowledged (reserved for a future PR)."""

from dataclasses import dataclass


@dataclass
class SimulationResult:
    workload: str = ""
    cycles: int = 0
    dead_counter: int = 0  # simlint: disable=C1
