"""C1 fixture: the dynamic-attribute store acknowledged."""

from .metrics import SimulationResult


def collect(result: SimulationResult) -> SimulationResult:
    result.cycles = 10
    result.cycels_total = 3  # simlint: disable=C1
    return result
