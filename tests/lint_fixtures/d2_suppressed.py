"""D2 fixture: set iteration, acknowledged (order provably irrelevant)."""


def drain(pending):
    ready = set(pending)
    total = 0
    for item in ready:  # simlint: disable=D2
        total += item
    return total
