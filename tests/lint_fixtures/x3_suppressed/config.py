"""X3 fixture: the config dataclass the suppressed read targets."""

from dataclasses import dataclass


@dataclass
class CacheConfig:
    num_ways: int = 8
    line_size: int = 64
