"""X3 fixture: the phantom-field read is acknowledged with a pragma."""

from config import CacheConfig


def associativity(cfg: CacheConfig):
    return cfg.assoc  # simlint: disable=X3
