"""C4 fixture, fixed: narrow handlers that handle, log, or re-raise."""


class SimulationError(Exception):
    pass


def guarded(step, log):
    try:
        step()
    except ValueError:
        return None
    except SimulationError as error:
        log(f"invariant violation: {error}")
        raise
