"""A1 drill (fixed): blocking work is off-loaded, the loop never stalls."""

import asyncio

from storage import Store


class Handler:
    def __init__(self, store: Store) -> None:
        self.store = store

    async def handle(self, key: str) -> bytes:
        loop = asyncio.get_running_loop()
        return await loop.run_in_executor(None, self.store.fetch, key)

    async def throttle(self) -> None:
        await asyncio.sleep(0.5)
