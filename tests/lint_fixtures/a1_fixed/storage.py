"""A1 drill (fixed), blocking side: unchanged — the fix is in the caller."""

from pathlib import Path


class Store:
    def __init__(self, root: Path) -> None:
        self.root = root

    def fetch(self, key: str) -> bytes:
        return (self.root / key).read_bytes()
