"""A2 drill (fixed): every coroutine is awaited, scheduled, or returned."""

import asyncio


async def refresh() -> None:
    await asyncio.sleep(0)


async def main() -> None:
    await refresh()
    task = asyncio.create_task(refresh())
    await asyncio.gather(refresh(), task)
    held = refresh()
    await held


def entry() -> None:
    asyncio.run(main())
