"""F4 fixture (fixed): the store is read, deliberately discarded, or
captured by a closure."""


def read_later():
    temp = expensive()
    return temp


def branch_dependent(flag):
    value = 0
    if flag:
        value = expensive()
    return value


def underscore_discard():
    _unused = expensive()
    return 42


def closure_capture():
    captured = expensive()

    def inner():
        return captured
    return inner


def expensive():
    return 99
