"""D2 fixture: hash-ordered set iteration (3 violations)."""


def drain(pending):
    ready = set(pending)
    order = [item for item in ready]
    for item in ready:
        order.append(item)
    return list(ready), order
