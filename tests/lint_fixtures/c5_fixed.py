"""C5 fixture, fixed: accumulate in a deterministic order."""


def total_power(samples):
    readings = set(samples)
    direct = sum(sorted(readings))
    scaled = sum(reading * 2.0 for reading in sorted(readings))
    return direct + scaled
