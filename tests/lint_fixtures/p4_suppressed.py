"""P4 fixture: repeated lookup kept for readability, acknowledged."""


class Simulator:
    def __init__(self):
        self.cycle = 0
        self.limit = 100
        self.stats = {"cycles": 0}

    def steps(self):
        counters = self.stats
        while self.cycle < self.limit:
            # simlint: disable-next-line=P4
            self.cycle += counters["cycles"] + counters["cycles"]
