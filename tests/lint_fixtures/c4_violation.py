"""C4 fixture: bare except and a swallowed simulation error."""


class SimulationError(Exception):
    pass


def guarded(step):
    try:
        step()
    except:
        return None


def swallow(step):
    try:
        step()
    except SimulationError:
        pass
