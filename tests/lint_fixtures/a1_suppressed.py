"""A1 drill, suppressed: the pragma acknowledges a known-blocking call."""

import time


async def startup_probe() -> None:
    time.sleep(0.01)  # simlint: disable=A1
