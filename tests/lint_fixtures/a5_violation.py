"""A5 drill: asyncio primitives touched from thread-reachable sync code."""

import asyncio
import threading


class Bridge:
    def __init__(self) -> None:
        self.queue = asyncio.Queue()
        self.ready = asyncio.Event()
        self._thread = threading.Thread(target=self.feed)

    def feed(self) -> None:
        self.queue.put_nowait(1)

    def poke(self) -> None:
        self.ready.set()

    async def kick(self) -> None:
        loop = asyncio.get_running_loop()
        await loop.run_in_executor(None, self.poke)
