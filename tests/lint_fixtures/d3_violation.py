"""D3 fixture: wall-clock and OS-entropy reads (3 violations)."""

import os
import time
from datetime import datetime


def stamp():
    return time.time(), datetime.now(), os.urandom(8)
