"""Tests for simlint's interprocedural layer: the project call graph, the
bottom-up effect fixpoint, and the async/thread-safety rules A1-A5.

Covers the resolution forms the call graph promises (methods via annotated
receivers, ``self.`` dispatch, closures, aliased imports), fixpoint
termination on mutual recursion, edge-kind-aware propagation (an
executor-wrapped call must NOT make its async caller blocking — that is
the sanctioned fix), the A-rule fixture drills with their call-chain
traces, and the full-repo lint performance guard.
"""

import time
from pathlib import Path

import pytest

from repro.lint import LintEngine, all_rules
from repro.lint.asyncrules import build_async_analysis
from repro.lint.callgraph import (
    BLOCKING,
    NONDET,
    SPAWNS_THREAD,
    build_call_graph,
)
from repro.lint.effects import analyze_effects

FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"
REPO_ROOT = Path(__file__).resolve().parents[1]


def run_fixture(*names, ignore_scope=True, root=FIXTURES):
    engine = LintEngine(root=root, rules=all_rules(),
                        ignore_scope=ignore_scope)
    return engine.run([FIXTURES / name for name in names])


def a_rules_of(report):
    return [f.rule for f in report.findings if f.rule.startswith("A")]


def load_graph(*paths, root=FIXTURES):
    engine = LintEngine(root=root)
    modules, failures = engine.load_modules([FIXTURES / p for p in paths])
    assert not failures
    return build_call_graph(modules), modules


# ---------------------------------------------------------------- call graph

class TestCallGraphResolution:
    @pytest.fixture(scope="class")
    def graph(self):
        graph, _modules = load_graph("callgraph_pkg")
        return graph

    def edges(self, graph, fid):
        return {callee for callee, _kind in graph.successors(fid)}

    def test_aliased_member_import_resolves(self, graph):
        # ``from util import slow_write as persist`` + ``persist(...)``
        assert "callgraph_pkg/util.py::slow_write" in \
            self.edges(graph, "callgraph_pkg/engine.py::Sink.emit")

    def test_module_alias_canonical_sink(self, graph):
        # ``import time as clock`` + ``clock.sleep`` is a blocking sink.
        facts = graph.facts["callgraph_pkg/util.py::jitter"]
        assert any((BLOCKING, "time.sleep") in site.sinks
                   for site in facts.sites)

    def test_closure_edge(self, graph):
        run = "callgraph_pkg/engine.py::Engine.run"
        flush = "callgraph_pkg/engine.py::Engine.run.flush"
        assert flush in self.edges(graph, run)

    def test_typed_attribute_method_dispatch(self, graph):
        # flush calls ``self.sink.emit`` through the annotated Sink field.
        flush = "callgraph_pkg/engine.py::Engine.run.flush"
        assert "callgraph_pkg/engine.py::Sink.emit" in \
            self.edges(graph, flush)

    def test_self_dispatch(self, graph):
        assert "callgraph_pkg/engine.py::Engine.tock" in \
            self.edges(graph, "callgraph_pkg/engine.py::Engine.ping")

    def test_annotated_parameter_dispatch(self, graph):
        # ``def ping_all(engine: Engine)`` resolves ``engine.ping()``.
        assert "callgraph_pkg/engine.py::Engine.ping" in \
            self.edges(graph, "callgraph_pkg/engine.py::ping_all")


class TestEffectFixpoint:
    @pytest.fixture(scope="class")
    def analysis(self):
        graph, _ = load_graph("callgraph_pkg")
        return analyze_effects(graph)

    def test_direct_blocking_sink(self, analysis):
        assert analysis.has("callgraph_pkg/util.py::slow_write", BLOCKING)
        assert analysis.sink("callgraph_pkg/util.py::slow_write",
                             BLOCKING) == "open"

    def test_transitive_blocking_through_closure_and_alias(self, analysis):
        # Engine.run -> flush -> Sink.emit -> slow_write -> open
        run = "callgraph_pkg/engine.py::Engine.run"
        assert analysis.has(run, BLOCKING)
        chain = analysis.chain(run, BLOCKING)
        assert chain[-1].endswith("-> open")
        assert any("slow_write" in step for step in chain)

    def test_nondet_effect(self, analysis):
        assert analysis.has("callgraph_pkg/util.py::entropy", NONDET)

    def test_unaffected_function_is_clean(self, analysis):
        tock = "callgraph_pkg/engine.py::Engine.tock"
        assert not analysis.has(tock, BLOCKING)
        assert not analysis.has(tock, NONDET)

    def test_executor_wrap_does_not_propagate_blocking(self):
        # a1_fixed wraps Store.fetch in run_in_executor: the async caller
        # must NOT inherit the blocking effect (that is the sanctioned fix),
        # but it does spawn onto the pool.
        graph, _ = load_graph("a1_fixed")
        analysis = analyze_effects(graph)
        handle = "a1_fixed/handler.py::Handler.handle"
        assert analysis.has("a1_fixed/storage.py::Store.fetch", BLOCKING)
        assert not analysis.has(handle, BLOCKING)
        assert analysis.has(handle, SPAWNS_THREAD)


class TestSccFixpointTermination:
    def _module_graph(self, tmp_path, source):
        target = tmp_path / "recursive.py"
        target.write_text(source)
        engine = LintEngine(root=tmp_path)
        modules, failures = engine.load_modules([target])
        assert not failures
        return build_call_graph(modules)

    def test_mutual_recursion_terminates_and_propagates(self, tmp_path):
        graph = self._module_graph(tmp_path, (
            "import time\n"
            "def ping(n):\n"
            "    if n:\n"
            "        pong(n - 1)\n"
            "def pong(n):\n"
            "    time.sleep(0)\n"
            "    ping(n)\n"))
        analysis = analyze_effects(graph)
        assert analysis.has("recursive.py::ping", BLOCKING)
        assert analysis.has("recursive.py::pong", BLOCKING)
        # The chain must terminate despite the cycle and name the sink.
        for fid in ("recursive.py::ping", "recursive.py::pong"):
            chain = analysis.chain(fid, BLOCKING)
            assert 0 < len(chain) <= 3
            assert chain[-1].endswith("-> time.sleep")

    def test_three_cycle_with_self_loop_terminates(self, tmp_path):
        graph = self._module_graph(tmp_path, (
            "import random\n"
            "def a(n):\n"
            "    b(n)\n"
            "    a(n)\n"
            "def b(n):\n"
            "    c(n)\n"
            "def c(n):\n"
            "    a(n)\n"
            "    return random.random()\n"))
        analysis = analyze_effects(graph)
        for name in ("a", "b", "c"):
            assert analysis.has(f"recursive.py::{name}", NONDET)


# -------------------------------------------------------------- rule drills

class TestA1BlockingOnEventLoop:
    def test_violation(self):
        report = run_fixture("a1_violation")
        assert a_rules_of(report) == ["A1", "A1"]
        transitive = next(f for f in report.findings
                          if "fetch" in f.message)
        # The chain names every hop down to the concrete sink.
        assert transitive.chain[0].startswith("Handler.handle")
        assert transitive.chain[-1].endswith(
            "-> pathlib.Path.read_bytes")
        direct = next(f for f in report.findings
                      if "time.sleep" in f.message)
        assert direct.chain[-1].endswith("-> time.sleep")

    def test_fixed(self):
        report = run_fixture("a1_fixed")
        assert a_rules_of(report) == []

    def test_suppressed(self):
        report = run_fixture("a1_suppressed.py")
        assert a_rules_of(report) == []
        assert report.suppressed >= 1


class TestA2CoroutineNeverAwaited:
    def test_violation(self):
        report = run_fixture("a2_violation.py")
        assert a_rules_of(report) == ["A2", "A2"]
        messages = " | ".join(f.message for f in report.findings)
        assert "discards it" in messages or "never awaited" in messages
        assert "pending" in messages

    def test_fixed(self):
        report = run_fixture("a2_fixed.py")
        assert a_rules_of(report) == []

    def test_suppressed(self):
        report = run_fixture("a2_suppressed.py")
        assert a_rules_of(report) == []
        assert report.suppressed >= 1


class TestA3AwaitUnderThreadingLock:
    def test_violation(self):
        report = run_fixture("a3_violation.py")
        assert a_rules_of(report) == ["A3", "A3"]
        for finding in report.findings:
            if finding.rule == "A3":
                assert "threading lock" in finding.message

    def test_fixed(self):
        report = run_fixture("a3_fixed.py")
        assert a_rules_of(report) == []

    def test_suppressed(self):
        report = run_fixture("a3_suppressed.py")
        assert a_rules_of(report) == []
        assert report.suppressed >= 1


class TestA4CrossThreadWrite:
    def test_violation(self):
        report = run_fixture("a4_violation.py")
        assert a_rules_of(report) == ["A4"]
        finding = next(f for f in report.findings if f.rule == "A4")
        assert "Monitor.beats" in finding.message
        # The chain shows both writers and the spawn evidence.
        assert any("event loop" in step for step in finding.chain)
        assert any("worker thread" in step for step in finding.chain)
        assert any("spawns" in step for step in finding.chain)

    def test_fixed(self):
        report = run_fixture("a4_fixed.py")
        assert a_rules_of(report) == []

    def test_suppressed(self):
        report = run_fixture("a4_suppressed.py")
        assert a_rules_of(report) == []
        assert report.suppressed >= 1


class TestA5AsyncioPrimitiveOffLoop:
    def test_violation(self):
        report = run_fixture("a5_violation.py")
        assert a_rules_of(report) == ["A5", "A5"]
        messages = " | ".join(f.message for f in report.findings)
        assert "asyncio.Queue" in messages      # Thread(target=...) escape
        assert "asyncio.Event" in messages      # run_in_executor escape

    def test_fixed(self):
        report = run_fixture("a5_fixed.py")
        assert a_rules_of(report) == []

    def test_suppressed(self):
        report = run_fixture("a5_suppressed.py")
        assert a_rules_of(report) == []
        assert report.suppressed >= 1


# ------------------------------------------------------------- reachability

class TestAsyncAnalysisReachability:
    def test_loop_and_thread_sides(self):
        engine = LintEngine(root=FIXTURES)
        modules, failures = engine.load_modules(
            [FIXTURES / "a5_violation.py"])
        assert not failures
        analysis = build_async_analysis(modules)
        assert "a5_violation.py::Bridge.kick" in analysis.loop_side
        assert "a5_violation.py::Bridge.feed" in analysis.thread_side
        assert "a5_violation.py::Bridge.poke" in analysis.thread_side
        assert "a5_violation.py::Bridge.feed" not in analysis.loop_side


# ---------------------------------------------------------------- perf guard

class TestLintPerformance:
    def test_full_repo_self_lint_under_30s(self):
        """The whole-program analysis must stay interactive: one full
        ``src`` lint with every rule (call graph + effect fixpoint
        included) in well under the CI budget."""
        engine = LintEngine(root=REPO_ROOT, rules=all_rules())
        started = time.monotonic()
        report = engine.run([REPO_ROOT / "src"])
        elapsed = time.monotonic() - started
        assert elapsed < 30.0, f"self-lint took {elapsed:.1f}s"
        assert report.files_checked > 50
