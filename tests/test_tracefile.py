"""Property tests for the packed ``.uoptrace`` format.

Three guarantees, hypothesis-checked:

- pack -> unpack round-trips bit-identically (same records, same program,
  and re-packing the unpacked trace reproduces the original bytes);
- a damaged file — truncated anywhere, or any single bit flipped — raises
  a descriptive :class:`WorkloadError`, never unpacks silently;
- replaying a packed trace produces a :class:`SimulationResult` identical
  to simulating the originating trace directly.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.common.errors import WorkloadError
from repro.core.experiment import policy_config
from repro.core.simulator import Simulator
from repro.workloads.engine import create_engine
from repro.workloads.tracefile import (
    FORMAT_VERSION,
    MAGIC,
    pack_bytes,
    pack_trace,
    trace_info,
    unpack_bytes,
    unpack_trace,
)

#: A small but structurally rich trace (branches, calls, memory refs).
_TRACE = create_engine("synthetic").build_trace(300, seed=7)
_PACKED = pack_bytes(_TRACE, provenance={"engine": "synthetic", "seed": 7})

_PROPERTY_SETTINGS = settings(
    max_examples=40, deadline=None,
    suppress_health_check=[HealthCheck.too_slow])


# ------------------------------------------------------------- round trips

@pytest.mark.parametrize("engine", ["synthetic", "oscillating",
                                    "adv-fragment", "adv-smc",
                                    "adv-pwconflict"])
def test_round_trip_preserves_every_record(engine):
    trace = create_engine(engine).build_trace(250, seed=3)
    unpacked = unpack_bytes(pack_bytes(trace))
    assert unpacked.name == trace.name
    assert unpacked.records == trace.records
    for record in trace.records:
        assert unpacked.program.at(record.pc) == trace.program.at(record.pc)


def test_packing_is_canonical():
    """Equal traces produce byte-identical files, even via a round trip."""
    again = create_engine("synthetic").build_trace(300, seed=7)
    assert pack_bytes(again, provenance={"engine": "synthetic", "seed": 7}) \
        == _PACKED
    unpacked = unpack_bytes(_PACKED)
    assert pack_bytes(unpacked, provenance={"engine": "synthetic",
                                            "seed": 7}) == _PACKED


@_PROPERTY_SETTINGS
@given(seed=st.integers(min_value=0, max_value=2 ** 16),
       length=st.integers(min_value=1, max_value=220))
def test_round_trip_is_bit_identical_for_any_walk(seed, length):
    trace = create_engine("synthetic").build_trace(length, seed=seed)
    packed = pack_bytes(trace)
    unpacked = unpack_bytes(packed)
    assert unpacked.records == trace.records
    assert pack_bytes(unpacked) == packed


def test_file_round_trip(tmp_path):
    path = tmp_path / "t.uoptrace"
    written = pack_trace(_TRACE, path, provenance={"kind": "test"})
    assert path.stat().st_size == written
    assert unpack_trace(path).records == _TRACE.records
    info = trace_info(path)
    assert info["records"] == len(_TRACE.records)
    assert info["provenance"] == {"kind": "test"}
    assert info["file_bytes"] == written
    assert info["version"] == FORMAT_VERSION


# ---------------------------------------------------------------- corruption

@_PROPERTY_SETTINGS
@given(cut=st.integers(min_value=0, max_value=len(_PACKED) - 1))
def test_any_truncation_raises(cut):
    with pytest.raises(WorkloadError):
        unpack_bytes(_PACKED[:cut])


@_PROPERTY_SETTINGS
@given(bit=st.integers(min_value=0, max_value=len(_PACKED) * 8 - 1))
def test_any_single_bit_flip_raises(bit):
    damaged = bytearray(_PACKED)
    damaged[bit // 8] ^= 1 << (bit % 8)
    with pytest.raises(WorkloadError):
        unpack_bytes(bytes(damaged))


def test_bad_magic_is_descriptive():
    with pytest.raises(WorkloadError, match="bad magic"):
        unpack_bytes(b"NOTATRACE" + _PACKED[9:])


def test_unsupported_version_is_descriptive():
    data = bytearray(_PACKED)
    data[len(MAGIC)] = 99
    with pytest.raises(WorkloadError, match="version 99"):
        unpack_bytes(bytes(data))


def test_crc_failure_names_the_section():
    # Flip a payload byte well inside the RECS section (the file tail).
    data = bytearray(_PACKED)
    data[-2] ^= 0xFF
    with pytest.raises(WorkloadError, match="CRC mismatch"):
        unpack_bytes(bytes(data))


def test_trailing_garbage_rejected():
    with pytest.raises(WorkloadError, match="trailing garbage"):
        unpack_bytes(_PACKED + b"\x00")


def test_empty_file_rejected():
    with pytest.raises(WorkloadError):
        unpack_bytes(b"")


def test_missing_file_rejected(tmp_path):
    with pytest.raises(WorkloadError, match="no such trace file"):
        unpack_trace(tmp_path / "absent.uoptrace")


def test_unpack_trace_prefixes_the_path(tmp_path):
    path = tmp_path / "zapped.uoptrace"
    data = bytearray(_PACKED)
    data[-2] ^= 0xFF
    path.write_bytes(bytes(data))
    with pytest.raises(WorkloadError, match="zapped.uoptrace"):
        unpack_trace(path)


# ------------------------------------------------------------ replay fidelity

@pytest.mark.parametrize("design", ["baseline", "clasp", "f-pwac"])
def test_replay_reproduces_the_original_run(tmp_path, design):
    path = tmp_path / "replay.uoptrace"
    pack_trace(_TRACE, path)
    replayed = create_engine("replay", params={"path": str(path)}) \
        .build_trace(len(_TRACE.records), seed=0)
    config = policy_config(design, 2048)
    direct = Simulator(_TRACE, config, design).run().to_dict()
    via_replay = Simulator(replayed, config, design).run().to_dict()
    assert via_replay == direct


def test_replay_prefix_and_seed_independence(tmp_path):
    path = tmp_path / "replay.uoptrace"
    pack_trace(_TRACE, path)
    engine = create_engine("replay", params={"path": str(path)})
    prefix = engine.build_trace(100, seed=1)
    assert prefix.records == _TRACE.records[:100]
    assert engine.build_trace(100, seed=2).records == prefix.records


def test_replay_longer_than_packed_is_an_error(tmp_path):
    path = tmp_path / "replay.uoptrace"
    pack_trace(_TRACE, path)
    engine = create_engine("replay", params={"path": str(path)})
    with pytest.raises(WorkloadError, match="300"):
        engine.build_trace(len(_TRACE.records) + 1, seed=0)
