"""Tests for workload/trace serialization."""

import gzip
import json

import pytest

from repro.common.config import baseline_config
from repro.common.errors import WorkloadError
from repro.core.simulator import simulate
from repro.workloads.generator import WorkloadProfile, generate_workload
from repro.workloads.serialization import (
    FORMAT_VERSION,
    load_trace,
    load_workload,
    save_trace,
    save_workload,
)

PROFILE = WorkloadProfile(name="ser-test", num_functions=10,
                          blocks_per_function=(2, 5), insts_per_block=(1, 5))


@pytest.fixture(scope="module")
def workload():
    return generate_workload(PROFILE, seed=11)


@pytest.fixture(scope="module")
def trace(workload):
    return workload.trace(3000, seed=12)


class TestWorkloadRoundtrip:
    def test_program_identical(self, workload, tmp_path):
        path = tmp_path / "w.json.gz"
        save_workload(workload, path)
        loaded = load_workload(path)
        assert loaded.program.num_instructions == \
            workload.program.num_instructions
        assert loaded.program.entry == workload.program.entry
        original = {i.address: i for i in workload.program.instructions()}
        for inst in loaded.program.instructions():
            assert original[inst.address] == inst

    def test_behaviors_roundtrip(self, workload, tmp_path):
        path = tmp_path / "w.json.gz"
        save_workload(workload, path)
        loaded = load_workload(path)
        assert set(loaded.behaviors) == set(workload.behaviors)
        for pc, behavior in workload.behaviors.items():
            assert type(loaded.behaviors[pc]) is type(behavior)

    def test_loaded_workload_walks(self, workload, tmp_path):
        path = tmp_path / "w.json.gz"
        save_workload(workload, path)
        loaded = load_workload(path)
        loaded.trace(500, seed=1).validate()


class TestTraceRoundtrip:
    def test_records_identical(self, trace, tmp_path):
        path = tmp_path / "t.json.gz"
        save_trace(trace, path)
        loaded = load_trace(path)
        assert len(loaded) == len(trace)
        assert loaded.name == trace.name
        for original, restored in zip(trace, loaded):
            assert original.pc == restored.pc
            assert original.next_pc == restored.next_pc
            assert original.mem_addr == restored.mem_addr

    def test_loaded_trace_validates(self, trace, tmp_path):
        path = tmp_path / "t.json.gz"
        save_trace(trace, path)
        load_trace(path).validate()

    def test_simulation_identical_after_roundtrip(self, trace, tmp_path):
        path = tmp_path / "t.json.gz"
        save_trace(trace, path)
        loaded = load_trace(path)
        a = simulate(trace, baseline_config(2048), "x")
        b = simulate(loaded, baseline_config(2048), "x")
        assert a.cycles == b.cycles
        assert a.uops == b.uops
        assert a.branch_mispredicts == b.branch_mispredicts


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(WorkloadError):
            load_trace(tmp_path / "missing.json.gz")

    def test_wrong_kind(self, workload, trace, tmp_path):
        path = tmp_path / "w.json.gz"
        save_workload(workload, path)
        with pytest.raises(WorkloadError):
            load_trace(path)

    def test_wrong_version(self, trace, tmp_path):
        path = tmp_path / "t.json.gz"
        save_trace(trace, path)
        with gzip.open(path, "rt") as handle:
            payload = json.load(handle)
        payload["version"] = FORMAT_VERSION + 1
        with gzip.open(path, "wt") as handle:
            json.dump(payload, handle)
        with pytest.raises(WorkloadError):
            load_trace(path)

    def test_not_gzip(self, tmp_path):
        path = tmp_path / "bad.json.gz"
        path.write_text("not gzip")
        with pytest.raises(WorkloadError):
            load_trace(path)
