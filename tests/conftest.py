"""Pytest configuration: make test-local helper modules importable."""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

#: Walk seeds the cross-suite differential tests sweep (the default seed
#: plus one distinct from every generation seed in use).
SUITE_SEEDS = (7, 11)
