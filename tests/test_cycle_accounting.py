"""Tests for the simulator's front-end cycle accounting."""

import pytest

from repro.common.config import baseline_config
from repro.core.simulator import Simulator
from repro.workloads.generator import WorkloadProfile, generate_workload

PROFILE = WorkloadProfile(name="acct-test", num_functions=20,
                          blocks_per_function=(3, 6), insts_per_block=(1, 5))


@pytest.fixture(scope="module")
def sim_result():
    trace = generate_workload(PROFILE, seed=13).trace(10_000, seed=14)
    sim = Simulator(trace, baseline_config(2048), "acct")
    result = sim.run()
    return sim, result


class TestCycleAccounting:
    def test_all_categories_nonnegative(self, sim_result):
        sim, _ = sim_result
        assert sim.fe_cycles_oc >= 0
        assert sim.fe_cycles_ic >= 0
        assert sim.fe_cycles_redirect >= 0
        assert sim.fe_cycles_backpressure >= 0

    def test_both_supply_paths_used(self, sim_result):
        sim, _ = sim_result
        assert sim.fe_cycles_oc > 0
        assert sim.fe_cycles_ic > 0

    def test_accounting_approximates_total(self, sim_result):
        """Front-end activity plus stalls should explain most of the
        total cycle count (the back-end adds only drain latency)."""
        sim, result = sim_result
        accounted = (sim.fe_cycles_oc + sim.fe_cycles_ic +
                     sim.fe_cycles_redirect + sim.fe_cycles_backpressure)
        assert accounted <= result.cycles
        assert accounted >= 0.8 * result.cycles

    def test_redirects_track_mispredicts(self, sim_result):
        sim, result = sim_result
        if result.branch_mispredicts:
            assert sim.fe_cycles_redirect > 0

    def test_bigger_cache_shifts_ic_to_oc(self):
        trace = generate_workload(PROFILE, seed=13).trace(10_000, seed=14)
        small = Simulator(trace, baseline_config(2048), "s")
        small.run()
        large = Simulator(trace, baseline_config(16384), "l")
        large.run()
        assert large.fe_cycles_ic <= small.fe_cycles_ic
        assert large.fe_cycles_oc >= small.fe_cycles_oc
