"""Property-based tests (hypothesis) for core data structures and invariants."""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.caches.replacement import Srrip, TreePlru, TrueLru
from repro.common.config import CompactionPolicy, UopCacheConfig
from repro.uopcache.builder import AccumulationBuffer
from repro.uopcache.cache import UopCache
from repro.workloads.generator import WorkloadProfile, generate_workload

from helpers import make_entry, make_uops, small_oc_config

SLOW = settings(max_examples=25,
                suppress_health_check=[HealthCheck.too_slow],
                deadline=None)


# --------------------------------------------------------------------------
# Replacement policies.
# --------------------------------------------------------------------------

@given(ops=st.lists(st.tuples(st.sampled_from(["hit", "fill"]),
                              st.integers(0, 7)), max_size=200))
@SLOW
def test_lru_recency_is_always_a_permutation(ops):
    lru = TrueLru(1, 8)
    for kind, way in ops:
        if kind == "hit":
            lru.on_hit(0, way)
        else:
            lru.on_fill(0, way)
    assert sorted(lru.recency_order(0)) == list(range(8))


@given(ops=st.lists(st.integers(0, 7), max_size=200))
@SLOW
def test_lru_victim_is_never_most_recent(ops):
    lru = TrueLru(1, 8)
    for way in ops:
        lru.on_hit(0, way)
    if ops:
        assert lru.victim(0, [True] * 8) != ops[-1]


@given(ops=st.lists(st.integers(0, 7), max_size=100),
       policy_cls=st.sampled_from([TrueLru, TreePlru, Srrip]))
@SLOW
def test_every_policy_returns_valid_victims(ops, policy_cls):
    policy = policy_cls(2, 8)
    for way in ops:
        policy.on_fill(0, way)
    victim = policy.victim(0, [True] * 8)
    assert 0 <= victim < 8


# --------------------------------------------------------------------------
# Uop cache entry construction.
# --------------------------------------------------------------------------

inst_strategy = st.tuples(
    st.integers(1, 3),      # uop count
    st.integers(1, 15),     # length
    st.integers(0, 1),      # imm count
    st.booleans(),          # taken
)


@given(insts=st.lists(inst_strategy, min_size=1, max_size=60))
@SLOW
def test_accumulated_entries_respect_all_limits(insts):
    cfg = UopCacheConfig()
    buf = AccumulationBuffer(cfg)
    buf.begin(pw_id=0x1000)
    pc = 0x1000
    sealed = []
    for count, length, imm, taken in insts:
        uops = make_uops(pc, count=count, inst_length=length, imm=imm)
        sealed.extend(buf.push(uops, taken=taken))
        pc += length
    sealed.extend(buf.flush())
    for entry in sealed:
        assert 1 <= entry.num_uops <= cfg.max_uops_per_entry
        assert entry.num_imm_disp <= cfg.max_imm_disp_per_entry
        assert entry.size_bytes(cfg) <= cfg.usable_line_bytes
        assert entry.end_pc > entry.start_pc
        # Baseline: an entry never spans I-cache lines (start bytes).
        assert not entry.spans_icache_lines(64)


@given(insts=st.lists(inst_strategy, min_size=1, max_size=60))
@SLOW
def test_clasp_entries_span_at_most_two_lines(insts):
    cfg = UopCacheConfig(clasp=True, clasp_max_lines=2)
    buf = AccumulationBuffer(cfg)
    buf.begin(pw_id=0x1000)
    pc = 0x1000
    sealed = []
    for count, length, imm, taken in insts:
        uops = make_uops(pc, count=count, inst_length=length, imm=imm)
        sealed.extend(buf.push(uops, taken=taken))
        pc += length
    sealed.extend(buf.flush())
    for entry in sealed:
        assert len(entry.icache_lines(64)) <= 2


@given(insts=st.lists(inst_strategy, min_size=1, max_size=60))
@SLOW
def test_accumulation_covers_every_cached_instruction_once(insts):
    buf = AccumulationBuffer(UopCacheConfig())
    buf.begin(pw_id=0x1000)
    pc = 0x1000
    sealed = []
    pushed_pcs = []
    bypassed_before = 0
    for count, length, imm, taken in insts:
        uops = make_uops(pc, count=count, inst_length=length, imm=imm)
        sealed.extend(buf.push(uops, taken=taken))
        if buf.bypassed_uops == bypassed_before:
            pushed_pcs.append(pc)
        bypassed_before = buf.bypassed_uops
        pc += length
    sealed.extend(buf.flush())
    covered = [uop.pc for entry in sealed for uop in entry.uops]
    assert covered == pushed_pcs or set(covered) == set(pushed_pcs)


# --------------------------------------------------------------------------
# Uop cache structural invariants under random fill/invalidate traffic.
# --------------------------------------------------------------------------

@given(seed=st.integers(0, 10_000),
       policy=st.sampled_from(list(CompactionPolicy)),
       max_entries=st.integers(1, 3))
@SLOW
def test_cache_invariants_under_random_traffic(seed, policy, max_entries):
    rng = random.Random(seed)
    cache = UopCache(small_oc_config(
        compaction=policy, max_entries_per_line=max_entries,
        clasp=rng.random() < 0.5))
    for _ in range(150):
        action = rng.random()
        pc = 0x1000 + rng.randrange(0, 64) * 16
        if action < 0.6:
            entry = make_entry(pc, num_insts=rng.randint(1, 4),
                               pw_id=0x1000 + rng.randrange(8) * 64)
            cache.fill(entry)
        elif action < 0.8:
            cache.lookup(pc)
        else:
            cache.invalidate_icache_line(pc)
        cache.check_invariants()


@given(seed=st.integers(0, 10_000))
@SLOW
def test_lookup_returns_only_filled_start_addresses(seed):
    rng = random.Random(seed)
    cache = UopCache(small_oc_config())
    filled = set()
    for _ in range(100):
        pc = 0x1000 + rng.randrange(0, 64) * 16
        if rng.random() < 0.5:
            cache.fill(make_entry(pc))
            filled.add(pc)
        else:
            entry = cache.lookup(pc)
            if entry is not None:
                assert entry.start_pc == pc
                assert pc in filled


# --------------------------------------------------------------------------
# Compaction policy properties (Section V-B).
# --------------------------------------------------------------------------

COMPACTING_POLICIES = (CompactionPolicy.RAC, CompactionPolicy.PWAC,
                       CompactionPolicy.F_PWAC)

fill_stream = st.lists(
    st.tuples(st.integers(0, 63),    # pc slot (x16 bytes)
              st.integers(1, 6),     # instructions per entry
              st.integers(0, 7)),    # pw slot (x64 bytes)
    min_size=1, max_size=120)


def _fill_from(cache, slot, num_insts, pw_slot):
    entry = make_entry(0x1000 + slot * 16, num_insts=num_insts,
                       pw_id=0x1000 + pw_slot * 64)
    return entry, cache.fill(entry)


@given(stream=fill_stream,
       policy=st.sampled_from(COMPACTING_POLICIES),
       max_entries=st.integers(1, 3))
@SLOW
def test_compaction_never_exceeds_line_capacity(stream, policy, max_entries):
    """No fill sequence under RAC/PWAC/F-PWAC overfills a physical line."""
    cfg = small_oc_config(compaction=policy,
                          max_entries_per_line=max_entries)
    cache = UopCache(cfg)
    for slot, num_insts, pw_slot in stream:
        _fill_from(cache, slot, num_insts, pw_slot)
        for ways in cache._sets:
            for line in ways:
                assert line.used_bytes(cfg) <= cfg.usable_line_bytes
                assert len(line.entries) <= max(1, max_entries)


@given(stream=fill_stream)
@SLOW
def test_fpwac_dissolution_conserves_uops(stream):
    """Forced merges move foreign entries; they never create or lose uops.

    Resident uops must always equal (uops filled) - (uops evicted): the
    dissolution step of F-PWAC relocates entries rather than dropping them.
    """
    cache = UopCache(small_oc_config(compaction=CompactionPolicy.F_PWAC,
                                     max_entries_per_line=3))
    from repro.uopcache.cache import FillKind
    expected = 0
    for slot, num_insts, pw_slot in stream:
        entry, result = _fill_from(cache, slot, num_insts, pw_slot)
        if result.kind is not FillKind.DUPLICATE:
            expected += entry.num_uops
        expected -= sum(e.num_uops for e in result.evicted)
        assert cache.resident_uops() == expected
        cache.check_invariants()


@given(stream=fill_stream)
@SLOW
def test_pwac_falls_back_to_rac_exactly_without_buddy(stream):
    """PWAC compacts with a same-PW buddy when one accepts; with no buddy
    present the fill must not be PW-aware (RAC or plain allocation)."""
    from repro.uopcache.cache import FillKind
    cache = UopCache(small_oc_config(compaction=CompactionPolicy.PWAC,
                                     max_entries_per_line=3))
    for slot, num_insts, pw_slot in stream:
        entry = make_entry(0x1000 + slot * 16, num_insts=num_insts,
                           pw_id=0x1000 + pw_slot * 64)
        set_index = cache.set_index(entry.start_pc)
        buddy_way = cache._find_same_pw_line(set_index, entry)
        buddy_accepts = buddy_way is not None and \
            cache._line_accepts(set_index, buddy_way, entry)
        result = cache.fill(entry)
        if result.kind is FillKind.DUPLICATE:
            continue
        if buddy_way is None:
            assert result.kind in (FillKind.RAC, FillKind.ALLOC)
        elif buddy_accepts:
            assert result.kind is FillKind.PWAC
        else:
            # Buddy exists but lacks room: plain PWAC (not F-PWAC) must
            # degrade to replacement-aware compaction or allocation.
            assert result.kind in (FillKind.RAC, FillKind.ALLOC)


# --------------------------------------------------------------------------
# Workload generation invariants.
# --------------------------------------------------------------------------

@given(seed=st.integers(0, 500), functions=st.integers(2, 20))
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_generated_traces_are_always_consistent(seed, functions):
    profile = WorkloadProfile(name=f"prop-{functions}",
                              num_functions=functions,
                              blocks_per_function=(2, 5),
                              insts_per_block=(1, 5))
    workload = generate_workload(profile, seed=seed)
    trace = workload.trace(1500, seed=seed + 1)
    trace.validate()


@given(seed=st.integers(0, 500))
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_simulation_conserves_uops(seed):
    from repro.common.config import baseline_config
    from repro.core.simulator import simulate
    profile = WorkloadProfile(name="prop-sim", num_functions=10,
                              blocks_per_function=(2, 5),
                              insts_per_block=(1, 5))
    workload = generate_workload(profile, seed=seed)
    trace = workload.trace(1200, seed=seed)
    result = simulate(trace, baseline_config(2048), "prop")
    assert result.uops == trace.num_dynamic_uops
    assert result.instructions == len(trace)
