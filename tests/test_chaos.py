"""Tests for the chaos harness: schedule determinism, fault injection
plumbing, and the headline recovery-equivalence guarantee."""

import warnings

import pytest

from repro.common.errors import ChaosError
from repro.service.chaos import (
    ChaosReport,
    ChaosSpec,
    build_worker_faults,
    diff_stores,
    run_chaos,
)
from repro.service.protocol import JobSpec
from repro.service.store import ResultStore

INSTRUCTIONS = 1200

KEYS = ["aa" + "0" * 62, "bb" + "1" * 62, "cc" + "2" * 62]


def _specs():
    return [JobSpec(workload="bm-x64", num_instructions=INSTRUCTIONS,
                    seed=7),
            JobSpec(workload="bm-lla", design="clasp",
                    num_instructions=INSTRUCTIONS, seed=7)]


class TestChaosSpec:
    def test_negative_counts_rejected(self):
        with pytest.raises(ChaosError):
            ChaosSpec(kills=-1)

    def test_multiple_tears_rejected(self):
        with pytest.raises(ChaosError, match="tears"):
            ChaosSpec(tears=2)

    def test_process_fault_count(self):
        spec = ChaosSpec(kills=2, hangs=1, freezes=0, crashes=3)
        assert spec.process_faults == 6


class TestSchedule:
    def test_deterministic_for_same_seed(self):
        spec = ChaosSpec()
        assert build_worker_faults(KEYS, 7, spec, 5.0) == \
            build_worker_faults(KEYS, 7, spec, 5.0)

    def test_differs_across_seeds(self):
        spec = ChaosSpec(kills=2, hangs=2, freezes=2, crashes=2)
        schedules = {str(sorted(build_worker_faults(KEYS, seed, spec,
                                                    5.0).items()))
                     for seed in range(6)}
        assert len(schedules) > 1

    def test_all_requested_faults_are_scheduled(self):
        spec = ChaosSpec(kills=2, hangs=1, freezes=1, crashes=3)
        plans = build_worker_faults(KEYS, 3, spec, 5.0)
        scheduled = [next(iter(fault)) for plan in plans.values()
                     for fault in plan]
        assert sorted(scheduled) == sorted(
            ["kill"] * 2 + ["hang"] + ["freeze"] + ["crash"] * 3)

    def test_faults_spread_before_stacking(self):
        # 3 faults over 3 jobs: every job gets exactly one.
        spec = ChaosSpec(kills=1, hangs=1, freezes=1, crashes=0)
        plans = build_worker_faults(KEYS, 11, spec, 5.0)
        assert sorted(len(plan) for plan in plans.values()) == [1, 1, 1]

    def test_empty_keys_rejected(self):
        with pytest.raises(ChaosError, match="no jobs"):
            build_worker_faults([], 7, ChaosSpec(), 5.0)


class TestDiffStores:
    def test_identical_stores_have_no_diff(self, tmp_path):
        left = ResultStore(tmp_path / "a")
        right = ResultStore(tmp_path / "b")
        for store in (left, right):
            store.put(KEYS[0], {"cycles": 1})
        assert diff_stores(left, right) == []

    def test_missing_and_differing_records_reported(self, tmp_path):
        left = ResultStore(tmp_path / "a")
        right = ResultStore(tmp_path / "b")
        left.put(KEYS[0], {"cycles": 1})
        left.put(KEYS[1], {"cycles": 2})
        right.put(KEYS[1], {"cycles": 3})
        right.put(KEYS[2], {"cycles": 4})
        diff = "\n".join(diff_stores(left, right))
        assert "missing from chaos store" in diff
        assert "bytes differ" in diff
        assert "extra in chaos store" in diff


class TestFaultFreeByteIdentity:
    def test_two_fault_free_runs_are_byte_identical(self, tmp_path):
        """Regression guard for the service refactors: two independent
        fault-free sweeps over the same specs must produce byte-identical
        stores.  Any nondeterminism smuggled into the execution path (e.g.
        by the executor offloading in the HTTP layer) shows up here as a
        byte-level diff."""
        from repro.service.server import SimulationService
        from repro.service.supervisor import PoolConfig

        stores = []
        for name in ("left", "right"):
            root = tmp_path / name
            with SimulationService(
                    root / "store", checkpoint_dir=root / "checkpoint",
                    pool_config=PoolConfig(workers=2, seed=7)) as service:
                batch = service.execute(_specs())
            assert batch.ok
            stores.append(ResultStore(root / "store"))
        assert diff_stores(stores[0], stores[1]) == []


class TestRunChaos:
    def test_empty_specs_rejected(self, tmp_path):
        with pytest.raises(ChaosError, match="at least one"):
            run_chaos([], tmp_path)

    def test_insufficient_retries_rejected(self, tmp_path):
        with pytest.raises(ChaosError, match="retries"):
            run_chaos(_specs(), tmp_path,
                      chaos=ChaosSpec(kills=4, hangs=0, freezes=0,
                                      crashes=0, tears=0, flips=0),
                      retries=1)

    def test_recovery_is_byte_equivalent(self, tmp_path):
        """The headline guarantee, end to end, with every fault class that
        doesn't cost a deadline of wall-clock (hang is covered by the
        supervisor tests and the CLI smoke run)."""
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")   # recovery warns by design
            report = run_chaos(
                _specs(), tmp_path,
                chaos=ChaosSpec(kills=1, hangs=0, freezes=1, crashes=1,
                                tears=1, flips=1),
                seed=11, workers=2, deadline_seconds=30.0,
                heartbeat_timeout_seconds=0.5)
        assert report.equivalent, report.describe()
        assert report.ok and not report.store_diff
        assert report.recovered_events.get("worker_restart", 0) >= 2
        assert report.recovered_events.get("checkpoint_recovered") == 1
        assert report.recovered_events.get("store_corrupt", 0) >= 1
        text = report.describe()
        assert "byte-identical" in text

    def test_chaos_artifacts_left_for_inspection(self, tmp_path):
        with warnings.catch_warnings():
            warnings.simplefilter("ignore")
            run_chaos(_specs(), tmp_path,
                      chaos=ChaosSpec(kills=0, hangs=0, freezes=0,
                                      crashes=1, tears=1, flips=1),
                      seed=5, deadline_seconds=30.0)
        assert (tmp_path / "reference" / "store" / "objects").is_dir()
        assert (tmp_path / "chaos" / "store" / "objects").is_dir()
        # The bit-flipped record was quarantined, not destroyed.
        assert list((tmp_path / "chaos" / "store" /
                     "quarantine").glob("*.json"))


class TestChaosReport:
    def test_divergence_renders_loudly(self):
        report = ChaosReport(jobs=2, injected={"kill": 1},
                             store_diff=["bytes differ: aa/x.json"],
                             equivalent=False)
        text = report.describe()
        assert "STORE DIVERGENCE" in text and "DIFFERENT" in text
        assert not report.ok

    def test_missing_recovery_fails_report(self):
        report = ChaosReport(jobs=1, equivalent=True,
                             missing_recoveries=["no event"])
        assert not report.ok
