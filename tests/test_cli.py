"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "bm-x64"])
        assert args.design == "baseline"
        assert args.capacity == 2048
        assert args.warmup == 0

    def test_run_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "not-a-workload"])

    def test_run_rejects_unknown_design(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "bm-x64", "--design", "magic"])

    def test_smt_takes_multiple_workloads(self):
        args = build_parser().parse_args(["smt", "bm-x64", "bm-lla"])
        assert args.workloads == ["bm-x64", "bm-lla"]

    def test_runner_flag_defaults(self):
        args = build_parser().parse_args(["sweep-policy"])
        assert args.jobs == 1
        assert args.timeout is None
        assert args.retries == 2
        assert args.checkpoint_dir is None
        assert args.resume is False
        assert args.seed == 7

    def test_runner_flags_parse(self):
        args = build_parser().parse_args(
            ["sweep-capacity", "--jobs", "4", "--timeout", "30",
             "--retries", "1", "--checkpoint-dir", "/tmp/ck", "--resume",
             "--seed", "11"])
        assert args.jobs == 4
        assert args.timeout == 30.0
        assert args.retries == 1
        assert args.checkpoint_dir == "/tmp/ck"
        assert args.resume is True
        assert args.seed == 11

    def test_run_accepts_seed(self):
        args = build_parser().parse_args(["run", "bm-x64", "--seed", "3"])
        assert args.seed == 3


class TestCommands:
    def test_workloads_command(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "bm-cc" in out
        assert "redis" in out

    def test_table1_command(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "TAGE" in out
        assert "32 sets x 8 ways" in out

    def test_table1_with_design(self, capsys):
        assert main(["table1", "--design", "f-pwac",
                     "--capacity", "4096"]) == 0
        out = capsys.readouterr().out
        assert "f-pwac" in out

    def test_table2_command(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "paper MPKI" in out

    def test_run_command(self, capsys):
        assert main(["run", "bm-x64", "--instructions", "3000"]) == 0
        out = capsys.readouterr().out
        assert "UPC" in out
        assert "OC fetch ratio" in out

    def test_run_with_comparison(self, capsys):
        assert main(["run", "bm-x64", "--design", "f-pwac",
                     "--instructions", "3000", "--compare-baseline"]) == 0
        out = capsys.readouterr().out
        assert "vs baseline" in out

    def test_smt_command(self, capsys):
        assert main(["smt", "bm-x64", "bm-lla",
                     "--instructions", "3000"]) == 0
        out = capsys.readouterr().out
        assert "aggregate UPC" in out

    def test_run_with_engine(self, capsys):
        assert main(["run", "bm-x64", "--instructions", "2000",
                     "--engine", "adv-fragment",
                     "--engine-params", '{"num_blocks": 64}']) == 0
        out = capsys.readouterr().out
        assert "UPC" in out

    def test_run_with_fast_mode(self, capsys):
        assert main(["run", "bm-x64", "--instructions", "2000",
                     "--fast-mode"]) == 0
        out = capsys.readouterr().out
        assert "UPC" in out

    def test_sweep_with_engine(self, capsys):
        assert main(["sweep-policy", "--workloads", "bm-x64",
                     "--instructions", "2000", "--warmup", "0",
                     "--engine", "oscillating"]) == 0
        out = capsys.readouterr().out
        assert "bm-x64" in out

    def test_trace_pack_and_info_and_replay(self, capsys, tmp_path):
        packed = tmp_path / "bm.uoptrace"
        assert main(["trace-pack", "bm-x64", "--instructions", "1500",
                     "--out", str(packed)]) == 0
        out = capsys.readouterr().out
        assert "packed 1500 records" in out
        assert main(["trace-info", str(packed)]) == 0
        out = capsys.readouterr().out
        assert "integrity OK" in out
        assert "engine=synthetic" in out
        assert main(["trace-info", str(packed), "--json"]) == 0
        out = capsys.readouterr().out
        assert '"records": 1500' in out
        assert main(["run", "bm-x64", "--instructions", "1500",
                     "--engine", "replay", "--engine-params",
                     '{"path": "%s"}' % packed]) == 0
        out = capsys.readouterr().out
        assert "UPC" in out

    def test_bad_engine_params_json_is_a_config_error(self, capsys):
        assert main(["run", "bm-x64", "--instructions", "2000",
                     "--engine-params", "{not json"]) == 2
        err = capsys.readouterr().err
        assert "--engine-params" in err

    def test_trace_info_rejects_corrupt_file(self, capsys, tmp_path):
        bad = tmp_path / "bad.uoptrace"
        bad.write_bytes(b"UOPTRACEgarbage")
        assert main(["trace-info", str(bad)]) == 2
        err = capsys.readouterr().err
        assert "error:" in err

    def test_sweep_policy_small(self, capsys):
        assert main(["sweep-policy", "--workloads", "bm-x64",
                     "--instructions", "3000", "--warmup", "0"]) == 0
        out = capsys.readouterr().out
        assert "UPC improvement" in out
        assert "f-pwac" in out

    def test_sweep_capacity_small(self, capsys):
        assert main(["sweep-capacity", "--workloads", "bm-x64",
                     "--instructions", "3000", "--warmup", "0"]) == 0
        out = capsys.readouterr().out
        assert "OC_64K" in out

    def test_sweep_policy_parallel_jobs(self, capsys):
        assert main(["sweep-policy", "--workloads", "bm-x64",
                     "--instructions", "2000", "--warmup", "0",
                     "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "UPC improvement" in out

    def test_sweep_policy_checkpoint_and_resume(self, capsys, tmp_path):
        argv = ["sweep-policy", "--workloads", "bm-x64",
                "--instructions", "1500", "--warmup", "0",
                "--checkpoint-dir", str(tmp_path)]
        assert main(argv) == 0
        assert (tmp_path / "journal.jsonl").exists()
        assert main(argv + ["--resume"]) == 0
        err = capsys.readouterr().err
        assert "resumed from checkpoint" in err

    def test_sweep_rejects_bad_workloads(self, capsys):
        assert main(["sweep-policy", "--workloads", "nope",
                     "--instructions", "1000"]) == 2
        err = capsys.readouterr().err
        assert "unknown workload" in err


class TestNegativePaths:
    """Usage errors exit 2 with a one-line diagnostic, never a traceback."""

    def _assert_one_line_error(self, capsys):
        err = capsys.readouterr().err
        assert err.startswith("error: ")
        assert "Traceback" not in err
        return err

    def test_trace_unknown_event_category(self, capsys):
        assert main(["trace", "bm-x64", "--instructions", "1000",
                     "--events", "not-a-category",
                     "--out", "/dev/null"]) == 2
        err = self._assert_one_line_error(capsys)
        assert "unknown event category" in err

    def test_trace_bad_format_is_a_parse_error(self):
        with pytest.raises(SystemExit) as excinfo:
            main(["trace", "bm-x64", "--format", "tsv"])
        assert excinfo.value.code == 2

    def test_trace_unwritable_out(self, capsys, tmp_path):
        missing = tmp_path / "no-such-dir" / "trace.json"
        assert main(["trace", "bm-x64", "--instructions", "1000",
                     "--out", str(missing)]) == 2
        self._assert_one_line_error(capsys)

    def test_fuzz_unknown_design(self, capsys):
        assert main(["fuzz", "--designs", "magic", "--budget", "1"]) == 2
        err = self._assert_one_line_error(capsys)
        assert "unknown design" in err

    def test_fuzz_replay_missing_file(self, capsys, tmp_path):
        assert main(["fuzz", "--replay",
                     str(tmp_path / "missing.json")]) == 2
        self._assert_one_line_error(capsys)

    def test_fuzz_smoke_exits_zero(self, capsys, tmp_path):
        assert main(["fuzz", "--designs", "clasp", "--budget", "2",
                     "--seed", "7", "--quiet",
                     "--out-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "no divergences" in out
