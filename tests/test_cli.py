"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "bm-x64"])
        assert args.design == "baseline"
        assert args.capacity == 2048
        assert args.warmup == 0

    def test_run_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "not-a-workload"])

    def test_run_rejects_unknown_design(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "bm-x64", "--design", "magic"])

    def test_smt_takes_multiple_workloads(self):
        args = build_parser().parse_args(["smt", "bm-x64", "bm-lla"])
        assert args.workloads == ["bm-x64", "bm-lla"]


class TestCommands:
    def test_workloads_command(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "bm-cc" in out
        assert "redis" in out

    def test_table1_command(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "TAGE" in out
        assert "32 sets x 8 ways" in out

    def test_table1_with_design(self, capsys):
        assert main(["table1", "--design", "f-pwac",
                     "--capacity", "4096"]) == 0
        out = capsys.readouterr().out
        assert "f-pwac" in out

    def test_table2_command(self, capsys):
        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "paper MPKI" in out

    def test_run_command(self, capsys):
        assert main(["run", "bm-x64", "--instructions", "3000"]) == 0
        out = capsys.readouterr().out
        assert "UPC" in out
        assert "OC fetch ratio" in out

    def test_run_with_comparison(self, capsys):
        assert main(["run", "bm-x64", "--design", "f-pwac",
                     "--instructions", "3000", "--compare-baseline"]) == 0
        out = capsys.readouterr().out
        assert "vs baseline" in out

    def test_smt_command(self, capsys):
        assert main(["smt", "bm-x64", "bm-lla",
                     "--instructions", "3000"]) == 0
        out = capsys.readouterr().out
        assert "aggregate UPC" in out

    def test_sweep_policy_small(self, capsys):
        assert main(["sweep-policy", "--workloads", "bm-x64",
                     "--instructions", "3000", "--warmup", "0"]) == 0
        out = capsys.readouterr().out
        assert "UPC improvement" in out
        assert "f-pwac" in out

    def test_sweep_capacity_small(self, capsys):
        assert main(["sweep-capacity", "--workloads", "bm-x64",
                     "--instructions", "3000", "--warmup", "0"]) == 0
        out = capsys.readouterr().out
        assert "OC_64K" in out

    def test_sweep_rejects_bad_workloads(self):
        with pytest.raises(Exception):
            main(["sweep-policy", "--workloads", "nope",
                  "--instructions", "1000"])
