"""Unit tests for the combined branch prediction unit."""

import pytest

from repro.branch.predictor import BranchPredictionUnit, PredictionOutcome
from repro.isa.instruction import BranchKind, InstClass, X86Instruction


def branch(pc, kind, target=None, length=2):
    inst_class = InstClass.BRANCH
    if kind is BranchKind.CALL or kind is BranchKind.INDIRECT_CALL:
        inst_class = InstClass.CALL
        length = 5
    elif kind is BranchKind.RET:
        inst_class = InstClass.RET
        length = 1
    return X86Instruction(address=pc, length=length, inst_class=inst_class,
                          uop_count=1, branch_kind=kind, branch_target=target)


class TestConditional:
    def test_learned_branch_correct(self):
        bpu = BranchPredictionUnit()
        inst = branch(0x1000, BranchKind.CONDITIONAL, 0x2000)
        for _ in range(20):
            bpu.observe(inst, True, 0x2000)
        outcome = bpu.observe(inst, True, 0x2000)
        assert outcome.outcome is PredictionOutcome.CORRECT

    def test_direction_flip_mispredicts(self):
        bpu = BranchPredictionUnit()
        inst = branch(0x1000, BranchKind.CONDITIONAL, 0x2000)
        for _ in range(20):
            bpu.observe(inst, True, 0x2000)
        outcome = bpu.observe(inst, False, inst.end_address)
        assert outcome.outcome is PredictionOutcome.MISPREDICT

    def test_first_taken_needs_btb(self):
        """A correctly-predicted-taken branch with a cold BTB resteers."""
        bpu = BranchPredictionUnit()
        inst = branch(0x1000, BranchKind.CONDITIONAL, 0x2000)
        # Train direction (not-taken mispredicts don't touch BTB).
        for _ in range(20):
            bpu.observe(inst, True, 0x2000)
        # By now the BTB knows the target.
        outcome = bpu.observe(inst, True, 0x2000)
        assert outcome.outcome is PredictionOutcome.CORRECT


class TestDirect:
    def test_cold_jump_resteers(self):
        bpu = BranchPredictionUnit()
        inst = branch(0x1000, BranchKind.UNCONDITIONAL, 0x4000)
        outcome = bpu.observe(inst, True, 0x4000)
        assert outcome.outcome is PredictionOutcome.DECODE_RESTEER

    def test_warm_jump_correct(self):
        bpu = BranchPredictionUnit()
        inst = branch(0x1000, BranchKind.UNCONDITIONAL, 0x4000)
        bpu.observe(inst, True, 0x4000)
        outcome = bpu.observe(inst, True, 0x4000)
        assert outcome.outcome is PredictionOutcome.CORRECT


class TestCallReturn:
    def test_matched_call_return(self):
        bpu = BranchPredictionUnit()
        call = branch(0x1000, BranchKind.CALL, 0x4000)
        ret = branch(0x4010, BranchKind.RET)
        bpu.observe(call, True, 0x4000)
        outcome = bpu.observe(ret, True, call.end_address)
        assert outcome.outcome is PredictionOutcome.CORRECT

    def test_return_to_wrong_place_mispredicts(self):
        bpu = BranchPredictionUnit()
        call = branch(0x1000, BranchKind.CALL, 0x4000)
        ret = branch(0x4010, BranchKind.RET)
        bpu.observe(call, True, 0x4000)
        outcome = bpu.observe(ret, True, 0x9999)
        assert outcome.outcome is PredictionOutcome.MISPREDICT

    def test_empty_ras_mispredicts(self):
        bpu = BranchPredictionUnit()
        ret = branch(0x4010, BranchKind.RET)
        outcome = bpu.observe(ret, True, 0x1005)
        assert outcome.outcome is PredictionOutcome.MISPREDICT

    def test_nested_calls(self):
        bpu = BranchPredictionUnit()
        call1 = branch(0x1000, BranchKind.CALL, 0x4000)
        call2 = branch(0x4000, BranchKind.CALL, 0x5000)
        ret2 = branch(0x5010, BranchKind.RET)
        ret1 = branch(0x4010, BranchKind.RET)
        bpu.observe(call1, True, 0x4000)
        bpu.observe(call2, True, 0x5000)
        assert bpu.observe(ret2, True, call2.end_address).outcome is \
            PredictionOutcome.CORRECT
        assert bpu.observe(ret1, True, call1.end_address).outcome is \
            PredictionOutcome.CORRECT

    def test_indirect_call_pushes_ras(self):
        bpu = BranchPredictionUnit()
        icall = branch(0x1000, BranchKind.INDIRECT_CALL)
        ret = branch(0x4010, BranchKind.RET)
        bpu.observe(icall, True, 0x4000)
        outcome = bpu.observe(ret, True, icall.end_address)
        assert outcome.outcome is PredictionOutcome.CORRECT


class TestIndirect:
    def test_cold_indirect_mispredicts(self):
        bpu = BranchPredictionUnit()
        inst = branch(0x1000, BranchKind.INDIRECT)
        outcome = bpu.observe(inst, True, 0x7000)
        assert outcome.outcome is PredictionOutcome.MISPREDICT

    def test_stable_indirect_correct(self):
        bpu = BranchPredictionUnit()
        inst = branch(0x1000, BranchKind.INDIRECT)
        bpu.observe(inst, True, 0x7000)
        outcome = bpu.observe(inst, True, 0x7000)
        assert outcome.outcome is PredictionOutcome.CORRECT

    def test_target_switch_mispredicts_once(self):
        bpu = BranchPredictionUnit()
        inst = branch(0x1000, BranchKind.INDIRECT)
        bpu.observe(inst, True, 0x7000)
        assert bpu.observe(inst, True, 0x8000).outcome is \
            PredictionOutcome.MISPREDICT
        assert bpu.observe(inst, True, 0x8000).outcome is \
            PredictionOutcome.CORRECT


class TestAccounting:
    def test_non_branch_rejected(self):
        bpu = BranchPredictionUnit()
        alu = X86Instruction(address=0x1, length=2, inst_class=InstClass.ALU,
                             uop_count=1)
        with pytest.raises(ValueError):
            bpu.observe(alu, False, 0x3)

    def test_counters(self):
        bpu = BranchPredictionUnit()
        inst = branch(0x1000, BranchKind.UNCONDITIONAL, 0x4000)
        bpu.observe(inst, True, 0x4000)   # resteer
        bpu.observe(inst, True, 0x4000)   # correct
        assert bpu.branches == 2
        assert bpu.decode_resteers == 1
        assert bpu.mispredicts == 0

    def test_mpki(self):
        bpu = BranchPredictionUnit()
        ret = branch(0x4010, BranchKind.RET)
        bpu.observe(ret, True, 0x1005)
        assert bpu.mpki(1000) == pytest.approx(1.0)
