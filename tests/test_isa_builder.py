"""Tests for the instruction builder's statistical realism."""

import random

import pytest

from repro.common.errors import WorkloadError
from repro.isa.builder import (
    FP_HEAVY_MIX,
    INTEGER_MIX,
    SERVER_MIX,
    InstructionBuilder,
    InstructionMix,
)
from repro.isa.instruction import BranchKind, InstClass


@pytest.fixture
def builder():
    return InstructionBuilder(random.Random(1), INTEGER_MIX)


class TestMix:
    def test_weights_normalized(self):
        weights = INTEGER_MIX.weights()
        assert sum(w for _, w in weights) == pytest.approx(1.0)

    def test_zero_mix_rejected(self):
        mix = InstructionMix(alu=0, nop=0, load=0, store=0, load_alu=0,
                             fp=0, avx=0, microcoded=0)
        with pytest.raises(WorkloadError):
            mix.weights()

    def test_predefined_mixes_valid(self):
        for mix in (INTEGER_MIX, FP_HEAVY_MIX, SERVER_MIX):
            assert sum(w for _, w in mix.weights()) == pytest.approx(1.0)


class TestStraightline:
    def test_addresses_respected(self, builder):
        inst = builder.straightline(0x1234)
        assert inst.address == 0x1234

    def test_never_a_branch(self, builder):
        for i in range(200):
            inst = builder.straightline(0x1000 + i * 16)
            assert not inst.is_branch

    def test_realistic_mean_length(self):
        """x86-64 code averages ~3.5-4.5 bytes per instruction."""
        builder = InstructionBuilder(random.Random(7), INTEGER_MIX)
        lengths = [builder.straightline(0).length for _ in range(3000)]
        mean = sum(lengths) / len(lengths)
        assert 3.0 <= mean <= 5.0

    def test_lengths_within_x86_bounds(self, builder):
        for _ in range(500):
            inst = builder.straightline(0)
            assert 1 <= inst.length <= 15

    def test_uop_inflation_plausible(self):
        """Average uops per instruction lands near 1.1-1.5."""
        builder = InstructionBuilder(random.Random(9), INTEGER_MIX)
        uops = [builder.straightline(0).uop_count for _ in range(3000)]
        mean = sum(uops) / len(uops)
        assert 1.0 <= mean <= 1.7

    def test_microcoded_flagged(self):
        builder = InstructionBuilder(
            random.Random(3),
            InstructionMix(alu=0, nop=0, load=0, store=0, load_alu=0,
                           fp=0, avx=0, microcoded=1.0))
        inst = builder.straightline(0)
        assert inst.is_microcoded
        assert inst.uop_count >= 4


class TestControlTransfers:
    def test_conditional(self, builder):
        inst = builder.conditional_branch(0x100, 0x200)
        assert inst.branch_kind is BranchKind.CONDITIONAL
        assert inst.branch_target == 0x200

    def test_unconditional(self, builder):
        inst = builder.unconditional_jump(0x100, 0x300)
        assert inst.branch_kind is BranchKind.UNCONDITIONAL

    def test_call(self, builder):
        inst = builder.call(0x100, 0x400)
        assert inst.branch_kind is BranchKind.CALL
        assert inst.inst_class is InstClass.CALL
        assert inst.uop_count == 2

    def test_indirect_call(self, builder):
        inst = builder.indirect_call(0x100)
        assert inst.branch_kind is BranchKind.INDIRECT_CALL
        assert inst.branch_target is None

    def test_ret(self, builder):
        inst = builder.ret(0x100)
        assert inst.branch_kind is BranchKind.RET
        assert inst.length == 1

    def test_indirect_jump(self, builder):
        inst = builder.indirect_jump(0x100)
        assert inst.branch_kind is BranchKind.INDIRECT

    def test_determinism(self):
        a = InstructionBuilder(random.Random(5), INTEGER_MIX)
        b = InstructionBuilder(random.Random(5), INTEGER_MIX)
        for i in range(100):
            assert a.straightline(i * 16) == b.straightline(i * 16)
