"""Unit tests for the BTB and return-address stack."""

import pytest

from repro.branch.btb import (
    BranchTargetBuffer,
    BtbOutcome,
    ReturnAddressStack,
)
from repro.common.config import BranchPredictorConfig
from repro.isa.instruction import BranchKind


class TestBtb:
    def test_miss_then_hit(self):
        btb = BranchTargetBuffer()
        outcome, record = btb.lookup(0x1000)
        assert outcome is BtbOutcome.MISS
        assert record is None
        btb.install(0x1000, 0x2000, BranchKind.UNCONDITIONAL)
        outcome, record = btb.lookup(0x1000)
        assert outcome is BtbOutcome.L1_HIT
        assert record.target == 0x2000

    def test_l2_hit_promotes_to_l1(self):
        cfg = BranchPredictorConfig(btb_entries=64)
        btb = BranchTargetBuffer(cfg)
        btb.install(0x1000, 0x2000, BranchKind.CALL)
        # Evict from the small L1 by installing many other branches.
        for i in range(1, 64):
            btb.install(0x1000 + i * 256, 0x3000, BranchKind.CALL)
        outcome, record = btb.lookup(0x1000)
        assert outcome in (BtbOutcome.L2_HIT, BtbOutcome.L1_HIT)
        if outcome is BtbOutcome.L2_HIT:
            # Promoted: next lookup hits L1.
            outcome2, _ = btb.lookup(0x1000)
            assert outcome2 is BtbOutcome.L1_HIT

    def test_two_branches_share_region_entry(self):
        btb = BranchTargetBuffer()
        btb.install(0x1000, 0x2000, BranchKind.CONDITIONAL)
        btb.install(0x1008, 0x3000, BranchKind.CONDITIONAL)  # same 16B region
        assert btb.lookup(0x1000)[1].target == 0x2000
        assert btb.lookup(0x1008)[1].target == 0x3000

    def test_third_branch_evicts_from_region(self):
        btb = BranchTargetBuffer()
        btb.install(0x1000, 0x2000, BranchKind.CONDITIONAL)
        btb.install(0x1004, 0x3000, BranchKind.CONDITIONAL)
        btb.install(0x1008, 0x4000, BranchKind.CONDITIONAL)
        hits = sum(btb.lookup(pc)[0] is not BtbOutcome.MISS
                   for pc in (0x1000, 0x1004, 0x1008))
        assert hits == 2

    def test_update_target_changes_prediction(self):
        btb = BranchTargetBuffer()
        btb.install(0x1000, 0x2000, BranchKind.INDIRECT)
        btb.update_target(0x1000, 0x5000, BranchKind.INDIRECT)
        assert btb.lookup(0x1000)[1].target == 0x5000

    def test_capacity_eviction(self):
        cfg = BranchPredictorConfig(btb_entries=16)
        btb = BranchTargetBuffer(cfg)
        for i in range(64):
            btb.install(i * 256, 0x9000, BranchKind.UNCONDITIONAL)
        outcome, _ = btb.lookup(0)
        assert outcome is BtbOutcome.MISS

    def test_stats(self):
        btb = BranchTargetBuffer()
        btb.lookup(0x100)
        btb.install(0x100, 0x200, BranchKind.CALL)
        btb.lookup(0x100)
        assert btb.lookups == 2
        assert btb.misses == 1
        assert btb.l1_hits == 1


class TestRas:
    def test_push_pop(self):
        ras = ReturnAddressStack(8)
        ras.push(0x100)
        ras.push(0x200)
        assert ras.pop() == 0x200
        assert ras.pop() == 0x100

    def test_underflow_returns_none(self):
        ras = ReturnAddressStack(8)
        assert ras.pop() is None
        assert ras.underflows == 1

    def test_overflow_drops_oldest(self):
        ras = ReturnAddressStack(2)
        ras.push(0x1)
        ras.push(0x2)
        ras.push(0x3)
        assert ras.depth == 2
        assert ras.pop() == 0x3
        assert ras.pop() == 0x2
        assert ras.pop() is None

    def test_counters(self):
        ras = ReturnAddressStack(4)
        ras.push(0x1)
        ras.pop()
        assert ras.pushes == 1
        assert ras.pops == 1
