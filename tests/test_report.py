"""Tests for the full-text result report."""

import pytest

from repro.analysis.report import render_result
from repro.common.config import CompactionPolicy, baseline_config, compaction_config
from repro.core.simulator import simulate
from repro.workloads.generator import WorkloadProfile, generate_workload

PROFILE = WorkloadProfile(name="report-test", num_functions=16,
                          blocks_per_function=(2, 6), insts_per_block=(1, 5))


@pytest.fixture(scope="module")
def results():
    trace = generate_workload(PROFILE, seed=8).trace(6000, seed=9)
    base = simulate(trace, baseline_config(2048), "baseline")
    best = simulate(trace,
                    compaction_config(CompactionPolicy.F_PWAC, 2048),
                    "f-pwac")
    return base, best


class TestRenderResult:
    def test_contains_headline_metrics(self, results):
        text = render_result(results[0])
        for fragment in ("UPC", "OC fetch ratio", "branch MPKI",
                         "decoder power", "L1-I hit rate"):
            assert fragment in text

    def test_contains_workload_and_config(self, results):
        text = render_result(results[0])
        assert "report-test" in text
        assert "baseline" in text

    def test_comparison_mode_shows_deltas(self, results):
        base, best = results
        text = render_result(best, baseline=base)
        assert "vs baseline" in text

    def test_compaction_breakdown_present(self, results):
        _, best = results
        text = render_result(best)
        assert "compacted fills" in text
        assert "via rac" in text

    def test_baseline_hides_compaction_rows(self, results):
        base, _ = results
        text = render_result(base)
        assert "compacted fills" not in text

    def test_entry_stats_present(self, results):
        text = render_result(results[0])
        assert "size 1-19 bytes" in text
        assert "terminated by taken branch" in text
