"""Unit tests for the compaction fill policies (RAC / PWAC / F-PWAC)."""

import pytest

from repro.common.config import CompactionPolicy, UopCacheConfig
from repro.uopcache.cache import FillKind, UopCache

from helpers import make_entry, small_oc_config


def compacting_cache(policy, max_entries=2, **kwargs):
    return UopCache(small_oc_config(
        compaction=policy, max_entries_per_line=max_entries, **kwargs))


def small(start_pc, pw_id=None):
    """A small (2-uop, 14B) entry: two of these fit in one 62B line."""
    return make_entry(start_pc, num_insts=2, pw_id=pw_id)


def large(start_pc, pw_id=None):
    """A 8-uop (56B) entry: nothing else fits beside it."""
    return make_entry(start_pc, num_insts=4, uops_per_inst=2, pw_id=pw_id)


class TestRac:
    def test_second_small_entry_compacts(self):
        cache = compacting_cache(CompactionPolicy.RAC)
        stride = 64 * cache.config.num_sets
        cache.fill(small(0x1000))
        result = cache.fill(small(0x1000 + stride))
        assert result.kind is FillKind.RAC
        assert cache.resident_entries() == 2
        # Both resident in the same line.
        assert cache.compacted_line_fraction() > 0

    def test_large_entries_never_compact(self):
        cache = compacting_cache(CompactionPolicy.RAC)
        stride = 64 * cache.config.num_sets
        cache.fill(large(0x1000))
        result = cache.fill(large(0x1000 + stride))
        assert result.kind is FillKind.ALLOC

    def test_max_entries_per_line_respected(self):
        cache = compacting_cache(CompactionPolicy.RAC, max_entries=2)
        stride = 64 * cache.config.num_sets
        tiny = [make_entry(0x1000 + i * stride, num_insts=1) for i in range(3)]
        cache.fill(tiny[0])
        cache.fill(tiny[1])
        result = cache.fill(tiny[2])
        # Third tiny entry fits byte-wise but exceeds the per-line entry cap:
        # it must go somewhere else.
        assert result.kind in (FillKind.ALLOC, FillKind.RAC)
        cache.check_invariants()

    def test_max_three_entries(self):
        cache = compacting_cache(CompactionPolicy.RAC, max_entries=3)
        stride = 64 * cache.config.num_sets
        for i in range(3):
            result = cache.fill(make_entry(0x1000 + i * stride, num_insts=1))
        assert result.kind is FillKind.RAC
        assert cache.resident_entries() == 3
        cache.check_invariants()

    def test_compaction_targets_mru_line(self):
        cache = compacting_cache(CompactionPolicy.RAC)
        stride = 64 * cache.config.num_sets
        a = small(0x1000)
        b = small(0x1000 + stride)
        cache.fill(a)          # way 0
        cache.fill(b)          # compacts with a (MRU)
        # Evict-free lookup on a line keeps it MRU; new fill joins it if room.
        cache.check_invariants()

    def test_no_cross_set_compaction(self):
        cache = compacting_cache(CompactionPolicy.RAC)
        cache.fill(small(0x1000))
        result = cache.fill(small(0x1040))    # different set
        assert result.kind is FillKind.ALLOC
        cache.check_invariants()


class TestPwac:
    def test_same_pw_entries_share_line(self):
        cache = compacting_cache(CompactionPolicy.PWAC)
        stride = 64 * cache.config.num_sets
        pw = 0xAA00
        cache.fill(small(0x1000, pw_id=pw))
        # A foreign small entry compacts via RAC into the same (MRU) line.
        # Then the same-PW buddy arrives: the line is full (2 entries max).
        result = cache.fill(small(0x1000 + stride, pw_id=pw))
        assert result.kind is FillKind.PWAC

    def test_falls_back_to_rac(self):
        cache = compacting_cache(CompactionPolicy.PWAC)
        stride = 64 * cache.config.num_sets
        cache.fill(small(0x1000, pw_id=0x1))
        result = cache.fill(small(0x1000 + stride, pw_id=0x2))
        assert result.kind is FillKind.RAC

    def test_falls_back_to_alloc(self):
        cache = compacting_cache(CompactionPolicy.PWAC)
        stride = 64 * cache.config.num_sets
        cache.fill(large(0x1000, pw_id=0x1))
        result = cache.fill(large(0x1000 + stride, pw_id=0x2))
        assert result.kind is FillKind.ALLOC


class TestForcedPwac:
    def _setup_forced_scenario(self, cache):
        """Line holds [PWA, PWB1]; then PWB2 arrives (Fig. 14)."""
        stride = 64 * cache.config.num_sets
        pwa = small(0x1000, pw_id=0xA)
        pwb1 = small(0x1000 + stride, pw_id=0xB)
        pwb2 = small(0x1000 + 2 * stride, pw_id=0xB)
        cache.fill(pwa)
        assert cache.fill(pwb1).kind is FillKind.RAC   # compacted with PWA
        return pwa, pwb1, pwb2

    def test_forced_merge(self):
        cache = compacting_cache(CompactionPolicy.F_PWAC)
        pwa, pwb1, pwb2 = self._setup_forced_scenario(cache)
        result = cache.fill(pwb2)
        assert result.kind is FillKind.F_PWAC
        # All three entries still resident: PWB1+PWB2 together, PWA moved.
        assert cache.lookup(pwa.start_pc) is pwa
        assert cache.lookup(pwb1.start_pc) is pwb1
        assert cache.lookup(pwb2.start_pc) is pwb2
        cache.check_invariants()

    def test_forced_merge_groups_same_pw(self):
        cache = compacting_cache(CompactionPolicy.F_PWAC)
        pwa, pwb1, pwb2 = self._setup_forced_scenario(cache)
        cache.fill(pwb2)
        set_index = cache.set_index(pwb1.start_pc)
        way_b1 = cache._index[set_index][pwb1.start_pc]
        way_b2 = cache._index[set_index][pwb2.start_pc]
        way_a = cache._index[set_index][pwa.start_pc]
        assert way_b1 == way_b2
        assert way_a != way_b1

    def test_pwac_without_force_cannot_merge(self):
        cache = compacting_cache(CompactionPolicy.PWAC)
        pwa, pwb1, pwb2 = self._setup_forced_scenario(cache)
        result = cache.fill(pwb2)
        assert result.kind is not FillKind.F_PWAC

    def test_forced_merge_impossible_when_too_big(self):
        cache = compacting_cache(CompactionPolicy.F_PWAC)
        stride = 64 * cache.config.num_sets
        pwa = small(0x1000, pw_id=0xA)
        pwb1 = make_entry(0x1000 + stride, num_insts=3, pw_id=0xB)
        cache.fill(pwa)
        cache.fill(pwb1)
        # PWB2 so large that PWB1+PWB2 exceed a line: forced merge impossible.
        pwb2 = large(0x1000 + 2 * stride, pw_id=0xB)
        result = cache.fill(pwb2)
        assert result.kind in (FillKind.ALLOC, FillKind.RAC)
        cache.check_invariants()

    def test_forced_merge_evicts_lru(self):
        cache = compacting_cache(CompactionPolicy.F_PWAC)
        stride = 64 * cache.config.num_sets
        pwa = small(0x1000, pw_id=0xA)
        pwb1 = small(0x1000 + stride, pw_id=0xB)
        filler = large(0x1000 + 3 * stride, pw_id=0xC)
        cache.fill(pwa)
        cache.fill(pwb1)        # [PWA,PWB1] in way0
        cache.fill(filler)      # way1
        pwb2 = small(0x1000 + 2 * stride, pw_id=0xB)
        result = cache.fill(pwb2)
        assert result.kind is FillKind.F_PWAC
        # The LRU line (filler's) was evicted to make room for PWA.
        assert filler in result.evicted
        cache.check_invariants()


class TestCompactionAccounting:
    def test_compacted_fill_fraction(self):
        cache = compacting_cache(CompactionPolicy.RAC)
        stride = 64 * cache.config.num_sets
        cache.fill(small(0x1000))
        cache.fill(small(0x1000 + stride))
        assert cache.compacted_fill_fraction == pytest.approx(0.5)

    def test_baseline_never_compacts(self):
        cache = UopCache(small_oc_config())
        stride = 64 * cache.config.num_sets
        cache.fill(small(0x1000))
        result = cache.fill(small(0x1000 + stride))
        assert result.kind is FillKind.ALLOC
        assert cache.compacted_fill_fraction == 0.0

    def test_whole_line_evicted_as_unit(self):
        """Victim selection evicts every entry in the line (Section V-B)."""
        cache = compacting_cache(CompactionPolicy.RAC)
        stride = 64 * cache.config.num_sets
        a = small(0x1000)
        b = small(0x1000 + stride)
        cache.fill(a)
        cache.fill(b)                       # same line as a
        big1 = large(0x1000 + 3 * stride)
        big2 = large(0x1000 + 4 * stride)
        cache.fill(big1)                    # second way
        result = cache.fill(big2)           # must evict the [a, b] line (LRU)
        assert set(result.evicted) == {a, b}
        cache.check_invariants()
