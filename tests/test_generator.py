"""Unit tests for workload generation and trace walking."""

import dataclasses

import pytest

from repro.common.errors import WorkloadError
from repro.common.hashing import derive_stream_seed, splitmix64
from repro.isa.instruction import BranchKind
from repro.workloads.generator import (
    BiasedBehavior,
    IndirectBehavior,
    LoopBehavior,
    WorkloadGenerator,
    WorkloadProfile,
    generate_workload,
)

SMALL = WorkloadProfile(name="small-test", num_functions=12,
                        blocks_per_function=(3, 6), insts_per_block=(2, 6))


@pytest.fixture(scope="module")
def workload():
    return generate_workload(SMALL, seed=3)


class TestProfileValidation:
    def test_zero_functions_rejected(self):
        with pytest.raises(WorkloadError):
            WorkloadProfile(name="x", num_functions=0)

    def test_bad_block_range_rejected(self):
        with pytest.raises(WorkloadError):
            WorkloadProfile(name="x", blocks_per_function=(5, 2))

    def test_fraction_overflow_rejected(self):
        with pytest.raises(WorkloadError):
            WorkloadProfile(name="x", loop_fraction=0.5, call_fraction=0.5,
                            uncond_fraction=0.3)

    def test_hard_fraction_bounds(self):
        with pytest.raises(WorkloadError):
            WorkloadProfile(name="x", hard_branch_fraction=1.5)

    def test_negative_phase_length_rejected(self):
        with pytest.raises(WorkloadError, match="phase_length"):
            WorkloadProfile(name="x", phase_length=-1)

    @pytest.mark.parametrize("targets", [(0, 3), (5, 2), (0, 0)])
    def test_degenerate_indirect_call_targets_rejected(self, targets):
        with pytest.raises(WorkloadError, match="indirect_call_targets"):
            WorkloadProfile(name="x", indirect_call_targets=targets)

    @pytest.mark.parametrize("trips", [(), (0,), (3, 0)])
    def test_bad_loop_trip_counts_rejected(self, trips):
        with pytest.raises(WorkloadError, match="loop_trip_counts"):
            WorkloadProfile(name="x", loop_trip_counts=trips)

    def test_zero_stickiness_rejected(self):
        with pytest.raises(WorkloadError, match="indirect_stickiness"):
            WorkloadProfile(name="x", indirect_stickiness=0)

    def test_zero_call_depth_rejected(self):
        with pytest.raises(WorkloadError, match="max_call_depth"):
            WorkloadProfile(name="x", max_call_depth=0)

    def test_negative_zipf_rejected(self):
        with pytest.raises(WorkloadError, match="hot_function_zipf"):
            WorkloadProfile(name="x", hot_function_zipf=-0.1)

    def test_zero_alignment_rejected(self):
        with pytest.raises(WorkloadError, match="function_alignment"):
            WorkloadProfile(name="x", function_alignment=0)

    def test_tiny_working_set_rejected(self):
        with pytest.raises(WorkloadError, match="data_working_set_bytes"):
            WorkloadProfile(name="x", data_working_set_bytes=4)

    @pytest.mark.parametrize("field", ["easy_taken_bias",
                                       "indirect_call_fraction",
                                       "driver_uniform_fraction"])
    def test_out_of_range_fractions_rejected(self, field):
        with pytest.raises(WorkloadError, match=field):
            WorkloadProfile(name="x", **{field: 1.01})


class TestGeneration:
    def test_deterministic_per_seed(self):
        a = generate_workload(SMALL, seed=5)
        b = generate_workload(SMALL, seed=5)
        assert a.program.num_instructions == b.program.num_instructions
        pcs_a = sorted(i.address for i in a.program.instructions())
        pcs_b = sorted(i.address for i in b.program.instructions())
        assert pcs_a == pcs_b

    def test_different_seeds_differ(self):
        a = generate_workload(SMALL, seed=5)
        b = generate_workload(SMALL, seed=6)
        pcs_a = sorted(i.address for i in a.program.instructions())
        pcs_b = sorted(i.address for i in b.program.instructions())
        assert pcs_a != pcs_b

    def test_function_count_includes_driver(self, workload):
        assert len(workload.program.functions) == SMALL.num_functions + 1
        assert workload.program.functions[-1].name == "driver"

    def test_entry_is_driver(self, workload):
        assert workload.program.entry == workload.program.functions[-1].entry

    def test_every_function_ends_in_ret(self, workload):
        for function in workload.program.functions[:-1]:
            assert function.blocks[-1].terminator.branch_kind is BranchKind.RET

    def test_direct_branch_targets_decodable(self, workload):
        program = workload.program
        for inst in program.instructions():
            if inst.branch_kind in (BranchKind.CONDITIONAL,
                                    BranchKind.UNCONDITIONAL, BranchKind.CALL):
                assert program.contains(inst.branch_target)

    def test_behaviors_attached_to_real_branches(self, workload):
        program = workload.program
        for pc, behavior in workload.behaviors.items():
            inst = program.at(pc)
            if isinstance(behavior, (LoopBehavior, BiasedBehavior)):
                assert inst.branch_kind is BranchKind.CONDITIONAL
            elif isinstance(behavior, IndirectBehavior):
                assert inst.branch_kind in (BranchKind.INDIRECT,
                                            BranchKind.INDIRECT_CALL)

    def test_indirect_targets_decodable(self, workload):
        program = workload.program
        for behavior in workload.behaviors.values():
            if isinstance(behavior, IndirectBehavior):
                for target in behavior.targets:
                    assert program.contains(target)
                assert abs(sum(behavior.weights) - 1.0) < 1e-9

    def test_functions_do_not_overlap(self, workload):
        ranges = []
        for function in workload.program.functions:
            lo = min(b.start for b in function.blocks)
            hi = max(b.end for b in function.blocks)
            ranges.append((lo, hi))
        ranges.sort()
        for (lo1, hi1), (lo2, hi2) in zip(ranges, ranges[1:]):
            assert hi1 <= lo2


class TestTraceWalk:
    def test_trace_length(self, workload):
        trace = workload.trace(5000, seed=1)
        assert len(trace) == 5000

    def test_trace_validates(self, workload):
        workload.trace(5000, seed=1).validate()

    def test_trace_deterministic(self, workload):
        a = workload.trace(2000, seed=9)
        b = workload.trace(2000, seed=9)
        assert [(r.pc, r.next_pc) for r in a] == [(r.pc, r.next_pc) for r in b]

    def test_trace_seed_changes_walk(self, workload):
        a = workload.trace(2000, seed=1)
        b = workload.trace(2000, seed=2)
        assert [(r.pc, r.next_pc) for r in a] != [(r.pc, r.next_pc) for r in b]

    def test_zero_length_rejected(self, workload):
        with pytest.raises(WorkloadError):
            workload.trace(0)

    def test_memory_addresses_only_on_memory_insts(self, workload):
        trace = workload.trace(3000, seed=4)
        for record in trace:
            inst = trace.program.at(record.pc)
            if record.mem_addr is not None:
                assert inst.reads_memory or inst.writes_memory

    def test_loop_branches_respect_trip_counts(self, workload):
        """A loop branch must fall through exactly once per trip_count visits."""
        trace = workload.trace(20_000, seed=2)
        program = workload.program
        taken = {}
        fell = {}
        for record in trace:
            behavior = workload.behaviors.get(record.pc)
            if isinstance(behavior, LoopBehavior):
                inst = program.at(record.pc)
                if record.next_pc == inst.end_address:
                    fell[record.pc] = fell.get(record.pc, 0) + 1
                else:
                    taken[record.pc] = taken.get(record.pc, 0) + 1
        for pc, exits in fell.items():
            behavior = workload.behaviors[pc]
            total = exits + taken.get(pc, 0)
            # Every trip_count-th execution falls through (+- trailing partial).
            expected = total // behavior.trip_count
            assert abs(exits - expected) <= 1


class TestSeedDerivation:
    """Regression tests for the SplitMix64-based walk-seed derivation.

    The previous scheme (``seed * 2654435761 % (1 << 32)``) mapped seed=0
    to RNG seed 0 regardless of workload, and gave every workload sharing a
    seed an identical walk stream.
    """

    def _pcs(self, wl, seed):
        return [record.pc for record in wl.trace(2_000, seed=seed)]

    def test_seed_zero_is_not_degenerate(self, workload):
        assert derive_stream_seed(0, SMALL.name) != 0
        assert self._pcs(workload, 0) != self._pcs(workload, 1)

    def test_distinct_seeds_give_distinct_streams(self, workload):
        streams = {tuple(self._pcs(workload, seed)) for seed in range(8)}
        assert len(streams) == 8

    def test_same_seed_is_reproducible(self, workload):
        assert self._pcs(workload, 4) == self._pcs(workload, 4)

    def test_stream_is_salted_by_workload_name(self):
        renamed = dataclasses.replace(SMALL, name="small-test-b")
        assert derive_stream_seed(11, SMALL.name) != \
            derive_stream_seed(11, renamed.name)

    def test_splitmix64_is_bijective_on_sample(self):
        outputs = {splitmix64(value) for value in range(4096)}
        assert len(outputs) == 4096

    def test_splitmix64_stays_in_64_bits(self):
        for value in (0, 1, 2**63, 2**64 - 1, 2**80):
            assert 0 <= splitmix64(value) < 2**64
