"""Unit tests for the out-of-order back-end timing model."""

import pytest

from repro.backend.core import OutOfOrderBackend, UopTiming, _WidthLimiter
from repro.common.config import CoreConfig
from repro.isa.uop import Uop, UopKind


def alu_uop(pc=0x1000):
    return Uop(pc=pc, inst_length=4, kind=UopKind.ALU, slot=0, num_slots=1)


def load_uop(pc=0x1000):
    return Uop(pc=pc, inst_length=4, kind=UopKind.LOAD, slot=0, num_slots=1)


class TestWidthLimiter:
    def test_packs_up_to_width(self):
        lim = _WidthLimiter(2)
        assert lim.place(5) == 5
        assert lim.place(5) == 5
        assert lim.place(5) == 6

    def test_jumps_forward(self):
        lim = _WidthLimiter(2)
        lim.place(5)
        assert lim.place(9) == 9

    def test_earliest_in_past_packs_current(self):
        lim = _WidthLimiter(2)
        lim.place(10)
        assert lim.place(3) == 10

    def test_busy_cycles_counted(self):
        lim = _WidthLimiter(2)
        lim.place(1)
        lim.place(1)
        lim.place(1)   # overflows to cycle 2
        assert lim.busy_cycles == 2


class TestBackend:
    def test_single_uop_flow(self):
        backend = OutOfOrderBackend()
        timing = backend.admit(alu_uop(), arrival=10)
        assert timing.enqueue == 10
        assert timing.dispatch == 11
        assert timing.complete == 12
        assert timing.retire == 13

    def test_dispatch_width_limits(self):
        backend = OutOfOrderBackend(CoreConfig(dispatch_width=2))
        timings = [backend.admit(alu_uop(), arrival=10) for _ in range(4)]
        assert timings[0].dispatch == timings[1].dispatch == 11
        assert timings[2].dispatch == timings[3].dispatch == 12

    def test_retire_in_order(self):
        backend = OutOfOrderBackend()
        slow = backend.admit(load_uop(), arrival=10)         # latency 4
        fast = backend.admit(alu_uop(), arrival=10)          # latency 1
        assert fast.complete < slow.complete
        assert fast.retire > slow.complete   # waits for the older slow uop
        assert fast.retire >= slow.retire

    def test_retire_width_limits(self):
        backend = OutOfOrderBackend(CoreConfig(retire_width=2))
        timings = [backend.admit(alu_uop(), arrival=10) for _ in range(4)]
        retire_cycles = sorted(t.retire for t in timings)
        assert retire_cycles[1] == retire_cycles[0]
        assert retire_cycles[2] == retire_cycles[0] + 1

    def test_uop_queue_backpressure(self):
        core = CoreConfig(uop_queue_entries=4, dispatch_width=1)
        backend = OutOfOrderBackend(core)
        for _ in range(4):
            backend.admit(alu_uop(), arrival=0)
        timing = backend.admit(alu_uop(), arrival=0)
        # Enqueue waits until the 4-back uop dispatched.
        assert timing.enqueue >= 1

    def test_rob_occupancy_blocks_dispatch(self):
        core = CoreConfig(rob_entries=8, dispatch_width=8, retire_width=1,
                          uop_queue_entries=64)
        backend = OutOfOrderBackend(core)
        timings = [backend.admit(alu_uop(), arrival=0) for _ in range(16)]
        # With 1-wide retire, the 9th uop's dispatch must wait for the 1st
        # uop's retirement.
        assert timings[8].dispatch >= timings[0].retire

    def test_load_latency_through_hierarchy(self):
        from repro.caches.hierarchy import MemoryHierarchy
        hierarchy = MemoryHierarchy()
        backend = OutOfOrderBackend(hierarchy=hierarchy)
        cold = backend.admit(load_uop(), arrival=0, mem_addr=0x10_0000)
        warm = backend.admit(load_uop(), arrival=0, mem_addr=0x10_0000)
        assert cold.complete - cold.dispatch > warm.complete - warm.dispatch

    def test_uops_retired_counter(self):
        backend = OutOfOrderBackend()
        for _ in range(5):
            backend.admit(alu_uop(), arrival=0)
        assert backend.uops_retired == 5
        assert backend.last_cycle >= 1

    def test_monotone_retire(self):
        backend = OutOfOrderBackend()
        last = 0
        for i in range(50):
            timing = backend.admit(
                load_uop() if i % 3 == 0 else alu_uop(), arrival=i // 2)
            assert timing.retire >= last
            last = timing.retire

    def test_busy_dispatch_cycles(self):
        backend = OutOfOrderBackend(CoreConfig(dispatch_width=2))
        for _ in range(4):
            backend.admit(alu_uop(), arrival=0)
        assert backend.busy_dispatch_cycles == 2
