"""Tests for warmup (measured-region) support in the simulator."""

import dataclasses

import pytest

from repro.common.config import baseline_config
from repro.core.simulator import simulate
from repro.workloads.generator import WorkloadProfile, generate_workload

PROFILE = WorkloadProfile(name="warm-test", num_functions=24,
                          blocks_per_function=(3, 7), insts_per_block=(1, 6))


@pytest.fixture(scope="module")
def trace():
    # The warmup-helps assertions below are statistical properties of the
    # branch stream, true for most but not every walk seed; this seed is one
    # where they hold (several nearby seeds work too).
    return generate_workload(PROFILE, seed=6).trace(20_000, seed=9)


def warm_config(warmup, capacity=2048):
    return dataclasses.replace(baseline_config(capacity),
                               warmup_instructions=warmup)


class TestWarmup:
    def test_measured_instructions_exclude_warmup(self, trace):
        result = simulate(trace, warm_config(5000), "w")
        # The snapshot lands at a fetch-chunk boundary at or after the
        # warmup mark, so measured <= total - warmup.
        assert result.instructions <= len(trace) - 5000
        assert result.instructions >= len(trace) - 5000 - 64

    def test_zero_warmup_measures_everything(self, trace):
        result = simulate(trace, warm_config(0), "w")
        assert result.instructions == len(trace)

    def test_uop_conservation_in_measured_region(self, trace):
        result = simulate(trace, warm_config(5000), "w")
        assert result.uops == (result.uops_from_uop_cache +
                               result.uops_from_decoder +
                               result.uops_from_loop_cache)

    def test_warmup_removes_cold_start_mpki(self, trace):
        cold = simulate(trace, warm_config(0), "cold")
        warm = simulate(trace, warm_config(8000), "warm")
        assert warm.branch_mpki <= cold.branch_mpki

    def test_warmup_improves_hit_rate(self, trace):
        cold = simulate(trace, warm_config(0), "cold")
        warm = simulate(trace, warm_config(8000), "warm")
        assert warm.oc_fetch_ratio >= cold.oc_fetch_ratio - 0.01

    def test_cycles_positive(self, trace):
        result = simulate(trace, warm_config(5000), "w")
        assert result.cycles > 0
        assert result.upc > 0

    def test_warmup_beyond_trace_measures_nothing_bad(self, trace):
        """Warmup longer than the trace: snapshot never fires, everything
        is measured (graceful degradation)."""
        result = simulate(trace, warm_config(10 ** 9), "w")
        assert result.instructions == len(trace)

    def test_decoder_power_is_measured_region_only(self, trace):
        cold = simulate(trace, warm_config(0), "cold")
        warm = simulate(trace, warm_config(8000), "warm")
        # Cold-start decodes everything once; the measured region should
        # show less decoder activity per cycle.
        assert warm.decoder_report.insts_decoded <= \
            cold.decoder_report.insts_decoded
