"""Unit tests for program images (basic blocks, functions, decode)."""

import pytest

from repro.common.errors import WorkloadError
from repro.isa.instruction import BranchKind, InstClass, X86Instruction
from repro.workloads.program import BasicBlock, Function, Program


def seq_insts(start, lengths, **kwargs):
    """Build a run of ALU instructions at consecutive addresses."""
    insts, addr = [], start
    for length in lengths:
        insts.append(X86Instruction(address=addr, length=length,
                                    inst_class=InstClass.ALU, uop_count=1))
        addr += length
    return insts


def simple_program(start=0x1000):
    block = BasicBlock(instructions=seq_insts(start, [4, 4, 4]))
    return Program([Function(name="f", blocks=[block])])


class TestBasicBlock:
    def test_start_end_size(self):
        block = BasicBlock(instructions=seq_insts(0x100, [2, 3, 4]))
        assert block.start == 0x100
        assert block.end == 0x109
        assert block.size_bytes == 9
        assert len(block) == 3

    def test_terminator(self):
        block = BasicBlock(instructions=seq_insts(0x100, [2, 2]))
        assert block.terminator.address == 0x102

    def test_empty_block_start_raises(self):
        with pytest.raises(WorkloadError):
            BasicBlock().start


class TestFunction:
    def test_entry(self):
        block = BasicBlock(instructions=seq_insts(0x200, [4]))
        assert Function(name="f", blocks=[block]).entry == 0x200

    def test_num_instructions(self):
        blocks = [BasicBlock(instructions=seq_insts(0x200, [4, 4])),
                  BasicBlock(instructions=seq_insts(0x208, [4]))]
        assert Function(name="f", blocks=blocks).num_instructions == 3

    def test_empty_function_raises(self):
        with pytest.raises(WorkloadError):
            Function(name="f").entry


class TestProgram:
    def test_at_returns_instruction(self):
        program = simple_program()
        assert program.at(0x1004).address == 0x1004

    def test_at_unknown_address_raises(self):
        with pytest.raises(WorkloadError):
            simple_program().at(0x9999)

    def test_contains(self):
        program = simple_program()
        assert program.contains(0x1000)
        assert not program.contains(0x1001)

    def test_entry_defaults_to_first_function(self):
        assert simple_program().entry == 0x1000

    def test_explicit_entry(self):
        block = BasicBlock(instructions=seq_insts(0x1000, [4, 4]))
        program = Program([Function(name="f", blocks=[block])], entry=0x1004)
        assert program.entry == 0x1004

    def test_invalid_entry_raises(self):
        block = BasicBlock(instructions=seq_insts(0x1000, [4]))
        with pytest.raises(WorkloadError):
            Program([Function(name="f", blocks=[block])], entry=0x2000)

    def test_empty_program_raises(self):
        with pytest.raises(WorkloadError):
            Program([])

    def test_overlapping_instructions_rejected(self):
        a = X86Instruction(address=0x100, length=4,
                           inst_class=InstClass.ALU, uop_count=1)
        b = X86Instruction(address=0x100, length=2,
                           inst_class=InstClass.NOP, uop_count=1)
        f1 = Function(name="a", blocks=[BasicBlock(instructions=[a])])
        f2 = Function(name="b", blocks=[BasicBlock(instructions=[b])])
        with pytest.raises(WorkloadError):
            Program([f1, f2])

    def test_uops_at_memoised(self):
        program = simple_program()
        assert program.uops_at(0x1000) is program.uops_at(0x1000)

    def test_num_instructions_and_uops(self):
        program = simple_program()
        assert program.num_instructions == 3
        assert program.num_static_uops == 3

    def test_code_bytes(self):
        assert simple_program(0x1000).code_bytes == 12

    def test_touched_icache_lines(self):
        block = BasicBlock(instructions=seq_insts(0x1000, [4] * 20))  # 80 bytes
        program = Program([Function(name="f", blocks=[block])])
        assert program.touched_icache_lines(64) == 2
