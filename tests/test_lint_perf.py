"""Fixture drills for the simlint performance pass (P1-P5).

Each rule gets the standard violation / suppressed / fixed triple.  The
fixtures sit outside the hot packages, so they define their own hot roots
(``Simulator.steps`` / ``FastPath.run``) — which also exercises the
call-graph side of the hotness model rather than the path heuristic.
"""

from pathlib import Path

from repro.lint import LintEngine, Severity, all_rules

FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"


def run_fixture(*names, ignore_scope=True):
    engine = LintEngine(root=FIXTURES, rules=all_rules(),
                        ignore_scope=ignore_scope)
    return engine.run([FIXTURES / name for name in names])


def rules_of(report):
    return [finding.rule for finding in report.findings]


class TestP1HotLoopAllocation:
    def test_violation(self):
        report = run_fixture("p1_violation.py")
        assert rules_of(report) == ["P1", "P1"]
        messages = " | ".join(f.message for f in report.findings)
        assert "list" in messages
        assert "comprehension" in messages

    def test_suppressed(self):
        report = run_fixture("p1_suppressed.py")
        assert report.findings == []
        assert report.suppressed == 1

    def test_fixed(self):
        """Hoisted allocs, per-iteration data and cold loops all pass."""
        report = run_fixture("p1_fixed.py")
        assert report.findings == []


class TestP2UnhoistedInvariantLoad:
    def test_violation(self):
        report = run_fixture("p2_violation.py")
        assert rules_of(report) == ["P2", "P2"]
        messages = " | ".join(f.message for f in report.findings)
        assert "self.core.ports" in messages       # depth-2 chain
        assert "WINDOW" in messages                # module global

    def test_suppressed(self):
        report = run_fixture("p2_suppressed.py")
        assert report.findings == []
        assert report.suppressed == 1

    def test_fixed(self):
        """Hoisted loads pass; a load rebindable by an owner method call
        inside the loop must NOT be reported (hoisting it would change
        behaviour)."""
        report = run_fixture("p2_fixed.py")
        assert report.findings == []


class TestP3LinearMembership:
    def test_violation(self):
        report = run_fixture("p3_violation.py")
        assert rules_of(report) == ["P3", "P3"]
        messages = " | ".join(f.message for f in report.findings)
        assert "tuple" in messages                 # literal comparator
        assert "STOP_KINDS" in messages            # list-built module global

    def test_suppressed(self):
        report = run_fixture("p3_suppressed.py")
        assert report.findings == []
        assert report.suppressed == 1

    def test_fixed(self):
        report = run_fixture("p3_fixed.py")
        assert report.findings == []


class TestP4RepeatedInvariantIndexing:
    def test_violation(self):
        report = run_fixture("p4_violation.py")
        assert rules_of(report) == ["P4"]
        assert "counters['cycles']" in report.findings[0].message.replace(
            '"', "'")

    def test_suppressed(self):
        report = run_fixture("p4_suppressed.py")
        assert report.findings == []
        assert report.suppressed == 1

    def test_fixed(self):
        """Hoisted lookup passes; loop-varying keys and written-through
        subscripts stay unreported."""
        report = run_fixture("p4_fixed.py")
        assert report.findings == []


class TestP5UnguardedTelemetry:
    def test_violation(self):
        report = run_fixture("p5_violation.py")
        assert rules_of(report) == ["P5", "P5"]
        for finding in report.findings:
            assert finding.severity is Severity.ERROR

    def test_violation_evidence_chain(self):
        """The helper finding carries the FastPath.run -> _account path."""
        report = run_fixture("p5_violation.py")
        helper = [f for f in report.findings if "_account" in f.message]
        assert helper, [f.message for f in report.findings]
        chain = helper[0].chain
        assert any("FastPath.run" in hop for hop in chain)
        assert any("FastPath._account" in hop for hop in chain)

    def test_suppressed(self):
        report = run_fixture("p5_suppressed.py")
        assert report.findings == []
        assert report.suppressed == 1

    def test_fixed(self):
        """Inline guards, early returns and truthiness checks all count
        as domination."""
        report = run_fixture("p5_fixed.py")
        assert report.findings == []


class TestHotScope:
    def test_repo_tree_has_no_perf_findings(self):
        """The simulator hot paths were brought clean in this change; the
        committed tree must self-lint free of P findings."""
        repo_root = Path(__file__).resolve().parents[1]
        engine = LintEngine(root=repo_root, rules=all_rules())
        report = engine.run([repo_root / "src"])
        perf = [f for f in report.findings if f.rule.startswith("P")]
        assert perf == [], [
            (f.path, f.line, f.rule, f.message) for f in perf]
