"""Tests for the job-submission protocol: spec validation and content keys."""

import dataclasses

import pytest

from repro.common.errors import ProtocolError
from repro.core.experiment import policy_config, workload_trace
from repro.core.simulator import Simulator
from repro.service.protocol import KEY_VERSION, JobSpec, execute_spec

INSTRUCTIONS = 1500


def _spec(**overrides):
    base = dict(workload="bm-x64", design="clasp",
                num_instructions=INSTRUCTIONS, seed=7)
    base.update(overrides)
    return JobSpec(**base)


class TestJobSpecValidation:
    def test_unknown_workload_rejected(self):
        with pytest.raises(ProtocolError, match="unknown workload"):
            JobSpec(workload="nope")

    def test_unknown_design_rejected(self):
        with pytest.raises(ProtocolError, match="unknown design"):
            _spec(design="magic")

    @pytest.mark.parametrize("field", ["capacity_uops",
                                       "max_entries_per_line",
                                       "num_instructions"])
    def test_nonpositive_ints_rejected(self, field):
        with pytest.raises(ProtocolError, match="must be positive"):
            _spec(**{field: 0})

    def test_negative_warmup_rejected(self):
        with pytest.raises(ProtocolError, match="warmup"):
            _spec(warmup_instructions=-1)


class TestContentKey:
    def test_key_is_stable(self):
        assert _spec().key == _spec().key

    def test_key_depends_on_every_field(self):
        base = _spec()
        for change in (dict(workload="redis"), dict(design="pwac"),
                       dict(capacity_uops=4096),
                       dict(max_entries_per_line=3),
                       dict(num_instructions=2000),
                       dict(warmup_instructions=100), dict(seed=8)):
            assert _spec(**change).key != base.key, change

    def test_key_folds_in_version(self):
        assert _spec().canonical()["key_version"] == KEY_VERSION

    def test_key_ignores_submission_field_order(self):
        forward = JobSpec.from_dict(
            {"workload": "bm-x64", "design": "rac", "seed": 3})
        backward = JobSpec.from_dict(
            {"seed": 3, "design": "rac", "workload": "bm-x64"})
        assert forward.key == backward.key


class TestFromDict:
    def test_round_trip(self):
        spec = _spec()
        assert JobSpec.from_dict(spec.to_dict()) == spec

    def test_defaults_apply(self):
        spec = JobSpec.from_dict({"workload": "bm-x64"})
        assert spec.design == "baseline"
        assert spec.capacity_uops == 2048

    def test_unknown_field_rejected(self):
        with pytest.raises(ProtocolError, match="unknown job spec field"):
            JobSpec.from_dict({"workload": "bm-x64", "sede": 3})

    def test_missing_workload_rejected(self):
        with pytest.raises(ProtocolError, match="workload"):
            JobSpec.from_dict({"design": "clasp"})

    def test_non_mapping_rejected(self):
        with pytest.raises(ProtocolError, match="must be an object"):
            JobSpec.from_dict(["bm-x64"])

    def test_non_string_workload_rejected(self):
        with pytest.raises(ProtocolError, match="must be a string"):
            JobSpec.from_dict({"workload": 42})

    def test_bool_is_not_an_integer(self):
        with pytest.raises(ProtocolError, match="must be an integer"):
            JobSpec.from_dict({"workload": "bm-x64", "seed": True})

    def test_non_int_count_rejected(self):
        with pytest.raises(ProtocolError, match="must be an integer"):
            JobSpec.from_dict({"workload": "bm-x64",
                               "num_instructions": "many"})


class TestEngineFields:
    def test_engine_params_normalize_to_sorted_pairs(self):
        spec = _spec(engine="oscillating",
                     engine_params={"segment_length": 500, "gen_seed": 2})
        assert spec.engine_params == (("gen_seed", 2),
                                      ("segment_length", 500))

    def test_spellings_of_same_params_share_a_key(self):
        a = _spec(engine="oscillating",
                  engine_params={"segment_length": 500, "gen_seed": 2})
        b = _spec(engine="oscillating",
                  engine_params=(("segment_length", 500), ("gen_seed", 2)))
        assert a.key == b.key

    def test_engine_changes_the_key(self):
        assert _spec().key != _spec(engine="adv-smc").key
        assert _spec(engine="adv-smc").key != \
            _spec(engine="adv-smc", engine_params={"lines": 4}).key

    def test_unknown_engine_rejected(self):
        with pytest.raises(ProtocolError, match="unknown workload engine"):
            _spec(engine="warp-drive")

    def test_bad_engine_params_rejected_at_submission(self):
        with pytest.raises(ProtocolError, match="unknown parameter"):
            _spec(engine="adv-smc", engine_params={"linez": 4})
        with pytest.raises(ProtocolError, match="must be int"):
            _spec(engine="adv-smc", engine_params={"lines": "six"})

    def test_from_dict_round_trips_engine_fields(self):
        spec = _spec(engine="adv-fragment",
                     engine_params={"num_blocks": 64})
        again = JobSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.key == spec.key

    def test_from_dict_rejects_non_object_engine_params(self):
        with pytest.raises(ProtocolError, match="must be an object"):
            JobSpec.from_dict({"workload": "bm-x64",
                               "engine_params": [1, 2]})

    def test_from_dict_rejects_bad_engine_param_values(self):
        with pytest.raises(ProtocolError, match="string or number"):
            JobSpec.from_dict({"workload": "bm-x64", "engine": "adv-smc",
                               "engine_params": {"lines": None}})

    def test_default_engine_key_is_versioned_not_aliased(self):
        """A default-engine spec still hashes the engine fields (v2)."""
        spec = _spec()
        assert spec.canonical()["engine"] == "synthetic"
        assert spec.canonical()["key_version"] == KEY_VERSION


class TestExecuteSpec:
    def test_matches_direct_simulation(self):
        spec = _spec(warmup_instructions=300)
        config = dataclasses.replace(
            policy_config("clasp", 2048, 2), warmup_instructions=300)
        trace = workload_trace("bm-x64", INSTRUCTIONS, seed=7)
        direct = Simulator(trace, config, "clasp").run()
        assert execute_spec(spec) == direct

    def test_engine_spec_matches_direct_engine_simulation(self):
        spec = _spec(engine="adv-pwconflict",
                     engine_params={"num_functions": 16})
        config = policy_config("clasp", 2048, 2)
        trace = workload_trace("bm-x64", INSTRUCTIONS, seed=7,
                               engine="adv-pwconflict",
                               engine_params={"num_functions": 16})
        direct = Simulator(trace, config, "clasp").run()
        assert execute_spec(spec) == direct


class TestExecuteSpecFastMode:
    """Service jobs are counters-only, so execute_spec routes them through
    the fast serve loop; the stored payload must stay byte-identical."""

    def test_counters_only_job_stores_bit_identical_result(self):
        from repro.common.integrity import canonical_json

        spec = _spec(warmup_instructions=300)
        fast = execute_spec(spec)

        config = dataclasses.replace(
            policy_config("clasp", 2048, 2), warmup_instructions=300)
        assert not config.fast_mode      # the un-routed baseline
        trace = workload_trace("bm-x64", INSTRUCTIONS, seed=7)
        slow = Simulator(trace, config, "clasp", strict=True).run()

        assert canonical_json(fast.to_dict()) == \
            canonical_json(slow.to_dict())
