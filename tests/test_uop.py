"""Unit tests for uop cracking (decode semantics)."""

import pytest

from repro.isa.instruction import BranchKind, InstClass, X86Instruction
from repro.isa.uop import UOP_BYTES, Uop, UopKind, decode_instruction


def make_inst(inst_class, uop_count, imm=0, address=0x400, length=4,
              branch_kind=BranchKind.NONE, target=None, micro=False):
    return X86Instruction(address=address, length=length,
                          inst_class=inst_class, uop_count=uop_count,
                          imm_disp_count=imm, branch_kind=branch_kind,
                          branch_target=target, is_microcoded=micro)


class TestDecode:
    def test_simple_alu(self):
        uops = decode_instruction(make_inst(InstClass.ALU, 1))
        assert len(uops) == 1
        assert uops[0].kind is UopKind.ALU
        assert uops[0].slot == 0
        assert uops[0].num_slots == 1
        assert uops[0].is_last_of_inst

    def test_load_alu_cracks_to_two(self):
        uops = decode_instruction(make_inst(InstClass.LOAD_ALU, 2))
        assert [u.kind for u in uops] == [UopKind.LOAD, UopKind.ALU]

    def test_uop_count_respected(self):
        uops = decode_instruction(
            make_inst(InstClass.MICROCODED, 6, micro=True))
        assert len(uops) == 6
        assert all(u.is_microcoded for u in uops)

    def test_branch_uop_is_last(self):
        inst = make_inst(InstClass.CALL, 2, branch_kind=BranchKind.CALL,
                         target=0x9000, length=5)
        uops = decode_instruction(inst)
        assert uops[-1].kind is UopKind.BRANCH
        assert uops[-1].branch_kind is BranchKind.CALL
        assert uops[-1].branch_target == 0x9000
        assert uops[0].branch_kind is BranchKind.NONE

    def test_ret_cracks_to_load_plus_branch(self):
        inst = make_inst(InstClass.RET, 2, branch_kind=BranchKind.RET, length=1)
        uops = decode_instruction(inst)
        assert [u.kind for u in uops] == [UopKind.LOAD, UopKind.BRANCH]

    def test_imm_fields_attach_to_leading_uops(self):
        uops = decode_instruction(make_inst(InstClass.LOAD_ALU, 2, imm=1))
        assert uops[0].has_imm_disp
        assert not uops[1].has_imm_disp

    def test_pc_and_length_propagate(self):
        uops = decode_instruction(make_inst(InstClass.ALU, 1, address=0x1234,
                                            length=3))
        assert uops[0].pc == 0x1234
        assert uops[0].next_sequential_pc == 0x1237

    def test_size_bytes(self):
        uops = decode_instruction(make_inst(InstClass.ALU, 1))
        assert uops[0].size_bytes == UOP_BYTES == 7

    def test_exec_latency_positive(self):
        for inst_class, count in [(InstClass.ALU, 1), (InstClass.FP, 1),
                                  (InstClass.LOAD, 1), (InstClass.AVX, 2)]:
            for uop in decode_instruction(make_inst(inst_class, count)):
                assert uop.exec_latency >= 1

    def test_conditional_branch_uop(self):
        inst = make_inst(InstClass.BRANCH, 1,
                         branch_kind=BranchKind.CONDITIONAL, target=0x800,
                         length=2)
        uops = decode_instruction(inst)
        assert len(uops) == 1
        assert uops[0].is_branch
