"""Suite-level tests: every Table II workload generates, walks and behaves."""

import pytest

from repro.workloads.suite import (
    PAPER_BRANCH_MPKI,
    SUITE_GROUPS,
    WORKLOAD_NAMES,
    WORKLOAD_PROFILES,
    clear_workload_cache,
    get_profile,
    get_workload,
)
from repro.common.errors import WorkloadError


class TestRegistry:
    def test_thirteen_workloads(self):
        assert len(WORKLOAD_NAMES) == 13

    def test_groups_partition_suite(self):
        grouped = [name for names in SUITE_GROUPS.values() for name in names]
        assert sorted(grouped) == sorted(WORKLOAD_NAMES)

    def test_paper_mpki_covers_all(self):
        assert set(PAPER_BRANCH_MPKI) == set(WORKLOAD_NAMES)

    def test_get_profile_known(self):
        assert get_profile("bm-cc").name == "bm-cc"

    def test_get_profile_unknown(self):
        with pytest.raises(WorkloadError):
            get_profile("bm-missing")

    def test_profiles_self_name(self):
        for name, profile in WORKLOAD_PROFILES.items():
            assert profile.name == name


class TestWorkloadCache:
    def test_memoised(self):
        clear_workload_cache()
        a = get_workload("bm-x64")
        b = get_workload("bm-x64")
        assert a is b

    def test_uncached_builds_fresh(self):
        a = get_workload("bm-x64")
        b = get_workload("bm-x64", cache=False)
        assert a is not b

    def test_seed_distinguishes(self):
        a = get_workload("bm-x64", seed=1)
        b = get_workload("bm-x64", seed=2)
        assert a is not b


@pytest.mark.parametrize("name", WORKLOAD_NAMES)
class TestEveryWorkload:
    def test_generates_and_walks(self, name):
        workload = get_workload(name)
        trace = workload.trace(1500, seed=3)
        trace.validate()
        assert len(trace) == 1500

    def test_nontrivial_static_image(self, name):
        program = get_workload(name).program
        assert program.num_instructions > 500
        assert program.num_static_uops > program.num_instructions

    def test_has_branch_variety(self, name):
        trace = get_workload(name).trace(3000, seed=5)
        stats = trace.branch_stats()
        assert stats.branches > 0
        assert 0 < stats.taken_branches <= stats.branches
        assert 0.02 < stats.branch_density < 0.5


class TestSuiteCharacter:
    """Coarse identity checks: the suite keeps the paper's grouping."""

    def test_x264_has_smallest_footprint(self):
        footprints = {name: get_workload(name).program.num_static_uops
                      for name in WORKLOAD_NAMES}
        assert min(footprints, key=footprints.get) == "bm-x64"

    def test_gcc_among_largest_footprints(self):
        footprints = {name: get_workload(name).program.num_static_uops
                      for name in WORKLOAD_NAMES}
        ranked = sorted(footprints, key=footprints.get, reverse=True)
        assert "bm-cc" in ranked[:3]

    def test_hard_branch_ordering_follows_paper(self):
        """Profiles targeting high paper MPKI use more hard branches than
        the most predictable ones."""
        hardest = WORKLOAD_PROFILES["bm-z"].hard_branch_fraction
        easiest = WORKLOAD_PROFILES["redis"].hard_branch_fraction
        assert hardest > easiest
