"""Unit tests for SimulationResult's derived metrics."""

import pytest

from repro.core.metrics import SimulationResult
from repro.power.decoder import DecoderEnergyReport
from repro.uopcache.entry import EntryTermination


def result(**kwargs):
    r = SimulationResult(workload="w", config_label="c")
    for key, value in kwargs.items():
        setattr(r, key, value)
    return r


class TestDerivedMetrics:
    def test_upc(self):
        assert result(uops=300, cycles=100).upc == pytest.approx(3.0)

    def test_upc_zero_cycles(self):
        assert result(uops=300, cycles=0).upc == 0.0

    def test_ipc(self):
        assert result(instructions=200, cycles=100).ipc == pytest.approx(2.0)

    def test_dispatch_bandwidth(self):
        r = result(uops=600, busy_dispatch_cycles=120)
        assert r.dispatch_bandwidth == pytest.approx(5.0)

    def test_oc_fetch_ratio(self):
        r = result(uops=100, uops_from_uop_cache=80)
        assert r.oc_fetch_ratio == pytest.approx(0.8)

    def test_hit_rate(self):
        r = result(uop_cache_hits=30, uop_cache_lookups=40)
        assert r.uop_cache_hit_rate == pytest.approx(0.75)

    def test_avg_mispredict_latency(self):
        r = result(mispredict_latency_sum=500, branch_mispredicts=10)
        assert r.avg_mispredict_latency == pytest.approx(50.0)

    def test_avg_mispredict_latency_no_mispredicts(self):
        assert result(branch_mispredicts=0).avg_mispredict_latency == 0.0

    def test_branch_mpki(self):
        r = result(branch_mispredicts=5, instructions=1000)
        assert r.branch_mpki == pytest.approx(5.0)

    def test_decoder_power_without_report(self):
        assert result().decoder_power == 0.0

    def test_decoder_power_with_report(self):
        report = DecoderEnergyReport(insts_decoded=10, active_cycles=5,
                                     total_cycles=100, energy=20.0)
        assert result(decoder_report=report).decoder_power == \
            pytest.approx(0.2)

    def test_taken_termination_fraction(self):
        r = result(entry_termination_counts={
            EntryTermination.TAKEN_BRANCH: 49,
            EntryTermination.MAX_UOPS: 51})
        assert r.taken_branch_termination_fraction == pytest.approx(0.49)

    def test_taken_termination_empty(self):
        assert result().taken_branch_termination_fraction == 0.0

    def test_summary_is_flat_floats(self):
        r = result(uops=100, cycles=50, instructions=80,
                   busy_dispatch_cycles=20, uops_from_uop_cache=60)
        summary = r.summary()
        assert all(isinstance(v, (int, float)) for v in summary.values())
        assert summary["upc"] == pytest.approx(2.0)
