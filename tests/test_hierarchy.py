"""Unit tests for the memory hierarchy latency model."""

import pytest

from repro.caches.hierarchy import MemoryHierarchy
from repro.common.config import MemoryHierarchyConfig


@pytest.fixture
def hierarchy():
    return MemoryHierarchy()


class TestInstructionSide:
    def test_cold_fetch_pays_full_chain(self, hierarchy):
        cfg = hierarchy.config
        latency = hierarchy.fetch_instruction_line(0x40_0000)
        full = (cfg.l1i.hit_latency_cycles + cfg.l2.hit_latency_cycles +
                cfg.l3.hit_latency_cycles + cfg.dram_latency_cycles)
        assert latency == full

    def test_warm_fetch_is_l1_hit(self, hierarchy):
        hierarchy.fetch_instruction_line(0x40_0000)
        latency = hierarchy.fetch_instruction_line(0x40_0000)
        assert latency == hierarchy.config.l1i.hit_latency_cycles

    def test_next_line_prefetched(self, hierarchy):
        hierarchy.fetch_instruction_line(0x40_0000)
        latency = hierarchy.fetch_instruction_line(0x40_0040)
        assert latency == hierarchy.config.l1i.hit_latency_cycles

    def test_prefetch_disabled(self):
        cfg = MemoryHierarchyConfig(icache_prefetch=False)
        hierarchy = MemoryHierarchy(cfg)
        hierarchy.fetch_instruction_line(0x40_0000)
        latency = hierarchy.fetch_instruction_line(0x40_0040)
        assert latency > cfg.l1i.hit_latency_cycles

    def test_l2_backs_l1i(self, hierarchy):
        hierarchy.fetch_instruction_line(0x40_0000)
        # Evict from tiny L1I by filling many lines, L2 keeps it.
        stride = 64 * hierarchy.l1i.num_sets
        for way in range(1, hierarchy.l1i.num_ways + 2):
            hierarchy.fetch_instruction_line(0x40_0000 + way * stride)
        latency = hierarchy.fetch_instruction_line(0x40_0000)
        cfg = hierarchy.config
        assert latency == cfg.l1i.hit_latency_cycles + cfg.l2.hit_latency_cycles

    def test_smc_invalidation(self, hierarchy):
        hierarchy.fetch_instruction_line(0x40_0000)
        hierarchy.invalidate_instruction_line(0x40_0000)
        assert not hierarchy.l1i.contains(0x40_0000)


class TestDataSide:
    def test_cold_load(self, hierarchy):
        cfg = hierarchy.config
        latency = hierarchy.access_data(0x10_0000)
        assert latency > cfg.l1d.hit_latency_cycles

    def test_warm_load_hits_l1d(self, hierarchy):
        hierarchy.access_data(0x10_0000)
        assert hierarchy.access_data(0x10_0000) == \
            hierarchy.config.l1d.hit_latency_cycles

    def test_stream_prefetch_covers_next_line(self, hierarchy):
        hierarchy.access_data(0x10_0000)
        assert hierarchy.access_data(0x10_0040) == \
            hierarchy.config.l1d.hit_latency_cycles

    def test_streaming_never_misses_after_first(self, hierarchy):
        first = hierarchy.access_data(0x20_0000)
        latencies = {hierarchy.access_data(0x20_0000 + off)
                     for off in range(8, 64 * 32, 8)}
        assert latencies == {hierarchy.config.l1d.hit_latency_cycles}

    def test_instruction_and_data_share_l2(self, hierarchy):
        hierarchy.fetch_instruction_line(0x40_0000)
        # The unified L2 holds the line, so a (pathological) data access to
        # the same address is at worst an L2 hit.
        cfg = hierarchy.config
        latency = hierarchy.access_data(0x40_0000)
        assert latency <= cfg.l1d.hit_latency_cycles + cfg.l2.hit_latency_cycles
