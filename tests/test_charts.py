"""Tests for the ASCII chart renderer."""

import pytest

from repro.analysis.charts import (
    render_bar_chart,
    render_grouped_bars,
    render_sparkline,
)


class TestBarChart:
    def test_contains_labels_and_values(self):
        text = render_bar_chart({"alpha": 1.0, "beta": 0.5}, title="T")
        assert "T" in text
        assert "alpha" in text and "beta" in text
        assert "1.000" in text and "0.500" in text

    def test_bar_lengths_proportional(self):
        text = render_bar_chart({"big": 1.0, "half": 0.5}, width=40)
        lines = text.splitlines()
        big_bar = lines[0].split("|")[1]
        half_bar = lines[1].split("|")[1]
        assert big_bar.count("█") == 40
        assert 18 <= half_bar.count("█") <= 22

    def test_empty_series(self):
        assert render_bar_chart({}, title="T") == "T"

    def test_zero_max_safe(self):
        text = render_bar_chart({"x": 0.0})
        assert "x" in text

    def test_custom_scale(self):
        text = render_bar_chart({"x": 0.5}, width=10, scale_max=1.0)
        assert text.split("|")[1].count("█") == 5

    def test_values_beyond_scale_clamped(self):
        text = render_bar_chart({"x": 2.0}, width=10, scale_max=1.0)
        assert text.split("|")[1].count("█") == 10


class TestGroupedBars:
    def test_groups_and_columns(self):
        table = {"w1": {"a": 1.0, "b": 1.2}, "w2": {"a": 0.9, "b": 1.1}}
        text = render_grouped_bars(table, title="G")
        assert "G" in text
        assert "w1" in text and "w2" in text
        assert text.count("  a ") == 2

    def test_column_order(self):
        table = {"w": {"b": 1.0, "a": 2.0}}
        text = render_grouped_bars(table, column_order=["a", "b"])
        lines = text.splitlines()
        assert lines[1].strip().startswith("a")

    def test_shared_scale(self):
        table = {"w1": {"a": 2.0}, "w2": {"a": 1.0}}
        text = render_grouped_bars(table, width=20)
        bars = [line.split("|")[1] for line in text.splitlines()
                if "|" in line]
        assert bars[0].count("█") == 20
        assert 8 <= bars[1].count("█") <= 12

    def test_missing_cells_skipped(self):
        table = {"w1": {"a": 1.0}, "w2": {"b": 1.0}}
        text = render_grouped_bars(table, column_order=["a", "b"])
        assert "w1" in text and "w2" in text

    def test_empty(self):
        assert render_grouped_bars({}, title="G") == "G"


class TestSparkline:
    def test_length_matches_values(self):
        assert len(render_sparkline([1, 2, 3, 4])) == 4

    def test_monotone_rise(self):
        spark = render_sparkline([0, 1, 2, 3, 4, 5, 6, 7])
        assert spark == "▁▂▃▄▅▆▇█"

    def test_flat_series(self):
        assert render_sparkline([2, 2, 2]) == "▄▄▄"

    def test_empty(self):
        assert render_sparkline([]) == ""
