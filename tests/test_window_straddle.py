"""PW construction with instructions that straddle the I-cache line boundary,
and multi-entry PW dispatch timing."""

import pytest

from repro.branch.window import PredictionWindowBuilder, PwTermination
from repro.common.config import baseline_config
from repro.core.simulator import Simulator
from repro.isa.instruction import BranchKind, InstClass, X86Instruction
from repro.workloads.program import BasicBlock, Function, Program
from repro.workloads.trace import DynamicInst, Trace


def make_trace(insts, iterations=1):
    program = Program([Function(name="f", blocks=[
        BasicBlock(instructions=list(insts))])])
    records = []
    ordered = sorted(insts, key=lambda i: i.address)
    for _ in range(iterations):
        for inst in ordered:
            next_pc = inst.branch_target if (
                inst.is_branch and inst.branch_target is not None) else \
                inst.end_address
            records.append(DynamicInst(pc=inst.address, next_pc=next_pc,
                                       mem_addr=None))
    return Trace(program, records)


class TestStraddlingInstructions:
    def test_straddler_belongs_to_start_line(self):
        """An instruction whose bytes cross the boundary ends the PW of the
        line containing its first byte."""
        insts = [
            X86Instruction(address=0x1038, length=4,
                           inst_class=InstClass.ALU, uop_count=1),
            X86Instruction(address=0x103C, length=8,   # crosses into 0x1040
                           inst_class=InstClass.ALU, uop_count=1),
            X86Instruction(address=0x1044, length=4,
                           inst_class=InstClass.ALU, uop_count=1),
        ]
        trace = make_trace(insts)
        windows = PredictionWindowBuilder(trace).all_windows()
        assert windows[0].num_instructions == 2
        assert windows[0].termination is PwTermination.LINE_END
        assert windows[1].start_pc == 0x1044

    def test_simulator_fetches_both_lines_for_straddler(self):
        insts = [
            X86Instruction(address=0x103C, length=8,
                           inst_class=InstClass.ALU, uop_count=1),
            X86Instruction(address=0x1044, length=4,
                           inst_class=InstClass.ALU, uop_count=1),
        ]
        trace = make_trace(insts)
        sim = Simulator(trace, baseline_config(2048), "straddle")
        sim.run()
        # Both lines were touched on the instruction side.
        assert sim.hierarchy.l1i.contains(0x1000)
        assert sim.hierarchy.l1i.contains(0x1040)


class TestMultiEntryPwDispatch:
    def test_pw_spanning_two_entries_needs_two_oc_cycles(self):
        """A 12-uop PW exceeds the 8-uop entry limit: on the uop cache path
        it dispatches as two entries in consecutive cycles (Section II-B3)."""
        insts = [X86Instruction(address=0x1000 + i * 2, length=2,
                                inst_class=InstClass.ALU, uop_count=1)
                 for i in range(12)]
        jump = X86Instruction(address=0x1018, length=2,
                              inst_class=InstClass.BRANCH, uop_count=1,
                              branch_kind=BranchKind.UNCONDITIONAL,
                              branch_target=0x1000)
        trace = make_trace(insts + [jump], iterations=30)
        sim = Simulator(trace, baseline_config(2048), "2entry")
        result = sim.run()
        # Steady state: each 13-inst iteration = 2 OC entry dispatches.
        hits_per_iteration = result.uop_cache_hits / 30
        assert 1.8 <= hits_per_iteration <= 2.2
        # Fig. 12 bookkeeping sees multi-entry PWs.
        hist = result.entries_per_pw_histogram
        assert hist.fraction_in(2, 9) > 0.3
