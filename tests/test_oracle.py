"""Tests for the differential-testing oracle (repro.oracle)."""

import dataclasses

import pytest

from repro.common.config import UopCacheConfig
from repro.core.experiment import POLICY_LABELS, policy_config, workload_trace
from repro.core.simulator import Simulator
from repro.isa.uop import uops_storage_bytes
from repro.oracle import (
    DifferentialRunner,
    OracleDivergence,
    ReferenceAccumulator,
    ReferenceFrontEnd,
    ReferenceUopCache,
    resolve_branch_outcomes,
)
from repro.oracle.runner import _first_mismatch
from repro.uopcache.cache import UopCache
from repro.workloads.suite import WORKLOAD_NAMES


def _small_trace(workload="bm-x64", n=2000, seed=7):
    return workload_trace(workload, n, seed=seed)


def _uop(pc, length=4, has_imm=False):
    from repro.isa.uop import Uop, UopKind
    return Uop(pc=pc, inst_length=length, kind=UopKind.ALU,
               slot=0, num_slots=1, has_imm_disp=has_imm)


class TestReferenceUopCache:
    def test_starts_empty(self):
        cache = ReferenceUopCache(UopCacheConfig())
        assert cache.lookup(0x1000) is None
        assert cache.counters["misses"] == 1
        assert cache.counters["hits"] == 0
        assert all(not tags for tags in cache.resident_tags())

    def test_mirrors_optimized_on_identical_fill_stream(self):
        """Feed both caches the same sealed-entry stream via a real run."""
        trace = _small_trace()
        config = policy_config("f-pwac", 256)
        sim = Simulator(trace, config, "f-pwac")
        windows = __import__(
            "repro.branch.window", fromlist=["PredictionWindowBuilder"]
        ).PredictionWindowBuilder(
            trace, line_bytes=config.memory.l1i.line_bytes,
            config=config.branch).all_windows()
        outcomes = resolve_branch_outcomes(trace, config)
        ref = ReferenceFrontEnd(trace, config, windows, outcomes)
        for _ in sim.steps():
            pass
        for _ in ref.steps():
            pass
        assert ref.resident_tags() == sim.uop_cache.resident_tags()


class TestReferenceAccumulator:
    def _accumulator(self, **overrides):
        config = dataclasses.replace(UopCacheConfig(), **overrides)
        return ReferenceAccumulator(config)

    def test_pw_id_captured_at_entry_open_not_seal(self):
        """An entry that stays open across begin() calls keeps the PW id
        current when its first instruction was pushed."""
        acc = self._accumulator()
        acc.begin(0x100)
        assert acc.push([_uop(0x100)], taken=False) == []
        acc.begin(0x200)    # new PW announced while the entry is still open
        sealed = acc.flush()
        assert len(sealed) == 1
        assert sealed[0].pw_id == 0x100

    def test_oversized_instruction_bypasses(self):
        acc = self._accumulator(max_uops_per_entry=2)
        acc.begin(0)
        from repro.isa.uop import Uop, UopKind
        uops = [Uop(pc=0x10, inst_length=4, kind=UopKind.ALU,
                    slot=i, num_slots=3) for i in range(3)]
        assert acc.push(uops, taken=False) == []
        assert acc.bypassed_uops == 3
        assert acc.flush() == []


class TestUopsStorageBytes:
    def test_counts_imm_slots(self):
        plain = _uop(0)
        imm = _uop(4, has_imm=True)
        assert uops_storage_bytes([plain], 7, 4) == 7
        assert uops_storage_bytes([plain, imm], 7, 4) == 18


class TestFirstMismatch:
    def test_none_on_equal(self):
        assert _first_mismatch({"a": 1}, {"a": 1}) is None

    def test_reports_lexically_first_key(self):
        assert _first_mismatch({"a": 1, "b": 2}, {"a": 0, "b": 0}) == "a"

    def test_missing_key_is_a_mismatch(self):
        assert _first_mismatch({"a": 1}, {}) == "a"


class TestDifferentialRunner:
    @pytest.mark.parametrize("design", POLICY_LABELS)
    def test_agrees_on_committed_tree(self, design):
        trace = _small_trace()
        report = DifferentialRunner(
            trace, policy_config(design, 256), design).run()
        assert report.ok, report.divergence
        assert report.actions > 0
        assert report.counters["instructions"] == 2000

    @pytest.mark.slow
    @pytest.mark.parametrize("workload", WORKLOAD_NAMES)
    def test_agrees_across_suite_with_smc(self, workload):
        trace = _small_trace(workload, 3000)
        for design in POLICY_LABELS:
            report = DifferentialRunner(
                trace, policy_config(design, 256), design,
                smc_interval=50, smc_seed=3).run()
            assert report.ok, report.divergence

    def test_rejects_loop_cache_configs(self):
        trace = _small_trace(n=500)
        config = policy_config("baseline", 256)
        config = dataclasses.replace(
            config,
            loop_cache=dataclasses.replace(config.loop_cache, enabled=True))
        with pytest.raises(Exception, match="loop cache"):
            DifferentialRunner(trace, config, "baseline")

    def test_coverage_signals_populated(self):
        trace = _small_trace()
        report = DifferentialRunner(
            trace, policy_config("f-pwac", 128), "f-pwac").run()
        assert any(s.startswith("fill:") for s in report.coverage)
        assert any(s.startswith("event:") for s in report.coverage)

    def test_detects_seeded_counter_bug(self, monkeypatch):
        """Miscounted hits must surface as a divergence, not pass silently."""
        trace = _small_trace(n=1500)
        original = UopCache.lookup

        def lying_lookup(self, pc):
            entry = original(self, pc)
            if entry is not None and self.hits == 5:
                self._hits.increment()      # double-count the fifth hit
            return entry

        monkeypatch.setattr(UopCache, "lookup", lying_lookup)
        report = DifferentialRunner(
            trace, policy_config("clasp", 256), "clasp").run()
        assert not report.ok
        assert report.divergence.counter == "oc_hits"

    def test_divergence_carries_telemetry_events(self, monkeypatch):
        trace = _small_trace(n=1500)
        original = UopCache.lookup

        def lying_lookup(self, pc):
            entry = original(self, pc)
            if entry is not None and self.hits == 5:
                self._hits.increment()
            return entry

        monkeypatch.setattr(UopCache, "lookup", lying_lookup)
        runner = DifferentialRunner(
            trace, policy_config("clasp", 256), "clasp")
        with pytest.raises(OracleDivergence) as excinfo:
            runner.run(raise_on_divergence=True)
        divergence = excinfo.value
        assert divergence.events, "expected telemetry context in the report"
        assert divergence.to_dict()["counter"] == "oc_hits"
        assert "oc_hits" in str(divergence)

    def test_smc_probes_agree(self):
        trace = _small_trace(n=2500)
        report = DifferentialRunner(
            trace, policy_config("pwac", 128), "pwac",
            smc_interval=20, smc_seed=11).run()
        assert report.ok, report.divergence
        assert "behavior:smc" in report.coverage


class TestResolveBranchOutcomes:
    def test_labels_match_simulator_counts(self):
        trace = _small_trace()
        config = policy_config("baseline", 256)
        outcomes = resolve_branch_outcomes(trace, config)
        sim = Simulator(trace, config, "baseline")
        for _ in sim.steps():
            pass
        counters = sim.supply_counters()
        assert len(outcomes) == len(trace.records)
        assert sum(o != "none" for o in outcomes) == counters["branches"]
        assert sum(o == "mispredict" for o in outcomes) == \
            counters["mispredicts"]
        assert sum(o == "decode-resteer" for o in outcomes) == \
            counters["resteers"]
