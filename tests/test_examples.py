"""Smoke tests: the fast example scripts run to completion."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def run_example(name, timeout=240):
    return subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True, text=True, timeout=timeout)


class TestExamples:
    def test_smc_invalidation(self):
        result = run_example("smc_invalidation.py")
        assert result.returncode == 0, result.stderr
        assert "two-set probe" in result.stdout

    def test_quickstart(self):
        result = run_example("quickstart.py")
        assert result.returncode == 0, result.stderr
        assert "UPC improvement" in result.stdout

    def test_custom_workload(self):
        result = run_example("custom_workload.py")
        assert result.returncode == 0, result.stderr
        assert "CLASP+F-PWAC recovers" in result.stdout
