"""Tests for the simlint static analyzer (engine, rules, baseline, CLI).

Each rule gets a positive / suppressed / fixed fixture triple under
``tests/lint_fixtures/``; the engine tests cover suppression mechanics,
scoping, parse errors, and the baseline lifecycle; the CLI tests pin the
exit-code contract CI relies on, including that the committed repository
tree lints clean against the committed baseline.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.lint import (
    Finding,
    LintEngine,
    LintError,
    Severity,
    all_rules,
    apply_baseline,
    load_baseline,
    update_baseline,
    write_baseline,
)

FIXTURES = Path(__file__).resolve().parent / "lint_fixtures"
REPO_ROOT = Path(__file__).resolve().parents[1]

EXPECTED_RULES = {"A1", "A2", "A3", "A4", "A5",
                  "C1", "C2", "C3", "C4", "C5", "D1", "D2", "D3",
                  "F1", "F2", "F3", "F4", "P1", "P2", "P3", "P4", "P5",
                  "X1", "X2", "X3"}


def run_fixture(*names, ignore_scope=True, root=FIXTURES):
    engine = LintEngine(root=root, rules=all_rules(),
                        ignore_scope=ignore_scope)
    return engine.run([FIXTURES / name for name in names])


def rules_of(report):
    return [finding.rule for finding in report.findings]


class TestRegistry:
    def test_all_rules_registered(self):
        assert {rule.id for rule in all_rules()} == EXPECTED_RULES

    def test_rules_have_metadata(self):
        for rule in all_rules():
            assert rule.title, rule.id
            assert rule.rationale, rule.id


class TestD1UnseededRandom:
    def test_violation(self):
        report = run_fixture("d1_violation.py")
        assert rules_of(report) == ["D1", "D1", "D1"]

    def test_suppressed(self):
        report = run_fixture("d1_suppressed.py")
        assert report.findings == []
        assert report.suppressed == 3

    def test_fixed(self):
        report = run_fixture("d1_fixed.py")
        assert report.findings == []


class TestD2SetIteration:
    def test_violation(self):
        report = run_fixture("d2_violation.py")
        assert rules_of(report) == ["D2", "D2", "D2"]

    def test_suppressed(self):
        report = run_fixture("d2_suppressed.py")
        assert report.findings == []
        assert report.suppressed == 1

    def test_fixed(self):
        report = run_fixture("d2_fixed.py")
        assert report.findings == []

    def test_scope_respected(self):
        """D2 only applies to simulation packages; the fixture sits outside
        them, so a scope-respecting run reports nothing."""
        report = run_fixture("d2_violation.py", ignore_scope=False)
        assert report.findings == []


class TestD3WallClock:
    def test_violation(self):
        report = run_fixture("d3_violation.py")
        assert rules_of(report) == ["D3", "D3", "D3"]

    def test_suppressed(self):
        report = run_fixture("d3_suppressed.py")
        assert report.findings == []
        assert report.suppressed == 1

    def test_fixed(self):
        """time.monotonic stays allowed (runner timeouts)."""
        report = run_fixture("d3_fixed.py")
        assert report.findings == []


class TestC1MetricsCrossCheck:
    def test_violation(self):
        report = run_fixture("c1_violation")
        assert rules_of(report) == ["C1", "C1"]
        messages = " | ".join(f.message for f in report.findings)
        assert "dead_counter" in messages          # registered, never written
        assert "cycels_total" in messages          # written, never registered

    def test_suppressed(self):
        report = run_fixture("c1_suppressed")
        assert report.findings == []
        assert report.suppressed == 2

    def test_fixed(self):
        report = run_fixture("c1_fixed")
        assert report.findings == []


class TestC2PostInitMutation:
    def test_violation(self):
        report = run_fixture("c2_violation.py")
        assert rules_of(report) == ["C2", "C2"]

    def test_suppressed(self):
        report = run_fixture("c2_suppressed.py")
        assert report.findings == []
        assert report.suppressed == 1

    def test_fixed(self):
        report = run_fixture("c2_fixed.py")
        assert report.findings == []


class TestC3MutableDefault:
    def test_violation(self):
        report = run_fixture("c3_violation.py")
        assert rules_of(report) == ["C3", "C3", "C3"]

    def test_suppressed(self):
        report = run_fixture("c3_suppressed.py")
        assert report.findings == []
        assert report.suppressed == 1

    def test_fixed(self):
        report = run_fixture("c3_fixed.py")
        assert report.findings == []


class TestC4ExceptionHygiene:
    def test_violation(self):
        report = run_fixture("c4_violation.py")
        assert rules_of(report) == ["C4", "C4"]

    def test_suppressed(self):
        report = run_fixture("c4_suppressed.py")
        assert report.findings == []
        assert report.suppressed == 1

    def test_fixed(self):
        report = run_fixture("c4_fixed.py")
        assert report.findings == []


class TestC5UnorderedSum:
    def test_violation(self):
        report = run_fixture("c5_violation.py")
        assert rules_of(report) == ["C5", "C5"]

    def test_suppressed(self):
        report = run_fixture("c5_suppressed.py")
        assert report.findings == []
        assert report.suppressed == 1

    def test_fixed(self):
        report = run_fixture("c5_fixed.py")
        assert report.findings == []


class TestEngine:
    def test_missing_path_raises(self):
        engine = LintEngine(root=FIXTURES)
        with pytest.raises(LintError):
            engine.run([FIXTURES / "no_such_file.py"])

    def test_parse_error_becomes_finding(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        report = LintEngine(root=tmp_path).run([bad])
        assert rules_of(report) == ["E000"]
        assert report.parse_errors == 1

    def test_file_level_suppression(self, tmp_path):
        source = ("# simlint: disable-file=C3\n"
                  "def run(jobs=[]):\n"
                  "    return jobs\n")
        target = tmp_path / "mod.py"
        target.write_text(source)
        report = LintEngine(root=tmp_path,
                            ignore_scope=True).run([target])
        assert report.findings == []
        assert report.suppressed == 1

    def test_blanket_line_suppression(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("def run(jobs=[]):  # simlint: disable\n"
                          "    return jobs\n")
        report = LintEngine(root=tmp_path, ignore_scope=True).run([target])
        assert report.findings == []
        assert report.suppressed == 1

    def test_disable_next_line_suppresses_following_line(self, tmp_path):
        target = tmp_path / "mod.py"
        target.write_text("# simlint: disable-next-line=C3\n"
                          "def run(jobs=[]):\n"
                          "    return jobs\n")
        report = LintEngine(root=tmp_path, ignore_scope=True).run([target])
        assert report.findings == []
        assert report.suppressed == 1

    def test_disable_next_line_does_not_leak_past_one_line(self, tmp_path):
        """The pragma covers exactly the next line, not the one after."""
        target = tmp_path / "mod.py"
        target.write_text("# simlint: disable-next-line=C3\n"
                          "X = 1\n"
                          "def run(jobs=[]):\n"
                          "    return jobs\n")
        report = LintEngine(root=tmp_path, ignore_scope=True).run([target])
        assert rules_of(report) == ["C3"]
        assert report.suppressed == 0

    def test_findings_sorted_and_relative(self):
        report = run_fixture("d1_violation.py", "c3_violation.py")
        assert report.findings == sorted(report.findings,
                                         key=Finding.sort_key)
        for finding in report.findings:
            assert not Path(finding.path).is_absolute()

    def test_directory_collection_deduplicates(self):
        engine = LintEngine(root=FIXTURES, ignore_scope=True)
        files = engine.collect_files([FIXTURES / "c1_violation",
                                      FIXTURES / "c1_violation" / "sim.py"])
        assert len(files) == len(set(files)) == 2


class TestBaseline:
    FINDING = Finding(rule="C3", path="mod.py", line=3, col=0,
                      message="mutable default", severity=Severity.ERROR)

    def test_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, [self.FINDING, self.FINDING])
        assert load_baseline(path) == {self.FINDING.fingerprint: 2}

    def test_missing_file_is_empty(self, tmp_path):
        assert load_baseline(tmp_path / "none.json") == {}

    def test_corrupt_file_raises(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("[1, 2, 3]")
        with pytest.raises(LintError):
            load_baseline(path)

    def test_apply_counts_and_stale(self):
        moved = Finding(rule="C3", path="mod.py", line=9, col=0,
                        message="mutable default")
        other = Finding(rule="D1", path="mod.py", line=1, col=0,
                        message="unseeded")
        split = apply_baseline([self.FINDING, moved, other],
                               {self.FINDING.fingerprint: 1,
                                "D9::gone.py::fixed long ago": 1})
        # Line moves don't defeat the baseline; only one of the two equal
        # fingerprints is acknowledged, the rest are new.
        assert len(split.baselined) == 1
        assert {f.rule for f in split.new} == {"C3", "D1"}
        assert split.stale == ["D9::gone.py::fixed long ago"]

    def test_update_baseline_intersects(self, tmp_path):
        """Regeneration only shrinks: stale counts drop to the observed
        count, and findings absent from the old baseline stay new."""
        path = tmp_path / "baseline.json"
        write_baseline(path, [self.FINDING, self.FINDING])     # count 2
        unacknowledged = Finding(rule="D1", path="mod.py", line=1, col=0,
                                 message="unseeded")
        counts = update_baseline(path, [self.FINDING, unacknowledged])
        assert counts == {self.FINDING.fingerprint: 1}
        assert load_baseline(path) == {self.FINDING.fingerprint: 1}

    def test_update_baseline_prunes_stale(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline(path, [self.FINDING])
        assert update_baseline(path, []) == {}
        assert load_baseline(path) == {}


class TestCli:
    def test_violation_exits_nonzero(self, capsys):
        code = cli_main(["lint", str(FIXTURES / "c3_violation.py"),
                         "--no-baseline", "--ignore-scope"])
        assert code == 1
        assert "[C3]" in capsys.readouterr().out

    def test_fixed_exits_zero(self, capsys):
        code = cli_main(["lint", str(FIXTURES / "c3_fixed.py"),
                         "--no-baseline"])
        assert code == 0

    def test_json_output(self, capsys):
        code = cli_main(["lint", str(FIXTURES / "d1_violation.py"),
                         "--no-baseline", "--format", "json"])
        assert code == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_version"] == 3
        assert payload["files_checked"] == 1
        assert {f["rule"] for f in payload["findings"]} == {"D1"}

    def test_write_then_pass(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        violation = str(FIXTURES / "c3_violation.py")
        assert cli_main(["lint", violation, "--ignore-scope",
                         "--write-baseline", "--baseline",
                         str(baseline)]) == 0
        assert cli_main(["lint", violation, "--ignore-scope",
                         "--baseline", str(baseline)]) == 0
        capsys.readouterr()

    def test_update_baseline_round_trip(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        violation = str(FIXTURES / "c3_violation.py")
        clean = str(FIXTURES / "c3_fixed.py")
        assert cli_main(["lint", violation, "--ignore-scope",
                         "--write-baseline", "--baseline",
                         str(baseline)]) == 0
        assert load_baseline(baseline)
        # Regenerating against a clean tree prunes every entry...
        assert cli_main(["lint", clean, "--ignore-scope",
                         "--update-baseline", "--baseline",
                         str(baseline)]) == 0
        assert load_baseline(baseline) == {}
        # ...and, unlike --write-baseline, never acknowledges new findings:
        # the regenerated (empty) baseline still fails the violating file.
        assert cli_main(["lint", violation, "--ignore-scope",
                         "--update-baseline", "--baseline",
                         str(baseline)]) == 0
        assert load_baseline(baseline) == {}
        assert cli_main(["lint", violation, "--ignore-scope",
                         "--baseline", str(baseline)]) == 1
        capsys.readouterr()

    def test_stale_baseline_strict(self, tmp_path, capsys):
        baseline = tmp_path / "baseline.json"
        write_baseline(baseline, [TestBaseline.FINDING])
        clean = str(FIXTURES / "c3_fixed.py")
        assert cli_main(["lint", clean, "--baseline", str(baseline)]) == 0
        assert cli_main(["lint", clean, "--baseline", str(baseline),
                         "--strict-baseline"]) == 1
        capsys.readouterr()

    def test_list_rules(self, capsys):
        assert cli_main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in EXPECTED_RULES:
            assert rule_id in out

    def test_bad_path_exits_two(self, capsys):
        assert cli_main(["lint", "does/not/exist", "--no-baseline"]) == 2
        capsys.readouterr()

    def test_repo_tree_lints_clean(self, monkeypatch, capsys):
        """The committed tree must pass ``python -m repro lint src`` against
        the committed baseline — the exact invocation the CI lint job runs."""
        monkeypatch.chdir(REPO_ROOT)
        assert cli_main(["lint", "src"]) == 0
        capsys.readouterr()

    def test_repo_baseline_is_near_empty(self):
        """The committed baseline must not quietly accumulate debt."""
        baseline = load_baseline(REPO_ROOT / ".simlint-baseline.json")
        assert sum(baseline.values()) <= 5

    def test_injected_violation_fails_repo_run(self, monkeypatch, capsys,
                                               tmp_path):
        """Dropping any violating fixture into the linted tree flips the
        repo-level invocation to a non-zero exit."""
        monkeypatch.chdir(REPO_ROOT)
        injected = tmp_path / "injected.py"
        injected.write_text((FIXTURES / "c3_violation.py").read_text())
        assert cli_main(["lint", "src", str(injected)]) == 1
        capsys.readouterr()
