"""Unit tests for the loop cache (loop buffer)."""

import pytest

from repro.common.config import LoopCacheConfig
from repro.frontend.loopcache import LoopCache


def enabled_config(**kwargs):
    defaults = dict(enabled=True, capacity_uops=32,
                    min_iterations_to_capture=3)
    defaults.update(kwargs)
    return LoopCacheConfig(**defaults)


class TestCapture:
    def test_captures_after_threshold(self):
        lc = LoopCache(enabled_config())
        assert not lc.observe_taken_branch(0x1040, 0x1000, body_uops=10)
        assert not lc.observe_taken_branch(0x1040, 0x1000, body_uops=10)
        assert lc.observe_taken_branch(0x1040, 0x1000, body_uops=10)
        assert lc.active
        assert lc.captures == 1

    def test_serves_while_locked(self):
        lc = LoopCache(enabled_config())
        for _ in range(5):
            lc.observe_taken_branch(0x1040, 0x1000, body_uops=10)
        assert lc.uops_served == 30   # iterations 3, 4, 5

    def test_oversized_loop_never_captured(self):
        lc = LoopCache(enabled_config(capacity_uops=8))
        for _ in range(10):
            assert not lc.observe_taken_branch(0x1040, 0x1000, body_uops=20)
        assert not lc.active

    def test_forward_branch_not_a_loop(self):
        lc = LoopCache(enabled_config())
        for _ in range(10):
            assert not lc.observe_taken_branch(0x1000, 0x2000, body_uops=4)
        assert not lc.active

    def test_disabled_never_captures(self):
        lc = LoopCache(LoopCacheConfig(enabled=False))
        for _ in range(10):
            assert not lc.observe_taken_branch(0x1040, 0x1000, body_uops=4)
        assert not lc.active


class TestExit:
    def test_other_flow_unlocks(self):
        lc = LoopCache(enabled_config())
        for _ in range(4):
            lc.observe_taken_branch(0x1040, 0x1000, body_uops=10)
        assert lc.active
        lc.observe_other_flow()
        assert not lc.active

    def test_different_loop_unlocks_then_recaptures(self):
        lc = LoopCache(enabled_config(min_iterations_to_capture=2))
        lc.observe_taken_branch(0x1040, 0x1000, body_uops=10)
        lc.observe_taken_branch(0x1040, 0x1000, body_uops=10)
        assert lc.active
        # A different backward branch begins its own streak.
        lc.observe_taken_branch(0x2040, 0x2000, body_uops=8)
        assert not lc.active
        lc.observe_taken_branch(0x2040, 0x2000, body_uops=8)
        assert lc.active
