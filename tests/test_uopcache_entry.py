"""Unit tests for uop cache entries and the per-entry limit checks."""

import pytest

from repro.common.config import UopCacheConfig
from repro.common.errors import CacheError
from repro.uopcache.entry import EntryBuilder, EntryTermination, UopCacheEntry

from helpers import make_entry, make_uops


CFG = UopCacheConfig()


class TestEntryProperties:
    def test_counts(self):
        entry = make_entry(0x1000, num_insts=3, uops_per_inst=2)
        assert entry.num_uops == 6
        assert entry.num_instructions == 3
        assert entry.end_pc == 0x100C

    def test_imm_count(self):
        entry = make_entry(0x1000, num_insts=2, imm_per_inst=1)
        assert entry.num_imm_disp == 2

    def test_size_bytes(self):
        entry = make_entry(0x1000, num_insts=2, uops_per_inst=2,
                           imm_per_inst=1)
        # 4 uops x 7B + 2 imm x 4B
        assert entry.size_bytes(CFG) == 4 * 7 + 2 * 4

    def test_icache_lines_single(self):
        entry = make_entry(0x1000, num_insts=2)
        assert entry.icache_lines(64) == (0x1000,)
        assert not entry.spans_icache_lines(64)

    def test_icache_lines_spanning(self):
        entry = make_entry(0x1038, num_insts=4, inst_length=4)
        # starts at 0x1038, instructions at 0x1038..0x1044
        assert entry.icache_lines(64) == (0x1000, 0x1040)
        assert entry.spans_icache_lines(64)

    def test_covers_address(self):
        entry = make_entry(0x1000, num_insts=2, inst_length=4)
        assert entry.covers_address(0x1004)
        assert not entry.covers_address(0x1002)

    def test_overlaps_line(self):
        entry = make_entry(0x1000, num_insts=2)
        assert entry.overlaps_line(0x1010)
        assert not entry.overlaps_line(0x1040)

    def test_ucoded_inst_count(self):
        uops = make_uops(0x1000, count=4, micro=True) + \
            make_uops(0x1004, count=4, micro=True)
        entry = UopCacheEntry(start_pc=0x1000, pw_id=0x1000, uops=uops,
                              end_pc=0x1008)
        assert entry.num_ucoded_insts == 2

    def test_entry_ids_unique(self):
        a = make_entry(0x1000)
        b = make_entry(0x1000)
        assert a.entry_id != b.entry_id


class TestEntryBuilder:
    def test_empty_builder(self):
        builder = EntryBuilder(CFG, start_pc=0x1000, pw_id=0x1000)
        assert builder.empty
        assert builder.end_pc == 0x1000

    def test_add_and_seal(self):
        builder = EntryBuilder(CFG, start_pc=0x1000, pw_id=0x1000)
        builder.add_instruction(make_uops(0x1000, 2))
        entry = builder.seal(EntryTermination.TAKEN_BRANCH)
        assert entry.num_uops == 2
        assert entry.termination is EntryTermination.TAKEN_BRANCH
        assert entry.end_pc == 0x1004

    def test_seal_empty_raises(self):
        builder = EntryBuilder(CFG, start_pc=0x1000, pw_id=0x1000)
        with pytest.raises(CacheError):
            builder.seal(EntryTermination.PW_END)

    def test_max_uops_limit(self):
        builder = EntryBuilder(CFG, start_pc=0x1000, pw_id=0x1000)
        for i in range(4):
            builder.add_instruction(make_uops(0x1000 + 4 * i, 2))
        violation = builder.instruction_fits(make_uops(0x1010, 1))
        assert violation is EntryTermination.MAX_UOPS

    def test_max_imm_limit(self):
        builder = EntryBuilder(CFG, start_pc=0x1000, pw_id=0x1000)
        for i in range(4):
            builder.add_instruction(make_uops(0x1000 + 4 * i, 1, imm=1))
        violation = builder.instruction_fits(make_uops(0x1010, 1, imm=1))
        assert violation is EntryTermination.MAX_IMM_DISP

    def test_max_ucode_limit(self):
        cfg = UopCacheConfig(max_ucoded_per_entry=1, max_uops_per_entry=16,
                             line_bytes=256)
        builder = EntryBuilder(cfg, start_pc=0x1000, pw_id=0x1000)
        builder.add_instruction(make_uops(0x1000, 2, micro=True))
        violation = builder.instruction_fits(make_uops(0x1004, 2, micro=True))
        assert violation is EntryTermination.MAX_UCODE

    def test_line_full_limit(self):
        # 7 uops + 4 imms: 49 + 16 = 65 > 62 usable -> LINE_FULL before
        # MAX_UOPS/MAX_IMM.
        builder = EntryBuilder(CFG, start_pc=0x1000, pw_id=0x1000)
        for i in range(3):
            builder.add_instruction(make_uops(0x1000 + 4 * i, 2, imm=1))
        violation = builder.instruction_fits(make_uops(0x100C, 1, imm=1))
        assert violation is EntryTermination.LINE_FULL

    def test_add_violating_instruction_raises(self):
        builder = EntryBuilder(CFG, start_pc=0x1000, pw_id=0x1000)
        for i in range(4):
            builder.add_instruction(make_uops(0x1000 + 4 * i, 2))
        with pytest.raises(CacheError):
            builder.add_instruction(make_uops(0x1010, 1))

    def test_add_empty_instruction_raises(self):
        builder = EntryBuilder(CFG, start_pc=0x1000, pw_id=0x1000)
        with pytest.raises(CacheError):
            builder.add_instruction(())

    def test_whole_instruction_atomicity(self):
        """An instruction's uops all land in one entry or none do."""
        builder = EntryBuilder(CFG, start_pc=0x1000, pw_id=0x1000)
        builder.add_instruction(make_uops(0x1000, 7))
        # 2-uop instruction does not fit (7 + 2 > 8) even though one uop would.
        assert builder.instruction_fits(make_uops(0x1004, 2)) is not None
        assert builder.instruction_fits(make_uops(0x1004, 1)) is None
