"""Workload-engine registry tests and the engine-equivalence differential.

The differential test is the refactor's proof obligation: the default
``SyntheticMarkovEngine`` must reproduce the pre-engine
``generate_workload(profile).trace(...)`` path byte-for-byte — same
dynamic records, same ``SimulationResult.to_dict()`` — for every suite
workload and seed, so routing everything through the registry changed no
existing numbers.
"""

import pytest

from conftest import SUITE_SEEDS
from repro.common.errors import WorkloadError
from repro.core.experiment import policy_config, workload_trace
from repro.core.simulator import Simulator
from repro.workloads.engine import (
    SyntheticMarkovEngine,
    WorkloadEngine,
    create_engine,
    engine_names,
    register_engine,
)
from repro.workloads.generator import generate_workload
from repro.workloads.suite import WORKLOAD_NAMES, get_profile

#: Every engine that generates (rather than replays) a trace.
GENERATIVE_ENGINES = ("synthetic", "phased-static", "phased-dynamic",
                      "oscillating", "adv-fragment", "adv-smc",
                      "adv-pwconflict")


# ------------------------------------------------------------------ registry

def test_registry_lists_all_engines_sorted():
    names = engine_names()
    assert names == tuple(sorted(names))
    assert set(names) == set(GENERATIVE_ENGINES) | {"replay"}


def test_create_engine_unknown_name():
    with pytest.raises(WorkloadError, match="unknown workload engine"):
        create_engine("no-such-engine")


def test_unknown_parameter_rejected():
    with pytest.raises(WorkloadError, match="unknown parameter"):
        create_engine("synthetic", params={"gen_sed": 2})


def test_wrong_parameter_type_rejected():
    with pytest.raises(WorkloadError, match="must be int"):
        create_engine("synthetic", params={"gen_seed": "seven"})


def test_bool_is_not_an_int_parameter():
    with pytest.raises(WorkloadError, match="must be int"):
        create_engine("synthetic", params={"gen_seed": True})


def test_int_coerces_to_float_parameter():
    engine = create_engine("oscillating", params={"cold_fraction": 1})
    assert engine.params["cold_fraction"] == 1.0
    assert isinstance(engine.params["cold_fraction"], float)


def test_required_parameter_enforced():
    with pytest.raises(WorkloadError, match="requires parameter 'path'"):
        create_engine("replay")


def test_register_engine_rejects_duplicates():
    class Impostor(SyntheticMarkovEngine):
        pass

    with pytest.raises(WorkloadError, match="duplicate engine name"):
        register_engine(Impostor)


def test_register_engine_requires_a_name():
    class Nameless(WorkloadEngine):
        def build_trace(self, num_instructions, seed):
            raise NotImplementedError

    with pytest.raises(WorkloadError, match="no engine name"):
        register_engine(Nameless)


def test_describe_is_canonical():
    engine = create_engine("oscillating", workload="redis",
                           params={"cold_fraction": 0.9, "gen_seed": 3})
    described = engine.describe()
    assert described["engine"] == "oscillating"
    assert described["workload"] == "redis"
    assert list(described["params"]) == sorted(described["params"])
    assert described["params"]["cold_fraction"] == 0.9
    assert described["params"]["gen_seed"] == 3


# ------------------------------------------------------- parameter validation

@pytest.mark.parametrize("engine,params", [
    ("oscillating", {"segment_length": 0}),
    ("oscillating", {"hot_fraction": 0.0}),
    ("oscillating", {"cold_fraction": 1.5}),
    ("oscillating", {"hot_fraction": 0.8, "cold_fraction": 0.2}),
    ("adv-fragment", {"num_blocks": 1}),
    ("adv-fragment", {"cond_every": 0}),
    ("adv-smc", {"lines": 1}),
    ("adv-smc", {"back_edge_bias": 1.0}),
    ("adv-smc", {"code_store_fraction": -0.1}),
    ("adv-pwconflict", {"num_functions": 1}),
    ("adv-pwconflict", {"stride": 32}),
])
def test_out_of_range_parameters_rejected(engine, params):
    with pytest.raises(WorkloadError):
        create_engine(engine, params=params)


# ------------------------------------------------------------- engine smokes

@pytest.mark.parametrize("engine", GENERATIVE_ENGINES)
def test_engine_builds_valid_trace_of_exact_length(engine):
    trace = create_engine(engine).build_trace(600, seed=7)
    assert len(trace.records) == 600
    trace.validate()


@pytest.mark.parametrize("engine", GENERATIVE_ENGINES)
def test_engine_is_deterministic(engine):
    first = create_engine(engine).build_trace(400, seed=11)
    second = create_engine(engine).build_trace(400, seed=11)
    assert first.records == second.records


@pytest.mark.parametrize("engine", GENERATIVE_ENGINES)
def test_engine_seed_changes_the_walk(engine):
    one = create_engine(engine).build_trace(400, seed=1)
    two = create_engine(engine).build_trace(400, seed=2)
    assert one.records != two.records


@pytest.mark.parametrize("engine", GENERATIVE_ENGINES)
def test_engine_fast_mode_matches_normal(engine):
    """Counters-only fast mode is bit-identical for every engine."""
    trace = create_engine(engine).build_trace(800, seed=7)
    config = policy_config("f-pwac", 2048)
    normal = Simulator(trace, config, "f-pwac").run()
    fast = Simulator(trace, config.with_fast_mode(), "f-pwac").run()
    assert normal.to_dict() == fast.to_dict()


def test_adversarial_engines_have_distinct_shapes():
    fragment = create_engine("adv-fragment").build_trace(1000, seed=7)
    smc = create_engine("adv-smc").build_trace(1000, seed=7)
    conflict = create_engine("adv-pwconflict").build_trace(1000, seed=7)
    # Fragmentation: every block's terminator straddles a line boundary.
    assert fragment.program.touched_icache_lines() > 1000
    # SMC: tiny hot footprint so invalidation probes always land hot.
    assert smc.program.touched_icache_lines() <= 12
    # PW conflict: every victim entry maps to uop-cache set 0 (stride 2048).
    entries = {f.entry for f in conflict.program.functions[:-1]}
    assert len({entry % 2048 for entry in entries}) == 1


# ------------------------------------------- the equivalence differential

@pytest.mark.parametrize("workload", WORKLOAD_NAMES)
@pytest.mark.parametrize("seed", SUITE_SEEDS)
def test_synthetic_engine_matches_pre_refactor_records(workload, seed):
    """Same dynamic stream as the direct generate-then-walk path."""
    legacy = generate_workload(get_profile(workload), seed=1).trace(
        1200, seed=seed)
    engine = create_engine("synthetic", workload=workload).build_trace(
        1200, seed=seed)
    assert engine.records == legacy.records


@pytest.mark.parametrize("workload", WORKLOAD_NAMES)
def test_synthetic_engine_matches_pre_refactor_results(workload):
    """Byte-identical SimulationResult through the public trace path."""
    legacy_trace = generate_workload(get_profile(workload), seed=1).trace(
        1200, seed=SUITE_SEEDS[0])
    config = policy_config("pwac", 2048)
    legacy = Simulator(legacy_trace, config, "pwac").run().to_dict()
    routed_trace = workload_trace(workload, 1200, seed=SUITE_SEEDS[0])
    routed = Simulator(routed_trace, config, "pwac").run().to_dict()
    assert routed == legacy
