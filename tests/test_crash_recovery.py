"""The end-to-end crash story: a real sweep process is SIGKILLed mid-flight
and the resumed run must produce exactly what an uninterrupted run would.

Unlike the in-process fault-plan tests, nothing here is simulated: a child
interpreter runs the sweep with a checkpoint journal, the test kills it with
SIGKILL (no atexit, no cleanup, possibly mid-write), and resume has to cope
with whatever the journal looks like at that instant — including a torn
trailing record.
"""

import os
import signal
import subprocess
import sys
import time

import pytest

from repro.core.experiment import run_policy_sweep
from repro.runner import RunnerConfig

WORKLOADS = ["bm-x64", "bm-lla"]
LABELS = ("baseline", "clasp")
#: Big enough that each job takes a meaningful fraction of a second, so
#: SIGKILL reliably lands while later jobs are still unstarted.
INSTRUCTIONS = 60_000

_CHILD_SCRIPT = """
import sys
from repro.core.experiment import run_policy_sweep
from repro.runner import RunnerConfig

run_policy_sweep(workloads={workloads!r}, labels={labels!r},
                 num_instructions={instructions}, seed=7,
                 runner=RunnerConfig(jobs=1, checkpoint_dir={ckpt!r}))
"""


def _journal_records(path):
    if not path.exists():
        return 0
    return sum(1 for line in path.read_bytes().split(b"\n") if line.strip())


@pytest.mark.slow
def test_sigkill_mid_sweep_then_resume_matches_uninterrupted(tmp_path):
    ckpt = tmp_path / "ckpt"
    script = _CHILD_SCRIPT.format(workloads=WORKLOADS, labels=list(LABELS),
                                  instructions=INSTRUCTIONS,
                                  ckpt=str(ckpt))
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        filter(None, ["src", env.get("PYTHONPATH")]))
    child = subprocess.Popen([sys.executable, "-c", script], env=env,
                             cwd=os.path.dirname(os.path.dirname(
                                 os.path.abspath(__file__))))

    # Kill as soon as the first result hits the journal: at least one job
    # is checkpointed, at least one is still in flight or unstarted.
    journal = ckpt / "journal.jsonl"
    deadline = time.monotonic() + 120.0
    while _journal_records(journal) < 1:
        if child.poll() is not None:
            pytest.fail("sweep finished before it could be killed; "
                        "raise INSTRUCTIONS")
        if time.monotonic() > deadline:
            child.kill()
            pytest.fail("sweep produced no checkpoint record in time")
        time.sleep(0.01)
    child.send_signal(signal.SIGKILL)
    child.wait(timeout=30)
    assert child.returncode == -signal.SIGKILL

    interrupted_records = _journal_records(journal)
    total_jobs = len(WORKLOADS) * len(LABELS)
    assert 1 <= interrupted_records < total_jobs

    # Resume from whatever the kill left behind...
    resumed = run_policy_sweep(
        workloads=WORKLOADS, labels=LABELS,
        num_instructions=INSTRUCTIONS, seed=7,
        runner=RunnerConfig(jobs=1, checkpoint_dir=ckpt, resume=True))
    assert resumed.report.ok
    assert len(resumed.report.resumed) >= 1       # journal was actually used
    assert len(resumed.report.resumed) + len(resumed.report.executed) == \
        total_jobs

    # ...and the final state must be indistinguishable from a run that was
    # never interrupted.
    clean = run_policy_sweep(workloads=WORKLOADS, labels=LABELS,
                             num_instructions=INSTRUCTIONS, seed=7,
                             runner=RunnerConfig(jobs=1))
    assert resumed.results == clean.results
