"""Unit tests for replacement policies."""

import pytest

from repro.caches.replacement import Srrip, TreePlru, TrueLru, make_policy
from repro.common.config import ReplacementKind
from repro.common.errors import CacheError


class TestTrueLru:
    def test_victim_prefers_invalid(self):
        lru = TrueLru(1, 4)
        assert lru.victim(0, [True, False, True, True]) == 1

    def test_victim_is_least_recent(self):
        lru = TrueLru(1, 4)
        for way in (0, 1, 2, 3):
            lru.on_fill(0, way)
        lru.on_hit(0, 0)
        assert lru.victim(0, [True] * 4) == 1

    def test_hit_moves_to_mru(self):
        lru = TrueLru(1, 4)
        for way in (0, 1, 2, 3):
            lru.on_fill(0, way)
        lru.on_hit(0, 1)
        assert lru.mru_way(0) == 1
        assert lru.recency_order(0)[-1] == 1

    def test_recency_order_is_permutation(self):
        lru = TrueLru(2, 8)
        lru.on_hit(1, 5)
        lru.on_hit(1, 2)
        order = lru.recency_order(1)
        assert sorted(order) == list(range(8))
        assert order[-1] == 2
        assert order[-2] == 5

    def test_sets_independent(self):
        lru = TrueLru(2, 2)
        lru.on_hit(0, 1)
        assert lru.victim(1, [True, True]) == 0

    def test_bad_way_rejected(self):
        with pytest.raises(CacheError):
            TrueLru(1, 2).on_hit(0, 5)

    def test_bad_set_rejected(self):
        with pytest.raises(CacheError):
            TrueLru(1, 2).on_hit(3, 0)


class TestTreePlru:
    def test_requires_pow2_ways(self):
        with pytest.raises(CacheError):
            TreePlru(1, 6)

    def test_victim_prefers_invalid(self):
        plru = TreePlru(1, 4)
        assert plru.victim(0, [True, True, False, True]) == 2

    def test_recently_touched_not_victim(self):
        plru = TreePlru(1, 8)
        for way in range(8):
            plru.on_fill(0, way)
        plru.on_hit(0, 3)
        assert plru.victim(0, [True] * 8) != 3

    def test_all_ways_reachable_as_victims(self):
        plru = TreePlru(1, 4)
        victims = set()
        for _ in range(16):
            way = plru.victim(0, [True] * 4)
            victims.add(way)
            plru.on_fill(0, way)
        assert victims == {0, 1, 2, 3}


class TestSrrip:
    def test_victim_prefers_invalid(self):
        rrip = Srrip(1, 4)
        assert rrip.victim(0, [True, False, True, True]) == 1

    def test_hit_protects_line(self):
        rrip = Srrip(1, 4)
        for way in range(4):
            rrip.on_fill(0, way)
        rrip.on_hit(0, 2)
        # Way 2 has RRPV 0; the others 2 -> victim must not be 2.
        assert rrip.victim(0, [True] * 4) != 2

    def test_aging_terminates(self):
        rrip = Srrip(1, 2)
        rrip.on_hit(0, 0)
        rrip.on_hit(0, 1)
        way = rrip.victim(0, [True, True])
        assert way in (0, 1)


class TestFactory:
    def test_make_all_kinds(self):
        assert isinstance(make_policy(ReplacementKind.LRU, 2, 2), TrueLru)
        assert isinstance(make_policy(ReplacementKind.TREE_PLRU, 2, 2), TreePlru)
        assert isinstance(make_policy(ReplacementKind.RRIP, 2, 2), Srrip)
