"""Integration tests for the full simulator."""

import pytest

from repro.common.config import (
    CompactionPolicy,
    baseline_config,
    clasp_config,
    compaction_config,
)
from repro.core.simulator import Simulator, simulate
from repro.workloads.generator import WorkloadProfile, generate_workload

PROFILE = WorkloadProfile(name="sim-test", num_functions=48,
                          blocks_per_function=(3, 8), insts_per_block=(1, 6),
                          hard_branch_fraction=0.05)


@pytest.fixture(scope="module")
def trace():
    return generate_workload(PROFILE, seed=2).trace(20_000, seed=3)


class TestBasicRun:
    def test_runs_to_completion(self, trace):
        result = simulate(trace, baseline_config(2048), "b2k")
        assert result.instructions == len(trace)
        assert result.cycles > 0
        assert result.uops >= result.instructions

    def test_uop_conservation(self, trace):
        """Every uop is supplied by exactly one source."""
        result = simulate(trace, baseline_config(2048), "b2k")
        assert result.uops == (result.uops_from_uop_cache +
                               result.uops_from_decoder +
                               result.uops_from_loop_cache)
        assert result.uops == trace.num_dynamic_uops

    def test_deterministic(self, trace):
        a = simulate(trace, baseline_config(2048), "x")
        b = simulate(trace, baseline_config(2048), "x")
        assert a.cycles == b.cycles
        assert a.uops == b.uops
        assert a.branch_mispredicts == b.branch_mispredicts

    def test_max_instructions_cap(self, trace):
        config = baseline_config(2048)
        import dataclasses
        config = dataclasses.replace(config, max_instructions=5000)
        result = simulate(trace, config, "capped")
        assert result.instructions == 5000

    def test_default_label(self, trace):
        sim = Simulator(trace, compaction_config(CompactionPolicy.RAC, 4096))
        assert sim.config_label == "oc4096+clasp+rac"

    def test_summary_keys(self, trace):
        summary = simulate(trace, baseline_config(2048), "b").summary()
        for key in ("upc", "oc_fetch_ratio", "decoder_power", "branch_mpki"):
            assert key in summary

    def test_uop_cache_invariants_after_run(self, trace):
        sim = Simulator(trace, compaction_config(CompactionPolicy.F_PWAC,
                                                 2048))
        sim.run()
        sim.uop_cache.check_invariants()


class TestPaperOrderings:
    """Qualitative relationships the paper establishes must hold."""

    def test_bigger_cache_higher_fetch_ratio(self, trace):
        small = simulate(trace, baseline_config(2048), "2k")
        large = simulate(trace, baseline_config(16384), "16k")
        assert large.oc_fetch_ratio >= small.oc_fetch_ratio

    def test_bigger_cache_lower_decoder_power(self, trace):
        small = simulate(trace, baseline_config(2048), "2k")
        large = simulate(trace, baseline_config(16384), "16k")
        assert large.decoder_power <= small.decoder_power

    def test_bigger_cache_no_worse_upc(self, trace):
        small = simulate(trace, baseline_config(2048), "2k")
        large = simulate(trace, baseline_config(16384), "16k")
        assert large.upc >= small.upc * 0.995

    def test_compaction_beats_baseline_fetch_ratio(self, trace):
        base = simulate(trace, baseline_config(2048), "base")
        fpwac = simulate(trace,
                         compaction_config(CompactionPolicy.F_PWAC, 2048),
                         "fpwac")
        assert fpwac.oc_fetch_ratio >= base.oc_fetch_ratio

    def test_compaction_saves_decoder_power(self, trace):
        base = simulate(trace, baseline_config(2048), "base")
        fpwac = simulate(trace,
                         compaction_config(CompactionPolicy.F_PWAC, 2048),
                         "fpwac")
        assert fpwac.decoder_power <= base.decoder_power

    def test_clasp_produces_spanning_entries(self, trace):
        base = simulate(trace, baseline_config(2048), "base")
        clasp = simulate(trace, clasp_config(2048), "clasp")
        assert base.entries_spanning_lines_fraction == 0.0
        assert clasp.entries_spanning_lines_fraction > 0.0

    def test_compaction_compacts(self, trace):
        fpwac = simulate(trace,
                         compaction_config(CompactionPolicy.F_PWAC, 2048),
                         "fpwac")
        assert fpwac.compacted_fill_fraction > 0.0
        assert fpwac.compacted_line_fraction > 0.0

    def test_baseline_never_compacts(self, trace):
        base = simulate(trace, baseline_config(2048), "base")
        assert base.compacted_fill_fraction == 0.0

    def test_entry_sizes_bounded_by_line(self, trace):
        result = simulate(trace, baseline_config(2048), "base")
        sizes = result.entry_size_histogram.counts
        assert max(sizes) <= 62
        assert min(sizes) >= 7

    def test_entries_per_pw_small(self, trace):
        result = simulate(trace, baseline_config(2048), "base")
        hist = result.entries_per_pw_histogram
        assert hist.total > 0
        # Most PWs map to 1-3 entries (Fig. 12).
        assert hist.fraction_in(1, 3) > 0.9


class TestMetricsDerivation:
    def test_upc_matches_components(self, trace):
        result = simulate(trace, baseline_config(2048), "b")
        assert result.upc == pytest.approx(result.uops / result.cycles)

    def test_fetch_ratio_in_unit_interval(self, trace):
        result = simulate(trace, baseline_config(2048), "b")
        assert 0.0 <= result.oc_fetch_ratio <= 1.0

    def test_mpki_consistent(self, trace):
        result = simulate(trace, baseline_config(2048), "b")
        assert result.branch_mpki == pytest.approx(
            1000 * result.branch_mispredicts / result.instructions)

    def test_mispredict_latency_positive(self, trace):
        result = simulate(trace, baseline_config(2048), "b")
        if result.branch_mispredicts:
            assert result.avg_mispredict_latency > 0
