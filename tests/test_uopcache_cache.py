"""Unit tests for the uop cache structure: lookup, fill, eviction, invalidate."""

import pytest

from repro.common.config import CompactionPolicy, UopCacheConfig
from repro.common.errors import CacheError
from repro.uopcache.cache import FillKind, UopCache
from repro.uopcache.entry import EntryTermination

from helpers import make_entry, small_oc_config


def make_cache(**kwargs):
    return UopCache(small_oc_config(**kwargs))


class TestIndexing:
    def test_same_line_same_set(self):
        cache = make_cache()
        assert cache.set_index(0x1000) == cache.set_index(0x103F)

    def test_consecutive_lines_consecutive_sets(self):
        cache = make_cache()
        a = cache.set_index(0x1000)
        b = cache.set_index(0x1040)
        assert b == (a + 1) % cache.config.num_sets


class TestLookupFill:
    def test_cold_miss(self):
        cache = make_cache()
        assert cache.lookup(0x1000) is None
        assert cache.misses == 1

    def test_fill_then_hit(self):
        cache = make_cache()
        entry = make_entry(0x1000)
        result = cache.fill(entry)
        assert result.kind is FillKind.ALLOC
        hit = cache.lookup(0x1000)
        assert hit is entry
        assert cache.hits == 1

    def test_lookup_requires_exact_start(self):
        cache = make_cache()
        cache.fill(make_entry(0x1000, num_insts=4))
        assert cache.lookup(0x1004) is None

    def test_entries_at_different_offsets_coexist(self):
        """Both 'B' and 'AB' instances live in the same set (Section II-B4)."""
        cache = make_cache()
        ab = make_entry(0x1000, num_insts=4)   # covers 0x1000..0x1010
        b = make_entry(0x1008, num_insts=2)    # starts mid-range
        cache.fill(ab)
        cache.fill(b)
        assert cache.lookup(0x1000) is ab
        assert cache.lookup(0x1008) is b

    def test_duplicate_fill_ignored(self):
        cache = make_cache()
        cache.fill(make_entry(0x1000))
        result = cache.fill(make_entry(0x1000))
        assert result.kind is FillKind.DUPLICATE
        assert cache.fill_kind_counts[FillKind.DUPLICATE] == 1

    def test_eviction_on_full_set(self):
        cache = make_cache()  # 4 sets x 2 ways
        stride = 64 * cache.config.num_sets
        e0 = make_entry(0x1000)
        e1 = make_entry(0x1000 + stride)
        e2 = make_entry(0x1000 + 2 * stride)
        cache.fill(e0)
        cache.fill(e1)
        result = cache.fill(e2)
        assert result.evicted == [e0]
        assert cache.lookup(0x1000) is None

    def test_lru_protects_hit_entry(self):
        cache = make_cache()
        stride = 64 * cache.config.num_sets
        e0 = make_entry(0x1000)
        e1 = make_entry(0x1000 + stride)
        cache.fill(e0)
        cache.fill(e1)
        cache.lookup(0x1000)             # refresh e0
        result = cache.fill(make_entry(0x1000 + 2 * stride))
        assert result.evicted == [e1]

    def test_oversized_entry_rejected(self):
        cache = make_cache()
        with pytest.raises(CacheError):
            cache.fill(make_entry(0x1000, num_insts=10, uops_per_inst=1,
                                  imm_per_inst=1))

    def test_malformed_entry_rejected(self):
        from repro.uopcache.entry import UopCacheEntry
        from helpers import make_uops
        bad = UopCacheEntry(start_pc=0x1000, pw_id=0x1000,
                            uops=make_uops(0x1000, 1), end_pc=0x0FF0)
        cache = make_cache()
        with pytest.raises(CacheError):
            cache.fill(bad)

    def test_probe_does_not_update_stats(self):
        cache = make_cache()
        cache.fill(make_entry(0x1000))
        assert cache.probe(0x1000)
        assert not cache.probe(0x2000)
        assert cache.hits == 0 and cache.misses == 0


class TestStats:
    def test_entry_size_histogram_records_fills(self):
        cache = make_cache()
        cache.fill(make_entry(0x1000, num_insts=2))   # 2 uops = 14B
        assert cache.entry_size_histogram.total == 1
        assert cache.entry_size_histogram.mean() == 14.0

    def test_termination_counts(self):
        cache = make_cache()
        cache.fill(make_entry(0x1000,
                              termination=EntryTermination.TAKEN_BRANCH))
        cache.fill(make_entry(0x2000,
                              termination=EntryTermination.MAX_UOPS))
        counts = cache.termination_counts
        assert counts[EntryTermination.TAKEN_BRANCH] == 1
        assert counts[EntryTermination.MAX_UOPS] == 1

    def test_spanning_fraction(self):
        cache = UopCache(small_oc_config(clasp=True))
        cache.fill(make_entry(0x1038, num_insts=4))   # spans 2 lines
        cache.fill(make_entry(0x2000, num_insts=2))
        assert cache.spanning_fill_fraction == pytest.approx(0.5)

    def test_resident_counts(self):
        cache = make_cache()
        cache.fill(make_entry(0x1000, num_insts=3))
        assert cache.resident_entries() == 1
        assert cache.resident_uops() == 3

    def test_utilization(self):
        cache = make_cache()
        cache.fill(make_entry(0x1000, num_insts=2))   # 14B of 62B
        assert cache.utilization() == pytest.approx(14 / 62)

    def test_flush(self):
        cache = make_cache()
        cache.fill(make_entry(0x1000))
        cache.flush()
        assert cache.resident_entries() == 0
        assert cache.lookup(0x1000) is None


class TestInvalidation:
    def test_invalidates_entries_in_line(self):
        cache = make_cache()
        cache.fill(make_entry(0x1000))
        removed = cache.invalidate_icache_line(0x1000)
        assert removed == 1
        assert cache.lookup(0x1000) is None

    def test_unrelated_lines_survive(self):
        cache = make_cache()
        cache.fill(make_entry(0x1000))
        cache.fill(make_entry(0x2000))
        cache.invalidate_icache_line(0x1000)
        assert cache.lookup(0x2000) is not None

    def test_mid_line_address_normalized(self):
        cache = make_cache()
        cache.fill(make_entry(0x1008))
        assert cache.invalidate_icache_line(0x1020) == 1

    def test_clasp_probe_reaches_spanning_entry(self):
        """A CLASP entry starting in line L-1 spanning into L must be found
        by an invalidating probe for L (Section V-A)."""
        cache = UopCache(small_oc_config(clasp=True))
        spanning = make_entry(0x1038, num_insts=4)  # 0x1038..0x1048
        cache.fill(spanning)
        removed = cache.invalidate_icache_line(0x1040)
        assert removed == 1

    def test_baseline_probe_single_set(self):
        cache = make_cache()
        cache.fill(make_entry(0x1000))
        # Probing the NEXT line should not remove the entry.
        assert cache.invalidate_icache_line(0x1040) == 0
        assert cache.lookup(0x1000) is not None

    def test_invariants_after_invalidate(self):
        cache = UopCache(small_oc_config(clasp=True))
        for i in range(12):
            cache.fill(make_entry(0x1000 + i * 64, num_insts=2))
        cache.invalidate_icache_line(0x1040)
        cache.check_invariants()


class TestInvariants:
    def test_fresh_cache_consistent(self):
        make_cache().check_invariants()

    def test_after_heavy_fill_traffic(self):
        cache = make_cache()
        for i in range(100):
            cache.fill(make_entry(0x1000 + i * 48, num_insts=2))
        cache.check_invariants()
