"""Shared factories for uop-cache tests."""

from typing import List, Optional, Sequence, Tuple

from repro.common.config import UopCacheConfig
from repro.isa.instruction import BranchKind
from repro.isa.uop import Uop, UopKind
from repro.uopcache.entry import EntryTermination, UopCacheEntry


def make_uops(pc: int, count: int = 1, inst_length: int = 4,
              imm: int = 0, micro: bool = False,
              branch_kind: BranchKind = BranchKind.NONE,
              branch_target: Optional[int] = None) -> Tuple[Uop, ...]:
    """Uops of a single synthetic instruction at ``pc``."""
    uops = []
    for slot in range(count):
        is_branch_slot = branch_kind is not BranchKind.NONE and \
            slot == count - 1
        uops.append(Uop(
            pc=pc,
            inst_length=inst_length,
            kind=UopKind.BRANCH if is_branch_slot else UopKind.ALU,
            slot=slot,
            num_slots=count,
            has_imm_disp=slot < imm,
            is_microcoded=micro,
            branch_kind=branch_kind if is_branch_slot else BranchKind.NONE,
            branch_target=branch_target if is_branch_slot else None,
        ))
    return tuple(uops)


def make_entry(start_pc: int, num_insts: int = 2, uops_per_inst: int = 1,
               inst_length: int = 4, pw_id: Optional[int] = None,
               imm_per_inst: int = 0,
               termination: EntryTermination = EntryTermination.TAKEN_BRANCH
               ) -> UopCacheEntry:
    """A sealed entry covering ``num_insts`` sequential instructions."""
    uops: List[Uop] = []
    pc = start_pc
    for _ in range(num_insts):
        uops.extend(make_uops(pc, count=uops_per_inst,
                              inst_length=inst_length, imm=imm_per_inst))
        pc += inst_length
    return UopCacheEntry(
        start_pc=start_pc,
        pw_id=pw_id if pw_id is not None else start_pc,
        uops=tuple(uops),
        end_pc=pc,
        termination=termination,
    )


def small_oc_config(**kwargs) -> UopCacheConfig:
    defaults = dict(num_sets=4, associativity=2)
    defaults.update(kwargs)
    return UopCacheConfig(**defaults)
