"""Unit tests for the decoder power model."""

import pytest

from repro.common.config import PowerConfig
from repro.power.decoder import DecoderPowerModel


class TestDecoderPower:
    def test_no_activity_idle_energy_only(self):
        model = DecoderPowerModel(PowerConfig(
            decode_energy_per_inst=1.0, decoder_active_cycle_energy=0.5,
            decoder_idle_cycle_energy=0.1))
        report = model.report(total_cycles=100)
        assert report.energy == pytest.approx(10.0)
        assert report.power == pytest.approx(0.1)

    def test_burst_energy(self):
        model = DecoderPowerModel(PowerConfig(
            decode_energy_per_inst=1.0, decoder_active_cycle_energy=0.5,
            decoder_idle_cycle_energy=0.0))
        model.record_decode_burst(num_insts=8, cycles=2)
        report = model.report(total_cycles=10)
        assert report.insts_decoded == 8
        assert report.active_cycles == 2
        assert report.energy == pytest.approx(8 * 1.0 + 2 * 0.5)

    def test_power_normalization_behaviour(self):
        """Fewer decoded instructions at equal cycles => lower power."""
        heavy = DecoderPowerModel()
        light = DecoderPowerModel()
        heavy.record_decode_burst(1000, 250)
        light.record_decode_burst(100, 25)
        assert light.report(10_000).power < heavy.report(10_000).power

    def test_negative_burst_rejected(self):
        with pytest.raises(ValueError):
            DecoderPowerModel().record_decode_burst(-1, 0)

    def test_zero_cycles_report(self):
        assert DecoderPowerModel().report(0).power == 0.0

    def test_accumulation(self):
        model = DecoderPowerModel()
        model.record_decode_burst(4, 1)
        model.record_decode_burst(6, 2)
        report = model.report(100)
        assert report.insts_decoded == 10
        assert report.active_cycles == 3
