"""Tests for the experiment harness (sweeps, normalization, aggregation)."""

import pytest

from repro.common.config import CompactionPolicy
from repro.common.errors import ReproError
import repro.core.experiment as experiment
from repro.core.experiment import (
    CAPACITY_SWEEP,
    POLICY_LABELS,
    SweepResult,
    clear_trace_cache,
    policy_config,
    run_capacity_sweep,
    run_policy_sweep,
    run_single,
    workload_trace,
)
from repro.core.metrics import SimulationResult


class TestPolicyConfig:
    def test_baseline(self):
        cfg = policy_config("baseline", 4096)
        assert not cfg.uop_cache.clasp
        assert cfg.uop_cache.capacity_uops == 4096

    def test_clasp(self):
        cfg = policy_config("clasp")
        assert cfg.uop_cache.clasp
        assert cfg.uop_cache.compaction is CompactionPolicy.NONE

    @pytest.mark.parametrize("label,policy", [
        ("rac", CompactionPolicy.RAC),
        ("pwac", CompactionPolicy.PWAC),
        ("f-pwac", CompactionPolicy.F_PWAC),
    ])
    def test_compaction_labels(self, label, policy):
        cfg = policy_config(label)
        assert cfg.uop_cache.compaction is policy
        assert cfg.uop_cache.clasp   # paper: compaction results enable CLASP

    def test_unknown_label_raises(self):
        with pytest.raises(ValueError):
            policy_config("magic")

    def test_max_entries_propagates(self):
        cfg = policy_config("rac", max_entries_per_line=3)
        assert cfg.uop_cache.max_entries_per_line == 3


class TestTraceCache:
    def test_trace_memoised(self):
        a = workload_trace("bm-x64", 2000)
        b = workload_trace("bm-x64", 2000)
        assert a is b

    def test_different_lengths_differ(self):
        a = workload_trace("bm-x64", 2000)
        b = workload_trace("bm-x64", 3000)
        assert a is not b

    def test_different_seeds_differ(self):
        a = workload_trace("bm-x64", 2000, seed=7)
        b = workload_trace("bm-x64", 2000, seed=8)
        assert a is not b

    def test_cache_is_bounded(self, monkeypatch):
        monkeypatch.setattr(experiment, "_TRACE_CACHE_MAX_ENTRIES", 2)
        clear_trace_cache()
        for seed in range(4):
            workload_trace("bm-x64", 1000, seed=seed)
        assert len(experiment._trace_cache) == 2
        # Most recently used entries survive.
        assert ("bm-x64", 1000, 3, "synthetic", ()) in \
            experiment._trace_cache
        clear_trace_cache()


def _result(workload, label, upc, power=1.0):
    result = SimulationResult(workload=workload, config_label=label)
    result.cycles = 1000
    result.uops = int(upc * 1000)
    result.decoder_report = None
    return result


class TestSweepResult:
    def _sweep(self):
        sweep = SweepResult()
        sweep.add(_result("w1", "a", 1.0))
        sweep.add(_result("w1", "b", 1.2))
        sweep.add(_result("w2", "a", 2.0))
        sweep.add(_result("w2", "b", 2.2))
        return sweep

    def test_workloads_and_labels(self):
        sweep = self._sweep()
        assert sweep.workloads() == ["w1", "w2"]
        assert sweep.labels() == ["a", "b"]

    def test_normalized(self):
        sweep = self._sweep()
        table = sweep.normalized(lambda r: r.upc, "a")
        assert table["w1"]["a"] == pytest.approx(1.0)
        assert table["w1"]["b"] == pytest.approx(1.2)
        assert table["w2"]["b"] == pytest.approx(1.1)

    def test_improvement_percent(self):
        sweep = self._sweep()
        table = sweep.improvement_percent(lambda r: r.upc, "a")
        assert table["w1"]["b"] == pytest.approx(20.0)

    def test_mean_over_workloads(self):
        sweep = self._sweep()
        normalized = sweep.normalized(lambda r: r.upc, "a")
        means = sweep.mean_over_workloads(normalized)
        assert means["b"] == pytest.approx((1.2 + 1.1) / 2)

    def test_geometric_mean(self):
        sweep = self._sweep()
        normalized = sweep.normalized(lambda r: r.upc, "a")
        means = sweep.mean_over_workloads(normalized, geometric=True)
        assert means["b"] == pytest.approx((1.2 * 1.1) ** 0.5)


class TestPartialSweepResult:
    """Behaviour when jobs were quarantined (missing cells in the table)."""

    def _partial_sweep(self):
        # w2 is missing label "b" (e.g. its job was quarantined).
        sweep = SweepResult()
        sweep.add(_result("w1", "a", 1.0))
        sweep.add(_result("w1", "b", 1.2))
        sweep.add(_result("w2", "a", 2.0))
        return sweep

    def test_metric_names_missing_workload(self):
        sweep = self._partial_sweep()
        with pytest.raises(ReproError, match="'w3'"):
            sweep.metric("w3", "a", lambda r: r.upc)

    def test_metric_names_missing_label(self):
        sweep = self._partial_sweep()
        with pytest.raises(ReproError, match="'b'"):
            sweep.metric("w2", "b", lambda r: r.upc)

    def test_metric_present_cell_still_works(self):
        sweep = self._partial_sweep()
        assert sweep.metric("w2", "a", lambda r: r.upc) == pytest.approx(2.0)

    def test_normalized_missing_reference_raises(self):
        sweep = self._partial_sweep()
        with pytest.raises(ReproError, match="'b'.*'w2'"):
            sweep.normalized(lambda r: r.upc, "b")

    def test_normalized_skip_missing_drops_row(self):
        sweep = self._partial_sweep()
        table = sweep.normalized(lambda r: r.upc, "b", skip_missing=True)
        assert list(table) == ["w1"]

    def test_labels_are_the_union(self):
        sweep = self._partial_sweep()
        assert sweep.labels() == ["a", "b"]

    def test_mean_over_workloads_tolerates_partial_table(self):
        sweep = self._partial_sweep()
        table = sweep.normalized(lambda r: r.upc, "a")
        means = sweep.mean_over_workloads(table)
        assert means["a"] == pytest.approx(1.0)
        assert means["b"] == pytest.approx(1.2)   # only w1 has it

    def test_mean_over_workloads_omits_empty_labels(self):
        sweep = self._partial_sweep()
        means = sweep.mean_over_workloads({"w1": {"a": 1.0}, "w2": {"a": 2.0}})
        assert set(means) == {"a"}


class TestRealSweeps:
    """Small end-to-end sweeps on one workload (kept tiny for test speed)."""

    def test_capacity_sweep(self):
        sweep = run_capacity_sweep(workloads=["bm-x64"],
                                   capacities=(2048, 8192),
                                   num_instructions=4000)
        assert set(sweep.labels()) == {"OC_2K", "OC_8K"}
        r2k = sweep.results["bm-x64"]["OC_2K"]
        r8k = sweep.results["bm-x64"]["OC_8K"]
        assert r8k.oc_fetch_ratio >= r2k.oc_fetch_ratio * 0.99

    def test_policy_sweep(self):
        sweep = run_policy_sweep(workloads=["bm-x64"],
                                 labels=("baseline", "f-pwac"),
                                 num_instructions=4000)
        base = sweep.results["bm-x64"]["baseline"]
        fpwac = sweep.results["bm-x64"]["f-pwac"]
        assert fpwac.oc_fetch_ratio >= base.oc_fetch_ratio * 0.99

    def test_run_single(self):
        result = run_single("bm-x64", policy_config("baseline"), "b",
                            num_instructions=4000)
        assert result.instructions == 4000

    def test_run_single_seed_changes_trace(self):
        a = run_single("bm-x64", policy_config("baseline"), "b",
                       num_instructions=2000, seed=7)
        b = run_single("bm-x64", policy_config("baseline"), "b",
                       num_instructions=2000, seed=11)
        assert a != b   # different dynamic traces, different counters

    def test_sweep_seed_is_plumbed_through(self):
        s7 = run_policy_sweep(workloads=["bm-x64"], labels=("baseline",),
                              num_instructions=2000, seed=7)
        s7_again = run_policy_sweep(workloads=["bm-x64"], labels=("baseline",),
                                    num_instructions=2000, seed=7)
        s11 = run_policy_sweep(workloads=["bm-x64"], labels=("baseline",),
                               num_instructions=2000, seed=11)
        r = lambda s: s.results["bm-x64"]["baseline"]
        assert r(s7) == r(s7_again)
        assert r(s7) != r(s11)
