"""Self-modifying code (SMC) invalidation: why uop cache entries terminate at
I-cache line boundaries, and how CLASP keeps invalidation cheap.

Section II-B4 of the paper argues trace caches are impractical because an SMC
store may have to flush the whole structure.  The baseline design confines an
I-cache line's uops to one set; CLASP relaxes this to two consecutive sets.
This example drives the uop cache structure directly (no simulator) and
demonstrates the invalidating probe in both designs.

Run:  python examples/smc_invalidation.py
"""

from repro.common.config import UopCacheConfig
from repro.isa.uop import Uop, UopKind
from repro.uopcache.cache import UopCache
from repro.uopcache.entry import EntryTermination, UopCacheEntry


def entry_at(start_pc: int, num_insts: int, inst_length: int = 4):
    uops = []
    pc = start_pc
    for _ in range(num_insts):
        uops.append(Uop(pc=pc, inst_length=inst_length, kind=UopKind.ALU,
                        slot=0, num_slots=1))
        pc += inst_length
    return UopCacheEntry(start_pc=start_pc, pw_id=start_pc,
                         uops=tuple(uops), end_pc=pc,
                         termination=EntryTermination.TAKEN_BRANCH)


def main() -> None:
    print("baseline design: entries never cross the I-cache line boundary")
    baseline = UopCache(UopCacheConfig(num_sets=8, associativity=2))
    baseline.fill(entry_at(0x1000, 4))   # line 0x1000
    baseline.fill(entry_at(0x1010, 4))   # line 0x1000, different start byte
    baseline.fill(entry_at(0x1040, 4))   # next line
    print(f"  resident entries: {baseline.resident_entries()}")

    removed = baseline.invalidate_icache_line(0x1000)
    print(f"  SMC store to line 0x1000 invalidates {removed} entries "
          f"with ONE set probe")
    print(f"  entry in line 0x1040 survives: "
          f"{baseline.lookup(0x1040) is not None}\n")

    print("CLASP design: entries may span two consecutive lines")
    clasp = UopCache(UopCacheConfig(num_sets=8, associativity=2, clasp=True))
    spanning = entry_at(0x1038, 4)       # 0x1038..0x1048 - spans the boundary
    clasp.fill(spanning)
    lines = ", ".join(hex(line) for line in spanning.icache_lines(64))
    print(f"  filled entry covering lines [{lines}] "
          f"(tagged into the set of line 0x1000)")

    removed = clasp.invalidate_icache_line(0x1040)
    print(f"  SMC store to line 0x1040 invalidates {removed} entry — the "
          "probe searches the line's own set AND the previous set")
    clasp.check_invariants()

    print("\nTakeaway: bounding an entry to at most two consecutive lines "
          "keeps SMC invalidation a two-set probe instead of a full flush — "
          "the property that makes CLASP practical where trace caches "
          "are not.")


if __name__ == "__main__":
    main()
