"""Capacity study: how uop cache size (2K..64K uops) changes performance,
fetch ratio and decoder power (the experiment behind the paper's Figs. 3-4).

Run:  python examples/capacity_study.py [workload ...]
"""

import sys

from repro.analysis.tables import render_table
from repro.core.experiment import (
    CAPACITY_SWEEP,
    run_capacity_sweep,
)


def main() -> None:
    workloads = sys.argv[1:] or ["bm-cc", "bm-lla", "redis", "bm-x64"]
    print(f"sweeping {len(workloads)} workloads x "
          f"{len(CAPACITY_SWEEP)} capacities ...\n")

    sweep = run_capacity_sweep(
        workloads=workloads, num_instructions=60_000,
        progress=lambda line: print("  " + line))

    upc = sweep.normalized(lambda r: r.upc, "OC_2K")
    fetch = {w: {label: result.oc_fetch_ratio
                 for label, result in by_label.items()}
             for w, by_label in sweep.results.items()}
    power = sweep.normalized(lambda r: r.decoder_power, "OC_2K")

    print()
    print(render_table(upc, title="UPC (normalized to 2K)"))
    print()
    print(render_table(fetch, title="Absolute uop cache fetch ratio"))
    print()
    print(render_table(power, title="Decoder power (normalized to 2K)"))

    print("\nTakeaway: capacity buys fetch ratio; fetch ratio buys "
          "performance and decoder energy — with diminishing returns once "
          "the hot code footprint fits.")


if __name__ == "__main__":
    main()
