"""SMT sharing study: two workloads co-running on one uop cache.

Section V-B1 of the paper motivates PW-aware compaction with multithreaded
cores: the shared uop cache's replacement state is updated by both threads,
so replacement-aware placement can interleave unrelated entries. This
example co-runs two workloads and compares each design's aggregate behaviour
against the same workloads running alone.

Run:  python examples/smt_sharing.py [workload1 workload2]
"""

import sys

from repro.core.experiment import POLICY_LABELS, policy_config, workload_trace
from repro.core.simulator import simulate
from repro.core.smt import simulate_smt


def main() -> None:
    names = sys.argv[1:3] if len(sys.argv) >= 3 else ["bm-cc", "bm-lla"]
    traces = [workload_trace(name, 60_000) for name in names]

    print(f"co-running {names[0]} + {names[1]} on a shared 2K-uop cache\n")

    solo = {name: simulate(trace, policy_config("baseline", 2048), "solo")
            for name, trace in zip(names, traces)}

    print(f"{'design':<10s}{'agg UPC':>9s}{'agg fetch':>11s}"
          f"{names[0]:>12s}{names[1]:>12s}   (per-thread fetch ratio)")
    for label in POLICY_LABELS:
        result = simulate_smt(traces, policy_config(label, 2048), label)
        t0, t1 = result.per_thread
        print(f"{label:<10s}{result.aggregate_upc:>9.3f}"
              f"{result.aggregate_fetch_ratio:>11.3f}"
              f"{t0.oc_fetch_ratio:>12.3f}{t1.oc_fetch_ratio:>12.3f}")

    print("\nsolo (unshared) fetch ratios for reference:")
    for name in names:
        print(f"  {name:<12s}{solo[name].oc_fetch_ratio:>8.3f}")

    print("\nTakeaway: sharing the uop cache costs each thread fetch ratio; "
          "compaction recovers part of it by packing both threads' small "
          "entries more densely.")


if __name__ == "__main__":
    main()
