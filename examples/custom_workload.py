"""Custom workload: define your own synthetic program profile, inspect its
static/dynamic properties, and measure how it behaves in the uop cache.

This is the entry point for using the library on *your* code shapes: the
profile controls code footprint, basic-block sizes, branch behaviour, call
structure and data access patterns.

Run:  python examples/custom_workload.py
"""

from collections import Counter

from repro.common.config import CompactionPolicy, baseline_config, compaction_config
from repro.core.simulator import simulate
from repro.isa.builder import SERVER_MIX
from repro.workloads.generator import WorkloadProfile, generate_workload


def main() -> None:
    # A microservice-style profile: moderate code footprint, short blocks,
    # lots of virtual dispatch, predictable branches.
    profile = WorkloadProfile(
        name="my-service",
        num_functions=220,
        blocks_per_function=(3, 9),
        insts_per_block=(1, 6),
        mix=SERVER_MIX,
        loop_fraction=0.10,
        call_fraction=0.10,
        indirect_call_fraction=0.5,
        hard_branch_fraction=0.03,
        hot_function_zipf=0.7,
        driver_uniform_fraction=0.3,
        loop_trip_counts=(2, 4, 8),
    )
    workload = generate_workload(profile, seed=42)
    program = workload.program

    print("static image")
    print(f"  functions:            {len(program.functions)}")
    print(f"  instructions:         {program.num_instructions}")
    print(f"  static uops:          {program.num_static_uops}")
    print(f"  code footprint:       {program.code_bytes / 1024:.1f} KiB "
          f"({program.touched_icache_lines()} I-cache lines)")

    trace = workload.trace(num_instructions=80_000, seed=1)
    trace.validate()
    stats = trace.branch_stats()
    dynamic_pcs = Counter(record.pc for record in trace)
    hot_uops = sum(program.at(pc).uop_count for pc in dynamic_pcs)
    print("\ndynamic trace")
    print(f"  instructions:         {len(trace)}")
    print(f"  dynamic uops:         {trace.num_dynamic_uops}")
    print(f"  branch density:       {stats.branch_density:.1%}")
    print(f"  touched uop footprint {hot_uops} uops")

    base = simulate(trace, baseline_config(2048), "baseline-2K")
    best = simulate(trace,
                    compaction_config(CompactionPolicy.F_PWAC, 2048),
                    "clasp+f-pwac")
    big = simulate(trace, baseline_config(8192), "baseline-8K")

    print("\nuop cache behaviour")
    print(f"  {'config':<16s}{'UPC':>7s}{'fetch ratio':>13s}{'decoder P':>11s}")
    for result in (base, best, big):
        print(f"  {result.config_label:<16s}{result.upc:>7.3f}"
              f"{result.oc_fetch_ratio:>13.3f}{result.decoder_power:>11.3f}")

    gain = 100 * (best.upc / base.upc - 1)
    print(f"\nCLASP+F-PWAC recovers {gain:+.2f}% UPC on a 2K-uop cache — "
          "compare against simply quadrupling capacity above.")


if __name__ == "__main__":
    main()
