"""Quickstart: simulate one workload under the baseline and the paper's best
design (CLASP + F-PWAC compaction), and print the headline metrics.

Run:  python examples/quickstart.py
"""

from repro.common.config import CompactionPolicy, baseline_config, compaction_config
from repro.core.simulator import simulate
from repro.workloads.suite import get_workload


def main() -> None:
    # 1. Build a synthetic workload (502.gcc_r analogue) and walk a trace.
    workload = get_workload("bm-cc")
    print(f"program: {workload.program.num_instructions} static instructions, "
          f"{workload.program.num_static_uops} static uops, "
          f"{workload.program.code_bytes / 1024:.0f} KiB of code")

    trace = workload.trace(num_instructions=100_000, seed=7)
    stats = trace.branch_stats()
    print(f"trace:   {len(trace)} instructions, "
          f"{stats.branches} branches ({stats.branch_density:.1%} density)\n")

    # 2. Simulate the paper's baseline: 2K-uop cache, no optimizations.
    base = simulate(trace, baseline_config(capacity_uops=2048), "baseline")

    # 3. Simulate the paper's most aggressive design: CLASP + F-PWAC.
    best = simulate(
        trace, compaction_config(CompactionPolicy.F_PWAC, capacity_uops=2048),
        "clasp+f-pwac")

    # 4. Compare.
    rows = [
        ("uops per cycle (UPC)", base.upc, best.upc),
        ("uop cache fetch ratio", base.oc_fetch_ratio, best.oc_fetch_ratio),
        ("dispatch bandwidth", base.dispatch_bandwidth,
         best.dispatch_bandwidth),
        ("decoder power (a.u.)", base.decoder_power, best.decoder_power),
        ("avg mispredict latency", base.avg_mispredict_latency,
         best.avg_mispredict_latency),
    ]
    print(f"{'metric':<26s}{'baseline':>12s}{'clasp+f-pwac':>14s}{'delta':>9s}")
    for name, b, o in rows:
        delta = 100.0 * (o / b - 1.0) if b else 0.0
        print(f"{name:<26s}{b:>12.3f}{o:>14.3f}{delta:>+8.1f}%")

    print(f"\ncompacted fills: {best.compacted_fill_fraction:.1%} "
          f"(baseline: {base.compacted_fill_fraction:.1%})")
    print(f"UPC improvement: {100 * (best.upc / base.upc - 1):+.2f}%")


if __name__ == "__main__":
    main()
