"""Compaction policy study: baseline vs CLASP vs RAC/PWAC/F-PWAC on one
workload, with the fill-kind breakdown that explains *why* each policy wins
(the experiment behind the paper's Figs. 15-19).

Run:  python examples/compaction_policies.py [workload]
"""

import sys

from repro.core.experiment import POLICY_LABELS, policy_config, workload_trace
from repro.core.simulator import Simulator
from repro.uopcache.cache import FillKind


def main() -> None:
    workload = sys.argv[1] if len(sys.argv) > 1 else "bm-cc"
    trace = workload_trace(workload, 100_000)
    print(f"workload {workload}: {len(trace)} instructions, "
          f"{trace.num_dynamic_uops} uops\n")

    results = {}
    for label in POLICY_LABELS:
        simulator = Simulator(trace, policy_config(label, 2048), label)
        results[label] = simulator.run()

    base = results["baseline"]
    header = (f"{'design':<10s}{'UPC':>8s}{'ΔUPC':>8s}{'fetch':>8s}"
              f"{'power':>8s}{'compact':>9s}{'util':>7s}")
    print(header)
    for label, result in results.items():
        print(f"{label:<10s}{result.upc:>8.3f}"
              f"{100 * (result.upc / base.upc - 1):>+7.1f}%"
              f"{result.oc_fetch_ratio:>8.3f}"
              f"{result.decoder_power / base.decoder_power:>8.3f}"
              f"{result.compacted_fill_fraction:>9.1%}"
              f"{result.uop_cache_utilization:>7.1%}")

    print("\nfill-kind breakdown (how entries were placed):")
    kinds = [FillKind.ALLOC, FillKind.RAC, FillKind.PWAC, FillKind.F_PWAC,
             FillKind.DUPLICATE]
    print(f"{'design':<10s}" + "".join(f"{k.value:>11s}" for k in kinds))
    for label, result in results.items():
        counts = result.fill_kind_counts
        print(f"{label:<10s}" +
              "".join(f"{counts.get(k, 0):>11d}" for k in kinds))

    print("\nTakeaway: compaction policies place more entries per line "
          "(higher utilization), which raises the fetch ratio and UPC while "
          "cutting decoder power; PW-aware placement keeps entries that are "
          "fetched together in the same line.")


if __name__ == "__main__":
    main()
