"""Fig. 18: fraction of uop cache fills compacted into an existing line
without evicting anything (F-PWAC design).

Paper's shape: on average 66.3% of entries written are compacted."""

from conftest import publish

from repro.analysis.figures import fig18_compacted_lines
from repro.analysis.tables import render_series


def test_fig18_compacted_fill_ratio(benchmark, policy_sweep):
    def compute():
        fpwac = {workload: by_label["f-pwac"]
                 for workload, by_label in policy_sweep.results.items()}
        return fig18_compacted_lines(fpwac)

    series = benchmark.pedantic(compute, rounds=1, iterations=1)
    publish("fig18", render_series(
        series, title="Fig. 18: fraction of fills compacted (F-PWAC)"))

    assert series["average"] > 0.05
