"""Fig. 12: distribution of uop cache entries per prediction window.

Paper's shape: 64.5% of PWs map to one entry, 31.6% to two, 3.9% to three."""

from conftest import publish

from repro.analysis.figures import fig12_entries_per_pw
from repro.analysis.tables import render_table


def test_fig12_entries_per_pw(benchmark, capacity_sweep):
    def compute():
        baseline = {workload: by_label["OC_2K"]
                    for workload, by_label in capacity_sweep.results.items()}
        return fig12_entries_per_pw(baseline)

    table = benchmark.pedantic(compute, rounds=1, iterations=1)
    publish("fig12", render_table(
        {w: {str(k): v for k, v in row.items()}
         for w, row in table.items()},
        title="Fig. 12: entries per PW distribution (1 / 2 / 3+)"))

    average = table["average"]
    # Shape: single-entry PWs dominate (paper: 64.5%) with a substantial
    # two-entry share (paper: 31.6%) and a small 3+ tail (paper: 3.9%).
    assert 0.4 <= average[1] <= 0.95
    assert average[2] + average[3] > 0.05
