"""Fig. 4: normalized uop cache fetch ratio (bars), dispatched uops/cycle and
branch misprediction latency (lines) vs uop cache capacity.

Paper's shape: fetch ratio improves strongly with capacity (avg +69.7% at
64K vs 2K), dispatch bandwidth follows (+13%), misprediction latency falls
(-10.3%)."""

from conftest import publish

from repro.analysis.figures import fig4_capacity_frontend
from repro.analysis.tables import render_table


def test_fig04_capacity_frontend_metrics(benchmark, capacity_sweep):
    data = benchmark.pedantic(
        lambda: fig4_capacity_frontend(capacity_sweep),
        rounds=1, iterations=1)

    text = render_table(
        data["normalized_oc_fetch_ratio"],
        title="Fig. 4a: OC fetch ratio normalized to the 2K baseline")
    text += "\n\n" + render_table(
        data["normalized_dispatch_bandwidth"],
        title="Fig. 4b: dispatched uops/cycle normalized to the 2K baseline")
    text += "\n\n" + render_table(
        data["normalized_mispredict_latency"],
        title="Fig. 4c: branch misprediction latency normalized to 2K")
    publish("fig04", text)

    fetch = data["normalized_oc_fetch_ratio"]["average"]
    assert fetch["OC_64K"] >= fetch["OC_2K"]
    dispatch = data["normalized_dispatch_bandwidth"]["average"]
    assert dispatch["OC_64K"] >= dispatch["OC_2K"] * 0.99
