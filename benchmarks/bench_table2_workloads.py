"""Table II: the workload suite with measured branch MPKI.

Regenerates the paper's workload table, with the branch MPKI our TAGE+BTB+RAS
front end actually measures on each synthetic trace next to the paper's
reported values.  The paper's MPKI came from real application traces; ours
documents how closely each synthetic profile lands (ordering is the claim,
not absolute equality).
"""

from conftest import BENCH_INSTRUCTIONS, BENCH_WORKLOADS, publish

from repro.analysis.tables import render_table2
from repro.common.config import baseline_config
from repro.core.experiment import workload_trace
from repro.core.simulator import Simulator


def test_table2_workload_suite(benchmark):
    def compute():
        measured = {}
        for name in BENCH_WORKLOADS:
            trace = workload_trace(name, BENCH_INSTRUCTIONS)
            result = Simulator(trace, baseline_config(2048), "b2k").run()
            measured[name] = result.branch_mpki
        return measured

    measured = benchmark.pedantic(compute, rounds=1, iterations=1)
    publish("table2", "Table II: workloads and branch MPKI\n" +
            render_table2(measured))
    assert all(m > 0 for m in measured.values())
