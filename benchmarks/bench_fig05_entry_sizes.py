"""Fig. 5: distribution of uop cache entry sizes (bytes) in the baseline.

Paper's shape: entries are small — on average 72% of installed entries are
under 40 bytes (buckets 1-19 / 20-39 / 40-64 of a 64B line)."""

from conftest import publish

from repro.analysis.figures import fig5_entry_size_distribution
from repro.analysis.tables import render_table


def test_fig05_entry_size_distribution(benchmark, capacity_sweep):
    def compute():
        baseline = {workload: by_label["OC_2K"]
                    for workload, by_label in capacity_sweep.results.items()}
        return fig5_entry_size_distribution(baseline)

    table = benchmark.pedantic(compute, rounds=1, iterations=1)
    publish("fig05", render_table(
        table, title="Fig. 5: uop cache entry size distribution (fraction "
        "of fills per byte bucket)"))

    average = table["average"]
    under_40 = average["1-19"] + average["20-39"]
    # Shape: a large fraction of entries are well below a full line.
    assert under_40 >= 0.35
    assert abs(sum(average.values()) - 1.0) < 1e-6
