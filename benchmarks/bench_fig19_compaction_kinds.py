"""Fig. 19: among compacted fills under F-PWAC, the share performed by each
allocation technique (RAC fallback / PWAC / forced F-PWAC).

Paper's shape: 30.3% RAC, 41.4% PWAC, 28.3% F-PWAC."""

from conftest import publish

from repro.analysis.figures import fig19_compaction_kinds
from repro.analysis.tables import render_table


def test_fig19_compaction_kind_distribution(benchmark, policy_sweep):
    def compute():
        fpwac = {workload: by_label["f-pwac"]
                 for workload, by_label in policy_sweep.results.items()}
        return fig19_compaction_kinds(fpwac)

    table = benchmark.pedantic(compute, rounds=1, iterations=1)
    publish("fig19", render_table(
        table, title="Fig. 19: compacted-entry distribution by technique "
        "(F-PWAC design)", column_order=["rac", "pwac", "f-pwac"]))

    average = table["average"]
    total = average["rac"] + average["pwac"] + average["f-pwac"]
    assert total == (
        __import__("pytest").approx(1.0, abs=1e-6)) or total == 0.0
    # All three mechanisms must actually fire somewhere in the suite.
    assert average["rac"] > 0
    assert average["pwac"] > 0
    assert average["f-pwac"] > 0
