"""Shared infrastructure for the figure-reproduction benchmarks.

Each ``bench_figNN_*.py`` regenerates one table/figure of the paper: it runs
(or reuses) the relevant sweep, prints the same rows/series the paper plots,
and records the rendered output under ``benchmarks/results/``.

Heavy sweeps are computed once per pytest session and shared across the
benchmarks that draw different figures from the same experiment (exactly as
the paper draws Figs. 3 and 4 from one capacity sweep).

Environment knobs:

- ``REPRO_BENCH_INSTRUCTIONS`` — dynamic instructions per workload trace
  (default 100000; raise for tighter statistics).
- ``REPRO_BENCH_WORKLOADS``    — comma-separated subset of workload names
  (default: the full 13-workload suite).
- ``REPRO_BENCH_WARMUP``       — warmup instructions excluded from measured
  rates (default 20000).
"""

import os
import warnings
from pathlib import Path

import pytest

from repro.bench import timed
from repro.common.errors import ReproWarning
from repro.core.experiment import (
    CAPACITY_SWEEP,
    POLICY_LABELS,
    run_capacity_sweep,
    run_policy_sweep,
)
from repro.workloads.suite import WORKLOAD_NAMES

RESULTS_DIR = Path(__file__).parent / "results"

BENCH_INSTRUCTIONS = int(os.environ.get("REPRO_BENCH_INSTRUCTIONS", "100000"))
BENCH_WARMUP = int(os.environ.get("REPRO_BENCH_WARMUP", "20000"))
_names = os.environ.get("REPRO_BENCH_WORKLOADS", "")
BENCH_WORKLOADS = tuple(
    name.strip() for name in _names.split(",") if name.strip()) or \
    WORKLOAD_NAMES

def pytest_configure(config):
    # A ReproWarning mid-benchmark (e.g. geometric_mean over a zero because a
    # job was quarantined) means the printed figure is suspect.  Force every
    # occurrence to surface in the warnings summary — never deduplicated,
    # never swallowed by an "ignore" filter inherited from the environment.
    warnings.simplefilter("always", ReproWarning)


_sweep_cache = {}


def _cached(key, builder):
    # Timed via the shared bench utilities (repro.bench.timing) so sweep
    # build cost shows up next to the figures it feeds.
    if key not in _sweep_cache:
        _sweep_cache[key], seconds = timed(builder)
        print(f"\n[sweep {key}: built in {seconds:.1f}s, "
              f"{BENCH_INSTRUCTIONS} instructions/workload]")
    return _sweep_cache[key]


@pytest.fixture(scope="session")
def capacity_sweep():
    """Figs. 3-4: baseline design at 2K..64K uops."""
    return _cached("capacity", lambda: run_capacity_sweep(
        workloads=BENCH_WORKLOADS, capacities=CAPACITY_SWEEP,
        num_instructions=BENCH_INSTRUCTIONS,
        warmup_instructions=BENCH_WARMUP))


@pytest.fixture(scope="session")
def policy_sweep():
    """Figs. 15-19: baseline/CLASP/RAC/PWAC/F-PWAC at 2K uops, max 2/line."""
    return _cached("policy2", lambda: run_policy_sweep(
        workloads=BENCH_WORKLOADS, labels=POLICY_LABELS,
        capacity_uops=2048, max_entries_per_line=2,
        num_instructions=BENCH_INSTRUCTIONS,
        warmup_instructions=BENCH_WARMUP))


@pytest.fixture(scope="session")
def policy_sweep_max3():
    """Figs. 20-21: compaction with max 3 entries per line."""
    return _cached("policy3", lambda: run_policy_sweep(
        workloads=BENCH_WORKLOADS,
        labels=("baseline", "clasp", "rac", "pwac", "f-pwac"),
        capacity_uops=2048, max_entries_per_line=3,
        num_instructions=BENCH_INSTRUCTIONS,
        warmup_instructions=BENCH_WARMUP))


@pytest.fixture(scope="session")
def policy_sweep_4k():
    """Fig. 22: the same designs over a 4K-uop baseline."""
    return _cached("policy4k", lambda: run_policy_sweep(
        workloads=BENCH_WORKLOADS, labels=POLICY_LABELS,
        capacity_uops=4096, max_entries_per_line=2,
        num_instructions=BENCH_INSTRUCTIONS,
        warmup_instructions=BENCH_WARMUP))


def publish(name: str, text: str) -> None:
    """Print a figure's rows and persist them under benchmarks/results/."""
    print()
    print(text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
