"""Fig. 20: percent UPC improvement with up to THREE compacted entries per
line (sensitivity study, Section VI-B1).

Paper's shape: max-3 compaction is slightly better than max-2 (+6.0% vs
+5.4% mean F-PWAC) because few lines have room for a third entry."""

from conftest import publish

from repro.analysis.figures import fig16_upc_improvement
from repro.analysis.tables import render_table


def test_fig20_upc_improvement_max3(benchmark, policy_sweep_max3):
    table = benchmark.pedantic(
        lambda: fig16_upc_improvement(policy_sweep_max3),
        rounds=1, iterations=1)
    publish("fig20", render_table(
        table, title="Fig. 20: % UPC improvement over baseline "
        "(max 3 entries/line)", fmt="{:+.2f}",
        column_order=["baseline", "clasp", "rac", "pwac", "f-pwac"]))

    assert table["g.mean"]["f-pwac"] > 0.0
