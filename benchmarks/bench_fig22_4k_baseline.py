"""Fig. 22: percent UPC improvement over a baseline uop cache holding 4K
uops (capacity sensitivity, Section VI-B2).

Paper's shape: gains shrink relative to the 2K baseline but stay positive —
F-PWAC +3.08% mean, up to +11.27% (gcc)."""

from conftest import publish

from repro.analysis.figures import fig16_upc_improvement
from repro.analysis.tables import render_table


def test_fig22_upc_improvement_4k_baseline(benchmark, policy_sweep_4k,
                                           policy_sweep):
    def compute():
        at4k = fig16_upc_improvement(policy_sweep_4k)
        at2k = fig16_upc_improvement(policy_sweep)
        return at4k, at2k

    at4k, at2k = benchmark.pedantic(compute, rounds=1, iterations=1)
    publish("fig22", render_table(
        at4k, title="Fig. 22: % UPC improvement over the 4K-uop baseline",
        fmt="{:+.2f}",
        column_order=["baseline", "clasp", "rac", "pwac", "f-pwac"]))

    # Gains exist at 4K but are smaller than at 2K (less pressure).
    assert at4k["g.mean"]["f-pwac"] >= 0.0
    assert at4k["g.mean"]["f-pwac"] <= at2k["g.mean"]["f-pwac"] + 0.5
