"""Fig. 3: normalized UPC (bars) and decoder power (line) vs uop cache
capacity (2K..64K uops), per workload plus the suite average.

Paper's shape: UPC rises monotonically with capacity (avg +11.2%, gcc up to
+26.7% at 64K) while decoder power falls (avg -39.2%)."""

from conftest import publish

from repro.analysis.figures import fig3_capacity_upc_and_power
from repro.analysis.tables import render_table


def test_fig03_capacity_upc_and_decoder_power(benchmark, capacity_sweep):
    data = benchmark.pedantic(
        lambda: fig3_capacity_upc_and_power(capacity_sweep),
        rounds=1, iterations=1)

    text = render_table(
        data["normalized_upc"],
        title="Fig. 3a: UPC normalized to the 2K-uop baseline")
    text += "\n\n" + render_table(
        data["normalized_decoder_power"],
        title="Fig. 3b: decoder power normalized to the 2K-uop baseline")
    publish("fig03", text)

    average_upc = data["normalized_upc"]["average"]
    average_power = data["normalized_decoder_power"]["average"]
    # Shape assertions: monotone improvement, monotone power reduction.
    assert average_upc["OC_64K"] >= average_upc["OC_2K"]
    assert average_power["OC_64K"] <= average_power["OC_2K"]
