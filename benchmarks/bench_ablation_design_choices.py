"""Ablations for the design choices DESIGN.md calls out (not a paper figure).

1. CLASP maximum line span (2 vs 3 lines): the paper fixes 2 to bound SMC
   probe cost; how much fetch ratio is left on the table?
2. Uop cache fetch latency (2 vs 4 cycles): how sensitive are the gains to
   the OC pipeline depth?
3. Loop cache on/off on top of the baseline: how much decoder/OC traffic
   does a 32-uop loop buffer absorb?
"""

import dataclasses

from conftest import BENCH_INSTRUCTIONS, publish

from repro.analysis.tables import render_table
from repro.common.config import LoopCacheConfig, baseline_config, clasp_config
from repro.core.experiment import workload_trace
from repro.core.simulator import Simulator

WORKLOADS = ("bm-cc", "bm-lla", "bm-x64")


def test_ablation_clasp_span_and_latency(benchmark):
    def compute():
        rows = {}
        for name in WORKLOADS:
            trace = workload_trace(name, BENCH_INSTRUCTIONS)
            configs = {
                "base": baseline_config(2048),
                "clasp2": clasp_config(2048),
                "clasp3": clasp_config(2048).with_uop_cache(
                    clasp_max_lines=3),
                "oc-lat4": baseline_config(2048).with_uop_cache(
                    fetch_latency_cycles=4),
                "loopbuf": dataclasses.replace(
                    baseline_config(2048),
                    loop_cache=LoopCacheConfig(enabled=True,
                                               capacity_uops=32)),
            }
            rows[name] = {
                label: Simulator(trace, config, label).run().upc
                for label, config in configs.items()}
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    normalized = {
        name: {label: upc / row["base"] for label, upc in row.items()}
        for name, row in rows.items()}
    publish("ablation", render_table(
        normalized,
        title="Ablations: UPC normalized to baseline "
        "(clasp span, OC latency, loop buffer)",
        column_order=["base", "clasp2", "clasp3", "oc-lat4", "loopbuf"]))

    for row in normalized.values():
        # A deeper OC pipeline should not help.
        assert row["oc-lat4"] <= row["base"] + 0.01
