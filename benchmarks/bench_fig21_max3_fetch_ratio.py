"""Fig. 21: normalized uop cache fetch ratio with up to three compacted
entries per line.

Paper's shape: +31.8% mean fetch ratio for max-3 F-PWAC vs +28.2% for
max-2 — a small additional gain."""

import pytest
from conftest import publish

from repro.analysis.figures import fig17_policy_frontend
from repro.analysis.tables import render_table

ORDER = ["baseline", "clasp", "rac", "pwac", "f-pwac"]


def test_fig21_fetch_ratio_max3(benchmark, policy_sweep_max3, policy_sweep):
    def compute():
        max3 = fig17_policy_frontend(policy_sweep_max3)
        max2 = fig17_policy_frontend(policy_sweep)
        return max3["normalized_oc_fetch_ratio"], \
            max2["normalized_oc_fetch_ratio"]

    fetch3, fetch2 = benchmark.pedantic(compute, rounds=1, iterations=1)
    publish("fig21", render_table(
        fetch3, title="Fig. 21: OC fetch ratio normalized to baseline "
        "(max 3 entries/line)", column_order=ORDER))

    # Max-3 compaction is at least as good as max-2 on average.
    assert fetch3["average"]["f-pwac"] >= \
        fetch2["average"]["f-pwac"] - 0.005
