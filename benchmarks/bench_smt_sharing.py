"""SMT extension (beyond the paper's figures): two hardware threads sharing
one uop cache, the scenario Section V-B1 uses to motivate PW-aware over
replacement-aware compaction.

Reports aggregate throughput and fetch ratio for the shared 2K-uop cache
under each design, for three co-run pairs."""

from conftest import BENCH_INSTRUCTIONS, publish

from repro.analysis.tables import render_table
from repro.core.experiment import policy_config, workload_trace
from repro.core.smt import simulate_smt

PAIRS = (("bm-cc", "bm-lla"), ("redis", "jvm"), ("sp-log_regr", "bm-x64"))
LABELS = ("baseline", "clasp", "rac", "pwac", "f-pwac")


def test_smt_shared_uop_cache(benchmark):
    def compute():
        rows = {}
        for pair in PAIRS:
            traces = [workload_trace(name, BENCH_INSTRUCTIONS // 2)
                      for name in pair]
            rows["+".join(pair)] = {
                label: simulate_smt(traces, policy_config(label, 2048),
                                    label).aggregate_fetch_ratio
                for label in LABELS}
        return rows

    rows = benchmark.pedantic(compute, rounds=1, iterations=1)
    normalized = {
        pair: {label: value / values["baseline"]
               for label, value in values.items()}
        for pair, values in rows.items()}
    publish("smt", render_table(
        normalized,
        title="SMT: aggregate OC fetch ratio normalized to baseline "
        "(2 threads, shared 2K-uop cache)", column_order=list(LABELS)))

    for values in normalized.values():
        assert values["f-pwac"] >= values["baseline"] - 0.01
