"""Fig. 17: normalized OC fetch ratio, dispatch bandwidth and branch
misprediction latency for baseline / CLASP / RAC / PWAC / F-PWAC.

Paper's shape: fetch ratio +11.6% (CLASP) to +28.8% (F-PWAC); dispatch
bandwidth +2.2% to +6.3%; misprediction latency -2% to -5.2%."""

from conftest import publish

from repro.analysis.figures import fig17_policy_frontend
from repro.analysis.tables import render_table

ORDER = ["baseline", "clasp", "rac", "pwac", "f-pwac"]


def test_fig17_policy_frontend_metrics(benchmark, policy_sweep):
    data = benchmark.pedantic(
        lambda: fig17_policy_frontend(policy_sweep), rounds=1, iterations=1)

    text = render_table(
        data["normalized_oc_fetch_ratio"],
        title="Fig. 17a: OC fetch ratio normalized to baseline",
        column_order=ORDER)
    text += "\n\n" + render_table(
        data["normalized_dispatch_bandwidth"],
        title="Fig. 17b: dispatch bandwidth normalized to baseline",
        column_order=ORDER)
    text += "\n\n" + render_table(
        data["normalized_mispredict_latency"],
        title="Fig. 17c: branch misprediction latency normalized to baseline",
        column_order=ORDER)
    publish("fig17", text)

    fetch = data["normalized_oc_fetch_ratio"]["average"]
    assert fetch["f-pwac"] >= fetch["baseline"]
    assert fetch["f-pwac"] >= fetch["clasp"] - 0.01
