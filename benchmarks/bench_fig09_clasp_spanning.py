"""Fig. 9: percentage of uop cache entries spanning I-cache line boundaries
once CLASP relaxes the line-boundary termination.

Paper's shape: a significant fraction (tens of percent) of entries span
lines, and exactly zero do in the baseline."""

from conftest import BENCH_INSTRUCTIONS, BENCH_WORKLOADS, publish

from repro.analysis.figures import fig9_spanning_entries
from repro.analysis.tables import render_series
from repro.common.config import baseline_config, clasp_config
from repro.core.experiment import workload_trace
from repro.core.simulator import Simulator


def test_fig09_entries_spanning_lines(benchmark):
    def compute():
        clasp_results = {}
        baseline_results = {}
        for name in BENCH_WORKLOADS:
            trace = workload_trace(name, BENCH_INSTRUCTIONS)
            clasp_results[name] = Simulator(
                trace, clasp_config(2048), "clasp").run()
            baseline_results[name] = Simulator(
                trace, baseline_config(2048), "baseline").run()
        return fig9_spanning_entries(clasp_results), baseline_results

    spanning, baseline_results = benchmark.pedantic(
        compute, rounds=1, iterations=1)
    publish("fig09", render_series(
        spanning, title="Fig. 9: fraction of entries spanning I-cache "
        "line boundaries under CLASP"))

    assert spanning["average"] > 0.02
    assert all(r.entries_spanning_lines_fraction == 0.0
               for r in baseline_results.values())
