"""Fig. 6: percentage of uop cache entries terminated by a predicted taken
branch (baseline).

Paper's shape: 49.4% on average, up to 67% (leela)."""

from conftest import publish

from repro.analysis.figures import fig6_taken_branch_terminations
from repro.analysis.tables import render_series


def test_fig06_taken_branch_terminations(benchmark, capacity_sweep):
    def compute():
        baseline = {workload: by_label["OC_2K"]
                    for workload, by_label in capacity_sweep.results.items()}
        return fig6_taken_branch_terminations(baseline)

    series = benchmark.pedantic(compute, rounds=1, iterations=1)
    publish("fig06", render_series(
        series, title="Fig. 6: fraction of entries terminated by a "
        "predicted taken branch"))

    assert 0.2 <= series["average"] <= 0.8
