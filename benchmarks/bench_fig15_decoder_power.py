"""Fig. 15: normalized decoder power for baseline / CLASP / RAC / PWAC /
F-PWAC (2K uops, max 2 compacted entries per line).

Paper's shape: power falls monotonically across the designs — CLASP -8.6%,
RAC -14.9%, PWAC -16.3%, F-PWAC -19.4% on average."""

from conftest import publish

from repro.analysis.figures import fig15_decoder_power
from repro.analysis.tables import render_table


def test_fig15_decoder_power(benchmark, policy_sweep):
    table = benchmark.pedantic(
        lambda: fig15_decoder_power(policy_sweep), rounds=1, iterations=1)
    publish("fig15", render_table(
        table, title="Fig. 15: decoder power normalized to baseline",
        column_order=["baseline", "clasp", "rac", "pwac", "f-pwac"]))

    average = table["average"]
    assert average["clasp"] <= average["baseline"] + 1e-9
    assert average["f-pwac"] <= average["clasp"] + 0.02
    assert average["f-pwac"] < 1.0
