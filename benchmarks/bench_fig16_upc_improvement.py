"""Fig. 16: percent UPC improvement over the baseline for CLASP and the
compaction policies (max two entries per line).

Paper's shape: geometric-mean gains of CLASP +1.7%, RAC +3.5%, PWAC +4.4%,
F-PWAC +5.45%; max F-PWAC gain 12.8% (gcc)."""

from conftest import publish

from repro.analysis.figures import fig16_upc_improvement
from repro.analysis.tables import render_table


def test_fig16_upc_improvement(benchmark, policy_sweep):
    table = benchmark.pedantic(
        lambda: fig16_upc_improvement(policy_sweep), rounds=1, iterations=1)
    publish("fig16", render_table(
        table, title="Fig. 16: % UPC improvement over baseline "
        "(max 2 entries/line)", fmt="{:+.2f}",
        column_order=["baseline", "clasp", "rac", "pwac", "f-pwac"]))

    gmean = table["g.mean"]
    assert gmean["clasp"] >= -0.5          # CLASP never hurts materially
    assert gmean["f-pwac"] >= gmean["clasp"] - 0.25
    assert gmean["f-pwac"] > 0.5           # compaction visibly helps
