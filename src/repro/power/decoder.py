"""Decoder energy/power accounting (Section IV-A's PTPX model, abstracted).

The paper reports decoder power *normalized to the baseline*, which cancels
absolute calibration.  We therefore model decoder energy as

    E = insts_decoded * E_decode            (dynamic per-slot energy)
      + active_cycles * E_active            (clocking/identification overhead)
      + idle_cycles   * E_idle              (decoders powered but shut down)

and report power P = E / total_cycles.  Uops served from the uop cache or
loop cache bypass the decoder entirely: fewer decoded instructions and fewer
active cycles, exactly the saving mechanism the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..common.config import PowerConfig


@dataclass
class DecoderEnergyReport:
    insts_decoded: int
    active_cycles: int
    total_cycles: int
    energy: float

    @property
    def power(self) -> float:
        return self.energy / self.total_cycles if self.total_cycles else 0.0


class DecoderPowerModel:
    """Accumulates decoder activity during a simulation run."""

    def __init__(self, config: Optional[PowerConfig] = None) -> None:
        self.config = config or PowerConfig()
        self.insts_decoded = 0
        self.active_cycles = 0

    def record_decode_burst(self, num_insts: int, cycles: int) -> None:
        """The decoder processed ``num_insts`` over ``cycles`` busy cycles."""
        if num_insts < 0 or cycles < 0:
            raise ValueError("decode burst cannot be negative")
        self.insts_decoded += num_insts
        self.active_cycles += cycles

    def report(self, total_cycles: int) -> DecoderEnergyReport:
        cfg = self.config
        idle_cycles = max(0, total_cycles - self.active_cycles)
        energy = (self.insts_decoded * cfg.decode_energy_per_inst +
                  self.active_cycles * cfg.decoder_active_cycle_energy +
                  idle_cycles * cfg.decoder_idle_cycle_energy)
        return DecoderEnergyReport(
            insts_decoded=self.insts_decoded,
            active_cycles=self.active_cycles,
            total_cycles=total_cycles,
            energy=energy,
        )
