"""Power models (decoder energy accounting)."""

from .decoder import DecoderEnergyReport, DecoderPowerModel

__all__ = ["DecoderEnergyReport", "DecoderPowerModel"]
