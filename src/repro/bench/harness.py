"""Benchmark suite runner, report schema and baseline comparison.

A *report* is one JSON document (``BENCH_<n>.json``) holding one or more
*suites* (``full``, ``smoke``) so a CI smoke run can compare like-for-like
against the committed baseline's smoke section.  Per design the report
records the deterministic simulation counters (instructions, cycles, uops —
exact-equality gated on compare) and the wall-clock medians of the normal
and fast serve loops, from which instructions/sec, cycles/sec and the
fast-over-normal speedup derive.

Nothing host- or time-of-day-dependent goes into the report: wall-clock
medians are the only machine-varying fields, and the compare gates treat
them separately (ratio threshold, disable-able) from the counters (exact,
always on).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..common.errors import ReproError
from ..core.experiment import DEFAULT_SEED, POLICY_LABELS, policy_config
from ..core.simulator import Simulator
from ..workloads.engine import create_engine
from .timing import measure

#: Bump when the report layout changes incompatibly; compare refuses to
#: diff reports with mismatched versions.
SCHEMA_VERSION = 1


class BenchError(ReproError):
    """A benchmark run or comparison failed structurally."""


@dataclass(frozen=True)
class SuiteParams:
    """Everything that determines a suite's simulated work (not its timing)."""

    name: str
    instructions: int
    repeats: int
    warmup_runs: int = 1
    workload: str = "bm-x64"
    capacity_uops: int = 2048
    max_entries_per_line: int = 2
    seed: int = DEFAULT_SEED
    #: Workload engine the suite's trace comes from.  The default keeps
    #: the historical path (synthetic suite workload generated and walked
    #: with ``seed``), so committed baselines stay comparable.
    engine: str = "synthetic"
    engine_params: Tuple[Tuple[str, Any], ...] = ()


#: The two standard suites.  ``full`` is the committed baseline's headline
#: measurement; ``smoke`` is small enough for a CI gate (a few seconds).
SUITES: Dict[str, SuiteParams] = {
    "full": SuiteParams(name="full", instructions=30_000, repeats=5),
    "smoke": SuiteParams(name="smoke", instructions=5_000, repeats=3),
}

#: Identity fields that must match for two suites to be comparable.
#: Default-engine suites omit the engine keys entirely, so reports written
#: before engines existed compare cleanly against fresh default runs
#: (absent == absent), while an engine run against a synthetic baseline
#: fails the identity check as it must.
_IDENTITY_FIELDS = ("instructions", "workload", "capacity_uops",
                    "max_entries_per_line", "seed", "engine",
                    "engine_params")

#: Deterministic counters gated by exact equality on compare.
_COUNTER_FIELDS = ("sim_instructions", "sim_cycles", "sim_uops")


def run_suite(params: SuiteParams,
              designs: Sequence[str] = POLICY_LABELS,
              progress: Optional[Callable[[str], None]] = None) -> Dict:
    """Run one suite and return its report section (JSON-ready)."""
    for design in designs:
        if design not in POLICY_LABELS:
            raise BenchError(f"unknown design {design!r}; "
                             f"known: {', '.join(POLICY_LABELS)}")
    engine_params = dict(params.engine_params)
    if params.engine == "synthetic":
        # The pre-engine harness generated and walked the suite workload
        # with the same seed; defaulting gen_seed to it keeps default
        # benches bit-identical to reports from before engines existed.
        engine_params.setdefault("gen_seed", params.seed)
    trace = create_engine(params.engine, workload=params.workload,
                          params=engine_params).build_trace(
        params.instructions, params.seed)
    suite: Dict = {
        "instructions": params.instructions,
        "repeats": params.repeats,
        "warmup_runs": params.warmup_runs,
        "workload": params.workload,
        "capacity_uops": params.capacity_uops,
        "max_entries_per_line": params.max_entries_per_line,
        "seed": params.seed,
        "designs": {},
    }
    if params.engine != "synthetic" or params.engine_params:
        suite["engine"] = params.engine
        suite["engine_params"] = dict(params.engine_params)
    for design in designs:
        normal_cfg = policy_config(design, params.capacity_uops,
                                   params.max_entries_per_line)
        fast_cfg = normal_cfg.with_fast_mode()

        # Equivalence first: the timing numbers mean nothing if the two
        # loops simulate different machines.
        normal_result = Simulator(trace, normal_cfg, design).run()
        fast_result = Simulator(trace, fast_cfg, design).run()
        counters_equal = normal_result.to_dict() == fast_result.to_dict()

        normal = measure(lambda: Simulator(trace, normal_cfg, design).run(),
                         repeats=params.repeats,
                         warmup_runs=params.warmup_runs)
        fast = measure(lambda: Simulator(trace, fast_cfg, design).run(),
                       repeats=params.repeats,
                       warmup_runs=params.warmup_runs)

        n_med = normal.median_seconds
        f_med = fast.median_seconds
        suite["designs"][design] = {
            "sim_instructions": normal_result.instructions,
            "sim_cycles": normal_result.cycles,
            "sim_uops": normal_result.uops,
            "counters_equal": counters_equal,
            "normal_wall_seconds": list(normal.samples),
            "fast_wall_seconds": list(fast.samples),
            "normal_median_seconds": n_med,
            "fast_median_seconds": f_med,
            "normal_inst_per_sec": normal_result.instructions / n_med,
            "normal_cycles_per_sec": normal_result.cycles / n_med,
            "fast_inst_per_sec": normal_result.instructions / f_med,
            "fast_cycles_per_sec": normal_result.cycles / f_med,
            "speedup": n_med / f_med,
        }
        if progress is not None:
            progress(f"{params.name}/{design}: normal {n_med:.3f}s, "
                     f"fast {f_med:.3f}s, speedup "
                     f"{n_med / f_med:.2f}x, "
                     f"counters {'equal' if counters_equal else 'DIVERGED'}")
    return suite


def run_report(suites: Sequence[SuiteParams],
               designs: Sequence[str] = POLICY_LABELS,
               progress: Optional[Callable[[str], None]] = None) -> Dict:
    """Run the given suites into one schema-versioned report."""
    report: Dict = {"schema_version": SCHEMA_VERSION, "suites": {}}
    for params in suites:
        report["suites"][params.name] = run_suite(params, designs, progress)
    return report


# -- comparison ------------------------------------------------------------


@dataclass(frozen=True)
class CompareResult:
    """Outcome of diffing a fresh report against a baseline report."""

    lines: Tuple[str, ...]
    failures: Tuple[str, ...]

    @property
    def ok(self) -> bool:
        return not self.failures


def _check_report(report: Dict, label: str) -> None:
    if not isinstance(report, dict) or "suites" not in report:
        raise BenchError(f"{label} report is not a bench report")
    version = report.get("schema_version")
    if version != SCHEMA_VERSION:
        raise BenchError(
            f"{label} report has schema_version {version!r}; "
            f"this tool reads version {SCHEMA_VERSION}")


def compare_reports(current: Dict, baseline: Dict, *,
                    threshold: float = 0.25,
                    min_speedup: float = 0.0) -> CompareResult:
    """Diff ``current`` against ``baseline`` suite-by-suite.

    Three gates, per design of every suite present in both reports:

    - *counters*: simulated instructions/cycles/uops must match exactly and
      the current run's fast/normal counters must agree — always on (a
      mismatch means the simulation changed, not the machine);
    - *wall clock*: the fast and normal medians may regress by at most
      ``threshold`` (fractional; ``0`` or negative disables — use this in
      CI where baseline timings come from a different machine);
    - *speedup*: the current fast-over-normal ratio must be at least
      ``min_speedup`` (``0`` disables).  Machine-independent, so it is the
      CI-safe performance gate.
    """
    _check_report(current, "current")
    _check_report(baseline, "baseline")
    lines: List[str] = []
    failures: List[str] = []
    shared = [name for name in current["suites"] if name in baseline["suites"]]
    if not shared:
        raise BenchError(
            "no suite names in common between current "
            f"({', '.join(current['suites']) or 'none'}) and baseline "
            f"({', '.join(baseline['suites']) or 'none'})")
    for name in shared:
        cur = current["suites"][name]
        base = baseline["suites"][name]
        mismatched = [field for field in _IDENTITY_FIELDS
                      if cur.get(field) != base.get(field)]
        if mismatched:
            failures.append(
                f"{name}: suite parameters differ from baseline "
                f"({', '.join(mismatched)}); counters are not comparable")
            continue
        for design, cur_d in cur["designs"].items():
            base_d = base["designs"].get(design)
            if base_d is None:
                lines.append(f"{name}/{design}: not in baseline, skipped")
                continue
            problems: List[str] = []
            diverged = [field for field in _COUNTER_FIELDS
                        if cur_d[field] != base_d[field]]
            if diverged:
                problems.append(
                    "counter mismatch: " + ", ".join(
                        f"{field} {base_d[field]} -> {cur_d[field]}"
                        for field in diverged))
            if not cur_d["counters_equal"]:
                problems.append("fast/normal counters diverged")
            deltas = []
            for mode in ("normal", "fast"):
                cur_t = cur_d[f"{mode}_median_seconds"]
                base_t = base_d[f"{mode}_median_seconds"]
                change = cur_t / base_t - 1.0
                deltas.append(f"{mode} {base_t:.3f}s -> {cur_t:.3f}s "
                              f"({change:+.1%})")
                if threshold > 0 and change > threshold:
                    problems.append(
                        f"{mode} wall time regressed {change:+.1%} "
                        f"(threshold {threshold:.0%})")
            speedup = cur_d["speedup"]
            deltas.append(f"speedup {base_d['speedup']:.2f}x -> "
                          f"{speedup:.2f}x")
            if min_speedup > 0 and speedup < min_speedup:
                problems.append(f"fast-mode speedup {speedup:.2f}x below "
                                f"floor {min_speedup:.2f}x")
            verdict = "FAIL: " + "; ".join(problems) if problems else "ok"
            lines.append(f"{name}/{design}: {', '.join(deltas)} [{verdict}]")
            for problem in problems:
                failures.append(f"{name}/{design}: {problem}")
    return CompareResult(lines=tuple(lines), failures=tuple(failures))


# -- rendering -------------------------------------------------------------


def render_report(report: Dict) -> str:
    """Human-readable summary of a report (printed after a bench run)."""
    out: List[str] = []
    for name, suite in report["suites"].items():
        out.append(f"suite {name}: {suite['workload']}, "
                   f"{suite['instructions']} instructions, "
                   f"median of {suite['repeats']}")
        for design, data in suite["designs"].items():
            flag = "" if data["counters_equal"] else "  COUNTERS DIVERGED"
            out.append(
                f"  {design:<9s} normal {data['normal_median_seconds']:.3f}s "
                f"({data['normal_inst_per_sec']:>9.0f} inst/s, "
                f"{data['normal_cycles_per_sec']:>9.0f} cyc/s)   "
                f"fast {data['fast_median_seconds']:.3f}s "
                f"({data['fast_inst_per_sec']:>9.0f} inst/s)   "
                f"speedup {data['speedup']:.2f}x{flag}")
    return "\n".join(out)


def render_compare(result: CompareResult) -> str:
    out = list(result.lines)
    if result.ok:
        out.append("bench compare: ok")
    else:
        out.append(f"bench compare: {len(result.failures)} failure(s)")
        out.extend(f"  {failure}" for failure in result.failures)
    return "\n".join(out)
