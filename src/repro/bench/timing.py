"""Wall-clock measurement primitives (warmup + repeat-and-take-median).

Kept free of simulator imports so the figure benches under ``benchmarks/``
can reuse them for any callable.  Only :func:`time.perf_counter` is used —
the monotonic high-resolution clock simlint's determinism rule permits.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Sequence, Tuple, TypeVar

from ..common.errors import ConfigError

_T = TypeVar("_T")


def median(values: Sequence[float]) -> float:
    """Exact median: middle of the sorted samples, mean of the two middles
    for even counts.  (Local so the bench has no statistics-module import
    whose tie-breaking could drift between Python versions.)"""
    if not values:
        raise ConfigError("median of an empty sample set")
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2.0


@dataclass(frozen=True)
class Measurement:
    """Repeated wall-clock samples of one callable."""

    samples: Tuple[float, ...]

    @property
    def median_seconds(self) -> float:
        return median(self.samples)

    @property
    def best_seconds(self) -> float:
        return min(self.samples)


def timed(fn: Callable[[], _T]) -> Tuple[_T, float]:
    """One timed call, keeping the result: ``(fn(), wall_seconds)``.

    For expensive one-shot computations (session-cached sweeps) where
    :func:`measure`'s repeat-and-discard discipline would be wasteful.
    """
    start = time.perf_counter()
    value = fn()
    return value, time.perf_counter() - start


def measure(fn: Callable[[], object], repeats: int = 5,
            warmup_runs: int = 1) -> Measurement:
    """Time ``fn`` with ``warmup_runs`` untimed calls (JIT-less Python still
    benefits: code objects warm the icache, lazy caches fill) followed by
    ``repeats`` timed calls.  Use :attr:`Measurement.median_seconds` — the
    median is robust to the occasional scheduler hiccup a mean is not."""
    if repeats < 1:
        raise ConfigError("measure() needs repeats >= 1")
    if warmup_runs < 0:
        raise ConfigError("measure() needs warmup_runs >= 0")
    for _ in range(warmup_runs):
        fn()
    samples = []
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        samples.append(time.perf_counter() - start)
    return Measurement(samples=tuple(samples))
