"""``repro bench`` — simulator performance baseline and regression gate.

Measure::

    repro bench                      # full + smoke suites -> BENCH_8.json
    repro bench --smoke              # smoke suite only (CI-sized)

Compare against a committed baseline::

    repro bench --smoke --compare BENCH_8.json --threshold 0 --min-speedup 1.3

Exit codes: 0 ok, 1 regression (counter mismatch, wall-clock regression past
``--threshold``, or speedup below ``--min-speedup``), 2 usage/config errors.
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import replace
from typing import List

from ..core.experiment import DEFAULT_SEED, POLICY_LABELS
from ..workloads.cli import add_engine_arguments, engine_params_from_args
from .harness import (
    SUITES,
    BenchError,
    compare_reports,
    render_compare,
    render_report,
    run_report,
)

#: Default report path; the number tracks the PR that (re)generated it.
DEFAULT_REPORT = "BENCH_8.json"


def add_bench_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--smoke", action="store_true",
                        help="run only the small smoke suite "
                             "(default: full + smoke)")
    parser.add_argument("--designs", default="",
                        help="comma-separated design subset "
                             f"(default: {','.join(POLICY_LABELS)})")
    parser.add_argument("--repeats", type=int, default=None,
                        help="override timed repetitions per measurement")
    parser.add_argument("--instructions", type=int, default=None,
                        help="override per-suite trace length")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED,
                        help=f"trace seed (default: {DEFAULT_SEED})")
    # Engine selection is part of the suite identity: a non-default
    # engine run will not compare against a synthetic baseline.
    add_engine_arguments(parser)
    parser.add_argument("--out", default=None,
                        help="write the report here (default: "
                             f"{DEFAULT_REPORT}; '-' prints JSON to stdout "
                             "without writing)")
    parser.add_argument("--compare", default=None, metavar="BASELINE.json",
                        help="diff this run against a baseline report; "
                             "nothing is written unless --out is given")
    parser.add_argument("--threshold", type=float, default=0.25,
                        help="max fractional wall-clock regression before "
                             "--compare fails (0 disables the timing gate; "
                             "default: 0.25)")
    parser.add_argument("--min-speedup", type=float, default=0.0,
                        help="minimum fast/normal speedup --compare "
                             "requires (0 disables; machine-independent, "
                             "so CI-safe)")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-design progress lines")


def _parse_designs(value: str) -> List[str]:
    if not value:
        return list(POLICY_LABELS)
    names = [name.strip() for name in value.split(",") if name.strip()]
    for name in names:
        if name not in POLICY_LABELS:
            raise BenchError(f"unknown design {name!r}; "
                             f"known: {', '.join(POLICY_LABELS)}")
    return names


def run_bench_command(args: argparse.Namespace) -> int:
    suite_names = ["smoke"] if args.smoke else ["full", "smoke"]
    engine_params = tuple(sorted(engine_params_from_args(args).items()))
    suites = []
    for name in suite_names:
        params = replace(SUITES[name], seed=args.seed,
                         engine=args.engine, engine_params=engine_params)
        if args.repeats is not None:
            params = replace(params, repeats=args.repeats)
        if args.instructions is not None:
            params = replace(params, instructions=args.instructions)
        suites.append(params)

    progress = None if args.quiet else \
        (lambda line: print("  " + line, file=sys.stderr))
    report = run_report(suites, _parse_designs(args.designs), progress)

    if args.compare is not None:
        try:
            with open(args.compare, "r", encoding="utf-8") as handle:
                baseline = json.load(handle)
        except (OSError, ValueError) as error:
            raise BenchError(
                f"cannot read baseline {args.compare}: {error}") from error
        result = compare_reports(report, baseline,
                                 threshold=args.threshold,
                                 min_speedup=args.min_speedup)
        print(render_compare(result))
        if args.out is not None:
            _write(report, args.out)
        return 0 if result.ok else 1

    _write(report, args.out if args.out is not None else DEFAULT_REPORT)
    print(render_report(report))
    return 0


def _write(report: dict, out: str) -> None:
    text = json.dumps(report, indent=2, sort_keys=True) + "\n"
    if out == "-":
        sys.stdout.write(text)
        return
    with open(out, "w", encoding="utf-8") as handle:
        handle.write(text)
    print(f"wrote {out}", file=sys.stderr)
