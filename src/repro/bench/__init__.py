"""Performance benchmark: wall-clock baselines for the simulator itself.

The figure benches (``benchmarks/``) reproduce the *paper's* numbers; this
package measures the *simulator's* throughput (simulated instructions and
cycles per wall-clock second) for every uop cache design, in both the normal
serve loop and the counters-only fast mode, with warmup runs and
repeat-and-take-median discipline.  Reports are schema-versioned JSON
(``BENCH_<n>.json`` at the repo root) so a later change can be compared
against a committed baseline (``repro bench --compare``).
"""

from .harness import (
    SCHEMA_VERSION,
    SUITES,
    BenchError,
    CompareResult,
    SuiteParams,
    compare_reports,
    render_compare,
    render_report,
    run_report,
    run_suite,
)
from .timing import Measurement, measure, median, timed

__all__ = [
    "BenchError",
    "CompareResult",
    "Measurement",
    "SCHEMA_VERSION",
    "SUITES",
    "SuiteParams",
    "compare_reports",
    "measure",
    "median",
    "render_compare",
    "render_report",
    "run_report",
    "run_suite",
    "timed",
]
