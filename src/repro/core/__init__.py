"""Top-level simulation: the simulator, metrics, and experiment harness."""

from .metrics import SimulationResult
from .smt import SmtResult, SmtSimulator, simulate_smt
from .simulator import (
    DECODE_RESTEER_PENALTY,
    MISPREDICT_REDIRECT_PENALTY,
    Simulator,
    simulate,
)

__all__ = [
    "DECODE_RESTEER_PENALTY",
    "MISPREDICT_REDIRECT_PENALTY",
    "SimulationResult",
    "Simulator",
    "SmtResult",
    "SmtSimulator",
    "simulate",
    "simulate_smt",
]
