"""Counters-only fast serve loop (``config.fast_mode``).

A specialization of :meth:`Simulator.steps` that produces a bit-identical
:class:`~repro.core.metrics.SimulationResult` while stripping everything the
counters don't need:

- **no telemetry** — the ``tel is not None`` tests and per-action event
  bookkeeping disappear entirely (fast mode refuses a telemetry hub at the
  config layer);
- **no per-uop object churn** — the back-end admits whole instructions via
  :meth:`OutOfOrderBackend.admit_inst`, skipping one frozen ``UopTiming``
  dataclass per uop;
- **precomputed trace views** — per-record PCs, memory addresses, resolved
  taken flags, uop tuples and static execution latencies are materialized
  into flat lists up front, replacing per-action ``program.at`` /
  ``uops_at`` / property dispatch;
- **fused TAGE** — conditional branches go through
  :meth:`TagePredictor.observe` (one index/tag walk instead of three) with
  per-PC cached static hash terms;
- **hoisted state** — hot counters live in locals for the whole run and are
  written back to the simulator at the few points that can observe them
  (warmup snapshot, strict invariant hooks, the loop-cache path, the end of
  the run).

Equivalence is not an aspiration but a test target: the oracle differential
runner, every golden snapshot, and hypothesis property tests all assert the
fast and normal paths agree (see tests/test_fast_mode.py).
"""

from __future__ import annotations

import weakref
from typing import Dict, List, Optional, Tuple

from ..isa.uop import _EXEC_LATENCY, UopKind
from ..workloads.trace import Trace
from .simulator import (DECODE_RESTEER_PENALTY, MISPREDICT_REDIRECT_PENALTY,
                        Simulator)

#: Sentinel in a static-latency tuple marking a load that must resolve
#: through the data hierarchy (see ``OutOfOrderBackend.admit_inst``).
_LOAD_SENTINEL = -1


class TraceView:
    """Flat per-record arrays precomputed from a trace + program.

    Everything here — including the prediction-window segmentation — is a
    pure function of the static program, the resolved trace, the I-cache
    line size and the PW not-taken limit, so hoisting it out of the serve
    loop cannot change any simulated outcome.
    """

    __slots__ = ("pcs", "next_pcs", "mem_addrs", "takens", "uops", "nuops",
                 "latencies", "insts", "is_branch", "spans_line",
                 "span_tail_pcs", "pw_firsts", "pw_lasts", "pw_ids")

    def __init__(self, trace: Trace, line_bytes: int,
                 max_not_taken: int) -> None:
        program = trace.program
        records = trace.records
        n = len(records)
        self.pcs: List[int] = [0] * n
        self.next_pcs: List[int] = [0] * n
        self.mem_addrs: List[Optional[int]] = [None] * n
        self.takens: List[bool] = [False] * n
        self.uops: List[tuple] = [()] * n
        self.nuops: List[int] = [0] * n
        self.latencies: List[Tuple[int, ...]] = [()] * n
        self.insts: List[object] = [None] * n
        self.is_branch: List[bool] = [False] * n
        self.spans_line: List[bool] = [False] * n
        #: Last-byte address of instructions spanning an I-cache line
        #: boundary (the extra fetch probe target), else 0.
        self.span_tail_pcs: List[int] = [0] * n

        static: Dict[int, tuple] = {}
        is_uncond: List[bool] = [False] * n
        for i, record in enumerate(records):
            pc = record.pc
            info = static.get(pc)
            if info is None:
                inst = program.at(pc)
                uops = program.uops_at(pc)
                lats = tuple(
                    _LOAD_SENTINEL if uop.kind is UopKind.LOAD
                    else _EXEC_LATENCY[uop.kind]
                    for uop in uops)
                spans = inst.spans_line_boundary(line_bytes)
                info = (inst, uops, len(uops), lats, inst.is_branch,
                        inst.end_address, spans,
                        inst.end_address - 1 if spans else 0,
                        inst.is_unconditional_transfer)
                static[pc] = info
            inst, uops, nuops, lats, is_br, end_addr, spans, tail, \
                uncond = info
            self.pcs[i] = pc
            self.next_pcs[i] = record.next_pc
            self.mem_addrs[i] = record.mem_addr
            self.takens[i] = record.next_pc != end_addr
            self.uops[i] = uops
            self.nuops[i] = nuops
            self.latencies[i] = lats
            self.insts[i] = inst
            self.is_branch[i] = is_br
            self.spans_line[i] = spans
            self.span_tail_pcs[i] = tail
            is_uncond[i] = uncond

        # Prediction-window segmentation (mirrors
        # PredictionWindowBuilder.windows(); only the first/last record
        # indices and the pw_id are consumed by the serve loop).
        pw_firsts: List[int] = []
        pw_lasts: List[int] = []
        pw_ids: List[int] = []
        pcs = self.pcs
        next_pcs = self.next_pcs
        takens = self.takens
        is_branch = self.is_branch
        index = 0
        while index < n:
            first = index
            start_pc = pcs[index]
            start_line = start_pc // line_bytes
            not_taken_seen = 0
            while True:
                idx = index
                index += 1
                if is_branch[idx] and (takens[idx] or is_uncond[idx]):
                    break
                if is_branch[idx]:
                    not_taken_seen += 1
                    if not_taken_seen >= max_not_taken:
                        break
                if next_pcs[idx] // line_bytes != start_line:
                    break
                if index >= n:
                    break
            pw_firsts.append(first)
            pw_lasts.append(index - 1)
            pw_ids.append(start_pc)
        self.pw_firsts = pw_firsts
        self.pw_lasts = pw_lasts
        self.pw_ids = pw_ids


#: Per-trace view cache: Trace objects are immutable and the experiment
#: layer LRU-caches them, so repeated runs (bench repeats, design sweeps
#: over one workload) reuse the precomputed arrays.  Keyed weakly so views
#: die with their traces.
_VIEW_CACHE: "weakref.WeakKeyDictionary[Trace, Dict[Tuple[int, int], TraceView]]" = \
    weakref.WeakKeyDictionary()


def trace_view(trace: Trace, line_bytes: int, max_not_taken: int) -> TraceView:
    """The (possibly cached) :class:`TraceView` for one trace/config pair."""
    per_trace = _VIEW_CACHE.get(trace)
    if per_trace is None:
        per_trace = {}
        _VIEW_CACHE[trace] = per_trace
    key = (line_bytes, max_not_taken)
    view = per_trace.get(key)
    if view is None:
        view = TraceView(trace, line_bytes, max_not_taken)
        per_trace[key] = view
    return view


class FastPath:
    """Drives one :class:`Simulator` through its whole trace, fast."""

    def __init__(self, sim: Simulator) -> None:
        if sim.telemetry is not None:
            raise ValueError("fast mode is counters-only: detach telemetry")
        self.sim = sim
        self.view = trace_view(
            sim.trace, sim._line_bytes,
            sim.config.branch.max_not_taken_branches_per_pw)

    def run(self) -> None:
        """Simulate the whole trace, mutating the simulator state exactly as
        draining :meth:`Simulator.steps` would (minus telemetry, which fast
        mode forbids)."""
        sim = self.sim
        view = self.view
        cfg = sim.config
        oc = sim.uop_cache
        accumulator = sim.accumulator
        backend = sim.backend
        bpu = sim.bpu
        loop_cache = sim.loop_cache
        hierarchy = sim.hierarchy
        decoder_power = sim.decoder_power

        decode_bw = cfg.decoder.bandwidth_insts_per_cycle
        decode_latency = cfg.decoder.latency_cycles
        oc_latency = cfg.uop_cache.fetch_latency_cycles
        records = sim.trace.records
        max_insts = cfg.max_instructions or len(records)
        limit = min(len(records), max_insts)
        limit_m1 = limit - 1
        loop_enabled = cfg.loop_cache.enabled
        strict = sim.strict
        warmup = cfg.warmup_instructions

        # Prebound per-record arrays.
        pcs = view.pcs
        next_pcs = view.next_pcs
        mem_addrs = view.mem_addrs
        takens = view.takens
        uops_arr = view.uops
        nuops = view.nuops
        lats_arr = view.latencies
        insts = view.insts
        is_branch = view.is_branch
        spans_line = view.spans_line
        span_tails = view.span_tail_pcs

        # Prebound methods.
        lookup_fast = oc.lookup_fast
        oc_fill = oc.fill
        admit_inst = backend.admit_inst
        observe_fast = bpu.observe_fast
        acc_flush = accumulator.flush
        acc_push = accumulator.push
        acc_begin = accumulator.begin
        fetch_line = hierarchy.fetch_instruction_line_fast
        record_burst = decoder_power.record_decode_burst
        observe_fetch = sim._observe_fetch_action
        observe_taken = loop_cache.observe_taken_branch

        # Back-end queue state read directly for backpressure (mirrors
        # OutOfOrderBackend.queue_backpressure_cycle without the property
        # dispatch).
        dispatch_ring = backend._dispatch_ring
        queue_entries = backend.config.uop_queue_entries

        # Hot counters hoisted into locals; synced back via _sync at every
        # point that can observe simulator state mid-run.
        instructions_done = sim._instructions_done
        uops_from_oc = sim._uops_from_oc
        uops_from_ic = sim._uops_from_ic
        seq_run_uops = sim._seq_run_uops
        mispredicts = sim._mispredicts
        mispredict_latency_sum = sim._mispredict_latency_sum
        fe_cycles_oc = sim.fe_cycles_oc
        fe_cycles_ic = sim.fe_cycles_ic
        fe_cycles_redirect = sim.fe_cycles_redirect
        fe_cycles_backpressure = sim.fe_cycles_backpressure
        pw_in_flight = sim._pw_in_flight
        pw_entry_count = sim._pw_entry_count
        entries_per_pw_record = sim._entries_per_pw.record

        need_warmup = bool(warmup) and sim._warmup_snapshot is None

        def _sync() -> None:
            sim._instructions_done = instructions_done
            sim._uops_from_oc = uops_from_oc
            sim._uops_from_ic = uops_from_ic
            sim._seq_run_uops = seq_run_uops
            sim._mispredicts = mispredicts
            sim._mispredict_latency_sum = mispredict_latency_sum
            sim.fe_cycles_oc = fe_cycles_oc
            sim.fe_cycles_ic = fe_cycles_ic
            sim.fe_cycles_redirect = fe_cycles_redirect
            sim.fe_cycles_backpressure = fe_cycles_backpressure
            sim._pw_in_flight = pw_in_flight
            sim._pw_entry_count = pw_entry_count

        fe_cycle = 0
        cursor = 0
        pw_firsts = view.pw_firsts
        pw_lasts = view.pw_lasts
        pw_ids = view.pw_ids
        wi = 0
        pw_last = pw_lasts[0] if pw_lasts else -1

        while cursor < limit:
            if need_warmup and instructions_done >= warmup:
                _sync()
                sim._take_warmup_snapshot()
                need_warmup = False
            while pw_last < cursor:
                wi += 1
                pw_last = pw_lasts[wi]
            pw_first = pw_firsts[wi]
            pw_id = pw_ids[wi]

            if len(dispatch_ring) == queue_entries:
                backpressure = dispatch_ring[0]
                if backpressure > fe_cycle:
                    fe_cycles_backpressure += backpressure - fe_cycle
                    fe_cycle = backpressure
            pw_fetch_cycle = fe_cycle
            if pw_first != pw_in_flight:
                if pw_in_flight is not None and pw_entry_count:
                    entries_per_pw_record(pw_entry_count)
                pw_in_flight = pw_first
                pw_entry_count = 0
            pc = pcs[cursor]

            if loop_enabled and loop_cache.active and \
                    pc == loop_cache.active_target:
                # Rare once locked loops break; reuse the slow-path method
                # verbatim (it is already lean) with counters synced around
                # the call.
                _sync()
                cursor, fe_cycle, redirect = sim._serve_from_loop_cache(
                    cursor, limit, fe_cycle, pw_fetch_cycle)
                instructions_done = sim._instructions_done
                seq_run_uops = sim._seq_run_uops
                mispredicts = sim._mispredicts
                mispredict_latency_sum = sim._mispredict_latency_sum
                if redirect > fe_cycle:
                    fe_cycles_redirect += redirect - fe_cycle
                    fe_cycle = redirect
                if strict:
                    _sync()
                    observe_fetch(fe_cycle)
                continue

            entry = lookup_fast(pc)
            if entry is not None:
                # ------------------------------------------- uop cache path
                for sealed in acc_flush():
                    oc_fill(sealed)
                arrival = fe_cycle + oc_latency
                redirect = 0
                start = entry.start_pc
                end = entry.end_pc
                while cursor < limit:
                    pc = pcs[cursor]
                    if pc < start or pc >= end:
                        break
                    idx = cursor
                    n = nuops[idx]
                    uops_from_oc += n
                    seq_run_uops += n
                    complete = admit_inst(lats_arr[idx], arrival,
                                          mem_addrs[idx])
                    instructions_done += 1
                    cursor += 1
                    taken = takens[idx]
                    if is_branch[idx]:
                        outcome = observe_fast(insts[idx], taken,
                                               next_pcs[idx])
                        if outcome == 2:
                            mispredicts += 1
                            delta = complete - pw_fetch_cycle
                            if delta > 0:
                                mispredict_latency_sum += delta
                            redirect = complete + MISPREDICT_REDIRECT_PENALTY
                            seq_run_uops = 0
                            break
                        if outcome == 1:
                            redirect = fe_cycle + 1 + DECODE_RESTEER_PENALTY
                            if taken:
                                if loop_enabled:
                                    observe_taken(
                                        pc, next_pcs[idx],
                                        body_uops=seq_run_uops)
                                seq_run_uops = 0
                            break
                    if taken:
                        if loop_enabled:
                            observe_taken(
                                pc, next_pcs[idx], body_uops=seq_run_uops)
                        seq_run_uops = 0
                        break
                fe_cycles_oc += 1
                fe_cycle += 1
                pw_entry_count += 1
            else:
                # --------------------------------------------- decoder path
                last = pw_last if pw_last < limit_m1 else limit_m1
                acc_begin(pw_id)
                fetch_latency = fetch_line(pcs[cursor])
                base = fe_cycle + fetch_latency + decode_latency
                slot = 0
                redirect = 0
                decoded = 0
                while cursor <= last:
                    idx = cursor
                    pc = pcs[idx]
                    if spans_line[idx]:
                        fetch_line(span_tails[idx])
                    arrival = base + slot // decode_bw
                    complete = admit_inst(lats_arr[idx], arrival,
                                          mem_addrs[idx])
                    n = nuops[idx]
                    uops_from_ic += n
                    seq_run_uops += n
                    instructions_done += 1
                    decoded += 1
                    slot += 1
                    cursor += 1
                    taken = takens[idx]
                    for sealed in acc_push(uops_arr[idx], taken):
                        oc_fill(sealed)
                        pw_entry_count += 1
                    if is_branch[idx]:
                        outcome = observe_fast(insts[idx], taken,
                                               next_pcs[idx])
                        if outcome == 2:
                            mispredicts += 1
                            delta = complete - pw_fetch_cycle
                            if delta > 0:
                                mispredict_latency_sum += delta
                            redirect = complete + MISPREDICT_REDIRECT_PENALTY
                            seq_run_uops = 0
                            break
                        if outcome == 1:
                            redirect = (fe_cycle + fetch_latency +
                                        slot // decode_bw +
                                        DECODE_RESTEER_PENALTY)
                            if taken:
                                if loop_enabled:
                                    observe_taken(
                                        pc, next_pcs[idx],
                                        body_uops=seq_run_uops)
                                seq_run_uops = 0
                            break
                    if taken:
                        if loop_enabled:
                            observe_taken(
                                pc, next_pcs[idx], body_uops=seq_run_uops)
                        seq_run_uops = 0
                decode_cycles = (decoded + decode_bw - 1) // decode_bw
                record_burst(decoded, decode_cycles)
                advance = fetch_latency + decode_latency + decode_cycles
                fe_cycles_ic += advance
                fe_cycle += advance

            if redirect > fe_cycle:
                fe_cycles_redirect += redirect - fe_cycle
                fe_cycle = redirect
            if strict:
                _sync()
                observe_fetch(fe_cycle)

        _sync()
