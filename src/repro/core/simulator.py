"""The trace-driven cycle-level simulator.

One :class:`Simulator` instance runs one trace against one configuration and
produces a :class:`~repro.core.metrics.SimulationResult`.

Model outline (see DESIGN.md for rationale):

- The resolved trace is segmented into prediction windows (PWs).  The
  front-end processes PWs in order, maintaining ``fe_cycle``, the cycle at
  which the next fetch action can start.
- For each PW (or continuation point inside it) the uop cache is probed with
  the current fetch address.  A hit dispatches one entry per cycle, uops
  arriving at ``fe_cycle + oc_fetch_latency``.  Under CLASP, a hit entry may
  extend past the current PW into sequential successors; the fetch logic
  follows the entry's end address, consuming those records in the same
  dispatch.
- A miss sends the rest of the PW down the IC path: I-cache access (through
  the hierarchy, with next-line prefetch), 4-wide decode with a 3-cycle
  decode latency, decoder energy accounting, and entry accumulation + uop
  cache fill.
- Every dynamic branch consults the branch prediction unit.  A BTB-type
  resteer adds a fixed decode-redirect bubble.  A misprediction stalls
  fetch until the branch's *resolution* (its completion in the back-end)
  plus a redirect penalty — so uops fed from the shorter uop-cache path
  resolve earlier, reproducing the paper's latency benefit.
- The back-end (ROB/queue occupancy, width limits) timestamps every uop;
  UPC and dispatch bandwidth come from its counters.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..backend.core import OutOfOrderBackend
from ..branch.predictor import BranchPredictionUnit, PredictionOutcome
from ..branch.window import PredictionWindowBuilder
from ..caches.hierarchy import MemoryHierarchy
from ..common.config import SimulatorConfig
from ..common.errors import CacheError, SimulationError
from ..common.statistics import Histogram
from ..frontend.loopcache import LoopCache
from ..isa.uop import UopKind
from ..power.decoder import DecoderPowerModel
from ..telemetry.events import EventKind
from ..telemetry.hub import TelemetryHub
from ..telemetry.interval import IntervalTracker
from ..uopcache.builder import AccumulationBuffer
from ..uopcache.cache import UopCache
from ..workloads.trace import Trace
from .metrics import SimulationResult

#: Fixed front-end penalties (cycles).
MISPREDICT_REDIRECT_PENALTY = 2   # flush + refetch overhead beyond resolution
DECODE_RESTEER_PENALTY = 3        # BTB-miss redirect discovered at decode

#: Strict mode: fetch actions between full invariant sweeps (the per-action
#: monotonicity check is always on; the structural checks walk the whole uop
#: cache, so they run on a stride).
INVARIANT_CHECK_INTERVAL = 4096


class Simulator:
    """Runs one trace under one configuration."""

    def __init__(self, trace: Trace,
                 config: Optional[SimulatorConfig] = None,
                 config_label: str = "",
                 shared_uop_cache: Optional[UopCache] = None,
                 shared_hierarchy: Optional[MemoryHierarchy] = None,
                 shared_decoder_power: Optional[DecoderPowerModel] = None,
                 strict: bool = False,
                 telemetry: Optional[TelemetryHub] = None) -> None:
        """``shared_*`` lets several simulators (SMT hardware threads) share
        structures; see :class:`repro.core.smt.SmtSimulator`.

        ``strict`` enables the runtime invariant checker: cycle monotonicity
        is validated on every fetch action and the conservation/occupancy/
        structural checks run every :data:`INVARIANT_CHECK_INTERVAL` actions
        and at collection, raising :class:`SimulationError` with diagnostic
        context on any inconsistency.  Long-running sweeps use it so a
        corrupted simulation fails loudly instead of producing bad numbers.

        ``telemetry`` attaches a :class:`TelemetryHub` explicitly (the SMT
        coordinator shares one hub across threads); when omitted, a hub is
        built iff ``config.telemetry.enabled``.  Without either, every
        instrumented structure holds ``None`` and the hot paths pay one
        ``is not None`` test per serving action.
        """
        self.trace = trace
        self.config = config or SimulatorConfig()
        cfg = self.config
        self.config_label = config_label or self._default_label()
        line_bytes = cfg.memory.l1i.line_bytes

        if telemetry is None and cfg.telemetry.enabled:
            telemetry = TelemetryHub.from_config(cfg.telemetry)
        self.telemetry = telemetry
        #: Chrome-trace thread id; the SMT coordinator renumbers its threads.
        self.telemetry_tid = 0

        self.hierarchy = shared_hierarchy or MemoryHierarchy(cfg.memory)
        self.uop_cache = shared_uop_cache or \
            UopCache(cfg.uop_cache, icache_line_bytes=line_bytes,
                     telemetry=telemetry)
        self.accumulator = AccumulationBuffer(cfg.uop_cache,
                                              icache_line_bytes=line_bytes,
                                              telemetry=telemetry)
        self.bpu = BranchPredictionUnit(cfg.branch)
        self.loop_cache = LoopCache(cfg.loop_cache, telemetry=telemetry)
        self.backend = OutOfOrderBackend(cfg.core, self.hierarchy)
        self.decoder_power = shared_decoder_power or \
            DecoderPowerModel(cfg.power)
        self.pw_builder = PredictionWindowBuilder(
            trace, line_bytes=line_bytes, config=cfg.branch)

        self._line_bytes = line_bytes
        self._entries_per_pw = Histogram("entries_per_pw")
        # Running counters.
        self._uops_from_oc = 0
        self._uops_from_ic = 0
        self._uops_from_loop = 0
        self._mispredicts = 0
        self._mispredict_latency_sum = 0
        self._instructions_done = 0
        #: Uops admitted since the last taken branch (approximates the body
        #: size of a candidate loop for the loop cache).
        self._seq_run_uops = 0
        #: Counter values at the warmup boundary (None until taken).
        self._warmup_snapshot: Optional[Dict[str, int]] = None
        # Fig. 12 bookkeeping: entries served for the PW currently in flight.
        self._pw_in_flight: Optional[int] = None
        self._pw_entry_count = 0
        # Cycle accounting (where front-end time goes).
        self.fe_cycles_oc = 0          # cycles advancing the OC dispatch path
        self.fe_cycles_ic = 0          # cycles advancing the decode path
        self.fe_cycles_redirect = 0    # cycles waiting on branch redirects
        self.fe_cycles_backpressure = 0  # cycles stalled on uop-queue space
        # Strict-mode invariant checking.
        self.strict = strict
        self._max_fe_cycle = 0
        self._max_backend_cycle = 0
        self._fetch_actions = 0
        # Telemetry bookkeeping (all unused when self.telemetry is None).
        self._interval = IntervalTracker(telemetry,
                                         cfg.telemetry.interval_cycles) \
            if telemetry is not None else None
        self._last_fetch_source: Optional[str] = None
        self._last_fe_cycle = 0

    def _default_label(self) -> str:
        oc = self.config.uop_cache
        parts = [f"oc{oc.capacity_uops}"]
        if oc.clasp:
            parts.append("clasp")
        if oc.compaction.value != "none":
            parts.append(oc.compaction.value)
        return "+".join(parts)

    # ------------------------------------------------------------------ run

    def run(self) -> SimulationResult:
        """Run the whole trace and return the results.

        With ``config.fast_mode`` (and no telemetry hub, which the config
        layer already rejects) the counters-only specialized serve loop in
        :mod:`repro.core.fastpath` runs instead of draining :meth:`steps`;
        it produces a bit-identical result (tests/test_fast_mode.py).  A
        hub attached explicitly by a coordinator wins over fast mode.
        """
        if self.config.fast_mode and self.telemetry is None:
            # Imported here: fastpath imports from this module.
            from .fastpath import FastPath
            FastPath(self).run()
            return self.collect()
        for _ in self.steps():
            pass
        return self.collect()

    def steps(self):
        """Generator form of :meth:`run`: yields the front-end cycle after
        each fetch action, so a coordinator (e.g. the SMT simulator) can
        interleave several hardware threads over shared structures."""
        trace = self.trace
        records = trace.records
        cfg = self.config
        oc = self.uop_cache
        accumulator = self.accumulator
        backend = self.backend
        decode_bw = cfg.decoder.bandwidth_insts_per_cycle
        decode_latency = cfg.decoder.latency_cycles
        oc_latency = cfg.uop_cache.fetch_latency_cycles
        max_insts = cfg.max_instructions or len(records)
        limit = min(len(records), max_insts)

        fe_cycle = 0
        cursor = 0
        windows = self.pw_builder.windows()
        pw = next(windows)
        warmup = cfg.warmup_instructions
        tel = self.telemetry
        tel_insts = tel_uops = 0
        # Prebound methods: these run on every fetch action.
        emit_fetch = self._emit_fetch_action
        observe_fetch = self._observe_fetch_action
        oc_fill = oc.fill

        while cursor < limit:
            if warmup and self._warmup_snapshot is None and \
                    self._instructions_done >= warmup:
                self._take_warmup_snapshot()
            # Advance to the PW containing the cursor (entries served under
            # CLASP may have consumed whole windows).
            while pw.last < cursor:
                pw = next(windows)

            backpressure = backend.queue_backpressure_cycle
            if backpressure > fe_cycle:
                self.fe_cycles_backpressure += backpressure - fe_cycle
                fe_cycle = backpressure
            pw_fetch_cycle = fe_cycle
            if pw.first != self._pw_in_flight:
                if self._pw_in_flight is not None and self._pw_entry_count:
                    self._entries_per_pw.record(self._pw_entry_count)
                self._pw_in_flight = pw.first
                self._pw_entry_count = 0
            entries_this_pw = 0
            pc = records[cursor].pc
            if tel is not None:
                tel.cycle = fe_cycle
                tel_insts = self._instructions_done
                tel_uops = (self._uops_from_oc + self._uops_from_ic +
                            self._uops_from_loop)

            if self.loop_cache.active and \
                    pc == self.loop_cache.active_target:
                cursor, fe_cycle, redirect = self._serve_from_loop_cache(
                    cursor, limit, fe_cycle, pw_fetch_cycle)
                if redirect > fe_cycle:
                    self.fe_cycles_redirect += redirect - fe_cycle
                    fe_cycle = redirect
                if tel is not None:
                    emit_fetch(tel, "loop", tel_uops, tel_insts,
                               fe_cycle)
                if self.strict:
                    observe_fetch(fe_cycle)
                yield fe_cycle
                continue

            entry = oc.lookup(pc)
            if entry is not None:
                # Supply switches to the uop cache path: install any partial
                # accumulated entry (the accumulation buffer drains on path
                # switch, as after the decoder goes idle in hardware).
                for sealed in accumulator.flush():
                    oc_fill(sealed)
                cursor, fe_cycle, redirect = self._serve_from_uop_cache(
                    entry, cursor, limit, fe_cycle, oc_latency,
                    pw_fetch_cycle)
                entries_this_pw += 1
            else:
                end = min(pw.last, limit - 1)
                cursor, fe_cycle, redirect, sealed = self._serve_from_decoder(
                    cursor, end, fe_cycle, decode_bw, decode_latency,
                    pw_fetch_cycle, pw.pw_id)
                entries_this_pw += sealed

            self._pw_entry_count += entries_this_pw
            if redirect > fe_cycle:
                self.fe_cycles_redirect += redirect - fe_cycle
                fe_cycle = redirect
            if tel is not None:
                emit_fetch(
                    tel, "oc" if entry is not None else "ic",
                    tel_uops, tel_insts, fe_cycle)
            if self.strict:
                observe_fetch(fe_cycle)
            yield fe_cycle

    def supply_counters(self) -> Dict[str, int]:
        """Architectural supply-path counters, as a flat name->value dict.

        This is the comparison surface of the differential oracle
        (:mod:`repro.oracle`): every counter here is a pure function of the
        architectural front-end state — no timing, no power, no back-end
        occupancy — so a correct reference model must reproduce each value
        exactly after every fetch action.
        """
        oc = self.uop_cache
        counters = {
            "instructions": self._instructions_done,
            "uops_oc": self._uops_from_oc,
            "uops_ic": self._uops_from_ic,
            "uops_loop": self._uops_from_loop,
            "oc_hits": oc.hits,
            "oc_misses": oc.misses,
            "oc_fills": oc.fills,
            "oc_uops_delivered": oc.uops_delivered,
            "oc_duplicate_fills": oc.duplicate_fills,
            "oc_evicted_entries": oc.evicted_entries,
            "oc_invalidated_entries": oc.invalidated_entries,
            "bypassed_uops": self.accumulator.bypassed_uops,
            "branches": self.bpu.branches,
            "mispredicts": self._mispredicts,
            "resteers": self.bpu.decode_resteers,
        }
        for kind, count in self.uop_cache.fill_kind_counts.items():
            counters[f"fill_{kind.value}"] = count
        for reason, count in self.uop_cache.termination_counts.items():
            counters[f"term_{reason.value}"] = count
        counters.update(self.loop_cache.snapshot())
        return counters

    def collect(self) -> SimulationResult:
        """Build the results object for the work simulated so far."""
        if self._pw_entry_count:
            self._entries_per_pw.record(self._pw_entry_count)
            self._pw_entry_count = 0
        if self.strict:
            self.check_invariants()
        if self._interval is not None:
            self.telemetry.cycle = self._last_fe_cycle
            self._interval.finish(self._last_fe_cycle)
        return self._collect(self.backend.last_cycle)

    # ----------------------------------------------------------- telemetry

    def _emit_fetch_action(self, tel: TelemetryHub, source: str,
                           uops_before: int, insts_before: int,
                           fe_cycle: int) -> None:
        """Emit the fetch-source events for one completed serving action."""
        uops_total = (self._uops_from_oc + self._uops_from_ic +
                      self._uops_from_loop)
        if source != self._last_fetch_source:
            if self._last_fetch_source is not None:
                tel.emit(EventKind.FETCH_TRANSITION,
                         src=self._last_fetch_source, dst=source,
                         tid=self.telemetry_tid)
            self._last_fetch_source = source
        tel.emit(EventKind.FETCH_ACTION, source=source,
                 uops=uops_total - uops_before,
                 insts=self._instructions_done - insts_before,
                 tid=self.telemetry_tid)
        self._last_fe_cycle = fe_cycle
        if self._interval is not None:
            self._interval.update(fe_cycle, self._instructions_done,
                                  uops_total)

    # ---------------------------------------------------- invariant checking

    def _diagnostics(self) -> str:
        """Context appended to every invariant-violation message."""
        return (f" [workload={self.trace.name!r}"
                f" config={self.config_label!r}"
                f" instructions={self._instructions_done}"
                f" fe_cycle={self._max_fe_cycle}"
                f" backend_cycle={self.backend.last_cycle}"
                f" uops(oc={self._uops_from_oc} ic={self._uops_from_ic}"
                f" loop={self._uops_from_loop})"
                f" admitted={self.backend.uops_retired}]")

    def _observe_fetch_action(self, fe_cycle: int) -> None:
        """Strict-mode per-action hook: cycle monotonicity plus a strided
        full invariant sweep (see :data:`INVARIANT_CHECK_INTERVAL`)."""
        if fe_cycle < self._max_fe_cycle:
            raise SimulationError(
                f"front-end cycle moved backwards: {fe_cycle} < "
                f"{self._max_fe_cycle}" + self._diagnostics())
        self._max_fe_cycle = fe_cycle
        backend_cycle = self.backend.last_cycle
        if backend_cycle < self._max_backend_cycle:
            raise SimulationError(
                f"back-end cycle moved backwards: {backend_cycle} < "
                f"{self._max_backend_cycle}" + self._diagnostics())
        self._max_backend_cycle = backend_cycle
        self._fetch_actions += 1
        if self._fetch_actions % INVARIANT_CHECK_INTERVAL == 0:
            self.check_invariants()

    def check_invariants(self) -> None:
        """Validate simulator-wide consistency; raise :class:`SimulationError`.

        Checks (beyond the per-action cycle monotonicity):

        - **uop conservation** — every uop admitted to the back-end came from
          exactly one supply path, so uop-cache + decoder + loop-cache supply
          must equal the back-end's admitted count;
        - **uop-cache occupancy** — resident uops can never exceed the
          physical capacity (lines x uops that fit per line);
        - **structural** — the uop cache's own line/index invariants
          (delegated to :meth:`UopCache.check_invariants`).
        """
        supplied = (self._uops_from_oc + self._uops_from_ic +
                    self._uops_from_loop)
        admitted = self.backend.uops_retired
        if supplied != admitted:
            raise SimulationError(
                f"uop conservation violated: supplied {supplied} != "
                f"admitted {admitted}" + self._diagnostics())
        oc_cfg = self.config.uop_cache
        uops_per_line = oc_cfg.usable_line_bytes // oc_cfg.uop_bytes
        physical_capacity = (oc_cfg.num_sets * oc_cfg.associativity *
                             max(oc_cfg.max_uops_per_entry, uops_per_line))
        resident = self.uop_cache.resident_uops()
        if resident > physical_capacity:
            raise SimulationError(
                f"uop cache occupancy {resident} exceeds physical capacity "
                f"{physical_capacity}" + self._diagnostics())
        try:
            self.uop_cache.check_invariants()
        except CacheError as error:
            raise SimulationError(
                f"uop cache structural invariant violated: {error}" +
                self._diagnostics()) from error

    # ------------------------------------------------------- loop cache path

    def _note_taken_branch(self, pc: int, target: int) -> None:
        """Report a resolved taken branch to the loop cache detector."""
        if self.config.loop_cache.enabled:
            self.loop_cache.observe_taken_branch(
                pc, target, body_uops=self._seq_run_uops)
        self._seq_run_uops = 0

    def _serve_from_loop_cache(self, cursor: int, limit: int, fe_cycle: int,
                               pw_fetch_cycle: int) -> Tuple[int, int, int]:
        """Stream iterations of the locked loop from the loop buffer.

        While locked, uops bypass the I-cache, decoder AND uop cache; delivery
        is only bandwidth-limited. Returns (cursor, fe_cycle, redirect).
        """
        trace = self.trace
        program = trace.program
        records = trace.records
        backend = self.backend
        loop_cache = self.loop_cache
        target = loop_cache.active_target
        branch_pc = loop_cache.active_branch_pc
        bandwidth = self.config.uop_cache.bandwidth_uops_per_cycle
        admit = backend.admit
        observe_other = loop_cache.observe_other_flow
        load_kind = UopKind.LOAD
        redirect = 0
        uops_served = 0

        while cursor < limit:
            record = records[cursor]
            pc = record.pc
            if not (target <= pc <= branch_pc):
                observe_other()
                break
            inst = program.at(pc)
            uops = program.uops_at(pc)
            arrival = fe_cycle + 1 + uops_served // bandwidth
            timing = None
            mem_addr = record.mem_addr
            for uop in uops:
                mem = mem_addr if uop.kind is load_kind else None
                timing = admit(uop, arrival, mem)
            self._uops_from_loop += len(uops)
            self._seq_run_uops += len(uops)
            uops_served += len(uops)
            self._instructions_done += 1
            cursor += 1

            taken = record.next_pc != inst.end_address
            if inst.is_branch:
                outcome = self.bpu.observe(inst, taken, record.next_pc)
                if outcome.outcome is PredictionOutcome.MISPREDICT:
                    resolve = timing.complete if timing else arrival
                    self._mispredicts += 1
                    self._mispredict_latency_sum += max(
                        0, resolve - pw_fetch_cycle)
                    redirect = resolve + MISPREDICT_REDIRECT_PENALTY
                    observe_other()
                    self._seq_run_uops = 0
                    break
            if taken:
                if pc == branch_pc and record.next_pc == target:
                    loop_cache.observe_taken_branch(
                        pc, record.next_pc, body_uops=self._seq_run_uops)
                    self._seq_run_uops = 0
                    continue        # next iteration streams back-to-back
                observe_other()
                self._seq_run_uops = 0
                break

        fe_cycle += max(1, (uops_served + bandwidth - 1) // bandwidth)
        return cursor, fe_cycle, redirect

    # ------------------------------------------------------- uop cache path

    def _serve_from_uop_cache(self, entry, cursor: int, limit: int,
                              fe_cycle: int, oc_latency: int,
                              pw_fetch_cycle: int) -> Tuple[int, int, int]:
        """Dispatch one uop cache entry; returns (cursor, fe_cycle, redirect)."""
        trace = self.trace
        program = trace.program
        records = trace.records
        backend = self.backend
        arrival = fe_cycle + oc_latency
        admit = backend.admit
        note_taken = self._note_taken_branch
        load_kind = UopKind.LOAD
        redirect = 0
        start, end = entry.start_pc, entry.end_pc

        while cursor < limit:
            record = records[cursor]
            pc = record.pc
            if not (start <= pc < end):
                break
            inst = program.at(pc)
            uops = program.uops_at(pc)
            self._uops_from_oc += len(uops)
            self._seq_run_uops += len(uops)
            timing = None
            mem_addr = record.mem_addr
            for uop in uops:
                mem = mem_addr if uop.kind is load_kind else None
                timing = admit(uop, arrival, mem)
            self._instructions_done += 1
            cursor += 1
            taken = record.next_pc != inst.end_address
            if inst.is_branch:
                outcome = self.bpu.observe(inst, taken, record.next_pc)
                if outcome.outcome is PredictionOutcome.MISPREDICT:
                    resolve = timing.complete if timing else arrival
                    self._mispredicts += 1
                    self._mispredict_latency_sum += max(
                        0, resolve - pw_fetch_cycle)
                    redirect = resolve + MISPREDICT_REDIRECT_PENALTY
                    self._seq_run_uops = 0
                    break
                if outcome.outcome is PredictionOutcome.DECODE_RESTEER:
                    redirect = fe_cycle + 1 + DECODE_RESTEER_PENALTY
                    if taken:
                        note_taken(pc, record.next_pc)
                    break
            if taken:
                note_taken(pc, record.next_pc)
                break   # control flow left the entry's sequential range

        # One entry dispatches per cycle (up to 8 uops wide).
        self.fe_cycles_oc += 1
        return cursor, fe_cycle + 1, redirect

    # --------------------------------------------------------- decoder path

    def _serve_from_decoder(self, cursor: int, last: int, fe_cycle: int,
                            decode_bw: int, decode_latency: int,
                            pw_fetch_cycle: int,
                            pw_id: int) -> Tuple[int, int, int, int]:
        """Fetch+decode records[cursor..last]; returns
        (cursor, fe_cycle, redirect, entries_sealed)."""
        trace = self.trace
        program = trace.program
        records = trace.records
        backend = self.backend
        oc = self.uop_cache
        accumulator = self.accumulator
        accumulator.begin(pw_id)
        admit = backend.admit
        oc_fill = oc.fill
        acc_push = accumulator.push
        note_taken = self._note_taken_branch
        load_kind = UopKind.LOAD

        first_pc = records[cursor].pc
        # On an OC miss the IC path restarts serially: the I-cache access must
        # complete, then the decode pipeline refills, before uops stream at
        # decoder bandwidth.
        fetch_latency = self.hierarchy.fetch_instruction_line(first_pc)
        base = fe_cycle + fetch_latency + decode_latency
        slot = 0
        redirect = 0
        sealed_count = 0
        decoded = 0

        while cursor <= last:
            record = records[cursor]
            pc = record.pc
            inst = program.at(pc)
            if inst.spans_line_boundary(self._line_bytes):
                self.hierarchy.fetch_instruction_line(inst.end_address - 1)
            uops = program.uops_at(pc)
            arrival = base + slot // decode_bw
            timing = None
            mem_addr = record.mem_addr
            for uop in uops:
                mem = mem_addr if uop.kind is load_kind else None
                timing = admit(uop, arrival, mem)
            self._uops_from_ic += len(uops)
            self._seq_run_uops += len(uops)
            self._instructions_done += 1
            decoded += 1
            slot += 1
            cursor += 1

            taken = record.next_pc != inst.end_address
            for entry in acc_push(uops, taken):
                oc_fill(entry)
                sealed_count += 1

            if inst.is_branch:
                outcome = self.bpu.observe(inst, taken, record.next_pc)
                if outcome.outcome is PredictionOutcome.MISPREDICT:
                    resolve = timing.complete if timing else arrival
                    self._mispredicts += 1
                    self._mispredict_latency_sum += max(
                        0, resolve - pw_fetch_cycle)
                    redirect = resolve + MISPREDICT_REDIRECT_PENALTY
                    self._seq_run_uops = 0
                    break
                if outcome.outcome is PredictionOutcome.DECODE_RESTEER:
                    redirect = (fe_cycle + fetch_latency +
                                slot // decode_bw + DECODE_RESTEER_PENALTY)
                    if taken:
                        note_taken(pc, record.next_pc)
                    break
            if taken:
                note_taken(pc, record.next_pc)

        decode_cycles = (decoded + decode_bw - 1) // decode_bw
        self.decoder_power.record_decode_burst(decoded, decode_cycles)
        # The decode pipeline restarts when supply switches from the uop cache
        # to the decoder, so a chunk costs its full startup latency plus the
        # bandwidth-limited streaming cycles (the "pipeline bubbles due to the
        # complexities in decoding x86 instructions" the paper describes).
        advance = fetch_latency + decode_latency + decode_cycles
        self.fe_cycles_ic += advance
        fe_cycle = fe_cycle + advance
        return cursor, fe_cycle, redirect, sealed_count

    # ------------------------------------------------------------- warmup

    def _take_warmup_snapshot(self) -> None:
        """Record counter values at the warmup boundary.

        ``_collect`` subtracts these so reported rates cover only the
        measured region. Distribution stats (entry sizes, terminations,
        fill kinds, entries-per-PW) intentionally keep full-run data: they
        describe structure, not rates.
        """
        oc = self.uop_cache
        self._warmup_snapshot = {
            "cycle": self.backend.last_cycle,
            "instructions": self._instructions_done,
            "uops_oc": self._uops_from_oc,
            "uops_ic": self._uops_from_ic,
            "uops_loop": self._uops_from_loop,
            "busy_dispatch": self.backend.busy_dispatch_cycles,
            "oc_hits": oc.hits,
            "oc_misses": oc.misses,
            "oc_fills": oc.fills,
            "branches": self.bpu.branches,
            "mispredicts": self._mispredicts,
            "resteers": self.bpu.decode_resteers,
            "mispredict_latency_sum": self._mispredict_latency_sum,
            "fe_cycles_oc": self.fe_cycles_oc,
            "fe_cycles_ic": self.fe_cycles_ic,
            "fe_cycles_redirect": self.fe_cycles_redirect,
            "fe_cycles_backpressure": self.fe_cycles_backpressure,
            "decoded_insts": self.decoder_power.insts_decoded,
            "decoder_active": self.decoder_power.active_cycles,
        }

    # -------------------------------------------------------------- results

    def _collect(self, final_cycle: int) -> SimulationResult:
        oc = self.uop_cache
        snap = self._warmup_snapshot or {}
        base = snap.get
        result = SimulationResult(
            workload=self.trace.name,
            config_label=self.config_label,
        )
        result.cycles = max(1, final_cycle - base("cycle", 0))
        result.instructions = self._instructions_done - base("instructions", 0)
        result.uops_from_uop_cache = self._uops_from_oc - base("uops_oc", 0)
        result.uops_from_decoder = self._uops_from_ic - base("uops_ic", 0)
        result.uops_from_loop_cache = \
            self._uops_from_loop - base("uops_loop", 0)
        result.uops = (result.uops_from_uop_cache + result.uops_from_decoder +
                       result.uops_from_loop_cache)
        result.busy_dispatch_cycles = \
            self.backend.busy_dispatch_cycles - base("busy_dispatch", 0)
        result.uop_cache_hits = oc.hits - base("oc_hits", 0)
        result.uop_cache_lookups = result.uop_cache_hits + \
            (oc.misses - base("oc_misses", 0))
        result.uop_cache_fills = oc.fills - base("oc_fills", 0)
        result.entry_size_histogram = oc.entry_size_histogram
        result.entry_termination_counts = oc.termination_counts
        result.fill_kind_counts = oc.fill_kind_counts
        result.entries_spanning_lines_fraction = oc.spanning_fill_fraction
        result.compacted_fill_fraction = oc.compacted_fill_fraction
        result.compacted_line_fraction = oc.compacted_line_fraction()
        result.entries_per_pw_histogram = self._entries_per_pw
        result.uop_cache_utilization = oc.utilization()
        result.branches = self.bpu.branches - base("branches", 0)
        result.branch_mispredicts = self._mispredicts - base("mispredicts", 0)
        result.decode_resteers = \
            self.bpu.decode_resteers - base("resteers", 0)
        result.mispredict_latency_sum = \
            self._mispredict_latency_sum - base("mispredict_latency_sum", 0)
        result.fe_cycles_uop_cache = self.fe_cycles_oc - base("fe_cycles_oc", 0)
        result.fe_cycles_decoder = self.fe_cycles_ic - base("fe_cycles_ic", 0)
        result.fe_cycles_redirect = \
            self.fe_cycles_redirect - base("fe_cycles_redirect", 0)
        result.fe_cycles_backpressure = \
            self.fe_cycles_backpressure - base("fe_cycles_backpressure", 0)
        decoded = self.decoder_power.insts_decoded - base("decoded_insts", 0)
        active = self.decoder_power.active_cycles - base("decoder_active", 0)
        measured_power = DecoderPowerModel(self.config.power)
        measured_power.record_decode_burst(decoded, active)
        result.decoder_report = measured_power.report(result.cycles)
        result.l1i_hit_rate = self.hierarchy.l1i.hit_rate
        result.l1d_hit_rate = self.hierarchy.l1d.hit_rate
        if self.telemetry is not None:
            # Full-run event counts (telemetry streams are never warmup-
            # adjusted; see repro.telemetry.replay for the implications).
            result.telemetry_events = self.telemetry.summary()
        return result


def simulate(trace: Trace, config: Optional[SimulatorConfig] = None,
             config_label: str = "") -> SimulationResult:
    """Convenience one-shot simulation."""
    return Simulator(trace, config, config_label).run()
