"""Experiment harness: sweeps, normalization, and suite aggregation.

Every figure of the paper is one of two sweeps:

- a **capacity sweep** (Figs. 3-4): the baseline design at 2K..64K uops;
- a **policy sweep** (Figs. 15-22): baseline / CLASP / CLASP+RAC /
  CLASP+PWAC / CLASP+F-PWAC at a fixed capacity.

The harness runs them over the workload suite, reusing one generated trace
per workload across all configurations (the paper does the same: one trace,
many simulator configs), and provides the normalizations the paper plots
(everything relative to the 2K baseline unless stated otherwise).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..common.config import (
    CompactionPolicy,
    SimulatorConfig,
    baseline_config,
    clasp_config,
    compaction_config,
)
from ..common.statistics import arithmetic_mean, geometric_mean
from ..workloads.suite import WORKLOAD_NAMES, get_workload
from ..workloads.trace import Trace
from .metrics import SimulationResult
from .simulator import Simulator

#: Capacities of the paper's Fig. 3/4 sweep (uops).
CAPACITY_SWEEP = (2048, 4096, 8192, 16384, 32768, 65536)

#: Policy labels in the paper's presentation order.
POLICY_LABELS = ("baseline", "clasp", "rac", "pwac", "f-pwac")

#: Default trace length per workload (dynamic instructions).  Long enough to
#: cycle each workload's footprint through the uop cache many times, short
#: enough to keep a full-suite sweep tractable in pure Python.
DEFAULT_TRACE_INSTRUCTIONS = 120_000


def policy_config(label: str, capacity_uops: int = 2048,
                  max_entries_per_line: int = 2) -> SimulatorConfig:
    """Map a paper policy label to a simulator configuration.

    As in the paper, all compaction configurations also enable CLASP.
    """
    if label == "baseline":
        return baseline_config(capacity_uops)
    if label == "clasp":
        return clasp_config(capacity_uops)
    policies = {
        "rac": CompactionPolicy.RAC,
        "pwac": CompactionPolicy.PWAC,
        "f-pwac": CompactionPolicy.F_PWAC,
    }
    if label not in policies:
        raise ValueError(f"unknown policy label {label!r}")
    return compaction_config(policies[label], capacity_uops,
                             max_entries_per_line=max_entries_per_line)


_trace_cache: Dict[Tuple[str, int, int], Trace] = {}


def workload_trace(name: str, num_instructions: int = DEFAULT_TRACE_INSTRUCTIONS,
                   seed: int = 7) -> Trace:
    """Build (and memoise) the dynamic trace for a named workload."""
    key = (name, num_instructions, seed)
    trace = _trace_cache.get(key)
    if trace is None:
        trace = get_workload(name).trace(num_instructions, seed=seed)
        _trace_cache[key] = trace
    return trace


def clear_trace_cache() -> None:
    _trace_cache.clear()


@dataclass
class SweepResult:
    """Results of one (workload x config) sweep."""

    # results[workload][config_label]
    results: Dict[str, Dict[str, SimulationResult]] = field(default_factory=dict)

    def add(self, result: SimulationResult) -> None:
        self.results.setdefault(result.workload, {})[result.config_label] = result

    def workloads(self) -> List[str]:
        return list(self.results)

    def labels(self) -> List[str]:
        first = next(iter(self.results.values()), {})
        return list(first)

    def metric(self, workload: str, label: str,
               metric: Callable[[SimulationResult], float]) -> float:
        return metric(self.results[workload][label])

    def normalized(self, metric: Callable[[SimulationResult], float],
                   reference_label: str) -> Dict[str, Dict[str, float]]:
        """``metric(config)/metric(reference)`` per workload and config."""
        table: Dict[str, Dict[str, float]] = {}
        for workload, by_label in self.results.items():
            reference = metric(by_label[reference_label])
            table[workload] = {
                label: (metric(result) / reference if reference else 0.0)
                for label, result in by_label.items()}
        return table

    def improvement_percent(self, metric: Callable[[SimulationResult], float],
                            reference_label: str) -> Dict[str, Dict[str, float]]:
        """Percent improvement of ``metric`` over the reference config."""
        normalized = self.normalized(metric, reference_label)
        return {workload: {label: 100.0 * (value - 1.0)
                           for label, value in by_label.items()}
                for workload, by_label in normalized.items()}

    def mean_over_workloads(self, per_workload: Mapping[str, Mapping[str, float]],
                            geometric: bool = False) -> Dict[str, float]:
        labels = self.labels()
        means: Dict[str, float] = {}
        for label in labels:
            values = [per_workload[w][label] for w in per_workload]
            means[label] = geometric_mean(values) if geometric \
                else arithmetic_mean(values)
        return means


def run_capacity_sweep(
        workloads: Sequence[str] = WORKLOAD_NAMES,
        capacities: Sequence[int] = CAPACITY_SWEEP,
        num_instructions: int = DEFAULT_TRACE_INSTRUCTIONS,
        warmup_instructions: int = 0,
        progress: Optional[Callable[[str], None]] = None) -> SweepResult:
    """Fig. 3/4: baseline uop cache at each capacity, per workload."""
    sweep = SweepResult()
    for name in workloads:
        trace = workload_trace(name, num_instructions)
        for capacity in capacities:
            label = f"OC_{capacity // 1024}K"
            config = dataclasses.replace(
                baseline_config(capacity),
                warmup_instructions=warmup_instructions)
            result = Simulator(trace, config, label).run()
            sweep.add(result)
            if progress:
                progress(f"{name} {label}: upc={result.upc:.3f}")
    return sweep


def run_policy_sweep(
        workloads: Sequence[str] = WORKLOAD_NAMES,
        labels: Sequence[str] = POLICY_LABELS,
        capacity_uops: int = 2048,
        max_entries_per_line: int = 2,
        num_instructions: int = DEFAULT_TRACE_INSTRUCTIONS,
        warmup_instructions: int = 0,
        progress: Optional[Callable[[str], None]] = None) -> SweepResult:
    """Figs. 15-22: the paper's five designs at a fixed capacity."""
    sweep = SweepResult()
    for name in workloads:
        trace = workload_trace(name, num_instructions)
        for label in labels:
            config = dataclasses.replace(
                policy_config(label, capacity_uops, max_entries_per_line),
                warmup_instructions=warmup_instructions)
            result = Simulator(trace, config, label).run()
            sweep.add(result)
            if progress:
                progress(f"{name} {label}: upc={result.upc:.3f} "
                         f"fetch={result.oc_fetch_ratio:.3f}")
    return sweep


def run_single(workload: str, config: SimulatorConfig, label: str = "",
               num_instructions: int = DEFAULT_TRACE_INSTRUCTIONS) -> SimulationResult:
    """Run one workload under one configuration."""
    trace = workload_trace(workload, num_instructions)
    return Simulator(trace, config, label).run()
