"""Experiment harness: sweeps, normalization, and suite aggregation.

Every figure of the paper is one of two sweeps:

- a **capacity sweep** (Figs. 3-4): the baseline design at 2K..64K uops;
- a **policy sweep** (Figs. 15-22): baseline / CLASP / CLASP+RAC /
  CLASP+PWAC / CLASP+F-PWAC at a fixed capacity.

The harness runs them over the workload suite, reusing one generated trace
per workload across all configurations (the paper does the same: one trace,
many simulator configs), and provides the normalizations the paper plots
(everything relative to the 2K baseline unless stated otherwise).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from ..common.config import (
    CompactionPolicy,
    SimulatorConfig,
    baseline_config,
    clasp_config,
    compaction_config,
)
from ..common.errors import ReproError
from ..common.statistics import arithmetic_mean, geometric_mean
from ..runner.executor import RunnerConfig, SweepReport, SweepRunner
from ..runner.faults import FaultPlan
from ..runner.job import SweepJob, build_capacity_jobs, build_policy_jobs
from ..workloads.engine import create_engine
from ..workloads.suite import WORKLOAD_NAMES
from ..workloads.trace import Trace
from .metrics import SimulationResult
from .simulator import Simulator

#: Capacities of the paper's Fig. 3/4 sweep (uops).
CAPACITY_SWEEP = (2048, 4096, 8192, 16384, 32768, 65536)

#: Policy labels in the paper's presentation order.
POLICY_LABELS = ("baseline", "clasp", "rac", "pwac", "f-pwac")

#: Default trace length per workload (dynamic instructions).  Long enough to
#: cycle each workload's footprint through the uop cache many times, short
#: enough to keep a full-suite sweep tractable in pure Python.
DEFAULT_TRACE_INSTRUCTIONS = 120_000

#: Default RNG seed for trace generation; every sweep/CLI entry point that
#: builds traces accepts a ``seed`` so runs are reproducible end to end.
DEFAULT_SEED = 7


def policy_config(label: str, capacity_uops: int = 2048,
                  max_entries_per_line: int = 2) -> SimulatorConfig:
    """Map a paper policy label to a simulator configuration.

    As in the paper, all compaction configurations also enable CLASP.
    """
    if label == "baseline":
        return baseline_config(capacity_uops)
    if label == "clasp":
        return clasp_config(capacity_uops)
    policies = {
        "rac": CompactionPolicy.RAC,
        "pwac": CompactionPolicy.PWAC,
        "f-pwac": CompactionPolicy.F_PWAC,
    }
    if label not in policies:
        raise ValueError(f"unknown policy label {label!r}")
    return compaction_config(policies[label], capacity_uops,
                             max_entries_per_line=max_entries_per_line)


_TraceKey = Tuple[str, int, int, str, Tuple[Tuple[str, object], ...]]
_trace_cache: "OrderedDict[_TraceKey, Trace]" = OrderedDict()

#: Bound on memoised traces (LRU eviction).  Traces are the largest objects a
#: sweep session holds; without a bound, a long session sweeping many
#: (workload, length, seed) combinations grows memory without limit.
_TRACE_CACHE_MAX_ENTRIES = 32


def workload_trace(name: str, num_instructions: int = DEFAULT_TRACE_INSTRUCTIONS,
                   seed: int = DEFAULT_SEED,
                   engine: str = "synthetic",
                   engine_params: Optional[Mapping[str, object]] = None
                   ) -> Trace:
    """Build (and memoise, LRU-bounded) the dynamic trace for a workload.

    ``engine`` selects a registered workload engine
    (:mod:`repro.workloads.engine`); ``engine_params`` are its parameters.
    The default (``synthetic``, no params) is bit-identical to the
    pre-registry ``get_workload(name).trace(...)`` path.  ``replay``
    traces are never cached: the backing file can change between calls.
    """
    params = dict(engine_params or {})
    if engine == "replay":
        return create_engine(engine, workload=name, params=params) \
            .build_trace(num_instructions, seed)
    key = (name, num_instructions, seed, engine,
           tuple(sorted(params.items())))
    trace = _trace_cache.get(key)
    if trace is None:
        trace = create_engine(engine, workload=name, params=params) \
            .build_trace(num_instructions, seed)
        _trace_cache[key] = trace
        while len(_trace_cache) > _TRACE_CACHE_MAX_ENTRIES:
            _trace_cache.popitem(last=False)
    else:
        _trace_cache.move_to_end(key)
    return trace


def clear_trace_cache() -> None:
    _trace_cache.clear()


@dataclass
class SweepResult:
    """Results of one (workload x config) sweep.

    A sweep that quarantined jobs is *partial*: some (workload, label) cells
    are absent.  Lookups name the missing key in a :class:`ReproError`
    instead of surfacing a bare ``KeyError``, and the table builders can
    either skip incomplete rows (``skip_missing=True``, what the CLI does
    after printing the failure report) or fail loudly (the default).
    """

    # results[workload][config_label]
    results: Dict[str, Dict[str, SimulationResult]] = field(default_factory=dict)
    #: Execution report of the producing runner (None for hand-built sweeps).
    report: Optional[SweepReport] = None

    def add(self, result: SimulationResult) -> None:
        self.results.setdefault(result.workload, {})[result.config_label] = result

    def workloads(self) -> List[str]:
        return list(self.results)

    def labels(self) -> List[str]:
        labels: List[str] = []
        push = labels.append
        for by_label in self.results.values():
            for label in by_label:
                if label not in labels:
                    push(label)
        return labels

    def metric(self, workload: str, label: str,
               metric: Callable[[SimulationResult], float]) -> float:
        by_label = self.results.get(workload)
        if by_label is None:
            raise ReproError(
                f"no results for workload {workload!r} "
                f"(have: {', '.join(self.results) or 'none'})")
        result = by_label.get(label)
        if result is None:
            raise ReproError(
                f"no result for config {label!r} under workload "
                f"{workload!r} (have: {', '.join(by_label) or 'none'}; "
                "was the job quarantined?)")
        return metric(result)

    def normalized(self, metric: Callable[[SimulationResult], float],
                   reference_label: str,
                   skip_missing: bool = False) -> Dict[str, Dict[str, float]]:
        """``metric(config)/metric(reference)`` per workload and config.

        A workload lacking the reference label (e.g. its job was
        quarantined) is skipped when ``skip_missing`` is set, otherwise it
        raises a :class:`ReproError` naming the missing cell.
        """
        table: Dict[str, Dict[str, float]] = {}
        for workload, by_label in self.results.items():
            if reference_label not in by_label:
                if skip_missing:
                    continue
                raise ReproError(
                    f"reference config {reference_label!r} missing for "
                    f"workload {workload!r} (have: "
                    f"{', '.join(by_label) or 'none'}; was the job "
                    "quarantined? pass skip_missing=True to drop the row)")
            reference = metric(by_label[reference_label])
            table[workload] = {
                label: (metric(result) / reference if reference else 0.0)
                for label, result in by_label.items()}
        return table

    def improvement_percent(self, metric: Callable[[SimulationResult], float],
                            reference_label: str,
                            skip_missing: bool = False
                            ) -> Dict[str, Dict[str, float]]:
        """Percent improvement of ``metric`` over the reference config."""
        normalized = self.normalized(metric, reference_label,
                                     skip_missing=skip_missing)
        return {workload: {label: 100.0 * (value - 1.0)
                           for label, value in by_label.items()}
                for workload, by_label in normalized.items()}

    def mean_over_workloads(self, per_workload: Mapping[str, Mapping[str, float]],
                            geometric: bool = False) -> Dict[str, float]:
        """Per-label mean over workloads; tolerates partial tables (a label
        is averaged over the workloads that actually have it, and labels
        with no values at all are omitted)."""
        means: Dict[str, float] = {}
        for label in self.labels():
            values = [by_label[label] for by_label in per_workload.values()
                      if label in by_label]
            if not values:
                continue
            means[label] = geometric_mean(values) if geometric \
                else arithmetic_mean(values)
        return means


def _run_jobs(jobs: Sequence[SweepJob],
              runner: Optional[RunnerConfig],
              fault_plan: Optional[FaultPlan],
              progress: Optional[Callable[[str], None]],
              progress_line: Callable[[SimulationResult], str]) -> SweepResult:
    """Execute sweep jobs through the fault-tolerant runner."""
    runner = runner or RunnerConfig()
    if runner.jobs > 1:
        # Pre-warm the trace cache so forked workers inherit built traces
        # instead of regenerating them per process.
        for job in jobs:
            workload_trace(job.workload, job.num_instructions, seed=job.seed,
                           engine=job.engine,
                           engine_params=dict(job.engine_params))
    wrapped = (lambda job, result: progress(progress_line(result))) \
        if progress else None
    executor = SweepRunner(runner, fault_plan=fault_plan, progress=wrapped)
    results, report = executor.run(jobs)
    sweep = SweepResult(report=report)
    for result in results.values():
        sweep.add(result)
    return sweep


def run_capacity_sweep(
        workloads: Sequence[str] = WORKLOAD_NAMES,
        capacities: Sequence[int] = CAPACITY_SWEEP,
        num_instructions: int = DEFAULT_TRACE_INSTRUCTIONS,
        warmup_instructions: int = 0,
        progress: Optional[Callable[[str], None]] = None,
        seed: int = DEFAULT_SEED,
        runner: Optional[RunnerConfig] = None,
        fault_plan: Optional[FaultPlan] = None,
        telemetry: bool = False,
        engine: str = "synthetic",
        engine_params: Optional[Mapping[str, object]] = None) -> SweepResult:
    """Fig. 3/4: baseline uop cache at each capacity, per workload.

    ``runner`` selects the execution policy (parallelism, timeouts, retries,
    checkpoint/resume); the default is the serial in-process degenerate case.
    ``telemetry`` enables per-kind event counting in every job, journaled
    through ``SimulationResult.telemetry_events``.  ``engine`` selects the
    workload engine that produces every trace of the sweep.
    """
    jobs = build_capacity_jobs(workloads, capacities, num_instructions,
                               warmup_instructions, seed,
                               telemetry=telemetry, engine=engine,
                               engine_params=engine_params)
    return _run_jobs(
        jobs, runner, fault_plan, progress,
        lambda r: f"{r.workload} {r.config_label}: upc={r.upc:.3f}")


def run_policy_sweep(
        workloads: Sequence[str] = WORKLOAD_NAMES,
        labels: Sequence[str] = POLICY_LABELS,
        capacity_uops: int = 2048,
        max_entries_per_line: int = 2,
        num_instructions: int = DEFAULT_TRACE_INSTRUCTIONS,
        warmup_instructions: int = 0,
        progress: Optional[Callable[[str], None]] = None,
        seed: int = DEFAULT_SEED,
        runner: Optional[RunnerConfig] = None,
        fault_plan: Optional[FaultPlan] = None,
        telemetry: bool = False,
        engine: str = "synthetic",
        engine_params: Optional[Mapping[str, object]] = None) -> SweepResult:
    """Figs. 15-22: the paper's five designs at a fixed capacity."""
    jobs = build_policy_jobs(workloads, labels, capacity_uops,
                             max_entries_per_line, num_instructions,
                             warmup_instructions, seed,
                             telemetry=telemetry, engine=engine,
                             engine_params=engine_params)
    return _run_jobs(
        jobs, runner, fault_plan, progress,
        lambda r: (f"{r.workload} {r.config_label}: upc={r.upc:.3f} "
                   f"fetch={r.oc_fetch_ratio:.3f}"))


def run_single(workload: str, config: SimulatorConfig, label: str = "",
               num_instructions: int = DEFAULT_TRACE_INSTRUCTIONS,
               seed: int = DEFAULT_SEED) -> SimulationResult:
    """Run one workload under one configuration."""
    trace = workload_trace(workload, num_instructions, seed=seed)
    return Simulator(trace, config, label).run()
