"""Simulation result metrics.

:class:`SimulationResult` is the single artifact a run produces; every figure
of the paper is computed from fields of this class (see
:mod:`repro.analysis.figures` for the per-figure mapping).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from ..common.statistics import Histogram, ratio
from ..power.decoder import DecoderEnergyReport
from ..uopcache.cache import FillKind
from ..uopcache.entry import EntryTermination


@dataclass
class SimulationResult:
    """Aggregated metrics of one simulation run."""

    workload: str
    config_label: str
    # Core throughput.
    cycles: int = 0
    instructions: int = 0
    uops: int = 0
    busy_dispatch_cycles: int = 0
    # Uop supply breakdown.
    uops_from_uop_cache: int = 0
    uops_from_decoder: int = 0
    uops_from_loop_cache: int = 0
    # Uop cache behaviour.
    uop_cache_lookups: int = 0
    uop_cache_hits: int = 0
    uop_cache_fills: int = 0
    entry_size_histogram: Optional[Histogram] = None
    entry_termination_counts: Dict[EntryTermination, int] = field(
        default_factory=dict)
    fill_kind_counts: Dict[FillKind, int] = field(default_factory=dict)
    entries_spanning_lines_fraction: float = 0.0
    compacted_fill_fraction: float = 0.0
    compacted_line_fraction: float = 0.0
    entries_per_pw_histogram: Optional[Histogram] = None
    uop_cache_utilization: float = 0.0
    # Front-end cycle accounting (where fetch cycles went; together these
    # bound cycles from below — redirect/backpressure overlap dispatch).
    fe_cycles_uop_cache: int = 0
    fe_cycles_decoder: int = 0
    fe_cycles_redirect: int = 0
    fe_cycles_backpressure: int = 0
    # Branches.
    branches: int = 0
    branch_mispredicts: int = 0
    decode_resteers: int = 0
    mispredict_latency_sum: int = 0
    # Decoder activity/power.
    decoder_report: Optional[DecoderEnergyReport] = None
    # Memory system.
    l1i_hit_rate: float = 0.0
    l1d_hit_rate: float = 0.0
    # Telemetry: events emitted per kind over the full run (empty when the
    # run had telemetry disabled).  Rides through to_dict/from_dict so sweep
    # checkpoints journal the event accounting alongside the counters.
    telemetry_events: Dict[str, int] = field(default_factory=dict)

    # -- derived metrics (the paper's reported quantities) -------------------

    @property
    def upc(self) -> float:
        """Uops committed per cycle (the paper's performance metric)."""
        return ratio(self.uops, self.cycles)

    @property
    def ipc(self) -> float:
        return ratio(self.instructions, self.cycles)

    @property
    def dispatch_bandwidth(self) -> float:
        """Average uops dispatched per busy dispatch cycle."""
        return ratio(self.uops, self.busy_dispatch_cycles)

    @property
    def oc_fetch_ratio(self) -> float:
        """Uops supplied by the uop cache over all uops supplied."""
        return ratio(self.uops_from_uop_cache, self.uops)

    @property
    def uop_cache_hit_rate(self) -> float:
        return ratio(self.uop_cache_hits, self.uop_cache_lookups)

    @property
    def avg_mispredict_latency(self) -> float:
        return ratio(self.mispredict_latency_sum, self.branch_mispredicts)

    @property
    def branch_mpki(self) -> float:
        return 1000.0 * ratio(self.branch_mispredicts, self.instructions)

    @property
    def decoder_power(self) -> float:
        return self.decoder_report.power if self.decoder_report else 0.0

    @property
    def taken_branch_termination_fraction(self) -> float:
        total = sum(self.entry_termination_counts.values())
        taken = self.entry_termination_counts.get(
            EntryTermination.TAKEN_BRANCH, 0)
        return ratio(taken, total)

    # -- serialization (checkpoint journal round-trip) -----------------------

    def to_dict(self) -> Dict:
        """JSON-serializable form; :meth:`from_dict` restores an equal object.

        Used by the sweep runner to journal completed jobs crash-safely and
        to ship results across process boundaries.
        """
        return {
            "workload": self.workload,
            "config_label": self.config_label,
            "cycles": self.cycles,
            "instructions": self.instructions,
            "uops": self.uops,
            "busy_dispatch_cycles": self.busy_dispatch_cycles,
            "uops_from_uop_cache": self.uops_from_uop_cache,
            "uops_from_decoder": self.uops_from_decoder,
            "uops_from_loop_cache": self.uops_from_loop_cache,
            "uop_cache_lookups": self.uop_cache_lookups,
            "uop_cache_hits": self.uop_cache_hits,
            "uop_cache_fills": self.uop_cache_fills,
            "entry_size_histogram": (self.entry_size_histogram.to_dict()
                                     if self.entry_size_histogram else None),
            "entry_termination_counts": {
                reason.value: count
                for reason, count in self.entry_termination_counts.items()},
            "fill_kind_counts": {
                kind.value: count
                for kind, count in self.fill_kind_counts.items()},
            "entries_spanning_lines_fraction":
                self.entries_spanning_lines_fraction,
            "compacted_fill_fraction": self.compacted_fill_fraction,
            "compacted_line_fraction": self.compacted_line_fraction,
            "entries_per_pw_histogram": (self.entries_per_pw_histogram.to_dict()
                                         if self.entries_per_pw_histogram
                                         else None),
            "uop_cache_utilization": self.uop_cache_utilization,
            "fe_cycles_uop_cache": self.fe_cycles_uop_cache,
            "fe_cycles_decoder": self.fe_cycles_decoder,
            "fe_cycles_redirect": self.fe_cycles_redirect,
            "fe_cycles_backpressure": self.fe_cycles_backpressure,
            "branches": self.branches,
            "branch_mispredicts": self.branch_mispredicts,
            "decode_resteers": self.decode_resteers,
            "mispredict_latency_sum": self.mispredict_latency_sum,
            "decoder_report": ({
                "insts_decoded": self.decoder_report.insts_decoded,
                "active_cycles": self.decoder_report.active_cycles,
                "total_cycles": self.decoder_report.total_cycles,
                "energy": self.decoder_report.energy,
            } if self.decoder_report else None),
            "l1i_hit_rate": self.l1i_hit_rate,
            "l1d_hit_rate": self.l1d_hit_rate,
            "telemetry_events": dict(self.telemetry_events),
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "SimulationResult":
        """Inverse of :meth:`to_dict` (accepts JSON-decoded payloads)."""
        result = cls(workload=data["workload"],
                     config_label=data["config_label"])
        for name in ("cycles", "instructions", "uops", "busy_dispatch_cycles",
                     "uops_from_uop_cache", "uops_from_decoder",
                     "uops_from_loop_cache", "uop_cache_lookups",
                     "uop_cache_hits", "uop_cache_fills",
                     "entries_spanning_lines_fraction",
                     "compacted_fill_fraction", "compacted_line_fraction",
                     "uop_cache_utilization", "branches",
                     "branch_mispredicts", "decode_resteers",
                     "mispredict_latency_sum", "l1i_hit_rate",
                     "l1d_hit_rate"):
            setattr(result, name, data[name])
        for name in ("fe_cycles_uop_cache", "fe_cycles_decoder",
                     "fe_cycles_redirect", "fe_cycles_backpressure"):
            # Absent in pre-PR5 checkpoint journals; default to 0 there.
            setattr(result, name, data.get(name, 0))
        if data.get("entry_size_histogram") is not None:
            result.entry_size_histogram = Histogram.from_dict(
                data["entry_size_histogram"])
        if data.get("entries_per_pw_histogram") is not None:
            result.entries_per_pw_histogram = Histogram.from_dict(
                data["entries_per_pw_histogram"])
        result.entry_termination_counts = {
            EntryTermination(value): count
            for value, count in data.get("entry_termination_counts",
                                         {}).items()}
        result.fill_kind_counts = {
            FillKind(value): count
            for value, count in data.get("fill_kind_counts", {}).items()}
        result.telemetry_events = dict(data.get("telemetry_events", {}))
        if data.get("decoder_report") is not None:
            report = data["decoder_report"]
            result.decoder_report = DecoderEnergyReport(
                insts_decoded=report["insts_decoded"],
                active_cycles=report["active_cycles"],
                total_cycles=report["total_cycles"],
                energy=report["energy"])
        return result

    def summary(self) -> Dict[str, float]:
        """Flat dictionary of the headline metrics (for reports/benches)."""
        return {
            "cycles": self.cycles,
            "instructions": self.instructions,
            "uops": self.uops,
            "upc": self.upc,
            "dispatch_bandwidth": self.dispatch_bandwidth,
            "oc_fetch_ratio": self.oc_fetch_ratio,
            "uop_cache_hit_rate": self.uop_cache_hit_rate,
            "branch_mpki": self.branch_mpki,
            "avg_mispredict_latency": self.avg_mispredict_latency,
            "decoder_power": self.decoder_power,
            "compacted_fill_fraction": self.compacted_fill_fraction,
            "l1i_hit_rate": self.l1i_hit_rate,
        }
