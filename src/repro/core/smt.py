"""SMT (simultaneous multithreading) simulation: hardware threads sharing
the uop cache.

The paper motivates PWAC with exactly this scenario (Section V-B1): "the
replacement state can be updated by another thread because the uop cache is
shared across all threads in a multithreaded core. Hence, RAC cannot
guarantee compacting OC entries of the same thread together."  With two
threads interleaving fills, RAC's most-recently-used line frequently belongs
to the *other* thread, so replacement-aware compaction mixes unrelated
entries into one replacement unit; PW-aware compaction keeps each PW's
(hence each thread's) entries together.

Model: each hardware thread runs its own front-end context (branch
predictors, accumulation buffer, uop queue, back-end) over its own trace;
the **uop cache, the cache hierarchy and the decoder energy model are
shared**.  The coordinator interleaves thread fetch actions in global
front-end-cycle order, which time-orders their accesses to the shared
structures.  Decoder port arbitration is not modeled (both threads may
decode in the same cycle); the study target is capacity/placement
interference in the uop cache, which this captures.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..caches.hierarchy import MemoryHierarchy
from ..common.config import SimulatorConfig
from ..common.errors import SimulationError
from ..common.statistics import ratio
from ..power.decoder import DecoderPowerModel
from ..telemetry.hub import TelemetryHub
from ..uopcache.cache import UopCache
from ..workloads.trace import Trace
from .metrics import SimulationResult
from .simulator import Simulator


@dataclass
class SmtResult:
    """Results of an SMT run: per-thread results plus shared-cache stats."""

    per_thread: List[SimulationResult]
    config_label: str

    @property
    def total_uops(self) -> int:
        return sum(result.uops for result in self.per_thread)

    @property
    def cycles(self) -> int:
        return max(result.cycles for result in self.per_thread)

    @property
    def aggregate_upc(self) -> float:
        """Total uops over the longest thread's cycles (system throughput)."""
        return ratio(self.total_uops, self.cycles)

    @property
    def aggregate_fetch_ratio(self) -> float:
        supplied = sum(result.uops for result in self.per_thread)
        from_oc = sum(result.uops_from_uop_cache
                      for result in self.per_thread)
        return ratio(from_oc, supplied)

    def summary(self) -> Dict[str, float]:
        return {
            "aggregate_upc": self.aggregate_upc,
            "aggregate_fetch_ratio": self.aggregate_fetch_ratio,
            "cycles": self.cycles,
            "total_uops": self.total_uops,
        }


class SmtSimulator:
    """Interleaves N hardware threads over a shared uop cache."""

    def __init__(self, traces: Sequence[Trace],
                 config: Optional[SimulatorConfig] = None,
                 config_label: str = "smt",
                 telemetry: Optional[TelemetryHub] = None) -> None:
        if len(traces) < 2:
            raise SimulationError("SMT simulation needs at least two threads")
        self.config = config or SimulatorConfig()
        self.config_label = config_label
        line_bytes = self.config.memory.l1i.line_bytes

        # One hub is shared by every thread and by the shared structures, so
        # the merged stream is ordered exactly as the coordinator interleaved
        # the threads; per-thread events carry a ``tid`` for the trace view.
        if telemetry is None and self.config.telemetry.enabled:
            telemetry = TelemetryHub.from_config(self.config.telemetry)
        self.telemetry = telemetry

        self.uop_cache = UopCache(self.config.uop_cache,
                                  icache_line_bytes=line_bytes,
                                  telemetry=telemetry)
        self.hierarchy = MemoryHierarchy(self.config.memory)
        self.decoder_power = DecoderPowerModel(self.config.power)
        self.threads = [
            Simulator(trace, self.config,
                      config_label=f"{config_label}/t{index}",
                      shared_uop_cache=self.uop_cache,
                      shared_hierarchy=self.hierarchy,
                      shared_decoder_power=self.decoder_power,
                      telemetry=telemetry)
            for index, trace in enumerate(traces)]
        for index, thread in enumerate(self.threads):
            thread.telemetry_tid = index
            if thread._interval is not None:
                thread._interval.tid = index

    def run(self) -> SmtResult:
        """Advance the thread with the earliest front-end cycle until all
        traces complete."""
        generators = [thread.steps() for thread in self.threads]
        clocks = [0] * len(generators)
        live = set(range(len(generators)))
        # Closure captures ``clocks`` by reference, so one lambda serves
        # every iteration.
        priority = lambda index: (clocks[index], index)  # noqa: E731

        while live:
            # Pick the live thread with the smallest front-end clock; ties
            # resolve to the lowest thread id (fixed priority, as in a real
            # fetch arbiter).
            thread_id = min(live, key=priority)
            try:
                clocks[thread_id] = next(generators[thread_id])
            except StopIteration:
                live.discard(thread_id)

        return SmtResult(
            per_thread=[thread.collect() for thread in self.threads],
            config_label=self.config_label)


def simulate_smt(traces: Sequence[Trace],
                 config: Optional[SimulatorConfig] = None,
                 config_label: str = "smt") -> SmtResult:
    """Convenience one-shot SMT simulation."""
    return SmtSimulator(traces, config, config_label).run()
