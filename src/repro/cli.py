"""Command-line interface: ``python -m repro <command>``.

Commands:

- ``run``            simulate one workload under one design
- ``trace``          run with telemetry and export a Chrome/JSONL trace
- ``smt``            co-run two+ workloads on a shared uop cache
- ``sweep-capacity`` the paper's Fig. 3/4 capacity sweep
- ``sweep-policy``   the paper's Fig. 15-17 design comparison
- ``table1``         render the simulated configuration (paper Table I)
- ``table2``         render the workload suite (paper Table II)
- ``workloads``      list the available workload profiles
- ``lint``           run the simlint determinism/correctness linter
- ``bench``          simulator performance baseline (normal vs fast mode)
- ``fuzz``           differential-oracle fuzzing of the uop cache designs
- ``serve``          run the crash-safe simulation job service (HTTP/JSON)
- ``chaos``          fault-injection harness proving crash-safe recovery
- ``trace-pack``     pack an engine-built trace into a .uoptrace file
- ``trace-info``     integrity-check and summarize a packed trace file

Workload-producing commands take ``--engine`` / ``--engine-params`` to
select among the registered workload engines (synthetic, replay, phased,
adversarial); see ``repro.workloads.engine``.
"""

from __future__ import annotations

import argparse
import dataclasses
import sys
from typing import List, Optional, Sequence

from .analysis.charts import render_grouped_bars
from .analysis.report import render_result
from .analysis.tables import render_table, render_table1, render_table2
from .common.config import SimulatorConfig, TelemetryConfig
from .core.experiment import (
    CAPACITY_SWEEP,
    DEFAULT_SEED,
    POLICY_LABELS,
    policy_config,
    run_capacity_sweep,
    run_policy_sweep,
    workload_trace,
)
from .bench.cli import add_bench_arguments, run_bench_command
from .common.errors import ConfigError, ReproError
from .core.simulator import Simulator
from .lint.cli import add_lint_arguments, run_lint
from .oracle.cli import add_fuzz_arguments, run_fuzz
from .service.cli import (
    add_chaos_arguments,
    add_serve_arguments,
    run_chaos_command,
    run_serve,
)
from .runner.executor import RunnerConfig
from .core.smt import simulate_smt
from .telemetry import (
    EVENT_CATEGORIES,
    ChromeTraceSink,
    JsonlSink,
    TelemetryHub,
)
from .workloads.cli import (
    add_engine_arguments,
    add_trace_info_arguments,
    add_trace_pack_arguments,
    engine_params_from_args,
    run_trace_info,
    run_trace_pack,
)
from .workloads.suite import (
    PAPER_BRANCH_MPKI,
    WORKLOAD_NAMES,
    get_profile,
)


def _build_config(args) -> SimulatorConfig:
    config = policy_config(args.design, args.capacity,
                           getattr(args, "max_entries", 2))
    return dataclasses.replace(config, warmup_instructions=args.warmup)


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--design", default="baseline",
                        choices=list(POLICY_LABELS),
                        help="uop cache design (default: baseline)")
    parser.add_argument("--capacity", type=int, default=2048,
                        help="uop cache capacity in uops (default: 2048)")
    parser.add_argument("--instructions", type=int, default=100_000,
                        help="trace length (default: 100000)")
    parser.add_argument("--warmup", type=int, default=0,
                        help="warmup instructions excluded from metrics")
    parser.add_argument("--max-entries", type=int, default=2,
                        help="max compacted entries per line (default: 2)")
    _add_seed(parser)


def _add_seed(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED,
                        help=f"trace generation seed (default: {DEFAULT_SEED})")


def _add_runner_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes (default: 1 = serial)")
    parser.add_argument("--timeout", type=float, default=None,
                        help="per-job timeout in seconds "
                             "(enforced when --jobs > 1)")
    parser.add_argument("--retries", type=int, default=2,
                        help="retries per failing job before quarantine "
                             "(default: 2)")
    parser.add_argument("--checkpoint-dir", default=None,
                        help="journal completed jobs here (crash-safe)")
    parser.add_argument("--resume", action="store_true",
                        help="resume from the checkpoint journal, "
                             "re-running only missing jobs")
    parser.add_argument("--telemetry", action="store_true",
                        help="count telemetry events per job (journaled "
                             "in the checkpoint results)")


def _runner_from_args(args) -> RunnerConfig:
    return RunnerConfig(jobs=args.jobs, timeout_seconds=args.timeout,
                        retries=args.retries,
                        checkpoint_dir=args.checkpoint_dir,
                        resume=args.resume)


def _finish_sweep(sweep) -> int:
    """Print the runner's failure report; exit nonzero on quarantined jobs."""
    report = sweep.report
    if report is None:
        return 0
    if report.resumed or report.retried or report.quarantined:
        print(report.describe(), file=sys.stderr)
    return 0 if report.ok else 1


def _engine_trace(args, workload: str):
    return workload_trace(workload, args.instructions, seed=args.seed,
                          engine=args.engine,
                          engine_params=engine_params_from_args(args))


def _cmd_run(args) -> int:
    trace = _engine_trace(args, args.workload)
    config = _build_config(args)
    if args.fast_mode:
        config = config.with_fast_mode()
    result = Simulator(trace, config, args.design).run()
    baseline = None
    if args.compare_baseline and args.design != "baseline":
        base_config = dataclasses.replace(
            policy_config("baseline", args.capacity),
            warmup_instructions=args.warmup)
        baseline = Simulator(trace, base_config, "baseline").run()
    print(render_result(result, baseline))
    return 0


def _parse_event_categories(value: str) -> Sequence[str]:
    names = [name.strip() for name in value.split(",") if name.strip()]
    for name in names:
        if name not in EVENT_CATEGORIES:
            raise ConfigError(
                f"unknown event category {name!r}; "
                f"choose from {', '.join(EVENT_CATEGORIES)}")
    return tuple(names) or EVENT_CATEGORIES


def _cmd_trace(args) -> int:
    categories = _parse_event_categories(args.events)
    trace = _engine_trace(args, args.workload)
    config = dataclasses.replace(
        _build_config(args),
        telemetry=TelemetryConfig(enabled=True, events=tuple(categories),
                                  interval_cycles=args.interval))
    hub = TelemetryHub.from_config(config.telemetry)
    if args.format == "chrome":
        hub.add_sink(ChromeTraceSink(args.out))
    else:
        hub.add_sink(JsonlSink(args.out))
    result = Simulator(trace, config, args.design, telemetry=hub).run()
    hub.close()
    print(render_result(result))
    print()
    total = sum(hub.summary().values())
    print(f"telemetry: {total} events "
          f"({', '.join(sorted(categories))}) -> {args.out}")
    for kind, count in sorted(hub.summary().items()):
        print(f"  {kind:<18s} {count}")
    return 0


def _cmd_smt(args) -> int:
    traces = [_engine_trace(args, name) for name in args.workloads]
    config = _build_config(args)
    result = simulate_smt(traces, config, args.design)
    print(f"SMT co-run of {', '.join(args.workloads)} "
          f"under {args.design} ({args.capacity} uops)\n")
    for thread_result in result.per_thread:
        print(render_result(thread_result))
        print()
    summary = result.summary()
    print(f"aggregate UPC:         {summary['aggregate_upc']:.3f}")
    print(f"aggregate fetch ratio: {summary['aggregate_fetch_ratio']:.3f}")
    return 0


def _parse_workloads(value: Optional[str]) -> Sequence[str]:
    if not value:
        return WORKLOAD_NAMES
    names = [name.strip() for name in value.split(",") if name.strip()]
    for name in names:
        get_profile(name)   # raises on unknown names
    return names


def _cmd_sweep_capacity(args) -> int:
    workloads = _parse_workloads(args.workloads)
    sweep = run_capacity_sweep(
        workloads=workloads, capacities=CAPACITY_SWEEP,
        num_instructions=args.instructions,
        warmup_instructions=args.warmup,
        seed=args.seed, runner=_runner_from_args(args),
        telemetry=args.telemetry,
        engine=args.engine, engine_params=engine_params_from_args(args),
        progress=(lambda line: print("  " + line, file=sys.stderr))
        if args.verbose else None)
    print(render_table(
        sweep.normalized(lambda r: r.upc, "OC_2K", skip_missing=True),
        title="UPC normalized to 2K"))
    print()
    print(render_table(
        sweep.normalized(lambda r: r.decoder_power, "OC_2K",
                         skip_missing=True),
        title="Decoder power normalized to 2K"))
    print()
    print(render_table(
        sweep.normalized(lambda r: r.oc_fetch_ratio, "OC_2K",
                         skip_missing=True),
        title="OC fetch ratio normalized to 2K"))
    return _finish_sweep(sweep)


def _cmd_sweep_policy(args) -> int:
    workloads = _parse_workloads(args.workloads)
    sweep = run_policy_sweep(
        workloads=workloads, capacity_uops=args.capacity,
        max_entries_per_line=args.max_entries,
        num_instructions=args.instructions,
        warmup_instructions=args.warmup,
        seed=args.seed, runner=_runner_from_args(args),
        telemetry=args.telemetry,
        engine=args.engine, engine_params=engine_params_from_args(args),
        progress=(lambda line: print("  " + line, file=sys.stderr))
        if args.verbose else None)
    improvement = sweep.improvement_percent(lambda r: r.upc, "baseline",
                                            skip_missing=True)
    print(render_table(improvement, title="% UPC improvement over baseline",
                       fmt="{:+.2f}", column_order=list(POLICY_LABELS)))
    print()
    normalized_fetch = sweep.normalized(
        lambda r: r.oc_fetch_ratio, "baseline", skip_missing=True)
    if args.chart:
        print(render_grouped_bars(
            normalized_fetch, title="OC fetch ratio normalized to baseline",
            column_order=list(POLICY_LABELS)))
    else:
        print(render_table(
            normalized_fetch, title="OC fetch ratio normalized to baseline",
            column_order=list(POLICY_LABELS)))
    return _finish_sweep(sweep)


def _cmd_table1(args) -> int:
    config = policy_config(args.design, args.capacity)
    print(render_table1(config))
    return 0


def _cmd_table2(args) -> int:
    measured = None
    if args.measure:
        measured = {}
        for name in WORKLOAD_NAMES:
            trace = workload_trace(name, args.instructions, seed=args.seed)
            config = policy_config("baseline", 2048)
            measured[name] = Simulator(trace, config, "b").run().branch_mpki
    print(render_table2(measured))
    return 0


def _cmd_workloads(args) -> int:
    for name in WORKLOAD_NAMES:
        profile = get_profile(name)
        print(f"{name:<14s} {profile.num_functions:4d} functions, "
              f"paper MPKI {PAPER_BRANCH_MPKI[name]:5.2f}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Uop cache utilization reproduction (MICRO 2020)")
    commands = parser.add_subparsers(dest="command", required=True)

    run_parser = commands.add_parser(
        "run", help="simulate one workload under one design")
    run_parser.add_argument("workload", choices=list(WORKLOAD_NAMES))
    _add_common(run_parser)
    add_engine_arguments(run_parser)
    run_parser.add_argument("--compare-baseline", action="store_true",
                            help="also run the baseline and show deltas")
    run_parser.add_argument("--fast-mode", action="store_true",
                            help="counters-only fast mode (bit-identical "
                                 "counters, no cycle accounting detail)")
    run_parser.set_defaults(func=_cmd_run)

    trace_parser = commands.add_parser(
        "trace", help="run with telemetry, export Chrome/JSONL trace")
    trace_parser.add_argument("workload", choices=list(WORKLOAD_NAMES))
    _add_common(trace_parser)
    add_engine_arguments(trace_parser)
    trace_parser.add_argument("--out", default="trace.json",
                              help="output path (default: trace.json)")
    trace_parser.add_argument("--format", default="chrome",
                              choices=("chrome", "jsonl"),
                              help="chrome trace_event JSON (Perfetto) or "
                                   "JSONL event log (default: chrome)")
    trace_parser.add_argument("--events",
                              default=",".join(EVENT_CATEGORIES),
                              help="comma-separated event categories "
                                   f"(default: {','.join(EVENT_CATEGORIES)})")
    trace_parser.add_argument("--interval", type=int, default=1024,
                              help="throughput sample width in cycles "
                                   "(default: 1024)")
    trace_parser.set_defaults(func=_cmd_trace)

    smt_parser = commands.add_parser(
        "smt", help="co-run 2+ workloads on a shared uop cache")
    smt_parser.add_argument("workloads", nargs="+",
                            choices=list(WORKLOAD_NAMES))
    _add_common(smt_parser)
    add_engine_arguments(smt_parser)
    smt_parser.set_defaults(func=_cmd_smt)

    capacity_parser = commands.add_parser(
        "sweep-capacity", help="Fig. 3/4 capacity sweep")
    capacity_parser.add_argument("--workloads", default="",
                                 help="comma-separated subset")
    capacity_parser.add_argument("--instructions", type=int, default=100_000)
    capacity_parser.add_argument("--warmup", type=int, default=20_000)
    capacity_parser.add_argument("--verbose", action="store_true")
    _add_seed(capacity_parser)
    _add_runner_flags(capacity_parser)
    add_engine_arguments(capacity_parser)
    capacity_parser.set_defaults(func=_cmd_sweep_capacity)

    policy_parser = commands.add_parser(
        "sweep-policy", help="Fig. 15-17 design comparison")
    policy_parser.add_argument("--workloads", default="",
                               help="comma-separated subset")
    policy_parser.add_argument("--capacity", type=int, default=2048)
    policy_parser.add_argument("--max-entries", type=int, default=2)
    policy_parser.add_argument("--instructions", type=int, default=100_000)
    policy_parser.add_argument("--warmup", type=int, default=20_000)
    policy_parser.add_argument("--verbose", action="store_true")
    policy_parser.add_argument("--chart", action="store_true",
                               help="render bars instead of a table")
    _add_seed(policy_parser)
    _add_runner_flags(policy_parser)
    add_engine_arguments(policy_parser)
    policy_parser.set_defaults(func=_cmd_sweep_policy)

    table1_parser = commands.add_parser(
        "table1", help="render the simulated configuration")
    table1_parser.add_argument("--design", default="baseline",
                               choices=list(POLICY_LABELS))
    table1_parser.add_argument("--capacity", type=int, default=2048)
    table1_parser.set_defaults(func=_cmd_table1)

    table2_parser = commands.add_parser(
        "table2", help="render the workload suite")
    table2_parser.add_argument("--measure", action="store_true",
                               help="also measure branch MPKI (slow)")
    table2_parser.add_argument("--instructions", type=int, default=50_000)
    _add_seed(table2_parser)
    table2_parser.set_defaults(func=_cmd_table2)

    workloads_parser = commands.add_parser(
        "workloads", help="list available workloads")
    workloads_parser.set_defaults(func=_cmd_workloads)

    lint_parser = commands.add_parser(
        "lint", help="run the simlint determinism/correctness linter")
    add_lint_arguments(lint_parser)
    lint_parser.set_defaults(func=run_lint)

    bench_parser = commands.add_parser(
        "bench", help="simulator performance baseline "
                      "(normal vs counters-only fast mode)")
    add_bench_arguments(bench_parser)
    bench_parser.set_defaults(func=run_bench_command)

    fuzz_parser = commands.add_parser(
        "fuzz", help="differential-oracle fuzzing of the uop cache designs")
    add_fuzz_arguments(fuzz_parser)
    fuzz_parser.set_defaults(func=run_fuzz)

    serve_parser = commands.add_parser(
        "serve", help="run the crash-safe simulation job service")
    add_serve_arguments(serve_parser)
    serve_parser.set_defaults(func=run_serve)

    chaos_parser = commands.add_parser(
        "chaos", help="chaos-test the job service: inject faults, verify "
                      "byte-identical recovery")
    add_chaos_arguments(chaos_parser)
    chaos_parser.set_defaults(func=run_chaos_command)

    pack_parser = commands.add_parser(
        "trace-pack", help="pack an engine-built trace into a "
                           "compact .uoptrace file")
    add_trace_pack_arguments(pack_parser)
    pack_parser.set_defaults(func=run_trace_pack)

    info_parser = commands.add_parser(
        "trace-info", help="integrity-check and summarize a packed "
                           ".uoptrace file")
    add_trace_info_arguments(info_parser)
    info_parser.set_defaults(func=run_trace_info)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output was piped into a consumer that closed early (e.g. head).
        return 0
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    except OSError as error:
        # Unwritable --out / --checkpoint-dir and similar: one-line
        # diagnostic, no traceback (scripted callers key off exit code 2).
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":   # pragma: no cover
    raise SystemExit(main())
