"""Workload and trace (de)serialization.

Traces are expensive to generate and experiments want bit-identical inputs
across machines and sessions, so both the static program image (with its
branch behaviours) and dynamic traces can be saved to gzipped JSON:

- :func:`save_workload` / :func:`load_workload` — the program image and
  behaviours (the equivalent of shipping a binary);
- :func:`save_trace` / :func:`load_trace` — a resolved dynamic trace bound
  to its program (the equivalent of shipping a SimNow trace).

The format is versioned; loading a file written by an incompatible version
raises :class:`~repro.common.errors.WorkloadError`.
"""

from __future__ import annotations

import gzip
import json
from pathlib import Path
from typing import Dict, Union

from ..common.errors import WorkloadError
from ..isa.instruction import BranchKind, InstClass, X86Instruction
from .generator import (
    BiasedBehavior,
    IndirectBehavior,
    LoopBehavior,
    Workload,
    WorkloadProfile,
)
from .program import BasicBlock, Function, Program
from .trace import DynamicInst, Trace

FORMAT_VERSION = 1

PathLike = Union[str, Path]


def _inst_to_dict(inst: X86Instruction) -> Dict:
    return {
        "a": inst.address,
        "l": inst.length,
        "c": inst.inst_class.value,
        "u": inst.uop_count,
        "i": inst.imm_disp_count,
        "bk": inst.branch_kind.value,
        "bt": inst.branch_target,
        "m": inst.is_microcoded,
        "r": inst.reads_memory,
        "w": inst.writes_memory,
    }


def _inst_from_dict(data: Dict) -> X86Instruction:
    return X86Instruction(
        address=data["a"],
        length=data["l"],
        inst_class=InstClass(data["c"]),
        uop_count=data["u"],
        imm_disp_count=data["i"],
        branch_kind=BranchKind(data["bk"]),
        branch_target=data["bt"],
        is_microcoded=data["m"],
        reads_memory=data["r"],
        writes_memory=data["w"],
    )


def _behavior_to_dict(behavior) -> Dict:
    if isinstance(behavior, LoopBehavior):
        return {"kind": "loop", "trip": behavior.trip_count}
    if isinstance(behavior, BiasedBehavior):
        return {"kind": "biased", "p": behavior.taken_probability}
    if isinstance(behavior, IndirectBehavior):
        return {"kind": "indirect", "targets": list(behavior.targets),
                "weights": list(behavior.weights)}
    raise WorkloadError(f"unknown behavior type {type(behavior).__name__}")


def _behavior_from_dict(data: Dict):
    kind = data["kind"]
    if kind == "loop":
        return LoopBehavior(trip_count=data["trip"])
    if kind == "biased":
        return BiasedBehavior(taken_probability=data["p"])
    if kind == "indirect":
        return IndirectBehavior(targets=tuple(data["targets"]),
                                weights=tuple(data["weights"]))
    raise WorkloadError(f"unknown behavior kind {kind!r}")


def _workload_to_dict(workload: Workload) -> Dict:
    program = workload.program
    return {
        "profile_name": workload.profile.name,
        "entry": program.entry,
        "functions": [
            {"name": function.name,
             "blocks": [[_inst_to_dict(inst) for inst in block.instructions]
                        for block in function.blocks]}
            for function in program.functions],
        "behaviors": {str(pc): _behavior_to_dict(behavior)
                      for pc, behavior in workload.behaviors.items()},
    }


def _workload_from_dict(data: Dict) -> Workload:
    functions = [
        Function(name=fn["name"],
                 blocks=[BasicBlock(
                     instructions=[_inst_from_dict(i) for i in block])
                     for block in fn["blocks"]])
        for fn in data["functions"]]
    program = Program(functions, entry=data["entry"])
    behaviors = {int(pc): _behavior_from_dict(b)
                 for pc, b in data["behaviors"].items()}
    profile = WorkloadProfile(name=data["profile_name"])
    return Workload(profile=profile, program=program, behaviors=behaviors)


def _write(path: PathLike, payload: Dict) -> None:
    payload["version"] = FORMAT_VERSION
    with gzip.open(Path(path), "wt", encoding="utf-8") as handle:
        json.dump(payload, handle, separators=(",", ":"))


def _read(path: PathLike, expected_kind: str) -> Dict:
    path = Path(path)
    if not path.exists():
        raise WorkloadError(f"no such file: {path}")
    try:
        with gzip.open(path, "rt", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as error:
        raise WorkloadError(f"cannot read {path}: {error}") from error
    if payload.get("version") != FORMAT_VERSION:
        raise WorkloadError(
            f"{path}: format version {payload.get('version')} "
            f"(expected {FORMAT_VERSION})")
    if payload.get("kind") != expected_kind:
        raise WorkloadError(
            f"{path}: contains a {payload.get('kind')!r}, "
            f"expected {expected_kind!r}")
    return payload


def save_workload(workload: Workload, path: PathLike) -> None:
    """Write a program image + behaviours to a gzipped JSON file."""
    _write(path, {"kind": "workload",
                  "workload": _workload_to_dict(workload)})


def load_workload(path: PathLike) -> Workload:
    """Load a program image + behaviours.

    The profile on the loaded workload carries only the original name (the
    generation parameters are not needed to replay: the image is final).
    """
    payload = _read(path, "workload")
    return _workload_from_dict(payload["workload"])


def save_trace(trace: Trace, path: PathLike) -> None:
    """Write a resolved trace (with its program image) to a file."""
    records = trace.records
    _write(path, {
        "kind": "trace",
        "name": trace.name,
        "workload": _workload_to_dict(
            Workload(profile=WorkloadProfile(name=trace.name),
                     program=trace.program, behaviors={})),
        "pcs": [record.pc for record in records],
        "next_pcs": [record.next_pc for record in records],
        "mems": [-1 if record.mem_addr is None else record.mem_addr
                 for record in records],
    })


def load_trace(path: PathLike) -> Trace:
    """Load a trace previously written by :func:`save_trace`."""
    payload = _read(path, "trace")
    workload = _workload_from_dict(payload["workload"])
    pcs = payload["pcs"]
    next_pcs = payload["next_pcs"]
    mems = payload["mems"]
    if not (len(pcs) == len(next_pcs) == len(mems)):
        raise WorkloadError("corrupt trace: column lengths differ")
    records = [
        DynamicInst(pc=pc, next_pc=next_pc,
                    mem_addr=None if mem < 0 else mem)
        for pc, next_pc, mem in zip(pcs, next_pcs, mems)]
    return Trace(workload.program, records, name=payload["name"])
