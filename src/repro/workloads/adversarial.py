"""Adversarial workload engines: worst cases by construction.

The synthetic generator aims for *realistic* code; these engines aim for
*maximally hostile* code, each targeting one weakness the paper's designs
are supposed to mitigate:

- ``adv-fragment`` — uop-cache **fragmentation**.  Hundreds of tiny basic
  blocks, each starting in the last few bytes of a 64-byte I-cache line
  with a terminator that straddles into the next line, chained in a
  seeded Hamiltonian cycle.  Every executed region costs two cache lines
  for a handful of uops, so entry capacity is wasted as fast as the
  geometry allows, and the straddling terminators are exactly the spans
  CLASP exists to merge.
- ``adv-smc`` — **SMC invalidation** damage.  A tight loop over a handful
  of consecutive cache lines (biased back-edges make the earliest lines
  exponentially hottest) whose stores alias the code region itself.
  Every icache-line invalidation probe the oracle fires lands on a hot
  line and throws away live entries.
- ``adv-pwconflict`` — **prediction-window conflict**.  Dozens of
  single-block functions placed exactly one uop-cache set-alias stride
  apart (64 B line x 32 sets = 2 KiB by default), dispatched uniformly
  at random with no target stickiness: every line in the program competes
  for the same set, and every dispatch starts a new prediction window.

Each engine builds its program image deterministically from the walk seed
(via :func:`~repro.common.hashing.derive_stream_seed`) so the same
(engine, params, seed) always yields the same trace.
"""

from __future__ import annotations

import random
from typing import ClassVar, Dict, List, Optional, Tuple

from ..common.errors import WorkloadError
from ..common.hashing import derive_stream_seed
from ..isa.instruction import BranchKind, InstClass, X86Instruction
from .engine import ParamSpecs, WorkloadEngine, register_engine
from .generator import (
    Behavior,
    BiasedBehavior,
    IndirectBehavior,
    TraceWalker,
    Workload,
    WorkloadProfile,
)
from .program import BasicBlock, Function, Program
from .trace import Trace

_LINE_BYTES = 64
_CODE_BASE = 0x40_0000


def _alu(address: int, length: int = 3) -> X86Instruction:
    return X86Instruction(address=address, length=length,
                          inst_class=InstClass.ALU, uop_count=1)


def _store(address: int, length: int = 4) -> X86Instruction:
    return X86Instruction(address=address, length=length,
                          inst_class=InstClass.STORE, uop_count=1,
                          imm_disp_count=1, writes_memory=True)


def _load(address: int, length: int = 4) -> X86Instruction:
    return X86Instruction(address=address, length=length,
                          inst_class=InstClass.LOAD, uop_count=1,
                          imm_disp_count=1, reads_memory=True)


def _jmp(address: int, target: int, length: int = 5) -> X86Instruction:
    return X86Instruction(address=address, length=length,
                          inst_class=InstClass.BRANCH, uop_count=1,
                          branch_kind=BranchKind.UNCONDITIONAL,
                          branch_target=target)


def _cond(address: int, target: int, length: int = 5) -> X86Instruction:
    return X86Instruction(address=address, length=length,
                          inst_class=InstClass.BRANCH, uop_count=1,
                          branch_kind=BranchKind.CONDITIONAL,
                          branch_target=target)


def _cycle_successors(count: int, rng: random.Random) -> List[int]:
    """A seeded single-cycle permutation: succ[i] visits every block."""
    order = list(range(count))
    rng.shuffle(order)
    successors = [0] * count
    for position, block in enumerate(order):
        successors[block] = order[(position + 1) % count]
    return successors


# ----------------------------------------------------------- adv-fragment

@register_engine
class FragmentationEngine(WorkloadEngine):
    """Maximize uop-cache fragmentation with line-straddling micro-blocks.

    Block ``i`` owns a private pair of cache lines (stride 128 B): an ALU
    starts 5 bytes before the first line's end and the 5-byte terminator
    straddles the boundary.  Terminators chain the blocks in a seeded
    Hamiltonian cycle; every ``cond_every``-th block terminates in a
    50/50 conditional (both arms converge on the cycle successor) to keep
    the branch predictor guessing and split prediction windows.
    """

    name = "adv-fragment"
    PARAM_SPECS: ClassVar[ParamSpecs] = {
        "num_blocks": (int, 640),
        "cond_every": (int, 8),
    }

    def _validate(self) -> None:
        if self.params["num_blocks"] < 2:
            raise WorkloadError("num_blocks must be >= 2")
        if self.params["cond_every"] < 1:
            raise WorkloadError("cond_every must be >= 1")

    def _build(self, seed: int) -> Workload:
        num_blocks = self.params["num_blocks"]
        cond_every = self.params["cond_every"]
        rng = random.Random(derive_stream_seed(seed, self.name + "/build"))
        successors = _cycle_successors(num_blocks, rng)
        entries = [_CODE_BASE + 2 * _LINE_BYTES * index + (_LINE_BYTES - 5)
                   for index in range(num_blocks)]

        behaviors: Dict[int, Behavior] = {}
        blocks: List[BasicBlock] = []
        for index in range(num_blocks):
            entry = entries[index]
            target = entries[successors[index]]
            lead = _alu(entry, length=4)          # ends 1 byte before line end
            term_pc = lead.end_address            # 5-byte straddler
            if index % cond_every == cond_every - 1:
                terminator = _cond(term_pc, target)
                behaviors[term_pc] = BiasedBehavior(0.5)
                blocks.append(BasicBlock(instructions=[lead, terminator]))
                # Not-taken arm: a landing block at the fallthrough address
                # re-joins the cycle (one more fragment in the second line).
                landing = _alu(terminator.end_address, length=3)
                rejoin = _jmp(landing.end_address, target)
                blocks.append(BasicBlock(instructions=[landing, rejoin]))
            else:
                terminator = _jmp(term_pc, target)
                blocks.append(BasicBlock(instructions=[lead, terminator]))

        function = Function(name="frag", blocks=blocks)
        program = Program([function], entry=entries[0])
        profile = WorkloadProfile(name=self.name)
        return Workload(profile=profile, program=program,
                        behaviors=behaviors)

    def build_trace(self, num_instructions: int, seed: int) -> Trace:
        workload = self._build(seed)
        return TraceWalker(workload, seed).walk(num_instructions)


# ---------------------------------------------------------------- adv-smc

class _SmcWalker(TraceWalker):
    """Directs stores at the code region itself (self-modifying code)."""

    def __init__(self, workload: Workload, seed: int,
                 code_lines: Tuple[int, ...],
                 code_store_fraction: float) -> None:
        super().__init__(workload, seed)
        self._code_lines = code_lines
        self._code_store_fraction = code_store_fraction
        self._store_cursor = 0

    def _memory_address(self, inst: X86Instruction,
                        depth: int) -> Optional[int]:
        if inst.writes_memory and \
                self._rng.random() < self._code_store_fraction:
            self._store_cursor += 1
            line = self._code_lines[
                self._store_cursor % len(self._code_lines)]
            return line + (self._store_cursor * 8) % _LINE_BYTES
        return super()._memory_address(inst, depth)


@register_engine
class SmcInvalidationEngine(WorkloadEngine):
    """Maximize SMC invalidation damage: a hot loop the probes always hit.

    ``lines`` consecutive cache lines each hold one 64-byte block (store +
    load + ALU fill) ending in a conditional back-edge to line 0 taken
    with probability ``back_edge_bias`` — so line occupancy decays
    geometrically and an invalidation probe at a random record PC almost
    always lands on a hot, fully-built line.  Stores alias the code lines
    themselves with probability ``code_store_fraction``.
    """

    name = "adv-smc"
    PARAM_SPECS: ClassVar[ParamSpecs] = {
        "lines": (int, 6),
        "back_edge_bias": (float, 0.65),
        "code_store_fraction": (float, 0.9),
    }

    def _validate(self) -> None:
        if self.params["lines"] < 2:
            raise WorkloadError("lines must be >= 2")
        if not 0.0 < self.params["back_edge_bias"] < 1.0:
            raise WorkloadError("back_edge_bias must be in (0, 1)")
        if not 0.0 <= self.params["code_store_fraction"] <= 1.0:
            raise WorkloadError("code_store_fraction must be in [0, 1]")

    def _build(self) -> Tuple[Workload, Tuple[int, ...]]:
        lines = self.params["lines"]
        blocks: List[BasicBlock] = []
        behaviors: Dict[int, Behavior] = {}
        line_bases = tuple(_CODE_BASE + _LINE_BYTES * index
                           for index in range(lines))
        for index, base in enumerate(line_bases):
            cursor = base
            instructions: List[X86Instruction] = []
            for build in (_store, _load):
                inst = build(cursor)
                instructions.append(inst)
                cursor = inst.end_address
            while cursor < base + _LINE_BYTES - 5:       # leave terminator room
                inst = _alu(cursor)
                instructions.append(inst)
                cursor = inst.end_address
            pad = base + _LINE_BYTES - 5 - cursor
            if pad:                                      # 3-byte ALUs leave 0..2
                last = instructions[-1]
                instructions[-1] = _alu(last.address, length=last.length + pad)
                cursor = instructions[-1].end_address
            if index < lines - 1:
                # Falls through to the next line's block when not taken.
                terminator = _cond(cursor, line_bases[0])
                behaviors[cursor] = BiasedBehavior(
                    self.params["back_edge_bias"])
            else:
                terminator = _jmp(cursor, line_bases[0])
            instructions.append(terminator)
            blocks.append(BasicBlock(instructions=instructions))

        function = Function(name="smc-loop", blocks=blocks)
        program = Program([function], entry=line_bases[0])
        profile = WorkloadProfile(name=self.name)
        workload = Workload(profile=profile, program=program,
                            behaviors=behaviors)
        return workload, line_bases

    def build_trace(self, num_instructions: int, seed: int) -> Trace:
        workload, line_bases = self._build()
        walker = _SmcWalker(
            workload, seed, code_lines=line_bases,
            code_store_fraction=self.params["code_store_fraction"])
        return walker.walk(num_instructions)


# --------------------------------------------------------- adv-pwconflict

@register_engine
class PwConflictEngine(WorkloadEngine):
    """Maximize prediction-window and set conflict.

    ``num_functions`` one-block functions sit exactly ``stride`` bytes
    apart; with the default geometry (32 sets x 64-byte lines) a 2048-byte
    stride maps *every* function onto uop-cache set 0.  The driver
    dispatches among them uniformly with ``indirect_stickiness=1`` (a
    fresh random target every call), so each dispatch opens a new
    prediction window into a line that is fighting all the others for one
    set's ways.
    """

    name = "adv-pwconflict"
    PARAM_SPECS: ClassVar[ParamSpecs] = {
        "num_functions": (int, 48),
        "stride": (int, 2048),
    }

    def _validate(self) -> None:
        if self.params["num_functions"] < 2:
            raise WorkloadError("num_functions must be >= 2")
        if self.params["stride"] < _LINE_BYTES:
            raise WorkloadError(f"stride must be >= {_LINE_BYTES}")

    def _build(self) -> Workload:
        count = self.params["num_functions"]
        stride = self.params["stride"]
        behaviors: Dict[int, Behavior] = {}
        functions: List[Function] = []
        entries: List[int] = []
        for index in range(count):
            entry = _CODE_BASE + index * stride
            entries.append(entry)
            body: List[X86Instruction] = []
            cursor = entry
            for _ in range(3):
                inst = _alu(cursor)
                body.append(inst)
                cursor = inst.end_address
            body.append(X86Instruction(
                address=cursor, length=1, inst_class=InstClass.RET,
                uop_count=2, branch_kind=BranchKind.RET, reads_memory=True))
            functions.append(Function(
                name=f"victim{index}",
                blocks=[BasicBlock(instructions=body)]))

        driver_entry = _CODE_BASE + count * stride
        cursor = driver_entry
        call_block: List[X86Instruction] = []
        for _ in range(2):
            inst = _alu(cursor)
            call_block.append(inst)
            cursor = inst.end_address
        call = X86Instruction(
            address=cursor, length=5, inst_class=InstClass.CALL,
            uop_count=2, branch_kind=BranchKind.INDIRECT_CALL,
            writes_memory=True)
        behaviors[cursor] = IndirectBehavior(
            targets=tuple(entries),
            weights=tuple(1.0 / count for _ in range(count)))
        call_block.append(call)
        cursor = call.end_address
        loop_block = [_alu(cursor)]
        cursor = loop_block[0].end_address
        loop_block.append(_jmp(cursor, driver_entry))
        functions.append(Function(
            name="driver",
            blocks=[BasicBlock(instructions=call_block),
                    BasicBlock(instructions=loop_block)]))

        program = Program(functions, entry=driver_entry)
        # indirect_stickiness=1 => the walker re-rolls the dispatch target
        # on every call: maximum prediction-window churn.
        profile = WorkloadProfile(name=self.name, indirect_stickiness=1)
        return Workload(profile=profile, program=program,
                        behaviors=behaviors)

    def build_trace(self, num_instructions: int, seed: int) -> Trace:
        workload = self._build()
        return TraceWalker(workload, seed).walk(num_instructions)
