"""Compact, versioned, CRC-enveloped on-disk trace format (``.uoptrace``).

The gzipped-JSON format in :mod:`repro.workloads.serialization` is
convenient but bulky and silently tolerant: a flipped bit inside a number
still parses.  This module defines the *packed* trace format that
:class:`~repro.workloads.engine.TraceReplayEngine` replays — small enough
to commit, and paranoid enough that every corruption is a loud,
descriptive :class:`~repro.common.errors.WorkloadError`.

Layout (all multi-byte integers little-endian)::

    offset 0   magic      b"UOPTRACE"                       (8 bytes)
    offset 8   version    u16  (FORMAT_VERSION)
    offset 10  nsections  u16  (always 3)
    then, per section:
               tag        u8   (0x01 META / 0x02 PROG / 0x03 RECS)
               length     varint  (payload bytes)
               payload    <length bytes>
               crc32      u32  (of the payload bytes)

Sections, in file order:

- **META** — canonical JSON (:func:`repro.common.integrity.canonical_json`):
  trace name, record count, and free-form provenance (the engine, workload,
  seeds and instruction count that produced the trace) so ``repro
  trace-info`` can say where a file came from.
- **PROG** — the program image + branch behaviours as zlib-compressed
  canonical JSON (the same dict shape ``serialization.save_workload``
  writes), because replay must decode every PC the records visit.
- **RECS** — the dynamic records, delta-encoded.  Consecutive records obey
  ``pc[i+1] == next_pc[i]`` (a validated trace invariant), so only the
  first PC is stored absolutely; each record then contributes one zigzag
  varint ``next_pc - pc``, which is the instruction length (1 byte) for
  every straight-line instruction.  Memory addresses are a sparse side
  channel: varint count, then (record-index delta, zigzag address delta)
  pairs.

Integrity: the magic/version reject foreign files, each section CRC turns
bit rot into a named error, and decoding checks for truncation and
trailing garbage.  ``pack_bytes`` is canonical — equal traces produce
byte-identical files — so round-trip tests can assert bit-equality.
"""

from __future__ import annotations

import json
import struct
import zlib
from pathlib import Path
from typing import Any, Dict, List, Optional, Tuple, Union

from ..common.errors import WorkloadError
from ..common.integrity import canonical_json
from .generator import Workload, WorkloadProfile
from .serialization import _workload_from_dict, _workload_to_dict
from .trace import DynamicInst, Trace

MAGIC = b"UOPTRACE"
FORMAT_VERSION = 1

_TAG_META = 0x01
_TAG_PROG = 0x02
_TAG_RECS = 0x03
_TAG_NAMES = {_TAG_META: "META", _TAG_PROG: "PROG", _TAG_RECS: "RECS"}

PathLike = Union[str, Path]


# ------------------------------------------------------------ varint codec

def _write_varint(out: bytearray, value: int) -> None:
    """LEB128 unsigned varint."""
    if value < 0:
        raise WorkloadError(f"cannot varint-encode negative value {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def _zigzag(value: int) -> int:
    return (value << 1) ^ (value >> 63) if value >= 0 else (-value << 1) - 1


def _unzigzag(value: int) -> int:
    return (value >> 1) ^ -(value & 1)


class _Reader:
    """Bounds-checked cursor over a byte buffer; truncation is an error."""

    def __init__(self, data: bytes, context: str) -> None:
        self._data = data
        self._pos = 0
        self._context = context

    @property
    def exhausted(self) -> bool:
        return self._pos >= len(self._data)

    def take(self, count: int) -> bytes:
        end = self._pos + count
        if end > len(self._data):
            raise WorkloadError(
                f"truncated trace file: {self._context} ends at byte "
                f"{len(self._data)} but {count} more byte(s) were expected "
                f"at offset {self._pos}")
        chunk = self._data[self._pos:end]
        self._pos = end
        return chunk

    def varint(self) -> int:
        value = 0
        shift = 0
        while True:
            byte = self.take(1)[0]
            value |= (byte & 0x7F) << shift
            if not byte & 0x80:
                return value
            shift += 7
            if shift > 70:
                raise WorkloadError(
                    f"malformed varint in {self._context}: "
                    "more than 10 continuation bytes")

    def svarint(self) -> int:
        return _unzigzag(self.varint())


# ------------------------------------------------------------------- pack

def _encode_records(records: List[DynamicInst]) -> bytes:
    out = bytearray()
    _write_varint(out, len(records))
    _write_varint(out, records[0].pc)
    for record in records:
        _write_varint(out, _zigzag(record.next_pc - record.pc))
    mems = [(index, record.mem_addr)
            for index, record in enumerate(records)
            if record.mem_addr is not None]
    _write_varint(out, len(mems))
    last_index = 0
    last_addr = 0
    for index, addr in mems:
        _write_varint(out, index - last_index)
        _write_varint(out, _zigzag(addr - last_addr))
        last_index = index
        last_addr = addr
    return bytes(out)


def _decode_records(payload: bytes, declared: int) -> List[DynamicInst]:
    reader = _Reader(payload, "RECS section")
    count = reader.varint()
    if count != declared:
        raise WorkloadError(
            f"record count mismatch: META declares {declared} record(s) "
            f"but RECS encodes {count}")
    if count == 0:
        raise WorkloadError("packed trace contains no records")
    pcs = [reader.varint()]
    next_pcs: List[int] = []
    for _ in range(count):
        next_pc = pcs[-1] + reader.svarint()
        next_pcs.append(next_pc)
        pcs.append(next_pc)
    mem_addrs: List[Optional[int]] = [None] * count
    mem_count = reader.varint()
    index = 0
    addr = 0
    for position in range(mem_count):
        index += reader.varint()
        addr += reader.svarint()
        if index >= count:
            raise WorkloadError(
                f"memory side channel entry {position} points past the "
                f"last record ({index} >= {count})")
        if position and mem_addrs[index] is not None:
            raise WorkloadError(
                f"memory side channel repeats record index {index}")
        mem_addrs[index] = addr
    if not reader.exhausted:
        raise WorkloadError("trailing garbage after the RECS payload")
    return [DynamicInst(pc=pcs[i], next_pc=next_pcs[i],
                        mem_addr=mem_addrs[i])
            for i in range(count)]


def _section(tag: int, payload: bytes) -> bytes:
    out = bytearray()
    out.append(tag)
    _write_varint(out, len(payload))
    out.extend(payload)
    out.extend(struct.pack("<I", zlib.crc32(payload) & 0xFFFFFFFF))
    return bytes(out)


def pack_bytes(trace: Trace,
               provenance: Optional[Dict[str, Any]] = None) -> bytes:
    """Serialize a trace (with its program image) to packed bytes.

    ``provenance`` is free-form JSON-able metadata recorded in the META
    section (engine name, workload, seeds, ...); it does not affect replay.
    """
    meta: Dict[str, Any] = {
        "name": trace.name,
        "records": len(trace.records),
    }
    if provenance:
        meta["provenance"] = provenance
    workload = Workload(profile=WorkloadProfile(name=trace.name),
                        program=trace.program, behaviors={})
    program_json = canonical_json(_workload_to_dict(workload))
    out = bytearray()
    out.extend(MAGIC)
    out.extend(struct.pack("<HH", FORMAT_VERSION, 3))
    out.extend(_section(_TAG_META,
                        canonical_json(meta).encode("utf-8")))
    out.extend(_section(_TAG_PROG,
                        zlib.compress(program_json.encode("utf-8"), 9)))
    out.extend(_section(_TAG_RECS, _encode_records(trace.records)))
    return bytes(out)


def pack_trace(trace: Trace, path: PathLike,
               provenance: Optional[Dict[str, Any]] = None) -> int:
    """Write ``trace`` to ``path`` in packed form; returns bytes written."""
    data = pack_bytes(trace, provenance)
    Path(path).write_bytes(data)
    return len(data)


# ----------------------------------------------------------------- unpack

def _read_sections(data: bytes) -> Dict[int, bytes]:
    if data[:len(MAGIC)] != MAGIC:
        raise WorkloadError(
            "not a packed trace file (bad magic; expected "
            f"{MAGIC!r}, found {bytes(data[:len(MAGIC)])!r})")
    reader = _Reader(data, "trace file header")
    reader.take(len(MAGIC))
    version, nsections = struct.unpack("<HH", reader.take(4))
    if version != FORMAT_VERSION:
        raise WorkloadError(
            f"unsupported trace format version {version} "
            f"(this build reads version {FORMAT_VERSION})")
    sections: Dict[int, bytes] = {}
    for _ in range(nsections):
        tag = reader.take(1)[0]
        name = _TAG_NAMES.get(tag, f"0x{tag:02x}")
        length = reader.varint()
        payload = _Reader(data[reader._pos:], f"{name} section payload") \
            .take(length)
        reader._pos += length
        (crc,) = struct.unpack("<I", reader.take(4))
        if zlib.crc32(payload) & 0xFFFFFFFF != crc:
            raise WorkloadError(
                f"CRC mismatch in {name} section (bit rot or torn "
                "write); refusing to unpack")
        if tag in sections:
            raise WorkloadError(f"duplicate {name} section")
        sections[tag] = payload
    if not reader.exhausted:
        raise WorkloadError(
            f"trailing garbage: {len(data) - reader._pos} byte(s) after "
            "the last section")
    for tag in (_TAG_META, _TAG_PROG, _TAG_RECS):
        if tag not in sections:
            raise WorkloadError(f"missing {_TAG_NAMES[tag]} section")
    return sections


def _decode_meta(payload: bytes) -> Dict[str, Any]:
    try:
        meta = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise WorkloadError(
            f"META section is not valid JSON: {error}") from error
    if not isinstance(meta, dict) or "name" not in meta \
            or "records" not in meta:
        raise WorkloadError("META section is missing name/records fields")
    if not isinstance(meta["records"], int) or meta["records"] < 1:
        raise WorkloadError(
            f"META declares an invalid record count {meta['records']!r}")
    return meta


def _decode_program(payload: bytes) -> Workload:
    try:
        text = zlib.decompress(payload).decode("utf-8")
        data = json.loads(text)
    except (zlib.error, UnicodeDecodeError,
            json.JSONDecodeError) as error:
        raise WorkloadError(
            f"PROG section failed to decompress/parse: {error}") from error
    try:
        return _workload_from_dict(data)
    except (KeyError, TypeError, ValueError) as error:
        raise WorkloadError(
            f"PROG section holds a malformed program: {error}") from error


def unpack_bytes(data: bytes, validate: bool = True) -> Trace:
    """Decode packed bytes into a :class:`Trace`.

    Every structural problem — bad magic, wrong version, truncation, CRC
    mismatch, incoherent records — raises a descriptive
    :class:`WorkloadError`; nothing unpacks silently.
    """
    sections = _read_sections(data)
    meta = _decode_meta(sections[_TAG_META])
    workload = _decode_program(sections[_TAG_PROG])
    records = _decode_records(sections[_TAG_RECS], meta["records"])
    trace = Trace(workload.program, records, name=meta["name"])
    if validate:
        try:
            trace.validate()
        except WorkloadError as error:
            raise WorkloadError(
                f"packed trace is internally inconsistent: {error}") \
                from error
    return trace


def unpack_trace(path: PathLike, validate: bool = True) -> Trace:
    """Read and decode a packed trace file."""
    path = Path(path)
    if not path.exists():
        raise WorkloadError(f"no such trace file: {path}")
    try:
        data = path.read_bytes()
    except OSError as error:
        raise WorkloadError(f"cannot read {path}: {error}") from error
    try:
        return unpack_bytes(data, validate=validate)
    except WorkloadError as error:
        raise WorkloadError(f"{path}: {error}") from error


def trace_info(path: PathLike) -> Dict[str, Any]:
    """Integrity-check a packed file and summarize it (for ``trace-info``).

    Returns a JSON-able dict: name, record count, provenance, program
    shape, and per-section byte sizes.  Raises :class:`WorkloadError` on
    any integrity failure, exactly as :func:`unpack_trace` would.
    """
    path = Path(path)
    trace = unpack_trace(path)
    data = path.read_bytes()
    sections = _read_sections(data)
    meta = _decode_meta(sections[_TAG_META])
    stats = trace.branch_stats()
    return {
        "path": str(path),
        "file_bytes": len(data),
        "version": FORMAT_VERSION,
        "name": meta["name"],
        "records": meta["records"],
        "provenance": meta.get("provenance", {}),
        "program": {
            "functions": len(trace.program.functions),
            "static_instructions": trace.program.num_instructions,
            "static_uops": trace.program.num_static_uops,
            "code_bytes": trace.program.code_bytes,
        },
        "dynamic": {
            "branches": stats.branches,
            "taken_branches": stats.taken_branches,
            "branch_density": round(stats.branch_density, 4),
            "uops": trace.num_dynamic_uops,
        },
        "sections": {_TAG_NAMES[tag]: len(payload)
                     for tag, payload in sorted(sections.items())},
    }
