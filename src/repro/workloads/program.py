"""Static program images: basic blocks, functions, and address decoding.

A :class:`Program` is the synthetic stand-in for a compiled binary: a set of
instructions at fixed byte addresses, organised into basic blocks and
functions.  The front-end only ever asks one question of the image —
"what instruction starts at this PC?" — which :meth:`Program.at` answers in
O(1); uop cracking is memoised per static instruction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..common.errors import WorkloadError
from ..isa.instruction import X86Instruction
from ..isa.uop import Uop, decode_instruction


@dataclass
class BasicBlock:
    """A straight-line run of instructions ending in (at most) one branch."""

    instructions: List[X86Instruction] = field(default_factory=list)

    @property
    def start(self) -> int:
        if not self.instructions:
            raise WorkloadError("empty basic block has no start address")
        return self.instructions[0].address

    @property
    def end(self) -> int:
        """First byte past the block."""
        return self.instructions[-1].end_address

    @property
    def terminator(self) -> X86Instruction:
        return self.instructions[-1]

    @property
    def size_bytes(self) -> int:
        return self.end - self.start

    def __len__(self) -> int:
        return len(self.instructions)


@dataclass
class Function:
    """A callable region: an entry block plus internal control flow."""

    name: str
    blocks: List[BasicBlock] = field(default_factory=list)

    @property
    def entry(self) -> int:
        if not self.blocks:
            raise WorkloadError(f"function {self.name!r} has no blocks")
        return self.blocks[0].start

    @property
    def num_instructions(self) -> int:
        return sum(len(block) for block in self.blocks)


class Program:
    """An immutable static code image with O(1) PC decode.

    Also memoises per-instruction uop cracking, since the same static
    instruction is decoded millions of times across a trace.
    """

    def __init__(self, functions: Sequence[Function], entry: Optional[int] = None):
        if not functions:
            raise WorkloadError("a program needs at least one function")
        self.functions: Tuple[Function, ...] = tuple(functions)
        self._by_address: Dict[int, X86Instruction] = {}
        for function in self.functions:
            for block in function.blocks:
                for inst in block.instructions:
                    existing = self._by_address.get(inst.address)
                    if existing is not None and existing is not inst:
                        raise WorkloadError(
                            f"overlapping instructions at {inst.address:#x}")
                    self._by_address[inst.address] = inst
        self.entry = entry if entry is not None else self.functions[0].entry
        if self.entry not in self._by_address:
            raise WorkloadError(f"entry point {self.entry:#x} decodes to nothing")
        self._uop_cache: Dict[int, Tuple[Uop, ...]] = {}

    def at(self, address: int) -> X86Instruction:
        try:
            return self._by_address[address]
        except KeyError:
            raise WorkloadError(f"no instruction starts at {address:#x}") from None

    def contains(self, address: int) -> bool:
        return address in self._by_address

    def uops_at(self, address: int) -> Tuple[Uop, ...]:
        cached = self._uop_cache.get(address)
        if cached is None:
            cached = decode_instruction(self.at(address))
            self._uop_cache[address] = cached
        return cached

    @property
    def num_instructions(self) -> int:
        return len(self._by_address)

    @property
    def num_static_uops(self) -> int:
        return sum(inst.uop_count for inst in self._by_address.values())

    @property
    def code_bytes(self) -> int:
        """Footprint from lowest instruction byte to highest."""
        lo = min(self._by_address)
        hi = max(inst.end_address for inst in self._by_address.values())
        return hi - lo

    def instructions(self) -> Iterable[X86Instruction]:
        return self._by_address.values()

    def touched_icache_lines(self, line_bytes: int = 64) -> int:
        lines = set()
        for inst in self._by_address.values():
            lines.update(inst.cache_lines(line_bytes))
        return len(lines)
