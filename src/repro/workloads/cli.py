"""CLI verbs for workload engines and packed trace files.

``repro trace-pack`` materializes a trace from any registered engine and
writes it as a compact ``.uoptrace`` file (with provenance recording how
it was produced); ``repro trace-info`` integrity-checks a packed file and
summarizes it.  The ``--engine`` / ``--engine-params`` flags added by
:func:`add_engine_arguments` are shared with run/sweep/bench/fuzz/serve.
"""

from __future__ import annotations

import argparse
import json
from typing import Any, Dict

from ..common.errors import ConfigError
from .engine import create_engine, engine_names
from .tracefile import pack_trace, trace_info


def add_engine_arguments(parser: argparse.ArgumentParser,
                         default: str = "synthetic") -> None:
    """Add the shared ``--engine`` / ``--engine-params`` flags."""
    parser.add_argument("--engine", default=default,
                        choices=list(engine_names()),
                        help=f"workload engine (default: {default})")
    parser.add_argument("--engine-params", default="", metavar="JSON",
                        help="engine parameters as a JSON object, e.g. "
                             "'{\"path\": \"bm.uoptrace\"}'")


def engine_params_from_args(args: argparse.Namespace) -> Dict[str, Any]:
    """Parse ``--engine-params`` into a dict (strictly a JSON object)."""
    raw = getattr(args, "engine_params", "")
    if not raw:
        return {}
    try:
        params = json.loads(raw)
    except json.JSONDecodeError as error:
        raise ConfigError(
            f"--engine-params is not valid JSON: {error}") from error
    if not isinstance(params, dict):
        raise ConfigError(
            f"--engine-params must be a JSON object, got {type(params).__name__}")
    return params


def add_trace_pack_arguments(parser: argparse.ArgumentParser) -> None:
    from ..core.experiment import DEFAULT_SEED
    from .suite import WORKLOAD_NAMES
    parser.add_argument("workload", choices=list(WORKLOAD_NAMES),
                        help="suite workload the engine builds on")
    add_engine_arguments(parser)
    parser.add_argument("--instructions", type=int, default=100_000,
                        help="trace length to pack (default: 100000)")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED,
                        help=f"walk seed (default: {DEFAULT_SEED})")
    parser.add_argument("--out", default=None,
                        help="output path (default: "
                             "<workload>_<engine>_<seed>.uoptrace)")


def run_trace_pack(args: argparse.Namespace) -> int:
    engine = create_engine(args.engine, workload=args.workload,
                           params=engine_params_from_args(args))
    trace = engine.build_trace(args.instructions, args.seed)
    out = args.out or \
        f"{args.workload}_{args.engine}_{args.seed}.uoptrace"
    provenance = dict(engine.describe())
    provenance["instructions"] = args.instructions
    provenance["seed"] = args.seed
    written = pack_trace(trace, out, provenance=provenance)
    stats = trace.branch_stats()
    print(f"packed {len(trace.records)} records "
          f"({stats.branches} branches) -> {out} ({written} bytes, "
          f"{written / len(trace.records):.2f} B/record)")
    return 0


def add_trace_info_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("path", help="packed .uoptrace file")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="emit machine-readable JSON instead of text")


def run_trace_info(args: argparse.Namespace) -> int:
    info = trace_info(args.path)
    if args.as_json:
        print(json.dumps(info, indent=2, sort_keys=True))
        return 0
    print(f"{info['path']}: format v{info['version']}, "
          f"{info['file_bytes']} bytes, integrity OK")
    print(f"  name        {info['name']}")
    print(f"  records     {info['records']}")
    provenance = info["provenance"]
    if provenance:
        rendered = ", ".join(f"{key}={provenance[key]}"
                             for key in sorted(provenance))
        print(f"  provenance  {rendered}")
    program = info["program"]
    print(f"  program     {program['functions']} functions, "
          f"{program['static_instructions']} instructions, "
          f"{program['static_uops']} uops, "
          f"{program['code_bytes']} code bytes")
    dynamic = info["dynamic"]
    print(f"  dynamic     {dynamic['uops']} uops, "
          f"{dynamic['branches']} branches "
          f"({dynamic['taken_branches']} taken, "
          f"density {dynamic['branch_density']})")
    sections = info["sections"]
    rendered = ", ".join(f"{name}={sections[name]}B"
                         for name in sorted(sections))
    print(f"  sections    {rendered}")
    return 0
