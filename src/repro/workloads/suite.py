"""The evaluated workload suite (Table II analogue).

One :class:`WorkloadProfile` per paper workload.  Profiles differ in code
footprint (functions x blocks x instructions), instruction mix, branch
predictability (targets the Table II branch MPKI ordering), loop structure,
and call diversity (which sets the *dynamic* uop footprint pressure on the
2K..64K-uop cache sweep).  Suites: Cloud (SparkBench log_regr/tr_cnt/pg_rnk,
Nutch, Mahout), Server (redis, jvm/SPECjbb), and SPEC CPU 2017 (perlbench,
gcc, x264, deepsjeng, leela, xz).

The absolute numbers are synthetic-model parameters, not measurements of the
real applications; they are tuned so that relative behaviour (footprint
pressure, branch MPKI ordering, fragmentation) matches the paper.
"""

from __future__ import annotations

from typing import Dict, Tuple

from ..common.errors import WorkloadError
from ..isa.builder import FP_HEAVY_MIX, INTEGER_MIX, SERVER_MIX, InstructionMix
from .generator import Workload, WorkloadProfile, generate_workload

#: Branch MPKI reported in Table II, used for documentation and calibration
#: tests (we check ordering, not absolute equality).
PAPER_BRANCH_MPKI: Dict[str, float] = {
    "sp-log_regr": 10.37,
    "sp-tr_cnt": 7.90,
    "sp-pg_rnk": 9.27,
    "nutch": 5.12,
    "mahout": 9.05,
    "redis": 1.01,
    "jvm": 2.15,
    "bm-pb": 2.07,
    "bm-cc": 5.48,
    "bm-x64": 1.31,
    "bm-ds": 4.50,
    "bm-lla": 11.51,
    "bm-z": 11.61,
}

#: Suite membership, mirroring Table II's grouping.
SUITE_GROUPS: Dict[str, Tuple[str, ...]] = {
    "cloud": ("sp-log_regr", "sp-tr_cnt", "sp-pg_rnk", "nutch", "mahout"),
    "server": ("redis", "jvm"),
    "spec2017": ("bm-pb", "bm-cc", "bm-x64", "bm-ds", "bm-lla", "bm-z"),
}


def _profile(name: str, *, functions: int, blocks: Tuple[int, int],
             insts: Tuple[int, int], mix: InstructionMix,
             hard: float, zipf: float, uniform: float,
             phase: int = 0, loops: float = 0.12, calls: float = 0.12,
             indirect: float = 0.02, ind_call: float = 0.45,
             taken_bias: float = 0.72, sticky: int = 24,
             trips: Tuple[int, ...] = (2, 3, 4, 8)) -> WorkloadProfile:
    return WorkloadProfile(
        name=name,
        num_functions=functions,
        blocks_per_function=blocks,
        insts_per_block=insts,
        mix=mix,
        loop_fraction=loops,
        call_fraction=calls,
        indirect_fraction=indirect,
        indirect_call_fraction=ind_call,
        hard_branch_fraction=hard,
        easy_taken_bias=taken_bias,
        hot_function_zipf=zipf,
        driver_uniform_fraction=uniform,
        phase_length=phase,
        indirect_stickiness=sticky,
        loop_trip_counts=trips,
    )


#: All thirteen evaluated workloads, keyed by their paper short name.
WORKLOAD_PROFILES: Dict[str, WorkloadProfile] = {
    # -- Cloud: big flat code footprints; JIT-style phases; high MPKI --------
    "sp-log_regr": _profile(
        "sp-log_regr", functions=930, blocks=(5, 14), insts=(1, 5),
        mix=FP_HEAVY_MIX, hard=0.067, zipf=0.60, uniform=0.30, phase=25_000,
        indirect=0.04, ind_call=0.55, calls=0.09, trips=(2, 3, 4)),
    "sp-tr_cnt": _profile(
        "sp-tr_cnt", functions=630, blocks=(5, 13), insts=(1, 5),
        mix=SERVER_MIX, hard=0.040, zipf=0.55, uniform=0.35, phase=30_000,
        indirect=0.04, ind_call=0.5, calls=0.08, trips=(2, 3, 4, 8)),
    "sp-pg_rnk": _profile(
        "sp-pg_rnk", functions=660, blocks=(5, 14), insts=(1, 5),
        mix=FP_HEAVY_MIX, hard=0.050, zipf=0.65, uniform=0.28, phase=28_000,
        indirect=0.04, ind_call=0.55, calls=0.09, trips=(2, 3, 4)),
    "nutch": _profile(
        "nutch", functions=600, blocks=(4, 12), insts=(1, 6),
        mix=SERVER_MIX, hard=0.025, zipf=0.80, uniform=0.22, phase=35_000,
        indirect=0.05, ind_call=0.5, calls=0.09),
    "mahout": _profile(
        "mahout", functions=450, blocks=(5, 13), insts=(1, 5),
        mix=FP_HEAVY_MIX, hard=0.047, zipf=0.70, uniform=0.25, phase=30_000,
        indirect=0.04, ind_call=0.5, calls=0.09, trips=(2, 3, 4)),
    # -- Server ----------------------------------------------------------------
    "redis": _profile(
        "redis", functions=520, blocks=(4, 10), insts=(1, 6),
        mix=SERVER_MIX, hard=0.000, zipf=0.55, uniform=0.30, phase=15_000,
        indirect=0.03, ind_call=0.55, calls=0.09, loops=0.08, sticky=48,
        trips=(2, 4, 8)),
    "jvm": _profile(
        "jvm", functions=750, blocks=(4, 12), insts=(1, 6),
        mix=SERVER_MIX, hard=0.003, zipf=0.55, uniform=0.35, phase=35_000,
        indirect=0.06, ind_call=0.55, calls=0.09, trips=(4, 8, 16)),
    # -- SPEC CPU 2017 ------------------------------------------------------------
    "bm-pb": _profile(   # 500.perlbench_r: big code, predictable branches
        "bm-pb", functions=480, blocks=(5, 13), insts=(1, 5),
        mix=INTEGER_MIX, hard=0.001, zipf=0.70, uniform=0.25, phase=30_000,
        indirect=0.05, ind_call=0.5, calls=0.09),
    "bm-cc": _profile(   # 502.gcc_r: biggest footprint, moderate MPKI
        "bm-cc", functions=690, blocks=(5, 14), insts=(1, 5),
        mix=INTEGER_MIX, hard=0.010, zipf=0.45, uniform=0.40, phase=20_000,
        indirect=0.05, ind_call=0.6, calls=0.09, loops=0.08,
        trips=(2, 3, 4)),
    "bm-x64": _profile(  # 525.x264_r: small hot loops, low MPKI
        "bm-x64", functions=90, blocks=(3, 9), insts=(4, 12),
        mix=FP_HEAVY_MIX, hard=0.004, zipf=1.30, uniform=0.06, phase=0,
        indirect=0.01, ind_call=0.2, loops=0.30, calls=0.06,
        trips=(4, 8, 16, 50)),
    "bm-ds": _profile(   # 531.deepsjeng_r: search code, data-dependent branches
        "bm-ds", functions=315, blocks=(4, 12), insts=(1, 5),
        mix=INTEGER_MIX, hard=0.018, zipf=0.90, uniform=0.15, phase=0,
        indirect=0.02, ind_call=0.4, calls=0.08),
    "bm-lla": _profile(  # 541.leela_r: MCTS, very hard branches
        "bm-lla", functions=345, blocks=(4, 12), insts=(1, 5),
        mix=INTEGER_MIX, hard=0.200, zipf=0.90, uniform=0.15, phase=0,
        indirect=0.02, ind_call=0.4, calls=0.08, trips=(2, 3, 4)),
    "bm-z": _profile(    # 557.xz_r: compression, hard branches, modest code
        "bm-z", functions=380, blocks=(4, 11), insts=(1, 5),
        mix=INTEGER_MIX, hard=0.300, zipf=0.90, uniform=0.18, phase=0,
        indirect=0.01, ind_call=0.3, calls=0.09, loops=0.20,
        trips=(2, 3, 4, 8)),
}

WORKLOAD_NAMES: Tuple[str, ...] = tuple(WORKLOAD_PROFILES)


def get_profile(name: str) -> WorkloadProfile:
    try:
        return WORKLOAD_PROFILES[name]
    except KeyError:
        raise WorkloadError(
            f"unknown workload {name!r}; known: {', '.join(WORKLOAD_NAMES)}"
        ) from None


_workload_cache: Dict[Tuple[str, int], Workload] = {}


def get_workload(name: str, seed: int = 1, cache: bool = True) -> Workload:
    """Build (and memoise) the program image for a named workload."""
    key = (name, seed)
    if cache and key in _workload_cache:
        return _workload_cache[key]
    workload = generate_workload(get_profile(name), seed=seed)
    if cache:
        _workload_cache[key] = workload
    return workload


def clear_workload_cache() -> None:
    _workload_cache.clear()
