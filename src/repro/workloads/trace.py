"""Dynamic trace representation.

A trace is the resolved execution path of a program: one record per retired
instruction carrying its PC, the *actual* next PC (which encodes taken /
not-taken), and a data address for memory instructions.  Traces are replayed
many times (once per simulated configuration), so records are slotted and the
trace owns a reference to its static :class:`~repro.workloads.program.Program`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional, Sequence

from ..common.errors import WorkloadError
from ..isa.instruction import X86Instruction
from .program import Program


@dataclass(frozen=True)
class DynamicInst:
    """One dynamic (retired) instruction."""

    __slots__ = ("pc", "next_pc", "mem_addr")

    pc: int
    next_pc: int
    mem_addr: Optional[int]

    def taken(self, inst: X86Instruction) -> bool:
        """Whether this dynamic instance diverted from sequential flow."""
        return self.next_pc != inst.end_address


class Trace:
    """An immutable dynamic instruction trace bound to its program image."""

    def __init__(self, program: Program, records: Sequence[DynamicInst],
                 name: str = "trace") -> None:
        if not records:
            raise WorkloadError("trace must contain at least one record")
        self.program = program
        self.records: List[DynamicInst] = list(records)
        self.name = name

    def __len__(self) -> int:
        return len(self.records)

    def __iter__(self) -> Iterator[DynamicInst]:
        return iter(self.records)

    def __getitem__(self, index: int) -> DynamicInst:
        return self.records[index]

    @property
    def num_dynamic_uops(self) -> int:
        return sum(self.program.at(r.pc).uop_count for r in self.records)

    def validate(self) -> None:
        """Check every record decodes and control flow is coherent.

        Raises :class:`WorkloadError` on the first inconsistency.  O(n); meant
        for tests and workload development, not the simulation hot path.
        """
        for i, record in enumerate(self.records):
            inst = self.program.at(record.pc)  # raises if undecodable
            if record.next_pc != inst.end_address and not inst.is_branch:
                raise WorkloadError(
                    f"record {i}: non-branch at {record.pc:#x} changed control flow")
            if inst.is_unconditional_transfer and record.next_pc == inst.end_address:
                # An unconditional transfer may still "fall through" only if its
                # target happens to equal the next sequential address.
                if inst.branch_target is not None and \
                        inst.branch_target != inst.end_address:
                    raise WorkloadError(
                        f"record {i}: unconditional branch at {record.pc:#x} "
                        "fell through")
            if i + 1 < len(self.records) and \
                    self.records[i + 1].pc != record.next_pc:
                raise WorkloadError(
                    f"record {i}: next_pc {record.next_pc:#x} does not match "
                    f"following record pc {self.records[i + 1].pc:#x}")

    def branch_stats(self) -> "TraceBranchStats":
        total = len(self.records)
        branches = taken = conditional = 0
        for record in self.records:
            inst = self.program.at(record.pc)
            if inst.is_branch:
                branches += 1
                if inst.is_conditional_branch:
                    conditional += 1
                if record.taken(inst):
                    taken += 1
        return TraceBranchStats(
            instructions=total, branches=branches,
            conditional_branches=conditional, taken_branches=taken)


@dataclass(frozen=True)
class TraceBranchStats:
    instructions: int
    branches: int
    conditional_branches: int
    taken_branches: int

    @property
    def branch_density(self) -> float:
        return self.branches / self.instructions if self.instructions else 0.0
