"""Pluggable workload engines: one registry, many ways to make a trace.

Every experiment layer (sweeps, the serve loop, the fuzzer, the bench
harness) consumes a :class:`~repro.workloads.trace.Trace`; this module
abstracts *where that trace comes from* behind a small registry:

- ``synthetic`` — :class:`SyntheticMarkovEngine`, the original Markov-walk
  generator (:mod:`repro.workloads.generator`), now one engine among many.
  The default engine everywhere; with default params it is bit-identical
  to the pre-registry ``generate_workload()`` path.
- ``replay`` — :class:`TraceReplayEngine`, replays a packed ``.uoptrace``
  file (:mod:`repro.workloads.tracefile`), making captured or previously
  generated traces first-class reproducible workloads.
- ``phased-static`` / ``phased-dynamic`` / ``oscillating`` —
  :class:`PhasedEngine` variants that impose a seeded footprint *schedule*
  on a synthetic program image: the driver's dispatch is confined to a
  window of functions that stays fixed (STATIC), jumps randomly per
  segment (DYNAMIC), or alternates between a hot set and a cold sweep
  (OSCILLATING).
- ``adv-fragment`` / ``adv-smc`` / ``adv-pwconflict`` — adversarial
  generators (:mod:`repro.workloads.adversarial`) that deliberately
  maximize uop-cache fragmentation, SMC invalidation damage, and
  prediction-window conflict.

Engines are constructed by name with :func:`create_engine`; the
``describe()`` dict is canonical (sorted params) and feeds service content
keys, trace provenance, and bench report identity.
"""

from __future__ import annotations

import random
from abc import ABC, abstractmethod
from typing import Any, ClassVar, Dict, List, Mapping, Optional, Tuple, Type

from ..common.errors import WorkloadError
from ..common.hashing import derive_stream_seed
from .generator import IndirectBehavior, TraceWalker, Workload
from .trace import Trace


class _Required:
    """Sentinel for parameters without a default."""

    def __repr__(self) -> str:  # pragma: no cover - repr cosmetics
        return "<required>"


REQUIRED = _Required()

#: Parameter spec: name -> (type, default-or-REQUIRED).
ParamSpecs = Dict[str, Tuple[type, Any]]


class WorkloadEngine(ABC):
    """A named, parameterized source of dynamic traces.

    Subclasses declare ``name`` (the registry key) and ``PARAM_SPECS``
    (typed parameters with defaults); construction validates parameters
    strictly — unknown names and wrong types raise
    :class:`~repro.common.errors.WorkloadError` so a typo in a job spec or
    CLI flag never silently falls back to a default.
    """

    name: ClassVar[str] = ""
    PARAM_SPECS: ClassVar[ParamSpecs] = {}

    def __init__(self, workload: str = "bm-x64",
                 params: Optional[Mapping[str, Any]] = None) -> None:
        self.workload = workload
        self.params: Dict[str, Any] = self._coerce_params(params or {})
        self._validate()

    @classmethod
    def _coerce_params(cls, raw: Mapping[str, Any]) -> Dict[str, Any]:
        unknown = sorted(set(raw) - set(cls.PARAM_SPECS))
        if unknown:
            raise WorkloadError(
                f"engine {cls.name!r} got unknown parameter(s) "
                f"{', '.join(unknown)}; accepts: "
                f"{', '.join(sorted(cls.PARAM_SPECS)) or '(none)'}")
        params: Dict[str, Any] = {}
        for key in sorted(cls.PARAM_SPECS):
            kind, default = cls.PARAM_SPECS[key]
            if key in raw:
                value = raw[key]
                if kind is float and isinstance(value, int) \
                        and not isinstance(value, bool):
                    value = float(value)
                if not isinstance(value, kind) or \
                        (kind is int and isinstance(value, bool)):
                    raise WorkloadError(
                        f"engine {cls.name!r} parameter {key!r} must be "
                        f"{kind.__name__}, got {value!r}")
                params[key] = value
            elif isinstance(default, _Required):
                raise WorkloadError(
                    f"engine {cls.name!r} requires parameter {key!r}")
            else:
                params[key] = default
        return params

    def _validate(self) -> None:
        """Hook for engine-specific parameter range checks."""

    @abstractmethod
    def build_trace(self, num_instructions: int, seed: int) -> Trace:
        """Produce a trace of exactly ``num_instructions`` records."""

    def describe(self) -> Dict[str, Any]:
        """Canonical JSON-able identity: engine name, workload, params.

        Deterministic (params sorted) so it can feed content-addressed
        keys and provenance records directly.
        """
        return {
            "engine": self.name,
            "workload": self.workload,
            "params": {key: self.params[key]
                       for key in sorted(self.params)},
        }


# --------------------------------------------------------------- registry

_REGISTRY: Dict[str, Type[WorkloadEngine]] = {}


def register_engine(cls: Type[WorkloadEngine]) -> Type[WorkloadEngine]:
    """Class decorator: add an engine to the global registry."""
    if not cls.name:
        raise WorkloadError(f"{cls.__name__} has no engine name")
    if cls.name in _REGISTRY:
        raise WorkloadError(f"duplicate engine name {cls.name!r}")
    _REGISTRY[cls.name] = cls
    return cls


def engine_names() -> Tuple[str, ...]:
    """All registered engine names, sorted."""
    return tuple(sorted(_REGISTRY))


def create_engine(name: str, workload: str = "bm-x64",
                  params: Optional[Mapping[str, Any]] = None
                  ) -> WorkloadEngine:
    """Instantiate a registered engine by name (strict on unknowns)."""
    try:
        cls = _REGISTRY[name]
    except KeyError:
        raise WorkloadError(
            f"unknown workload engine {name!r}; registered engines: "
            f"{', '.join(engine_names())}") from None
    return cls(workload=workload, params=params)


# ------------------------------------------------------- synthetic engine

@register_engine
class SyntheticMarkovEngine(WorkloadEngine):
    """The original generator behind an engine face.

    ``gen_seed`` seeds program-image *generation* (the suite's memoised
    default is 1); the ``seed`` passed to :meth:`build_trace` seeds the
    dynamic walk.  With ``gen_seed=1`` this reproduces
    ``workload_trace()`` exactly; with ``gen_seed=<walk seed>`` it
    reproduces the bench harness's historical path.
    """

    name = "synthetic"
    PARAM_SPECS: ClassVar[ParamSpecs] = {"gen_seed": (int, 1)}

    def build_trace(self, num_instructions: int, seed: int) -> Trace:
        from .suite import get_workload
        workload = get_workload(self.workload,
                                seed=self.params["gen_seed"])
        return workload.trace(num_instructions, seed=seed)


# ---------------------------------------------------------- trace replay

@register_engine
class TraceReplayEngine(WorkloadEngine):
    """Replays a packed ``.uoptrace`` file bit-identically.

    The walk ``seed`` is ignored — a replayed trace *is* its records.
    Asking for more instructions than the file holds is an error (replay
    never invents instructions); asking for fewer replays a prefix.
    """

    name = "replay"
    PARAM_SPECS: ClassVar[ParamSpecs] = {"path": (str, REQUIRED)}

    def build_trace(self, num_instructions: int, seed: int) -> Trace:
        from .tracefile import unpack_trace
        if num_instructions < 1:
            raise WorkloadError("trace length must be >= 1")
        trace = unpack_trace(self.params["path"])
        packed = len(trace.records)
        if num_instructions > packed:
            raise WorkloadError(
                f"replay of {self.params['path']} asked for "
                f"{num_instructions} instruction(s) but the packed trace "
                f"holds only {packed}")
        if num_instructions < packed:
            return Trace(trace.program,
                         trace.records[:num_instructions],
                         name=trace.name)
        return trace


# --------------------------------------------------------- phased engines

class _PhasedWalker(TraceWalker):
    """A walker whose driver dispatch is confined to a scheduled window.

    The schedule runs on its own RNG stream (derived from the walk seed
    and the engine name) so window placement never perturbs the walk
    RNG's branch/memory decisions.  Windows are materialized lazily in
    phase order, which is deterministic because ``self._index`` only
    grows.
    """

    def __init__(self, workload: Workload, seed: int, engine_name: str,
                 schedule: str, segment_length: int,
                 hot_fraction: float, cold_fraction: float) -> None:
        super().__init__(workload, seed)
        self._schedule = schedule
        self._segment_length = segment_length
        self._schedule_rng = random.Random(
            derive_stream_seed(seed, engine_name + "/schedule"))
        n = workload.profile.num_functions
        self._num_targets = n
        self._hot = max(1, min(n, round(n * hot_fraction)))
        self._cold = max(self._hot, min(n, round(n * cold_fraction)))
        # PCs of the driver's indirect dispatch calls (membership only).
        driver = workload.program.functions[-1]
        self._driver_pcs = frozenset(
            inst.address for block in driver.blocks
            for inst in block.instructions
            if inst.address in workload.behaviors)
        self._windows: List[Tuple[int, int]] = []
        self._last_phase = -1
        self._restricted: Dict[int, IndirectBehavior] = {}

    def _make_window(self, phase: int) -> Tuple[int, int]:
        n, rng = self._num_targets, self._schedule_rng
        if self._schedule == "static":
            if phase == 0:
                return rng.randrange(n), self._hot
            return self._windows[0]
        if self._schedule == "dynamic":
            return rng.randrange(n), rng.randint(self._hot, self._cold)
        # oscillating: size alternates hot/cold while the start drifts, so
        # a cold phase sweeps in mostly-new functions each oscillation.
        size = self._hot if phase % 2 == 0 else self._cold
        return (phase * max(1, n // 7)) % n, size

    def _window(self) -> Tuple[int, int]:
        phase = self._index // self._segment_length
        while len(self._windows) <= phase:
            self._windows.append(self._make_window(len(self._windows)))
        if phase != self._last_phase:
            self._last_phase = phase
            self._sticky_targets.clear()
            self._restricted.clear()
        return self._windows[phase]

    def _pick_function_entry(self, phase: int) -> int:
        start, size = self._window()
        functions = self.workload.program.functions
        indices = [(start + offset) % self._num_targets
                   for offset in range(size)]
        weights = [self._zipf_weights[index] for index in indices]
        index = self._rng.choices(indices, weights=weights, k=1)[0]
        return functions[index].entry

    def _sticky_indirect_target(self, pc: int,
                                behavior: IndirectBehavior) -> int:
        if pc not in self._driver_pcs:
            return super()._sticky_indirect_target(pc, behavior)
        start, size = self._window()
        restricted = self._restricted.get(pc)
        if restricted is None:
            indices = [(start + offset) % len(behavior.targets)
                       for offset in range(min(size, len(behavior.targets)))]
            raw = [behavior.weights[index] + 1e-9 for index in indices]
            total = sum(raw)
            restricted = IndirectBehavior(
                targets=tuple(behavior.targets[index] for index in indices),
                weights=tuple(weight / total for weight in raw))
            self._restricted[pc] = restricted
        return super()._sticky_indirect_target(pc, restricted)


class PhasedEngine(WorkloadEngine):
    """Footprint-scheduled walks over a synthetic program image.

    Splits the trace into ``segment_length``-instruction phases; within a
    phase the driver only dispatches into a window of the function set.
    ``hot_fraction``/``cold_fraction`` size the window as fractions of
    the workload's function count.  Subclasses fix the schedule shape.
    """

    schedule: ClassVar[str] = ""
    PARAM_SPECS: ClassVar[ParamSpecs] = {
        "gen_seed": (int, 1),
        "segment_length": (int, 4000),
        "hot_fraction": (float, 0.12),
        "cold_fraction": (float, 0.75),
    }

    def _validate(self) -> None:
        if self.params["segment_length"] < 1:
            raise WorkloadError("segment_length must be >= 1")
        hot = self.params["hot_fraction"]
        cold = self.params["cold_fraction"]
        if not 0.0 < hot <= 1.0 or not 0.0 < cold <= 1.0:
            raise WorkloadError(
                "hot_fraction and cold_fraction must be in (0, 1]")
        if hot > cold:
            raise WorkloadError(
                f"hot_fraction ({hot}) must not exceed "
                f"cold_fraction ({cold})")

    def build_trace(self, num_instructions: int, seed: int) -> Trace:
        from .suite import get_workload
        workload = get_workload(self.workload,
                                seed=self.params["gen_seed"])
        walker = _PhasedWalker(
            workload, seed, engine_name=self.name,
            schedule=self.schedule,
            segment_length=self.params["segment_length"],
            hot_fraction=self.params["hot_fraction"],
            cold_fraction=self.params["cold_fraction"])
        return walker.walk(num_instructions)


@register_engine
class StaticPhaseEngine(PhasedEngine):
    """One fixed hot window for the whole trace (steady-state footprint)."""

    name = "phased-static"
    schedule = "static"


@register_engine
class DynamicPhaseEngine(PhasedEngine):
    """Window teleports to a random place (and size) every segment."""

    name = "phased-dynamic"
    schedule = "dynamic"


@register_engine
class OscillatingPhaseEngine(PhasedEngine):
    """Footprint oscillates hot/cold with a drifting start — the capsa
    OSCILLATING shape, and the worst case for capacity-tuned caches."""

    name = "oscillating"
    schedule = "oscillating"


# Importing the adversarial module registers adv-fragment / adv-smc /
# adv-pwconflict.  Deliberately at the bottom: adversarial.py subclasses
# WorkloadEngine, so everything above must exist first.
from . import adversarial as _adversarial  # noqa: E402,F401  (registration)
