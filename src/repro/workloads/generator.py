"""Synthetic workload generation: CFG construction and trace walking.

The generator builds a static program image (functions made of basic blocks
with realistic x86 instruction shapes) and then *walks* it to produce a
dynamic trace.  Branch behaviour is attached per static branch at build time:

- **loop branches** run a fixed trip count (taken ``trip-1`` times, then fall
  through, then reset) — highly predictable, like compiled loops;
- **biased branches** are Bernoulli with probability near 0 or 1 — mostly
  predictable;
- **hard branches** are Bernoulli with mid-range probability — these set the
  achievable branch MPKI of the workload, as in real data-dependent code;
- **indirect branches** choose among several targets (switch dispatch).

The dynamic walker additionally models a top-level driver loop: when the call
stack empties, it "calls" the next function chosen from a Zipf distribution
whose hot set rotates every ``phase_length`` instructions, producing the
phased instruction-footprint behaviour that stresses uop-cache capacity.
"""

from __future__ import annotations

import dataclasses
import random
import zlib
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..common.errors import WorkloadError
from ..common.hashing import derive_stream_seed
from ..isa.builder import INTEGER_MIX, InstructionBuilder, InstructionMix
from ..isa.instruction import BranchKind, X86Instruction
from .program import BasicBlock, Function, Program
from .trace import DynamicInst, Trace


@dataclass(frozen=True)
class WorkloadProfile:
    """Everything that defines a synthetic workload (one per Table II row)."""

    name: str
    num_functions: int = 64
    blocks_per_function: Tuple[int, int] = (4, 12)
    insts_per_block: Tuple[int, int] = (3, 12)
    mix: InstructionMix = INTEGER_MIX
    # Terminator kind fractions among non-final blocks (remainder: fallthrough
    # or forward-conditional, split evenly).
    loop_fraction: float = 0.18
    call_fraction: float = 0.10
    uncond_fraction: float = 0.08
    indirect_fraction: float = 0.02
    #: Fraction of call sites that are indirect (virtual dispatch): the callee
    #: is chosen dynamically among several functions, which is what spreads a
    #: workload's dynamic code footprint.
    indirect_call_fraction: float = 0.35
    indirect_call_targets: Tuple[int, int] = (2, 6)
    # Conditional branch predictability.
    hard_branch_fraction: float = 0.10
    easy_taken_bias: float = 0.5       # P(an easy branch is mostly-taken)
    loop_trip_counts: Tuple[int, ...] = (2, 3, 4, 8, 16, 50)
    # Dynamic behaviour.
    hot_function_zipf: float = 1.2
    #: Probability that the top-level driver picks a uniformly random function
    #: instead of a Zipf-hot one (tail exploration; widens the footprint).
    driver_uniform_fraction: float = 0.2
    phase_length: int = 0              # 0 = no phase rotation
    max_call_depth: int = 56
    #: Mean consecutive executions an indirect branch sticks to one target
    #: (virtual-dispatch monomorphism; 1 = fully random per execution).
    indirect_stickiness: int = 24
    code_base: int = 0x40_0000
    function_alignment: int = 16
    # Data-side behaviour.
    data_working_set_bytes: int = 1 << 20
    far_access_fraction: float = 0.004

    def __post_init__(self) -> None:
        if self.num_functions < 1:
            raise WorkloadError("need at least one function")
        lo, hi = self.blocks_per_function
        if not 1 <= lo <= hi:
            raise WorkloadError("invalid blocks_per_function range")
        lo, hi = self.insts_per_block
        if not (0 <= lo <= hi):
            raise WorkloadError("invalid insts_per_block range")
        for name in ("loop_fraction", "call_fraction", "uncond_fraction",
                     "indirect_fraction", "indirect_call_fraction",
                     "hard_branch_fraction", "easy_taken_bias",
                     "driver_uniform_fraction", "far_access_fraction"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise WorkloadError(f"{name} must be in [0,1], got {value!r}")
        fractions = (self.loop_fraction + self.call_fraction +
                     self.uncond_fraction + self.indirect_fraction)
        if fractions > 1.0 + 1e-9:
            raise WorkloadError("terminator fractions exceed 1.0")
        lo, hi = self.indirect_call_targets
        if not 1 <= lo <= hi:
            raise WorkloadError(
                f"invalid indirect_call_targets range ({lo}, {hi}): "
                "need 1 <= lo <= hi")
        if self.phase_length < 0:
            raise WorkloadError(
                f"phase_length must be >= 0 (0 disables phases), "
                f"got {self.phase_length}")
        if not self.loop_trip_counts or \
                any(trip < 1 for trip in self.loop_trip_counts):
            raise WorkloadError(
                "loop_trip_counts needs at least one trip count >= 1")
        if self.indirect_stickiness < 1:
            raise WorkloadError("indirect_stickiness must be >= 1")
        if self.max_call_depth < 1:
            raise WorkloadError("max_call_depth must be >= 1")
        if self.hot_function_zipf < 0.0:
            raise WorkloadError("hot_function_zipf must be >= 0")
        if self.function_alignment < 1:
            raise WorkloadError("function_alignment must be >= 1")
        if self.data_working_set_bytes < 8:
            raise WorkloadError("data_working_set_bytes must be >= 8")


# --------------------------------------------------------------------------
# Branch behaviours (attached to static branch PCs, consumed by the walker).
# --------------------------------------------------------------------------

@dataclass
class LoopBehavior:
    trip_count: int


@dataclass
class BiasedBehavior:
    taken_probability: float


@dataclass
class IndirectBehavior:
    targets: Tuple[int, ...]
    weights: Tuple[float, ...]


Behavior = object  # union of the three above; kept duck-typed for speed


@dataclass
class Workload:
    """A generated program image plus its branch behaviours and profile."""

    profile: WorkloadProfile
    program: Program
    behaviors: Dict[int, Behavior]

    def trace(self, num_instructions: int, seed: int = 7) -> Trace:
        return TraceWalker(self, seed).walk(num_instructions)


# --------------------------------------------------------------------------
# CFG / program construction.
# --------------------------------------------------------------------------

class _TerminatorKind:
    FALLTHROUGH = "fallthrough"
    FORWARD_COND = "forward-cond"
    LOOP_COND = "loop-cond"
    UNCOND = "uncond"
    CALL = "call"
    INDIRECT = "indirect"
    RET = "ret"


@dataclass
class _BlockDraft:
    instructions: List[X86Instruction]
    term_kind: str
    term_template: Optional[X86Instruction]   # sampled shape at a placeholder addr
    term_address: int
    loop_target_index: int = -1


def _align_up(value: int, alignment: int) -> int:
    return (value + alignment - 1) // alignment * alignment


class WorkloadGenerator:
    """Builds a :class:`Workload` from a profile, deterministically per seed."""

    def __init__(self, profile: WorkloadProfile, seed: int = 1) -> None:
        self.profile = profile
        # zlib.crc32 (not hash()) so workloads are identical across processes:
        # Python string hashing is salted per interpreter run.
        name_hash = zlib.crc32(profile.name.encode())
        self._rng = random.Random((seed << 16) ^ name_hash)
        self._builder = InstructionBuilder(self._rng, profile.mix)

    def generate(self) -> Workload:
        profile = self.profile
        cursor = profile.code_base
        drafts: List[List[_BlockDraft]] = []

        for _ in range(profile.num_functions):
            cursor = _align_up(cursor, profile.function_alignment)
            function_drafts, cursor = self._draft_function(cursor)
            drafts.append(function_drafts)

        behaviors: Dict[int, Behavior] = {}
        functions: List[Function] = []
        entries = [fd[0].instructions[0].address if fd[0].instructions
                   else fd[0].term_address
                   for fd in drafts]

        for index, function_drafts in enumerate(drafts):
            blocks = self._materialize_function(
                index, function_drafts, entries, behaviors)
            functions.append(Function(name=f"fn{index}", blocks=blocks))

        cursor = _align_up(cursor, profile.function_alignment)
        driver = self._build_driver(cursor, entries, behaviors)
        functions.append(driver)

        program = Program(functions, entry=driver.entry)
        return Workload(profile=profile, program=program, behaviors=behaviors)

    def _build_driver(self, cursor: int, entries: Sequence[int],
                      behaviors: Dict[int, Behavior]) -> Function:
        """Synthesize the top-level driver: an endless dispatch loop of sticky
        indirect calls whose target distribution mixes Zipf-hot functions with
        a uniform tail (``driver_uniform_fraction``).

        A real dispatcher keeps the call stack non-empty, so returns stay
        RAS-predictable — unlike a model that 'teleports' between functions.
        """
        profile, rng = self.profile, self._rng
        n = len(entries)
        ranking = list(range(n))
        rng.shuffle(ranking)
        zipf = [(rank + 1) ** -profile.hot_function_zipf
                for rank in range(n)]
        total = sum(zipf)
        u = profile.driver_uniform_fraction
        weights = [0.0] * n
        for rank, func_index in enumerate(ranking):
            weights[func_index] = (1.0 - u) * zipf[rank] / total + u / n
        targets = tuple(entries)

        driver_entry = cursor
        num_call_blocks = min(8, max(2, n // 32))
        blocks: List[BasicBlock] = []
        for block_index in range(num_call_blocks + 1):
            instructions: List[X86Instruction] = []
            for _ in range(2):
                inst = self._builder.straightline(cursor)
                instructions.append(inst)
                cursor = inst.end_address
            if block_index < num_call_blocks:
                call = self._builder.indirect_call(cursor)
                behaviors[cursor] = IndirectBehavior(
                    targets=targets, weights=tuple(weights))
                cursor = call.end_address
                instructions.append(call)
            else:
                jump = self._builder.unconditional_jump(cursor, driver_entry)
                cursor = jump.end_address
                instructions.append(jump)
            blocks.append(BasicBlock(instructions=instructions))
        return Function(name="driver", blocks=blocks)

    # -- pass 1: layout ----------------------------------------------------

    def _draft_function(self, cursor: int) -> Tuple[List[_BlockDraft], int]:
        profile, rng = self.profile, self._rng
        num_blocks = rng.randint(*profile.blocks_per_function)
        function_drafts: List[_BlockDraft] = []

        for block_index in range(num_blocks):
            num_insts = rng.randint(*profile.insts_per_block)
            instructions: List[X86Instruction] = []
            for _ in range(num_insts):
                inst = self._builder.straightline(cursor)
                instructions.append(inst)
                cursor = inst.end_address

            term_kind = self._choose_terminator(block_index, num_blocks)
            template = self._terminator_template(term_kind, cursor)
            draft = _BlockDraft(
                instructions=instructions,
                term_kind=term_kind,
                term_template=template,
                term_address=cursor,
            )
            if term_kind == _TerminatorKind.LOOP_COND:
                draft.loop_target_index = max(
                    0, block_index - rng.randint(1, 3))
            if template is not None:
                cursor += template.length
            function_drafts.append(draft)

        return function_drafts, cursor

    def _choose_terminator(self, block_index: int, num_blocks: int) -> str:
        profile, rng = self.profile, self._rng
        if block_index == num_blocks - 1:
            return _TerminatorKind.RET
        roll = rng.random()
        if roll < profile.loop_fraction and block_index > 0:
            return _TerminatorKind.LOOP_COND
        roll -= profile.loop_fraction
        if roll < profile.call_fraction:
            return _TerminatorKind.CALL
        roll -= profile.call_fraction
        if roll < profile.uncond_fraction and block_index + 2 < num_blocks:
            return _TerminatorKind.UNCOND
        roll -= profile.uncond_fraction
        if roll < profile.indirect_fraction and block_index + 2 < num_blocks:
            return _TerminatorKind.INDIRECT
        # Remainder: half plain fallthrough, half forward conditional.
        if rng.random() < 0.45:
            return _TerminatorKind.FALLTHROUGH
        return _TerminatorKind.FORWARD_COND

    def _terminator_template(self, kind: str,
                             address: int) -> Optional[X86Instruction]:
        builder = self._builder
        if kind == _TerminatorKind.FALLTHROUGH:
            return None
        if kind in (_TerminatorKind.FORWARD_COND, _TerminatorKind.LOOP_COND):
            return builder.conditional_branch(address, address)  # target patched
        if kind == _TerminatorKind.UNCOND:
            return builder.unconditional_jump(address, address)
        if kind == _TerminatorKind.CALL:
            return builder.call(address, address)
        if kind == _TerminatorKind.INDIRECT:
            return builder.indirect_jump(address)
        if kind == _TerminatorKind.RET:
            return builder.ret(address)
        raise WorkloadError(f"unknown terminator kind {kind!r}")

    # -- pass 2: materialize terminators with real targets ------------------

    def _materialize_function(self, func_index: int,
                              function_drafts: List[_BlockDraft],
                              entries: Sequence[int],
                              behaviors: Dict[int, Behavior]) -> List[BasicBlock]:
        profile, rng = self.profile, self._rng
        block_starts = [
            (fd.instructions[0].address if fd.instructions else fd.term_address)
            for fd in function_drafts]
        num_blocks = len(function_drafts)
        blocks: List[BasicBlock] = []

        for block_index, draft in enumerate(function_drafts):
            instructions = list(draft.instructions)
            template = draft.term_template
            if template is not None:
                terminator = self._patch_terminator(
                    func_index, block_index, num_blocks, draft, template,
                    block_starts, entries, behaviors)
                instructions.append(terminator)
            if not instructions:
                raise WorkloadError("generated an empty basic block")
            blocks.append(BasicBlock(instructions=instructions))
        return blocks

    def _patch_terminator(self, func_index: int, block_index: int,
                          num_blocks: int, draft: _BlockDraft,
                          template: X86Instruction,
                          block_starts: Sequence[int],
                          entries: Sequence[int],
                          behaviors: Dict[int, Behavior]) -> X86Instruction:
        profile, rng = self.profile, self._rng
        kind = draft.term_kind
        pc = draft.term_address

        if kind == _TerminatorKind.RET:
            return dataclasses.replace(template, address=pc)

        if kind == _TerminatorKind.LOOP_COND:
            target = block_starts[draft.loop_target_index]
            behaviors[pc] = LoopBehavior(
                trip_count=rng.choice(profile.loop_trip_counts))
            return dataclasses.replace(template, address=pc, branch_target=target)

        if kind == _TerminatorKind.FORWARD_COND:
            target_index = rng.randint(block_index + 1, num_blocks - 1)
            target = block_starts[target_index]
            if rng.random() < profile.hard_branch_fraction:
                behaviors[pc] = BiasedBehavior(rng.uniform(0.30, 0.70))
            else:
                mostly_taken = rng.random() < profile.easy_taken_bias
                p = rng.uniform(0.95, 0.995) if mostly_taken \
                    else rng.uniform(0.005, 0.05)
                behaviors[pc] = BiasedBehavior(p)
            return dataclasses.replace(template, address=pc, branch_target=target)

        if kind == _TerminatorKind.UNCOND:
            target_index = rng.randint(block_index + 1, num_blocks - 1)
            return dataclasses.replace(
                template, address=pc, branch_target=block_starts[target_index])

        if kind == _TerminatorKind.CALL:
            candidates = [e for i, e in enumerate(entries) if i != func_index]
            if not candidates:
                return dataclasses.replace(
                    template, address=pc, branch_target=entries[func_index])
            if rng.random() < profile.indirect_call_fraction and \
                    len(candidates) >= 2:
                lo, hi = profile.indirect_call_targets
                count = min(rng.randint(lo, hi), len(candidates))
                targets = tuple(rng.sample(candidates, count))
                raw = [rng.random() + 0.1 for _ in targets]
                total = sum(raw)
                behaviors[pc] = IndirectBehavior(
                    targets=targets, weights=tuple(w / total for w in raw))
                return dataclasses.replace(
                    template, address=pc, branch_target=None,
                    branch_kind=BranchKind.INDIRECT_CALL)
            target = rng.choice(candidates)
            return dataclasses.replace(template, address=pc, branch_target=target)

        if kind == _TerminatorKind.INDIRECT:
            lo = block_index + 1
            count = min(rng.randint(2, 4), num_blocks - lo)
            target_indices = rng.sample(range(lo, num_blocks), count)
            targets = tuple(block_starts[i] for i in target_indices)
            raw = [rng.random() + 0.1 for _ in targets]
            total = sum(raw)
            behaviors[pc] = IndirectBehavior(
                targets=targets, weights=tuple(w / total for w in raw))
            return dataclasses.replace(template, address=pc, branch_target=None)

        raise WorkloadError(f"unknown terminator kind {kind!r}")


# --------------------------------------------------------------------------
# Dynamic trace walking.
# --------------------------------------------------------------------------

class TraceWalker:
    """Walks a workload's CFG, resolving branch behaviours into a trace.

    Subclassable: workload engines (see :mod:`repro.workloads.engine`)
    override :meth:`_pick_function_entry`, :meth:`_sticky_indirect_target`
    or :meth:`_memory_address` to impose phase schedules or adversarial
    behaviour on an existing program image.  ``self._index`` holds the
    number of records emitted so far and is updated before every
    resolution step, so overrides can key schedules off trace position.
    """

    def __init__(self, workload: Workload, seed: int) -> None:
        self.workload = workload
        # SplitMix64 derivation (common.hashing): bijective in the seed and
        # salted by the workload name, so seed=0 does not collapse to RNG
        # seed 0 and co-run workloads never share a walk stream.
        self._rng = random.Random(
            derive_stream_seed(seed, workload.profile.name))
        profile = workload.profile
        ranks = range(1, profile.num_functions + 1)
        weights = [rank ** -profile.hot_function_zipf for rank in ranks]
        total = sum(weights)
        self._zipf_weights = [w / total for w in weights]
        self._loop_counters: Dict[int, int] = {}
        # Per-branch sticky indirect target: pc -> [target, remaining_uses].
        self._sticky_targets: Dict[int, List[int]] = {}
        self._stack_base = 0x7FFF_0000_0000
        self._heap_base = 0x10_0000_0000
        self._heap_counter = 0
        self._index = 0

    def walk(self, num_instructions: int) -> Trace:
        if num_instructions < 1:
            raise WorkloadError("trace length must be >= 1")
        workload = self.workload
        program = workload.program
        profile = workload.profile
        behaviors = workload.behaviors

        records: List[DynamicInst] = []
        call_stack: List[int] = []
        phase = 0
        pc = program.entry

        while len(records) < num_instructions:
            self._index = len(records)
            if profile.phase_length:
                phase = len(records) // profile.phase_length
            inst = program.at(pc)
            mem_addr = self._memory_address(inst, len(call_stack))
            next_pc = self._next_pc(inst, call_stack, phase, behaviors)
            records.append(DynamicInst(pc=pc, next_pc=next_pc, mem_addr=mem_addr))
            pc = next_pc

        return Trace(program, records, name=profile.name)

    def _pick_function_entry(self, phase: int) -> int:
        functions = self.workload.program.functions
        profile = self.workload.profile
        if self._rng.random() < profile.driver_uniform_fraction:
            index = self._rng.randrange(len(functions))
        else:
            index = self._rng.choices(
                range(len(functions)), weights=self._zipf_weights, k=1)[0]
        if profile.phase_length:
            index = (index + phase * 7) % len(functions)
        return functions[index].entry

    def _next_pc(self, inst: X86Instruction, call_stack: List[int],
                 phase: int, behaviors: Dict[int, Behavior]) -> int:
        rng = self._rng
        kind = inst.branch_kind

        if kind is BranchKind.NONE:
            return inst.end_address

        if kind is BranchKind.CONDITIONAL:
            behavior = behaviors.get(inst.address)
            if isinstance(behavior, LoopBehavior):
                count = self._loop_counters.get(inst.address, 0) + 1
                if count >= behavior.trip_count:
                    self._loop_counters[inst.address] = 0
                    return inst.end_address
                self._loop_counters[inst.address] = count
                return inst.branch_target  # type: ignore[return-value]
            if isinstance(behavior, BiasedBehavior):
                if rng.random() < behavior.taken_probability:
                    return inst.branch_target  # type: ignore[return-value]
                return inst.end_address
            # A conditional with no registered behaviour: treat as not-taken.
            return inst.end_address

        if kind is BranchKind.UNCONDITIONAL:
            return inst.branch_target  # type: ignore[return-value]

        if kind is BranchKind.CALL:
            if len(call_stack) < self.workload.profile.max_call_depth:
                call_stack.append(inst.end_address)
            return inst.branch_target  # type: ignore[return-value]

        if kind is BranchKind.INDIRECT_CALL:
            if len(call_stack) < self.workload.profile.max_call_depth:
                call_stack.append(inst.end_address)
            behavior = behaviors.get(inst.address)
            if isinstance(behavior, IndirectBehavior):
                return self._sticky_indirect_target(inst.address, behavior)
            return inst.end_address

        if kind is BranchKind.RET:
            if call_stack:
                return call_stack.pop()
            return self._pick_function_entry(phase)

        if kind is BranchKind.INDIRECT:
            behavior = behaviors.get(inst.address)
            if isinstance(behavior, IndirectBehavior):
                return self._sticky_indirect_target(inst.address, behavior)
            return inst.end_address

        raise WorkloadError(f"unhandled branch kind {kind}")

    def _sticky_indirect_target(self, pc: int,
                                behavior: IndirectBehavior) -> int:
        """Pick an indirect target with phase stickiness (monomorphic runs)."""
        sticky = self._sticky_targets.get(pc)
        if sticky is not None and sticky[1] > 0:
            sticky[1] -= 1
            return sticky[0]
        rng = self._rng
        target = rng.choices(behavior.targets, weights=behavior.weights, k=1)[0]
        mean = max(1, self.workload.profile.indirect_stickiness)
        # Geometric run length with the configured mean.
        remaining = 1
        while rng.random() < 1.0 - 1.0 / mean:
            remaining += 1
        self._sticky_targets[pc] = [target, remaining - 1]
        return target

    def _memory_address(self, inst: X86Instruction, depth: int) -> Optional[int]:
        if not (inst.reads_memory or inst.writes_memory):
            return None
        rng = self._rng
        profile = self.workload.profile
        roll = rng.random()
        far = profile.far_access_fraction
        if roll < 0.45:
            # Stack access near the current frame.
            return self._stack_base - depth * 256 + rng.randrange(0, 256, 8)
        if roll < 1.0 - far:
            # Streaming heap access within the working set (8-byte stride, so
            # consecutive accesses mostly reuse the same cache line and the
            # stream prefetcher covers line transitions).
            self._heap_counter += 1
            offset = (self._heap_counter * 8) % profile.data_working_set_bytes
            return self._heap_base + offset
        if roll < 1.0 - far / 20.0:
            # Far access into an L2/L3-resident region (pointer chasing).
            return self._heap_base + (1 << 31) + rng.randrange(0, 1 << 18, 64)
        # Cold access: misses all the way to DRAM (rare).
        return self._heap_base + (1 << 32) + rng.randrange(0, 1 << 28, 64)


#: Backwards-compatible alias (the walker predates the engine registry).
_TraceWalker = TraceWalker


def generate_workload(profile: WorkloadProfile, seed: int = 1) -> Workload:
    """Convenience wrapper: build the program image for ``profile``."""
    return WorkloadGenerator(profile, seed=seed).generate()
