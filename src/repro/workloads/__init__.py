"""Workloads: program images, CFG generation, engines, dynamic traces."""

from .engine import (
    SyntheticMarkovEngine,
    TraceReplayEngine,
    WorkloadEngine,
    create_engine,
    engine_names,
)
from .generator import (
    BiasedBehavior,
    IndirectBehavior,
    LoopBehavior,
    Workload,
    WorkloadGenerator,
    WorkloadProfile,
    generate_workload,
)
from .program import BasicBlock, Function, Program
from .serialization import load_trace, load_workload, save_trace, save_workload
from .suite import (
    PAPER_BRANCH_MPKI,
    SUITE_GROUPS,
    WORKLOAD_NAMES,
    WORKLOAD_PROFILES,
    clear_workload_cache,
    get_profile,
    get_workload,
)
from .trace import DynamicInst, Trace, TraceBranchStats
from .tracefile import pack_trace, trace_info, unpack_trace

__all__ = [
    "BasicBlock",
    "BiasedBehavior",
    "DynamicInst",
    "Function",
    "IndirectBehavior",
    "LoopBehavior",
    "PAPER_BRANCH_MPKI",
    "Program",
    "SUITE_GROUPS",
    "SyntheticMarkovEngine",
    "Trace",
    "TraceBranchStats",
    "TraceReplayEngine",
    "WORKLOAD_NAMES",
    "WORKLOAD_PROFILES",
    "Workload",
    "WorkloadEngine",
    "WorkloadGenerator",
    "WorkloadProfile",
    "clear_workload_cache",
    "create_engine",
    "engine_names",
    "generate_workload",
    "get_profile",
    "get_workload",
    "load_trace",
    "load_workload",
    "pack_trace",
    "save_trace",
    "save_workload",
    "trace_info",
    "unpack_trace",
]
