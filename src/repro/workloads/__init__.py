"""Synthetic workloads: program images, CFG generation, dynamic traces."""

from .generator import (
    BiasedBehavior,
    IndirectBehavior,
    LoopBehavior,
    Workload,
    WorkloadGenerator,
    WorkloadProfile,
    generate_workload,
)
from .program import BasicBlock, Function, Program
from .serialization import load_trace, load_workload, save_trace, save_workload
from .suite import (
    PAPER_BRANCH_MPKI,
    SUITE_GROUPS,
    WORKLOAD_NAMES,
    WORKLOAD_PROFILES,
    clear_workload_cache,
    get_profile,
    get_workload,
)
from .trace import DynamicInst, Trace, TraceBranchStats

__all__ = [
    "BasicBlock",
    "BiasedBehavior",
    "DynamicInst",
    "Function",
    "IndirectBehavior",
    "LoopBehavior",
    "PAPER_BRANCH_MPKI",
    "Program",
    "SUITE_GROUPS",
    "Trace",
    "TraceBranchStats",
    "WORKLOAD_NAMES",
    "WORKLOAD_PROFILES",
    "Workload",
    "WorkloadGenerator",
    "WorkloadProfile",
    "clear_workload_cache",
    "generate_workload",
    "get_profile",
    "get_workload",
    "load_trace",
    "load_workload",
    "save_trace",
    "save_workload",
]
