"""Out-of-order back-end timing model.

The paper's observations are front-end effects, so the back-end only has to
(1) create realistic back-pressure (ROB / uop-queue occupancy, dispatch and
retire width limits), and (2) time branch *resolution*, which sets the
misprediction redirect point.  We model this with a program-order forward
pass: for every uop the model computes

- ``enqueue``  — when the uop can enter the uop queue (front-end arrival,
  delayed if the 120-entry queue is full);
- ``dispatch`` — bounded by dispatch width (6/cycle), ROB space (256), and
  program order;
- ``complete`` — dispatch + execution latency (+ data-cache latency for
  loads, from the shared memory hierarchy);
- ``retire``   — in order, bounded by retire width (8/cycle).

This avoids a per-cycle event loop (too slow in Python for multi-hundred-
thousand-instruction traces) while preserving exactly the quantities the
paper measures: uops-per-cycle, dispatch bandwidth, and the fetch-to-resolve
distance of mispredicted branches.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

from ..caches.hierarchy import MemoryHierarchy
from ..common.config import CoreConfig
from ..isa.uop import Uop, UopKind


@dataclass(frozen=True)
class UopTiming:
    """Cycle timestamps of one uop's flow through the back-end."""

    enqueue: int
    dispatch: int
    complete: int
    retire: int


class _WidthLimiter:
    """Tracks per-cycle slot usage for a width-limited in-order stage."""

    __slots__ = ("width", "cycle", "used", "busy_cycles")

    def __init__(self, width: int) -> None:
        self.width = width
        self.cycle = -1
        self.used = 0
        self.busy_cycles = 0

    def place(self, earliest: int) -> int:
        """Assign the next in-order slot at or after ``earliest``."""
        if earliest > self.cycle:
            self.cycle = earliest
            self.used = 1
            self.busy_cycles += 1
            return self.cycle
        # earliest <= current cycle: stage is busy at self.cycle
        if self.used < self.width:
            self.used += 1
            return self.cycle
        self.cycle += 1
        self.used = 1
        self.busy_cycles += 1
        return self.cycle


class OutOfOrderBackend:
    """Forward-pass OoO timing model with ROB/queue occupancy windows."""

    def __init__(self, config: Optional[CoreConfig] = None,
                 hierarchy: Optional[MemoryHierarchy] = None) -> None:
        self.config = config or CoreConfig()
        self.hierarchy = hierarchy
        cfg = self.config
        self._dispatch = _WidthLimiter(cfg.dispatch_width)
        self._retire = _WidthLimiter(cfg.retire_width)
        # Ring buffers of past timestamps for occupancy constraints.
        self._dispatch_ring: Deque[int] = deque(maxlen=cfg.uop_queue_entries)
        self._retire_ring: Deque[int] = deque(maxlen=cfg.rob_entries)
        self._last_retire = 0
        self.uops_retired = 0
        self.last_cycle = 0

    def admit(self, uop: Uop, arrival: int,
              mem_addr: Optional[int] = None) -> UopTiming:
        """Admit the next program-order uop arriving from the front-end at
        ``arrival``; returns its computed timing."""
        cfg = self.config

        # Uop queue back-pressure: entry (i - queue_size) must have dispatched.
        enqueue = arrival
        if len(self._dispatch_ring) == cfg.uop_queue_entries:
            enqueue = max(enqueue, self._dispatch_ring[0])

        # ROB occupancy: entry (i - rob_size) must have retired.
        earliest_dispatch = enqueue + 1      # one cycle in the queue minimum
        if len(self._retire_ring) == cfg.rob_entries:
            earliest_dispatch = max(earliest_dispatch, self._retire_ring[0])

        dispatch = self._dispatch.place(earliest_dispatch)
        self._dispatch_ring.append(dispatch)

        latency = uop.exec_latency
        if uop.kind is UopKind.LOAD and mem_addr is not None and \
                self.hierarchy is not None:
            latency = self.hierarchy.access_data(mem_addr)
        complete = dispatch + latency

        retire = self._retire.place(max(complete + 1, self._last_retire))
        self._last_retire = retire
        self._retire_ring.append(retire)

        self.uops_retired += 1
        self.last_cycle = max(self.last_cycle, retire)
        return UopTiming(enqueue=enqueue, dispatch=dispatch,
                         complete=complete, retire=retire)

    @property
    def busy_dispatch_cycles(self) -> int:
        """Number of distinct cycles in which at least one uop dispatched."""
        return self._dispatch.busy_cycles

    @property
    def queue_backpressure_cycle(self) -> int:
        """Earliest cycle the front-end may deliver the next uop (queue space)."""
        if len(self._dispatch_ring) == self.config.uop_queue_entries:
            return self._dispatch_ring[0]
        return 0
