"""Out-of-order back-end timing model.

The paper's observations are front-end effects, so the back-end only has to
(1) create realistic back-pressure (ROB / uop-queue occupancy, dispatch and
retire width limits), and (2) time branch *resolution*, which sets the
misprediction redirect point.  We model this with a program-order forward
pass: for every uop the model computes

- ``enqueue``  — when the uop can enter the uop queue (front-end arrival,
  delayed if the 120-entry queue is full);
- ``dispatch`` — bounded by dispatch width (6/cycle), ROB space (256), and
  program order;
- ``complete`` — dispatch + execution latency (+ data-cache latency for
  loads, from the shared memory hierarchy);
- ``retire``   — in order, bounded by retire width (8/cycle).

This avoids a per-cycle event loop (too slow in Python for multi-hundred-
thousand-instruction traces) while preserving exactly the quantities the
paper measures: uops-per-cycle, dispatch bandwidth, and the fetch-to-resolve
distance of mispredicted branches.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, Optional

from ..caches.hierarchy import MemoryHierarchy
from ..common.config import CoreConfig
from ..isa.uop import _EXEC_LATENCY, Uop, UopKind

#: Static latency applied to a LOAD whose record carries no data address
#: (mirrors ``admit()`` falling back to ``uop.exec_latency``).
_LOAD_STATIC_LATENCY = _EXEC_LATENCY[UopKind.LOAD]


@dataclass(frozen=True)
class UopTiming:
    """Cycle timestamps of one uop's flow through the back-end."""

    enqueue: int
    dispatch: int
    complete: int
    retire: int


class _WidthLimiter:
    """Tracks per-cycle slot usage for a width-limited in-order stage."""

    __slots__ = ("width", "cycle", "used", "busy_cycles")

    def __init__(self, width: int) -> None:
        self.width = width
        self.cycle = -1
        self.used = 0
        self.busy_cycles = 0

    def place(self, earliest: int) -> int:
        """Assign the next in-order slot at or after ``earliest``."""
        if earliest > self.cycle:
            self.cycle = earliest
            self.used = 1
            self.busy_cycles += 1
            return self.cycle
        # earliest <= current cycle: stage is busy at self.cycle
        if self.used < self.width:
            self.used += 1
            return self.cycle
        self.cycle += 1
        self.used = 1
        self.busy_cycles += 1
        return self.cycle


class OutOfOrderBackend:
    """Forward-pass OoO timing model with ROB/queue occupancy windows."""

    def __init__(self, config: Optional[CoreConfig] = None,
                 hierarchy: Optional[MemoryHierarchy] = None) -> None:
        self.config = config or CoreConfig()
        self.hierarchy = hierarchy
        cfg = self.config
        self._dispatch = _WidthLimiter(cfg.dispatch_width)
        self._retire = _WidthLimiter(cfg.retire_width)
        # Ring buffers of past timestamps for occupancy constraints.
        self._dispatch_ring: Deque[int] = deque(maxlen=cfg.uop_queue_entries)
        self._retire_ring: Deque[int] = deque(maxlen=cfg.rob_entries)
        # Sticky "ring at capacity" flags: the rings only ever grow, so once
        # full they stay full and admit_inst() can skip the len() probes.
        self._queue_full = False
        self._rob_full = False
        self._last_retire = 0
        self.uops_retired = 0
        self.last_cycle = 0

    def admit(self, uop: Uop, arrival: int,
              mem_addr: Optional[int] = None) -> UopTiming:
        """Admit the next program-order uop arriving from the front-end at
        ``arrival``; returns its computed timing."""
        cfg = self.config

        # Uop queue back-pressure: entry (i - queue_size) must have dispatched.
        enqueue = arrival
        if len(self._dispatch_ring) == cfg.uop_queue_entries:
            enqueue = max(enqueue, self._dispatch_ring[0])

        # ROB occupancy: entry (i - rob_size) must have retired.
        earliest_dispatch = enqueue + 1      # one cycle in the queue minimum
        if len(self._retire_ring) == cfg.rob_entries:
            earliest_dispatch = max(earliest_dispatch, self._retire_ring[0])

        dispatch = self._dispatch.place(earliest_dispatch)
        self._dispatch_ring.append(dispatch)

        latency = uop.exec_latency
        if uop.kind is UopKind.LOAD and mem_addr is not None and \
                self.hierarchy is not None:
            latency = self.hierarchy.access_data(mem_addr)
        complete = dispatch + latency

        retire = self._retire.place(max(complete + 1, self._last_retire))
        self._last_retire = retire
        self._retire_ring.append(retire)

        self.uops_retired += 1
        self.last_cycle = max(self.last_cycle, retire)
        return UopTiming(enqueue=enqueue, dispatch=dispatch,
                         complete=complete, retire=retire)

    def admit_inst(self, latencies: "tuple[int, ...]", arrival: int,
                   mem_addr: Optional[int] = None) -> int:
        """Admit one instruction's uops arriving together at ``arrival``.

        Bit-identical to calling :meth:`admit` once per uop, minus the
        per-uop :class:`UopTiming` allocations (the fast serve loop only
        needs the branch-resolution point).  ``latencies`` holds each uop's
        static execution latency with loads encoded as ``-1``; loads resolve
        through the data hierarchy under exactly the conditions admit()
        uses.  Returns the completion cycle of the instruction's last uop
        (``arrival`` when ``latencies`` is empty, matching the serve loops'
        ``timing is None`` fallback).
        """
        cfg = self.config
        queue_entries = cfg.uop_queue_entries
        rob_entries = cfg.rob_entries
        dispatch_ring = self._dispatch_ring
        retire_ring = self._retire_ring
        hierarchy = self.hierarchy
        last_retire = self._last_retire
        complete = arrival
        # Width-limiter state inlined for the duration of the call (nothing
        # else touches the limiters between uops; _WidthLimiter.place is the
        # single hottest call in the normal path).
        dlim = self._dispatch
        d_width = dlim.width
        d_cycle = dlim.cycle
        d_used = dlim.used
        d_busy = dlim.busy_cycles
        rlim = self._retire
        r_width = rlim.width
        r_cycle = rlim.cycle
        r_used = rlim.used
        r_busy = rlim.busy_cycles
        d_full = self._queue_full or len(dispatch_ring) == queue_entries
        r_full = self._rob_full or len(retire_ring) == rob_entries
        for latency in latencies:
            enqueue = arrival
            if d_full and dispatch_ring[0] > enqueue:
                enqueue = dispatch_ring[0]
            earliest_dispatch = enqueue + 1
            if r_full and retire_ring[0] > earliest_dispatch:
                earliest_dispatch = retire_ring[0]
            if earliest_dispatch > d_cycle:
                d_cycle = earliest_dispatch
                d_used = 1
                d_busy += 1
            elif d_used < d_width:
                d_used += 1
            else:
                d_cycle += 1
                d_used = 1
                d_busy += 1
            dispatch_ring.append(d_cycle)
            if not d_full:
                d_full = len(dispatch_ring) == queue_entries
            if latency < 0:
                latency = hierarchy.access_data_fast(mem_addr) \
                    if mem_addr is not None and hierarchy is not None \
                    else _LOAD_STATIC_LATENCY
            complete = d_cycle + latency
            earliest_retire = complete + 1
            if last_retire > earliest_retire:
                earliest_retire = last_retire
            if earliest_retire > r_cycle:
                r_cycle = earliest_retire
                r_used = 1
                r_busy += 1
                last_retire = r_cycle
            elif r_used < r_width:
                r_used += 1
                last_retire = r_cycle
            else:
                r_cycle += 1
                r_used = 1
                r_busy += 1
                last_retire = r_cycle
            retire_ring.append(last_retire)
            if not r_full:
                r_full = len(retire_ring) == rob_entries
        self._queue_full = d_full
        self._rob_full = r_full
        dlim.cycle = d_cycle
        dlim.used = d_used
        dlim.busy_cycles = d_busy
        rlim.cycle = r_cycle
        rlim.used = r_used
        rlim.busy_cycles = r_busy
        self._last_retire = last_retire
        self.uops_retired += len(latencies)
        if last_retire > self.last_cycle:
            self.last_cycle = last_retire
        return complete

    @property
    def busy_dispatch_cycles(self) -> int:
        """Number of distinct cycles in which at least one uop dispatched."""
        return self._dispatch.busy_cycles

    @property
    def queue_backpressure_cycle(self) -> int:
        """Earliest cycle the front-end may deliver the next uop (queue space)."""
        if len(self._dispatch_ring) == self.config.uop_queue_entries:
            return self._dispatch_ring[0]
        return 0
