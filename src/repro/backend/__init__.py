"""Simplified out-of-order back-end timing model."""

from .core import OutOfOrderBackend, UopTiming

__all__ = ["OutOfOrderBackend", "UopTiming"]
