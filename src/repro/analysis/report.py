"""Full-text report rendering for simulation results."""

from __future__ import annotations

from typing import List, Optional

from ..core.metrics import SimulationResult
from ..uopcache.cache import FillKind
from ..uopcache.entry import EntryTermination
from .figures import ENTRY_SIZE_BUCKETS


def render_result(result: SimulationResult,
                  baseline: Optional[SimulationResult] = None) -> str:
    """Render one simulation result (optionally vs a baseline) as text."""
    lines: List[str] = []
    lines.append(f"workload {result.workload} | config {result.config_label}")
    lines.append("-" * 60)

    def row(name: str, value: float, fmt: str = "{:.3f}",
            base_value: Optional[float] = None) -> None:
        text = f"  {name:<28s}{fmt.format(value):>12s}"
        if baseline is not None and base_value is not None and base_value:
            text += f"  ({100 * (value / base_value - 1):+.2f}% vs baseline)"
        lines.append(text)

    base = baseline
    lines.append("throughput")
    row("cycles", result.cycles, "{:.0f}",
        base.cycles if base else None)
    row("instructions", result.instructions, "{:.0f}")
    row("uops", result.uops, "{:.0f}")
    row("UPC", result.upc, "{:.3f}", base.upc if base else None)
    row("IPC", result.ipc, "{:.3f}", base.ipc if base else None)
    row("dispatch bandwidth", result.dispatch_bandwidth, "{:.3f}",
        base.dispatch_bandwidth if base else None)

    lines.append("uop supply")
    row("from uop cache", result.uops_from_uop_cache, "{:.0f}")
    row("from decoder", result.uops_from_decoder, "{:.0f}")
    if result.uops_from_loop_cache:
        row("from loop cache", result.uops_from_loop_cache, "{:.0f}")
    row("OC fetch ratio", result.oc_fetch_ratio, "{:.3f}",
        base.oc_fetch_ratio if base else None)
    row("OC hit rate", result.uop_cache_hit_rate, "{:.3f}")
    row("OC utilization", result.uop_cache_utilization, "{:.3f}")
    row("decoder power (a.u.)", result.decoder_power, "{:.4f}",
        base.decoder_power if base else None)

    lines.append("branches")
    row("branch MPKI", result.branch_mpki, "{:.2f}")
    row("avg mispredict latency", result.avg_mispredict_latency, "{:.1f}")
    row("decode resteers", result.decode_resteers, "{:.0f}")

    if result.entry_size_histogram and result.entry_size_histogram.total:
        lines.append("uop cache entries")
        hist = result.entry_size_histogram
        buckets = hist.bucketed(ENTRY_SIZE_BUCKETS)
        for name, fraction in buckets.items():
            row(f"size {name} bytes", fraction, "{:.1%}")
        total_terms = sum(result.entry_termination_counts.values())
        if total_terms:
            taken = result.entry_termination_counts.get(
                EntryTermination.TAKEN_BRANCH, 0)
            row("terminated by taken branch", taken / total_terms, "{:.1%}")
        if result.entries_spanning_lines_fraction:
            row("spanning I-cache lines",
                result.entries_spanning_lines_fraction, "{:.1%}")
        if result.compacted_fill_fraction:
            row("compacted fills", result.compacted_fill_fraction, "{:.1%}")
            kinds = result.fill_kind_counts
            compacted = sum(kinds.get(kind, 0) for kind in
                            (FillKind.RAC, FillKind.PWAC, FillKind.F_PWAC))
            if compacted:
                for kind in (FillKind.RAC, FillKind.PWAC, FillKind.F_PWAC):
                    row(f"  via {kind.value}",
                        kinds.get(kind, 0) / compacted, "{:.1%}")

    lines.append("memory")
    row("L1-I hit rate", result.l1i_hit_rate, "{:.3f}")
    row("L1-D hit rate", result.l1d_hit_rate, "{:.3f}")

    if result.telemetry_events:
        lines.append("telemetry (events emitted)")
        for kind in sorted(result.telemetry_events):
            row(kind, result.telemetry_events[kind], "{:.0f}")
    return "\n".join(lines)
