"""Plain-text (ASCII) chart rendering for figure data.

The paper's figures are bar/line charts; these helpers render the same data
as horizontal bar charts in a terminal, so `python -m repro` and the bench
outputs can *show* the shapes, not just list numbers.

- :func:`render_bar_chart`    — one bar per key (Figs. 6, 9, 18).
- :func:`render_grouped_bars` — per-row groups of bars, one per column
  (Figs. 3, 15-17: workloads x configs).
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence

DEFAULT_WIDTH = 48
_FULL = "█"
_PARTIAL = " ▏▎▍▌▋▊▉"


def _bar(value: float, scale_max: float, width: int) -> str:
    """A unicode bar of ``value / scale_max`` of ``width`` characters."""
    if scale_max <= 0:
        return ""
    fraction = max(0.0, min(1.0, value / scale_max))
    cells = fraction * width
    whole = int(cells)
    remainder = cells - whole
    eighths = int(remainder * 8)
    bar = _FULL * whole
    if eighths and whole < width:
        bar += _PARTIAL[eighths]
    return bar


def render_bar_chart(series: Mapping[str, float], title: str = "",
                     width: int = DEFAULT_WIDTH,
                     fmt: str = "{:.3f}",
                     scale_max: Optional[float] = None) -> str:
    """Render ``{label: value}`` as a horizontal bar chart."""
    if not series:
        return title
    lines: List[str] = []
    if title:
        lines.append(title)
    peak = scale_max if scale_max is not None else max(series.values())
    label_width = max(len(str(key)) for key in series)
    for key, value in series.items():
        bar = _bar(value, peak, width)
        lines.append(f"{str(key):<{label_width}s} |{bar:<{width}s}| "
                     f"{fmt.format(value)}")
    return "\n".join(lines)


def render_grouped_bars(table: Mapping[str, Mapping[str, float]],
                        title: str = "", width: int = DEFAULT_WIDTH,
                        fmt: str = "{:.3f}",
                        column_order: Optional[Sequence[str]] = None,
                        scale_max: Optional[float] = None) -> str:
    """Render ``{row: {column: value}}`` as grouped horizontal bars.

    Each row becomes a group with one bar per column, all sharing one scale
    so groups are visually comparable (the paper's grouped-bar figures)."""
    if not table:
        return title
    lines: List[str] = []
    if title:
        lines.append(title)
    columns = list(column_order) if column_order else \
        list(next(iter(table.values()), {}))
    all_values = [values[column]
                  for values in table.values()
                  for column in columns if column in values]
    peak = scale_max if scale_max is not None else \
        (max(all_values) if all_values else 1.0)
    column_width = max(len(str(column)) for column in columns)
    for row_name, values in table.items():
        lines.append(str(row_name))
        for column in columns:
            if column not in values:
                continue
            bar = _bar(values[column], peak, width)
            lines.append(f"  {str(column):<{column_width}s} |{bar:<{width}s}| "
                         f"{fmt.format(values[column])}")
    return "\n".join(lines)


def render_sparkline(values: Sequence[float], width: int = 0) -> str:
    """A one-line sparkline (e.g. fetch ratio across capacities)."""
    if not values:
        return ""
    blocks = "▁▂▃▄▅▆▇█"
    low = min(values)
    high = max(values)
    span = high - low
    if span <= 0:
        return blocks[3] * len(values)
    return "".join(
        blocks[min(7, int((value - low) / span * 7.999))] for value in values)
