"""Per-figure reproduction: compute each paper figure's series from sweeps.

Each ``figN_*`` function takes the relevant :class:`SweepResult` (or runs one)
and returns plain dictionaries shaped like the paper's plot: per-workload
series plus the suite average, ready to print or plot.  The benchmark harness
(`benchmarks/`) calls these and renders the rows the paper reports.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Tuple

from ..common.statistics import arithmetic_mean, geometric_mean
from ..core.experiment import SweepResult
from ..core.metrics import SimulationResult
from ..uopcache.cache import FillKind

#: Fig. 5's size buckets (bytes), inclusive.
ENTRY_SIZE_BUCKETS: Tuple[Tuple[int, int], ...] = ((1, 19), (20, 39), (40, 64))


def _metric_table(sweep: SweepResult, metric, reference_label: str,
                  as_percent_improvement: bool = False) -> Dict[str, Dict[str, float]]:
    if as_percent_improvement:
        return sweep.improvement_percent(metric, reference_label)
    return sweep.normalized(metric, reference_label)


def with_average(table: Mapping[str, Mapping[str, float]],
                 geometric: bool = False) -> Dict[str, Dict[str, float]]:
    """Append an 'average' pseudo-workload row (paper plots one)."""
    result = {workload: dict(values) for workload, values in table.items()}
    labels: List[str] = list(next(iter(table.values()), {}))
    average: Dict[str, float] = {}
    for label in labels:
        values = [table[w][label] for w in table]
        average[label] = geometric_mean(values) if geometric \
            else arithmetic_mean(values)
    result["average"] = average
    return result


# -- Fig. 3: normalized UPC + decoder power vs capacity -----------------------

def fig3_capacity_upc_and_power(sweep: SweepResult,
                                reference_label: str = "OC_2K") -> Dict[str, Dict]:
    upc = with_average(_metric_table(sweep, lambda r: r.upc, reference_label))
    power = with_average(_metric_table(
        sweep, lambda r: r.decoder_power, reference_label))
    return {"normalized_upc": upc, "normalized_decoder_power": power}


# -- Fig. 4: fetch ratio / dispatch bandwidth / mispredict latency vs capacity --

def fig4_capacity_frontend(sweep: SweepResult,
                           reference_label: str = "OC_2K") -> Dict[str, Dict]:
    fetch = with_average(_metric_table(
        sweep, lambda r: r.oc_fetch_ratio, reference_label))
    dispatch = with_average(_metric_table(
        sweep, lambda r: r.dispatch_bandwidth, reference_label))
    latency = with_average(_metric_table(
        sweep, lambda r: r.avg_mispredict_latency, reference_label))
    return {"normalized_oc_fetch_ratio": fetch,
            "normalized_dispatch_bandwidth": dispatch,
            "normalized_mispredict_latency": latency}


# -- Fig. 5: entry size distribution --------------------------------------------

def fig5_entry_size_distribution(
        results: Mapping[str, SimulationResult]) -> Dict[str, Dict[str, float]]:
    """Per-workload fraction of fills per size bucket (baseline config)."""
    table: Dict[str, Dict[str, float]] = {}
    for workload, result in results.items():
        hist = result.entry_size_histogram
        table[workload] = hist.bucketed(ENTRY_SIZE_BUCKETS) if hist else {}
    return with_average(table)


# -- Fig. 6: taken-branch terminations ------------------------------------------

def fig6_taken_branch_terminations(
        results: Mapping[str, SimulationResult]) -> Dict[str, float]:
    table = {workload: result.taken_branch_termination_fraction
             for workload, result in results.items()}
    table["average"] = arithmetic_mean(list(table.values()))
    return table


# -- Fig. 9: entries spanning I-cache lines under CLASP --------------------------

def fig9_spanning_entries(
        results: Mapping[str, SimulationResult]) -> Dict[str, float]:
    table = {workload: result.entries_spanning_lines_fraction
             for workload, result in results.items()}
    table["average"] = arithmetic_mean(list(table.values()))
    return table


# -- Fig. 12: uop cache entries per PW -------------------------------------------

def fig12_entries_per_pw(
        results: Mapping[str, SimulationResult],
        max_bucket: int = 3) -> Dict[str, Dict[int, float]]:
    table: Dict[str, Dict[int, float]] = {}
    for workload, result in results.items():
        hist = result.entries_per_pw_histogram
        if hist is None or hist.total == 0:
            table[workload] = {n: 0.0 for n in range(1, max_bucket + 1)}
            continue
        buckets = {n: hist.fraction_in(n, n) for n in range(1, max_bucket)}
        buckets[max_bucket] = hist.fraction_in(max_bucket, 10 ** 9)
        table[workload] = buckets
    average = {n: arithmetic_mean([table[w][n] for w in table])
               for n in range(1, max_bucket + 1)}
    result_table = dict(table)
    result_table["average"] = average
    return result_table


# -- Fig. 15: normalized decoder power per policy ----------------------------------

def fig15_decoder_power(sweep: SweepResult,
                        reference_label: str = "baseline") -> Dict[str, Dict[str, float]]:
    return with_average(_metric_table(
        sweep, lambda r: r.decoder_power, reference_label))


# -- Fig. 16 / 20 / 22: percent UPC improvement per policy ---------------------------

def fig16_upc_improvement(sweep: SweepResult,
                          reference_label: str = "baseline") -> Dict[str, Dict[str, float]]:
    table = sweep.improvement_percent(lambda r: r.upc, reference_label)
    # The paper reports the geometric mean of the UPC ratios.
    normalized = sweep.normalized(lambda r: r.upc, reference_label)
    labels = sweep.labels()
    gmean = {label: 100.0 * (geometric_mean(
        [normalized[w][label] for w in normalized]) - 1.0)
        for label in labels}
    result = {workload: dict(values) for workload, values in table.items()}
    result["g.mean"] = gmean
    return result


# -- Fig. 17 / 21: per-policy front-end metrics ---------------------------------------

def fig17_policy_frontend(sweep: SweepResult,
                          reference_label: str = "baseline") -> Dict[str, Dict]:
    fetch = with_average(_metric_table(
        sweep, lambda r: r.oc_fetch_ratio, reference_label))
    dispatch = with_average(_metric_table(
        sweep, lambda r: r.dispatch_bandwidth, reference_label))
    latency = with_average(_metric_table(
        sweep, lambda r: r.avg_mispredict_latency, reference_label))
    return {"normalized_oc_fetch_ratio": fetch,
            "normalized_dispatch_bandwidth": dispatch,
            "normalized_mispredict_latency": latency}


# -- Fig. 18: compacted lines ratio ------------------------------------------------------

def fig18_compacted_lines(
        results: Mapping[str, SimulationResult]) -> Dict[str, float]:
    """Fraction of fills compacted into an existing line without eviction."""
    table = {workload: result.compacted_fill_fraction
             for workload, result in results.items()}
    table["average"] = arithmetic_mean(list(table.values()))
    return table


# -- Fig. 19: compaction-kind distribution ------------------------------------------------

def fig19_compaction_kinds(
        results: Mapping[str, SimulationResult]) -> Dict[str, Dict[str, float]]:
    """Among compacted fills, the share performed by RAC / PWAC / F-PWAC."""
    table: Dict[str, Dict[str, float]] = {}
    for workload, result in results.items():
        counts = result.fill_kind_counts
        compacted = (counts.get(FillKind.RAC, 0) +
                     counts.get(FillKind.PWAC, 0) +
                     counts.get(FillKind.F_PWAC, 0))
        if compacted:
            table[workload] = {
                "rac": counts.get(FillKind.RAC, 0) / compacted,
                "pwac": counts.get(FillKind.PWAC, 0) / compacted,
                "f-pwac": counts.get(FillKind.F_PWAC, 0) / compacted,
            }
        else:
            table[workload] = {"rac": 0.0, "pwac": 0.0, "f-pwac": 0.0}
    return with_average(table)
