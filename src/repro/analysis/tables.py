"""Text rendering of tables and figure series (terminal-friendly reports)."""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from ..common.config import SimulatorConfig
from ..workloads.suite import PAPER_BRANCH_MPKI, SUITE_GROUPS


def render_table(rows: Mapping[str, Mapping[str, float]],
                 title: str = "", fmt: str = "{:.3f}",
                 column_order: Optional[Sequence[str]] = None) -> str:
    """Render ``{row: {column: value}}`` as an aligned text table."""
    lines: List[str] = []
    if title:
        lines.append(title)
    columns = list(column_order) if column_order else \
        list(next(iter(rows.values()), {}))
    name_width = max([len(str(r)) for r in rows] + [8])
    header = " " * (name_width + 2) + "  ".join(
        f"{str(c):>10s}" for c in columns)
    lines.append(header)
    for row_name, values in rows.items():
        cells = "  ".join(
            f"{fmt.format(values[c]):>10s}" if c in values else " " * 10
            for c in columns)
        lines.append(f"{str(row_name):<{name_width}s}  {cells}")
    return "\n".join(lines)


def render_series(series: Mapping[str, float], title: str = "",
                  fmt: str = "{:.3f}") -> str:
    lines: List[str] = []
    if title:
        lines.append(title)
    width = max(len(str(k)) for k in series)
    for key, value in series.items():
        lines.append(f"{str(key):<{width}s}  {fmt.format(value)}")
    return "\n".join(lines)


def render_table1(config: Optional[SimulatorConfig] = None) -> str:
    """Render the simulated processor configuration (paper Table I)."""
    cfg = config or SimulatorConfig()
    oc = cfg.uop_cache
    rows = [
        ("Frequency", f"{cfg.core.frequency_ghz:g} GHz, x86 CISC-based ISA"),
        ("Dispatch width", f"{cfg.core.dispatch_width} per cycle"),
        ("Retire width", f"{cfg.core.retire_width} per cycle"),
        ("Issue queue", f"{cfg.core.issue_queue_entries} entries"),
        ("ROB", f"{cfg.core.rob_entries} entries"),
        ("Uop queue", f"{cfg.core.uop_queue_entries} uops"),
        ("Decoder", f"{cfg.decoder.latency_cycles}-cycle latency, "
                    f"{cfg.decoder.bandwidth_insts_per_cycle} insts/cycle"),
        ("Uop cache", f"{oc.num_sets} sets x {oc.associativity} ways, "
                      f"{oc.line_bytes}B lines, true LRU, "
                      f"{oc.bandwidth_uops_per_cycle} uops/cycle"),
        ("Uop size", f"{oc.uop_bits} bits"),
        ("Uop cache entry", f"max {oc.max_uops_per_entry} uops, "
                            f"{oc.max_imm_disp_per_entry} imm/disp, "
                            f"{oc.max_ucoded_per_entry} u-coded"),
        ("CLASP", "on" if oc.clasp else "off"),
        ("Compaction", oc.compaction.value +
         (f", max {oc.max_entries_per_line}/line"
          if oc.compaction.value != "none" else "")),
        ("Branch predictor", f"TAGE ({cfg.branch.num_tagged_tables} tagged "
                             f"tables, {cfg.branch.min_history}.."
                             f"{cfg.branch.max_history} history)"),
        ("BTB", f"{cfg.branch.btb_entries} entries, "
                f"{cfg.branch.btb_branches_per_entry} branches/entry, "
                f"{cfg.branch.btb_levels} levels"),
        ("L1-I", _cache_row(cfg.memory.l1i) + ", bp-directed prefetch"),
        ("L1-D", _cache_row(cfg.memory.l1d)),
        ("L2", _cache_row(cfg.memory.l2)),
        ("L3", _cache_row(cfg.memory.l3)),
        ("DRAM", f"{cfg.memory.dram_latency_cycles}-cycle latency"),
    ]
    width = max(len(name) for name, _ in rows)
    return "\n".join(f"{name:<{width}s}  {value}" for name, value in rows)


def _cache_row(level) -> str:
    size = level.size_bytes
    human = f"{size // 1024}KB" if size < 1024 * 1024 else \
        f"{size // (1024 * 1024)}MB"
    return (f"{human}, {level.associativity}-way, {level.line_bytes}B lines, "
            f"{level.replacement.value}, {level.hit_latency_cycles}-cycle hit")


def render_table2(measured_mpki: Optional[Mapping[str, float]] = None) -> str:
    """Render the workload suite (paper Table II), optionally with measured
    branch MPKI next to the paper's values."""
    lines = [f"{'suite':<10s}{'workload':<14s}{'paper MPKI':>11s}" +
             (f"{'measured':>11s}" if measured_mpki else "")]
    for suite, names in SUITE_GROUPS.items():
        for name in names:
            row = f"{suite:<10s}{name:<14s}{PAPER_BRANCH_MPKI[name]:>11.2f}"
            if measured_mpki:
                row += f"{measured_mpki.get(name, float('nan')):>11.2f}"
            lines.append(row)
    return "\n".join(lines)
