"""Figure/table reproduction helpers."""

from .charts import render_bar_chart, render_grouped_bars, render_sparkline
from .figures import (
    ENTRY_SIZE_BUCKETS,
    fig3_capacity_upc_and_power,
    fig4_capacity_frontend,
    fig5_entry_size_distribution,
    fig6_taken_branch_terminations,
    fig9_spanning_entries,
    fig12_entries_per_pw,
    fig15_decoder_power,
    fig16_upc_improvement,
    fig17_policy_frontend,
    fig18_compacted_lines,
    fig19_compaction_kinds,
    with_average,
)
from .report import render_result
from .tables import render_series, render_table, render_table1, render_table2

__all__ = [
    "ENTRY_SIZE_BUCKETS",
    "fig3_capacity_upc_and_power",
    "fig4_capacity_frontend",
    "fig5_entry_size_distribution",
    "fig6_taken_branch_terminations",
    "fig9_spanning_entries",
    "fig12_entries_per_pw",
    "fig15_decoder_power",
    "fig16_upc_improvement",
    "fig17_policy_frontend",
    "fig18_compacted_lines",
    "fig19_compaction_kinds",
    "render_bar_chart",
    "render_grouped_bars",
    "render_result",
    "render_series",
    "render_sparkline",
    "render_table",
    "render_table1",
    "render_table2",
    "with_average",
]
