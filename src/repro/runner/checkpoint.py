"""Crash-safe checkpoint journal for sweep runs.

Every completed job is journaled as one JSON line keyed by its
:attr:`~repro.runner.job.SweepJob.job_id`.  Durability model: the journal is
rewritten through a temporary file and atomically renamed over the previous
version on every record, so at any kill point the on-disk file is a complete,
parseable journal — either with or without the latest result, never a torn
line.  (Sweeps are hundreds of jobs, each seconds to minutes of simulation,
so the O(journal) rewrite is noise next to one job.)

A journal written by an incompatible format version is rejected with
:class:`~repro.common.errors.CheckpointError` rather than silently resumed.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Dict, Union

from ..common.errors import CheckpointError
from ..core.metrics import SimulationResult

FORMAT_VERSION = 1

JOURNAL_NAME = "journal.jsonl"

PathLike = Union[str, Path]


class CheckpointJournal:
    """Append-only (logically) journal of completed sweep jobs."""

    def __init__(self, directory: PathLike) -> None:
        self.directory = Path(directory)
        self.path = self.directory / JOURNAL_NAME
        self._records: Dict[str, Dict] = {}   # job_id -> result payload

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, job_id: str) -> bool:
        return job_id in self._records

    def load(self) -> Dict[str, SimulationResult]:
        """Read the journal from disk; returns ``{job_id: result}``.

        A truncated trailing line (a crash mid-write under a non-atomic
        filesystem) is dropped; corruption anywhere else raises
        :class:`CheckpointError` because silently skipping completed work
        would make ``--resume`` re-run jobs nondeterministically.
        """
        self._records = {}
        if not self.path.exists():
            return {}
        try:
            lines = self.path.read_text(encoding="utf-8").splitlines()
        except OSError as error:
            raise CheckpointError(
                f"cannot read checkpoint journal {self.path}: {error}"
            ) from error
        results: Dict[str, SimulationResult] = {}
        for number, line in enumerate(lines):
            if not line.strip():
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as error:
                if number == len(lines) - 1:
                    break      # torn trailing write from a crash; drop it
                raise CheckpointError(
                    f"corrupt checkpoint journal {self.path} at line "
                    f"{number + 1}: {error}") from error
            version = payload.get("version")
            if version != FORMAT_VERSION:
                raise CheckpointError(
                    f"{self.path}: journal format version {version} "
                    f"(expected {FORMAT_VERSION})")
            job_id = payload["job_id"]
            self._records[job_id] = payload["result"]
            results[job_id] = SimulationResult.from_dict(payload["result"])
        return results

    def record(self, job_id: str, result: SimulationResult) -> None:
        """Durably journal one completed job (atomic write + rename)."""
        self._records[job_id] = result.to_dict()
        self._flush()

    def _flush(self) -> None:
        self.directory.mkdir(parents=True, exist_ok=True)
        tmp_path = self.path.with_suffix(".jsonl.tmp")
        try:
            with open(tmp_path, "w", encoding="utf-8") as handle:
                for job_id, payload in self._records.items():
                    handle.write(json.dumps(
                        {"version": FORMAT_VERSION, "job_id": job_id,
                         "result": payload},
                        separators=(",", ":")) + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, self.path)
        except OSError as error:
            raise CheckpointError(
                f"cannot write checkpoint journal {self.path}: {error}"
            ) from error
