"""Crash-safe checkpoint journal for sweep runs.

Every completed job is journaled as one JSON line keyed by its
:attr:`~repro.runner.job.SweepJob.job_id`.  Durability model:

- **Append with line-level fsync.**  ``record`` appends exactly one line and
  fsyncs it, so journaling is O(1) per job regardless of sweep size and a
  kill between records loses nothing.  A kill *during* a record leaves at
  most one torn trailing line.
- **Per-line CRC.**  Every record carries a CRC-32 of its canonical payload,
  so recovery distinguishes "torn write" and "bit rot" from valid data
  instead of trusting whatever still parses.
- **Tail recovery, not tail tolerance.**  ``load`` drops a torn or
  checksum-corrupt *trailing* record with a :class:`ReproWarning` and
  truncates the file back to the last good byte, so later appends continue
  a clean journal rather than concatenating onto garbage.  Corruption
  anywhere *before* the tail cannot be explained by a crash mid-append and
  still raises :class:`CheckpointError`: silently skipping completed work
  would make ``--resume`` re-run jobs nondeterministically.

A journal written by an incompatible format version is rejected with
:class:`~repro.common.errors.CheckpointError` rather than silently resumed.
"""

from __future__ import annotations

import os
import warnings
from pathlib import Path
from typing import Dict, Optional, Union

from ..common.errors import CheckpointError, ReproWarning
from ..common.integrity import IntegrityError, decode_envelope, encode_envelope
from ..core.metrics import SimulationResult
from ..telemetry.events import EventKind
from ..telemetry.hub import TelemetryHub

FORMAT_VERSION = 2

JOURNAL_NAME = "journal.jsonl"

PathLike = Union[str, Path]


class CheckpointJournal:
    """Append-only journal of completed sweep jobs."""

    def __init__(self, directory: PathLike,
                 telemetry: Optional[TelemetryHub] = None) -> None:
        self.directory = Path(directory)
        self.path = self.directory / JOURNAL_NAME
        self.telemetry = telemetry
        self._records: Dict[str, Dict] = {}   # job_id -> result payload

    def __len__(self) -> int:
        return len(self._records)

    def __contains__(self, job_id: str) -> bool:
        return job_id in self._records

    def _recover_tail(self, reason: str, keep_bytes: int) -> None:
        """Drop the torn/corrupt trailing record: warn, emit, truncate."""
        warnings.warn(
            f"checkpoint journal {self.path}: dropping corrupt trailing "
            f"record ({reason}); the journal was truncated to the last "
            "good record and the job will be re-run", ReproWarning,
            stacklevel=3)
        if self.telemetry is not None:
            self.telemetry.emit(EventKind.CHECKPOINT_RECOVERED,
                                path=str(self.path), dropped=1, reason=reason)
        try:
            with open(self.path, "r+b") as handle:
                handle.truncate(keep_bytes)
        except OSError as error:
            raise CheckpointError(
                f"cannot truncate corrupt checkpoint journal {self.path}: "
                f"{error}") from error

    def load(self) -> Dict[str, SimulationResult]:
        """Read the journal from disk; returns ``{job_id: result}``.

        A torn or checksum-corrupt trailing record (a crash mid-append, or
        bit rot in the last line) is dropped with a :class:`ReproWarning`
        and physically truncated away; corruption anywhere else raises
        :class:`CheckpointError`.
        """
        self._records = {}
        if not self.path.exists():
            return {}
        try:
            raw = self.path.read_bytes()
        except OSError as error:
            raise CheckpointError(
                f"cannot read checkpoint journal {self.path}: {error}"
            ) from error
        # Records with their byte offsets, so tail recovery can truncate
        # back to the exact start of the first bad byte.
        entries = []   # (line_number, byte_offset, text)
        offset = 0
        number = 0
        while offset < len(raw):
            newline = raw.find(b"\n", offset)
            end = len(raw) if newline < 0 else newline
            number += 1
            text = raw[offset:end].decode("utf-8", errors="replace")
            if text.strip():
                entries.append((number, offset, text))
            if newline < 0:
                break
            offset = newline + 1

        results: Dict[str, SimulationResult] = {}
        for index, (line_number, start, text) in enumerate(entries):
            try:
                payload = decode_envelope(text)
            except IntegrityError as error:
                if index == len(entries) - 1:
                    self._recover_tail(str(error), start)
                    break
                raise CheckpointError(
                    f"corrupt checkpoint journal {self.path} at line "
                    f"{line_number}: {error}") from error
            version = payload.get("version")
            if version != FORMAT_VERSION:
                raise CheckpointError(
                    f"{self.path}: journal format version {version} "
                    f"(expected {FORMAT_VERSION})")
            job_id = payload["job_id"]
            self._records[job_id] = payload["result"]
            results[job_id] = SimulationResult.from_dict(payload["result"])
        return results

    def record(self, job_id: str, result: SimulationResult) -> None:
        """Durably journal one completed job (single fsynced append)."""
        payload = result.to_dict()
        self._records[job_id] = payload
        line = encode_envelope(
            {"version": FORMAT_VERSION, "job_id": job_id,
             "result": payload}) + "\n"
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(line)
                handle.flush()
                os.fsync(handle.fileno())
        except OSError as error:
            raise CheckpointError(
                f"cannot write checkpoint journal {self.path}: {error}"
            ) from error
