"""Deterministic jittered exponential backoff.

Exponential backoff without jitter synchronizes retries: every job that
failed in the same sweep round becomes eligible again at the same instant,
so the burst that overloaded a resource repeats itself on every retry
("thundering herd").  The standard fix is to randomize each delay — but a
sweep must stay reproducible, so the randomness has to come from the run's
own seed, not from shared global RNG state.

:func:`jittered_backoff` therefore derives a private :class:`random.Random`
from ``(seed, stream, attempt)`` via the same SplitMix64 stream derivation
the trace generators use (:func:`repro.common.hashing.derive_stream_seed`).
The delay for a given ``(job, attempt, seed)`` triple is a pure function —
two runs of the same sweep back off identically, while two jobs retrying in
the same round spread out over ``[delay/2, delay)``.
"""

from __future__ import annotations

import random

from ..common.hashing import derive_stream_seed

#: Jitter keeps at least half of the nominal exponential delay so retry
#: pressure still decays geometrically; full jitter (uniform over
#: ``[0, delay)``) can collapse a late attempt to a near-zero wait.
_JITTER_FLOOR = 0.5


def jittered_backoff(base_seconds: float, cap_seconds: float, attempt: int,
                     seed: int, stream: str) -> float:
    """Delay before retry ``attempt`` (0-based) of the named stream.

    ``stream`` identifies the retrying entity (a job id, a worker slot);
    distinct streams decorrelate even under the same seed and attempt.
    """
    nominal = min(base_seconds * (2 ** attempt), cap_seconds)
    if nominal <= 0.0:
        return 0.0
    rng = random.Random(derive_stream_seed(seed, f"{stream}#{attempt}"))
    return nominal * (_JITTER_FLOOR + (1.0 - _JITTER_FLOOR) * rng.random())
