"""Deterministic fault injection for the sweep runner.

Tests (and operators debugging the runner) need to *prove* that the retry,
quarantine, timeout and resume paths work, which requires making specific
jobs fail in specific ways on specific attempts.  A :class:`FaultPlan` maps
job ids to the number of leading attempts that should crash or hang; once a
job's budgeted faults are exhausted, later attempts run normally — which is
exactly the shape of a transient failure the retry machinery exists for.

The plan is applied inside the worker (serial or forked), so injected
crashes and hangs exercise the same recovery code paths as real ones.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Mapping

from ..common.errors import InjectedFaultError


@dataclass(frozen=True)
class FaultPlan:
    """Which jobs fail, how, and for how many attempts.

    ``crash[job_id] = n`` makes attempts ``0..n-1`` raise
    :class:`InjectedFaultError`; ``hang[job_id] = n`` makes attempts
    ``0..n-1`` sleep for ``hang_seconds`` (long enough to trip the runner's
    per-job timeout).  Crash faults are applied before hang faults.
    """

    crash: Mapping[str, int] = field(default_factory=dict)
    hang: Mapping[str, int] = field(default_factory=dict)
    hang_seconds: float = 30.0

    def apply(self, job_id: str, attempt: int) -> None:
        """Inject the planned fault for ``(job_id, attempt)``, if any."""
        if attempt < self.crash.get(job_id, 0):
            raise InjectedFaultError(
                f"injected crash for {job_id} (attempt {attempt})")
        if attempt < self.hang.get(job_id, 0):
            time.sleep(self.hang_seconds)
