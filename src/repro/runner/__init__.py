"""Fault-tolerant parallel sweep execution.

Public surface::

    from repro.runner import (
        SweepJob, SweepRunner, RunnerConfig, SweepReport, JobFailure,
        FaultPlan, CheckpointJournal, execute_job,
    )

See :mod:`repro.runner.executor` for the robustness model (timeouts,
retries, quarantine, checkpoint/resume).
"""

from .backoff import jittered_backoff
from .checkpoint import CheckpointJournal
from .executor import JobFailure, RunnerConfig, SweepReport, SweepRunner
from .faults import FaultPlan
from .job import (
    SweepJob,
    build_capacity_jobs,
    build_policy_jobs,
    capacity_label,
    execute_job,
)

__all__ = [
    "CheckpointJournal",
    "FaultPlan",
    "JobFailure",
    "RunnerConfig",
    "SweepJob",
    "SweepReport",
    "SweepRunner",
    "build_capacity_jobs",
    "build_policy_jobs",
    "capacity_label",
    "execute_job",
    "jittered_backoff",
]
