"""The fault-tolerant sweep executor.

:class:`SweepRunner` fans :class:`~repro.runner.job.SweepJob` jobs out over
worker processes (``jobs > 1``) or runs them inline (``jobs == 1``, the
degenerate serial case that behaves exactly like the historical sweep loop).
Robustness model:

- **Per-job timeout** (parallel mode): a worker that exceeds its budget is
  terminated; the job counts as failed and goes through the retry machinery.
  Inline execution cannot be preempted from within the same process, so
  timeouts require ``jobs >= 2``.
- **Bounded retries with jittered exponential backoff**: a failed job is
  re-queued with delay ``backoff * 2**attempt`` (capped), scaled by a
  deterministic jitter factor derived from the job's seed (see
  :mod:`repro.runner.backoff`) so simultaneous retries don't synchronize,
  up to ``retries`` times.
- **Quarantine**: a job that exhausts its retries is set aside with its full
  error history; the sweep *completes* and reports it instead of dying.
- **Checkpointing**: every completed result is journaled crash-safely (see
  :mod:`repro.runner.checkpoint`); ``resume=True`` re-runs only the jobs
  missing from the journal.

Parallel and serial runs produce bit-identical results for the same jobs:
workers rebuild trace and configuration deterministically from the job spec
(see :func:`repro.runner.job.execute_job`) and results are returned in
canonical job order regardless of completion order.
"""

from __future__ import annotations

import multiprocessing
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..common.errors import RunnerError
from ..core.metrics import SimulationResult
from .backoff import jittered_backoff
from .checkpoint import CheckpointJournal
from .faults import FaultPlan
from .job import SweepJob, execute_job

ProgressFn = Callable[[SweepJob, SimulationResult], None]


@dataclass(frozen=True)
class RunnerConfig:
    """Execution policy of one sweep run."""

    jobs: int = 1                       # worker processes; 1 = inline/serial
    timeout_seconds: Optional[float] = None   # per-attempt budget (parallel)
    retries: int = 2                    # re-runs after the first failure
    backoff_seconds: float = 0.5        # base of the exponential backoff
    backoff_cap_seconds: float = 30.0
    checkpoint_dir: Optional[Union[str, Path]] = None
    resume: bool = False
    strict_invariants: bool = True      # run simulations with strict checking
    poll_interval_seconds: float = 0.02

    def __post_init__(self) -> None:
        if self.jobs < 1:
            raise RunnerError("runner needs at least one job slot")
        if self.retries < 0:
            raise RunnerError("retries must be >= 0")
        if self.timeout_seconds is not None and self.timeout_seconds <= 0:
            raise RunnerError("timeout must be positive")
        if self.backoff_seconds < 0 or self.backoff_cap_seconds < 0:
            raise RunnerError("backoff must be >= 0")
        if self.resume and self.checkpoint_dir is None:
            raise RunnerError("resume requires a checkpoint directory")


@dataclass
class JobFailure:
    """Terminal failure record of one quarantined job."""

    job_id: str
    attempts: int
    errors: List[str] = field(default_factory=list)


@dataclass
class SweepReport:
    """What actually happened during a sweep run."""

    total_jobs: int = 0
    executed: List[str] = field(default_factory=list)    # ran this session
    resumed: List[str] = field(default_factory=list)     # from the journal
    quarantined: List[JobFailure] = field(default_factory=list)
    retried: Dict[str, int] = field(default_factory=dict)  # failures healed
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.quarantined

    def describe(self) -> str:
        """Human-readable multi-line summary (the explicit failure report)."""
        completed = len(self.executed) + len(self.resumed)
        lines = [f"sweep: {completed}/{self.total_jobs} jobs completed "
                 f"({len(self.resumed)} resumed from checkpoint, "
                 f"{len(self.quarantined)} quarantined) "
                 f"in {self.elapsed_seconds:.1f}s"]
        for job_id, failures in sorted(self.retried.items()):
            lines.append(f"  retried {job_id}: succeeded after "
                         f"{failures} failed attempt(s)")
        for failure in self.quarantined:
            lines.append(f"  QUARANTINED {failure.job_id} after "
                         f"{failure.attempts} attempt(s):")
            for number, error in enumerate(failure.errors, 1):
                lines.append(f"    attempt {number}: {error}")
        return "\n".join(lines)


@dataclass
class _PendingAttempt:
    job: SweepJob
    attempt: int              # 0-based attempt counter
    eligible_at: float        # monotonic time before which it must not start
    order: int                # canonical position, for deterministic pops


class _RunningJob:
    __slots__ = ("entry", "process", "conn", "started_at")

    def __init__(self, entry, process, conn, started_at):
        self.entry = entry
        self.process = process
        self.conn = conn
        self.started_at = started_at


def _pool_worker(conn, job: SweepJob, attempt: int,
                 fault_plan: Optional[FaultPlan], strict: bool) -> None:
    """Run one job in a worker process; ship outcome over ``conn``."""
    try:
        if fault_plan is not None:
            fault_plan.apply(job.job_id, attempt)
        result = execute_job(job, strict=strict)
        conn.send(("ok", result.to_dict()))
    except BaseException as error:   # ship *any* failure back to the parent
        try:
            conn.send(("error", f"{type(error).__name__}: {error}"))
        except (BrokenPipeError, OSError):   # parent already gave up on us
            pass
    finally:
        conn.close()


class SweepRunner:
    """Executes a list of jobs under a :class:`RunnerConfig`."""

    def __init__(self, config: Optional[RunnerConfig] = None,
                 fault_plan: Optional[FaultPlan] = None,
                 progress: Optional[ProgressFn] = None) -> None:
        self.config = config or RunnerConfig()
        self.fault_plan = fault_plan
        self.progress = progress

    # ------------------------------------------------------------------ api

    def run(self, jobs: Sequence[SweepJob]
            ) -> Tuple[Dict[str, SimulationResult], SweepReport]:
        """Run every job; returns ``({job_id: result}, report)``.

        The result dict preserves canonical job order (quarantined jobs are
        simply absent) so downstream tables are deterministic regardless of
        parallel completion order.
        """
        cfg = self.config
        seen: Dict[str, SweepJob] = {}
        for job in jobs:
            if job.job_id in seen:
                raise RunnerError(f"duplicate job id {job.job_id!r}")
            seen[job.job_id] = job

        started = time.monotonic()
        report = SweepReport(total_jobs=len(jobs))
        completed: Dict[str, SimulationResult] = {}

        journal: Optional[CheckpointJournal] = None
        if cfg.checkpoint_dir is not None:
            journal = CheckpointJournal(cfg.checkpoint_dir)
            if cfg.resume:
                for job_id, result in journal.load().items():
                    if job_id in seen:
                        completed[job_id] = result
                        report.resumed.append(job_id)
            elif journal.path.exists():
                raise RunnerError(
                    f"checkpoint journal {journal.path} already exists; "
                    "pass resume=True to continue it or use a fresh "
                    "checkpoint directory")

        remaining = [job for job in jobs if job.job_id not in completed]
        if cfg.jobs == 1:
            self._run_serial(remaining, completed, report, journal)
        else:
            self._run_parallel(remaining, completed, report, journal)

        report.elapsed_seconds = time.monotonic() - started
        ordered = {job.job_id: completed[job.job_id]
                   for job in jobs if job.job_id in completed}
        return ordered, report

    # --------------------------------------------------------------- shared

    def _backoff_delay(self, job: SweepJob, attempt: int) -> float:
        """Deterministic jittered delay before retrying ``job``.

        A pure function of ``(job.job_id, job.seed, attempt)``: the same
        sweep run twice backs off identically, while jobs retrying in the
        same round spread out instead of re-failing in lockstep.
        """
        cfg = self.config
        return jittered_backoff(cfg.backoff_seconds, cfg.backoff_cap_seconds,
                                attempt, job.seed, f"backoff/{job.job_id}")

    def _record_success(self, job: SweepJob, result: SimulationResult,
                        attempt: int, completed, report, journal) -> None:
        completed[job.job_id] = result
        report.executed.append(job.job_id)
        if attempt:
            report.retried[job.job_id] = attempt
        if journal is not None:
            journal.record(job.job_id, result)
        if self.progress is not None:
            self.progress(job, result)

    # --------------------------------------------------------------- serial

    def _run_serial(self, jobs: Sequence[SweepJob], completed, report,
                    journal) -> None:
        """Inline execution: the historical serial sweep plus retry logic.

        Timeouts are not enforced here — an in-process job cannot be
        preempted; use ``jobs >= 2`` for timeout protection.
        """
        cfg = self.config
        for job in jobs:
            errors: List[str] = []
            for attempt in range(cfg.retries + 1):
                if attempt:
                    time.sleep(self._backoff_delay(job, attempt - 1))
                try:
                    if self.fault_plan is not None:
                        self.fault_plan.apply(job.job_id, attempt)
                    result = execute_job(job, strict=cfg.strict_invariants)
                except KeyboardInterrupt:
                    raise
                except Exception as error:
                    errors.append(f"{type(error).__name__}: {error}")
                    continue
                self._record_success(job, result, attempt, completed,
                                     report, journal)
                break
            else:
                report.quarantined.append(JobFailure(
                    job_id=job.job_id, attempts=len(errors), errors=errors))

    # ------------------------------------------------------------- parallel

    def _run_parallel(self, jobs: Sequence[SweepJob], completed, report,
                      journal) -> None:
        cfg = self.config
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:       # platform without fork: jobs must pickle
            ctx = multiprocessing.get_context()

        pending: List[_PendingAttempt] = [
            _PendingAttempt(job=job, attempt=0, eligible_at=0.0, order=index)
            for index, job in enumerate(jobs)]
        running: Dict[str, _RunningJob] = {}
        errors: Dict[str, List[str]] = {}

        def fail(entry: _PendingAttempt, message: str) -> None:
            history = errors.setdefault(entry.job.job_id, [])
            history.append(message)
            if entry.attempt < cfg.retries:
                pending.append(_PendingAttempt(
                    job=entry.job, attempt=entry.attempt + 1,
                    eligible_at=(time.monotonic() +
                                 self._backoff_delay(entry.job,
                                                     entry.attempt)),
                    order=entry.order))
            else:
                report.quarantined.append(JobFailure(
                    job_id=entry.job.job_id, attempts=len(history),
                    errors=history))

        try:
            while pending or running:
                now = time.monotonic()
                # Launch eligible attempts into free slots, canonical order
                # first so serial and parallel sweeps schedule alike.
                pending.sort(key=lambda e: (e.order, e.attempt))
                launched = []
                for entry in pending:
                    if len(running) + len(launched) >= cfg.jobs:
                        break
                    if entry.eligible_at > now:
                        continue
                    parent_conn, child_conn = ctx.Pipe(duplex=False)
                    process = ctx.Process(
                        target=_pool_worker,
                        args=(child_conn, entry.job, entry.attempt,
                              self.fault_plan, cfg.strict_invariants),
                        daemon=True)
                    process.start()
                    child_conn.close()
                    running[entry.job.job_id] = _RunningJob(
                        entry, process, parent_conn, time.monotonic())
                    launched.append(entry)
                for entry in launched:
                    pending.remove(entry)

                progressed = bool(launched)
                for job_id, run in list(running.items()):
                    outcome = self._poll_worker(run, time.monotonic())
                    if outcome is None:
                        continue
                    progressed = True
                    del running[job_id]
                    status, payload = outcome
                    if status == "ok":
                        attempts_failed = len(errors.get(job_id, []))
                        if attempts_failed:
                            report.retried[job_id] = attempts_failed
                        completed[job_id] = payload
                        report.executed.append(job_id)
                        if journal is not None:
                            journal.record(job_id, payload)
                        if self.progress is not None:
                            self.progress(run.entry.job, payload)
                    else:
                        fail(run.entry, payload)

                if not progressed:
                    time.sleep(cfg.poll_interval_seconds)
        except BaseException:
            # Interrupt/crash: reap workers so completed work stays journaled
            # and the next resume picks up cleanly.
            for run in running.values():
                run.process.terminate()
                run.process.join(timeout=5)
                run.conn.close()
            raise

    def _poll_worker(self, run: _RunningJob, now: float):
        """One worker poll; returns ``("ok", result) | ("error", msg) | None``."""
        cfg = self.config
        if run.conn.poll():
            try:
                status, payload = run.conn.recv()
            except (EOFError, OSError):
                status, payload = "error", "worker died before reporting"
            run.process.join(timeout=5)
            run.conn.close()
            if status == "ok":
                return "ok", SimulationResult.from_dict(payload)
            return "error", payload
        if not run.process.is_alive():
            run.process.join(timeout=5)
            run.conn.close()
            return ("error", "worker died without a result "
                    f"(exit code {run.process.exitcode})")
        if cfg.timeout_seconds is not None and \
                now - run.started_at > cfg.timeout_seconds:
            run.process.terminate()
            run.process.join(timeout=5)
            run.conn.close()
            return ("error",
                    f"timed out after {cfg.timeout_seconds:g}s "
                    f"(attempt {run.entry.attempt + 1})")
        return None
