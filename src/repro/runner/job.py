"""Sweep jobs: the unit of work the fault-tolerant runner schedules.

A :class:`SweepJob` is a small, picklable, self-contained description of one
(workload x configuration) simulation: everything a worker process needs to
rebuild the trace and the simulator configuration from scratch.  Jobs carry
only primitives (names, counts, seeds) rather than live objects so they
cross process boundaries cheaply and a checkpoint journal can identify them
stably across runs by :attr:`SweepJob.job_id`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, List, Mapping, Optional, Sequence, Tuple

from ..common.config import TelemetryConfig, baseline_config
from ..common.errors import RunnerError
from ..core.metrics import SimulationResult

#: Job kinds understood by :func:`execute_job`.
KIND_CAPACITY = "capacity"
KIND_POLICY = "policy"


@dataclass(frozen=True)
class SweepJob:
    """One (workload x config) simulation, identified by ``workload/label``."""

    workload: str
    label: str                  # config label used in the sweep tables
    kind: str                   # KIND_CAPACITY | KIND_POLICY
    capacity_uops: int = 2048
    max_entries_per_line: int = 2
    num_instructions: int = 120_000
    warmup_instructions: int = 0
    seed: int = 7
    #: Count telemetry events during the run; the per-kind totals land in
    #: ``SimulationResult.telemetry_events`` and hence the checkpoint journal.
    telemetry: bool = False
    #: Workload engine producing the trace (see repro.workloads.engine) and
    #: its parameters as sorted (name, value) pairs — a tuple so the job
    #: stays hashable, picklable, and stable in checkpoint journals.
    engine: str = "synthetic"
    engine_params: Tuple[Tuple[str, Any], ...] = ()

    @property
    def job_id(self) -> str:
        """Stable identity used for checkpointing and failure reports.

        Synthetic jobs keep the historical ``workload/label`` shape so old
        checkpoint journals still resume; other engines are suffixed so a
        checkpoint dir shared across engines never aliases cells.
        """
        base = f"{self.workload}/{self.label}"
        if self.engine == "synthetic" and not self.engine_params:
            return base
        return f"{base}@{self.engine}"


def capacity_label(capacity_uops: int) -> str:
    """The sweep-table label of one capacity point (e.g. ``OC_2K``)."""
    return f"OC_{capacity_uops // 1024}K"


def engine_params_tuple(engine_params: Optional[Mapping[str, Any]]
                        ) -> Tuple[Tuple[str, Any], ...]:
    """Canonical (sorted, hashable) form of an engine parameter mapping."""
    return tuple(sorted((engine_params or {}).items()))


def build_capacity_jobs(workloads: Sequence[str],
                        capacities: Sequence[int],
                        num_instructions: int,
                        warmup_instructions: int = 0,
                        seed: int = 7,
                        telemetry: bool = False,
                        engine: str = "synthetic",
                        engine_params: Optional[Mapping[str, Any]] = None
                        ) -> List[SweepJob]:
    """Jobs of a Fig. 3/4 capacity sweep, in canonical (workload-major) order."""
    params = engine_params_tuple(engine_params)
    return [SweepJob(workload=name, label=capacity_label(capacity),
                     kind=KIND_CAPACITY, capacity_uops=capacity,
                     num_instructions=num_instructions,
                     warmup_instructions=warmup_instructions, seed=seed,
                     telemetry=telemetry, engine=engine,
                     engine_params=params)
            for name in workloads for capacity in capacities]


def build_policy_jobs(workloads: Sequence[str],
                      labels: Sequence[str],
                      capacity_uops: int,
                      max_entries_per_line: int,
                      num_instructions: int,
                      warmup_instructions: int = 0,
                      seed: int = 7,
                      telemetry: bool = False,
                      engine: str = "synthetic",
                      engine_params: Optional[Mapping[str, Any]] = None
                      ) -> List[SweepJob]:
    """Jobs of a Fig. 15-22 policy sweep, in canonical order."""
    params = engine_params_tuple(engine_params)
    return [SweepJob(workload=name, label=label, kind=KIND_POLICY,
                     capacity_uops=capacity_uops,
                     max_entries_per_line=max_entries_per_line,
                     num_instructions=num_instructions,
                     warmup_instructions=warmup_instructions, seed=seed,
                     telemetry=telemetry, engine=engine,
                     engine_params=params)
            for name in workloads for label in labels]


def execute_job(job: SweepJob, strict: bool = True) -> SimulationResult:
    """Run one job to completion in the current process.

    Shared by the serial path and the pool workers so parallel and serial
    sweeps are bit-identical: the simulation depends only on the (seeded)
    trace and the configuration, both rebuilt deterministically here.
    """
    # Imported lazily: experiment.py builds its sweeps on top of this runner,
    # so a module-level import would be circular.
    from ..core.experiment import policy_config, workload_trace
    from ..core.simulator import Simulator

    if job.kind == KIND_CAPACITY:
        config = baseline_config(job.capacity_uops)
    elif job.kind == KIND_POLICY:
        config = policy_config(job.label, job.capacity_uops,
                               job.max_entries_per_line)
    else:
        raise RunnerError(f"unknown job kind {job.kind!r} for {job.job_id}")
    config = dataclasses.replace(
        config, warmup_instructions=job.warmup_instructions)
    if job.telemetry:
        config = dataclasses.replace(
            config, telemetry=TelemetryConfig(enabled=True))
    trace = workload_trace(job.workload, job.num_instructions, seed=job.seed,
                           engine=job.engine,
                           engine_params=dict(job.engine_params))
    return Simulator(trace, config, job.label, strict=strict).run()
