"""Reproduction of "Improving the Utilization of Micro-operation Caches in
x86 Processors" (Kotra & Kalamatianos, MICRO 2020).

Curated entry points::

    from repro import simulate, baseline_config, compaction_config
    from repro import get_workload, CompactionPolicy

    trace = get_workload("bm-cc").trace(100_000)
    base = simulate(trace, baseline_config(2048))
    best = simulate(trace, compaction_config(CompactionPolicy.F_PWAC, 2048))

See README.md for the full tour and DESIGN.md for the system inventory.
"""

from .common.config import (
    CompactionPolicy,
    SimulatorConfig,
    baseline_config,
    clasp_config,
    compaction_config,
)
from .core.experiment import (
    run_capacity_sweep,
    run_policy_sweep,
    workload_trace,
)
from .core.metrics import SimulationResult
from .core.simulator import Simulator, simulate
from .core.smt import SmtSimulator, simulate_smt
from .runner import FaultPlan, RunnerConfig, SweepJob, SweepReport, SweepRunner
from .workloads.generator import Workload, WorkloadProfile, generate_workload
from .workloads.suite import WORKLOAD_NAMES, get_workload

__version__ = "1.0.0"

__all__ = [
    "CompactionPolicy",
    "FaultPlan",
    "RunnerConfig",
    "SimulationResult",
    "Simulator",
    "SimulatorConfig",
    "SmtSimulator",
    "SweepJob",
    "SweepReport",
    "SweepRunner",
    "WORKLOAD_NAMES",
    "Workload",
    "WorkloadProfile",
    "baseline_config",
    "clasp_config",
    "compaction_config",
    "generate_workload",
    "get_workload",
    "run_capacity_sweep",
    "run_policy_sweep",
    "simulate",
    "simulate_smt",
    "workload_trace",
]
