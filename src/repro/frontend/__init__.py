"""Front-end structures (loop cache; fetch/decode logic lives in the simulator)."""

from .loopcache import LoopCache

__all__ = ["LoopCache"]
