"""Loop cache (loop buffer): serves uops of tiny hot loops (Section II-A).

The loop cache captures loops whose body fits within ``capacity_uops`` after
the same backward-taken branch has been observed ``min_iterations_to_capture``
times in a row.  While a captured loop stays "locked", its uops are delivered
without touching the I-cache, decoder *or* uop cache — the most
energy-efficient supply path.  Any control flow leaving the loop body unlocks
it.

The paper's evaluation focuses on the uop cache, so the simulator disables
the loop cache by default; it is implemented (and tested) as part of the
front-end substrate and can be enabled through :class:`LoopCacheConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..common.config import LoopCacheConfig
from ..common.statistics import StatGroup
from ..telemetry.events import EventKind
from ..telemetry.hub import TelemetryHub


@dataclass(frozen=True)
class _LoopKey:
    branch_pc: int
    target_pc: int


class LoopCache:
    """Detects and locks onto short backward loops."""

    def __init__(self, config: Optional[LoopCacheConfig] = None,
                 telemetry: Optional[TelemetryHub] = None) -> None:
        self.config = config or LoopCacheConfig()
        self._telemetry = telemetry
        self._streak: Dict[_LoopKey, int] = {}
        self._active: Optional[_LoopKey] = None
        self._active_uops = 0
        self.stats = StatGroup("loopcache")
        self._captures = self.stats.counter("captures")
        self._uops_served = self.stats.counter("uops_served")
        self._exits = self.stats.counter("exits")

    @property
    def active(self) -> bool:
        return self._active is not None

    @property
    def active_target(self) -> Optional[int]:
        """Loop body start PC while locked, else None."""
        return self._active.target_pc if self._active else None

    @property
    def active_branch_pc(self) -> Optional[int]:
        """The locked loop's backward branch PC, else None."""
        return self._active.branch_pc if self._active else None

    def observe_taken_branch(self, branch_pc: int, target_pc: int,
                             body_uops: int) -> bool:
        """Report a resolved taken branch; returns True if the loop cache is
        (now) serving this loop.

        ``body_uops`` is the uop count of one iteration (target..branch).
        """
        if not self.config.enabled:
            return False
        if target_pc >= branch_pc:           # not a backward branch
            self._note_exit()
            return False
        key = _LoopKey(branch_pc, target_pc)
        if self._active == key:
            self._uops_served.increment(body_uops)
            if self._telemetry is not None:
                self._telemetry.emit(EventKind.LOOP_REPLAY,
                                     branch_pc=branch_pc, uops=body_uops)
            return True
        # A different taken branch means control flow left any locked loop.
        self._note_exit()
        if body_uops > self.config.capacity_uops:
            return False
        streak = self._streak.get(key, 0) + 1
        self._streak[key] = streak
        if streak >= self.config.min_iterations_to_capture:
            self._note_exit()
            self._active = key
            self._active_uops = body_uops
            self._captures.increment()
            self._uops_served.increment(body_uops)
            if self._telemetry is not None:
                self._telemetry.emit(EventKind.LOOP_CAPTURE,
                                     branch_pc=branch_pc,
                                     target_pc=target_pc,
                                     body_uops=body_uops)
            return True
        return False

    def observe_other_flow(self) -> None:
        """Any non-loop control flow: unlock and reset streaks lazily."""
        if not self.config.enabled:
            return
        self._note_exit()
        self._streak.clear()

    def _note_exit(self) -> None:
        if self._active is not None:
            self._exits.increment()
            if self._telemetry is not None:
                self._telemetry.emit(EventKind.LOOP_EXIT,
                                     branch_pc=self._active.branch_pc)
            self._active = None
            self._active_uops = 0

    @property
    def uops_served(self) -> int:
        return self._uops_served.value

    @property
    def captures(self) -> int:
        return self._captures.value

    @property
    def exits(self) -> int:
        return self._exits.value

    def snapshot(self) -> Dict[str, int]:
        """Flat counter view (captures/served/exits) for external checkers."""
        return {
            "loop_captures": self.captures,
            "loop_uops_served": self.uops_served,
            "loop_exits": self.exits,
        }
