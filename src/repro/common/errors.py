"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError` so callers
can catch library failures without catching unrelated bugs.
"""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class ReproWarning(UserWarning):
    """Base class for warnings emitted by this package.

    Used for legitimate-but-suspicious situations (e.g. a degenerate
    statistic) that should be visible without aborting an aggregation.
    """


class ConfigError(ReproError):
    """An invalid or inconsistent configuration was supplied."""


class WorkloadError(ReproError):
    """A workload/program/trace was malformed or could not be generated."""


class SimulationError(ReproError):
    """The simulator reached an inconsistent internal state."""


class CacheError(ReproError):
    """A cache structure was used incorrectly (bad index, bad fill, ...)."""


class OracleError(ReproError):
    """The differential-testing oracle was misused or hit an unsupported
    configuration (divergences raise the richer ``OracleDivergence``
    subclass defined in :mod:`repro.oracle.runner`)."""


class RunnerError(ReproError):
    """The sweep runner was misused or could not execute a job."""


class CheckpointError(RunnerError):
    """A checkpoint journal could not be read or written."""


class InjectedFaultError(RunnerError):
    """A deliberately injected fault (test-only failure path exercise)."""


class ServiceError(ReproError):
    """The simulation job service was misused or reached a bad state."""


class ProtocolError(ServiceError):
    """A job submission or service message was malformed."""


class StoreError(ServiceError):
    """The content-addressed result store could not be read or written."""


class ChaosError(ServiceError):
    """The chaos harness could not run or verify a schedule."""
