"""Configuration dataclasses for the simulated processor.

Defaults reproduce Table I of the paper:

- 3 GHz x86 core, dispatch width 6, retire width 8, 160-entry issue queue,
  256-entry ROB, 120-uop uop queue.
- 4-wide, 3-cycle-latency decoder.
- Uop cache: 32 sets x 8 ways, true LRU, 8 uops/cycle bandwidth, 56-bit uops,
  max 8 uops per entry, 32-bit imm/disp operands, max 4 imm/disp and max 4
  microcoded instructions per entry (2K uops total in the baseline).
- TAGE branch predictor, 2 branches per BTB entry, 2-level BTB.
- 32KB/8-way L1-I (64B lines, LRU, branch-prediction-directed prefetch,
  32B/cycle), 32KB/4-way L1-D, 512KB/8-way private unified L2, 2MB/16-way
  shared L3 with RRIP replacement.

Every class validates itself in ``__post_init__``; an invalid configuration
raises :class:`~repro.common.errors.ConfigError` at construction time rather
than corrupting a simulation later.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Any, Optional, Tuple

from .errors import ConfigError


class CompactionPolicy(enum.Enum):
    """Uop cache line allocation policy (Section V of the paper)."""

    NONE = "none"          # baseline: one entry per line
    RAC = "rac"            # replacement-aware compaction
    PWAC = "pwac"          # prediction-window-aware compaction (falls back to RAC)
    F_PWAC = "f-pwac"      # forced PWAC (falls back to PWAC, then RAC)


class ReplacementKind(enum.Enum):
    LRU = "lru"
    TREE_PLRU = "tree-plru"
    RRIP = "rrip"


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigError(message)


@dataclass(frozen=True)
class CoreConfig:
    """Back-end core parameters (Table I, "Core")."""

    frequency_ghz: float = 3.0
    dispatch_width: int = 6          # instructions (uops) dispatched per cycle
    retire_width: int = 8
    issue_queue_entries: int = 160
    rob_entries: int = 256
    uop_queue_entries: int = 120

    def __post_init__(self) -> None:
        _require(self.frequency_ghz > 0, "core frequency must be positive")
        _require(self.dispatch_width >= 1, "dispatch width must be >= 1")
        _require(self.retire_width >= 1, "retire width must be >= 1")
        _require(self.rob_entries >= self.dispatch_width,
                 "ROB must hold at least one dispatch group")
        _require(self.uop_queue_entries >= 1, "uop queue must be non-empty")
        _require(self.issue_queue_entries >= 1, "issue queue must be non-empty")


@dataclass(frozen=True)
class DecoderConfig:
    """x86 decode pipeline parameters (Table I, "Decoder")."""

    latency_cycles: int = 3
    bandwidth_insts_per_cycle: int = 4

    def __post_init__(self) -> None:
        _require(self.latency_cycles >= 1, "decoder latency must be >= 1 cycle")
        _require(self.bandwidth_insts_per_cycle >= 1,
                 "decoder bandwidth must be >= 1 inst/cycle")


@dataclass(frozen=True)
class UopCacheConfig:
    """Micro-op cache geometry and entry-construction limits (Table I)."""

    num_sets: int = 32
    associativity: int = 8
    line_bytes: int = 64
    uop_bits: int = 56
    imm_disp_bytes: int = 4           # 32-bit immediate/displacement slots
    metadata_bytes: int = 2           # per-line ctr/error-protection field
    max_uops_per_entry: int = 8
    max_imm_disp_per_entry: int = 4
    max_ucoded_per_entry: int = 4
    bandwidth_uops_per_cycle: int = 8
    fetch_latency_cycles: int = 2     # OC hit -> uop queue
    replacement: ReplacementKind = ReplacementKind.LRU
    # Optimizations under study:
    clasp: bool = False               # allow entries to span the I-cache line boundary
    clasp_max_lines: int = 2          # max contiguous I-cache lines fused per entry
    compaction: CompactionPolicy = CompactionPolicy.NONE
    max_entries_per_line: int = 2     # only meaningful when compaction != NONE
    accumulation_buffer_entries: int = 4

    def __post_init__(self) -> None:
        _require(self.num_sets >= 1 and (self.num_sets & (self.num_sets - 1)) == 0,
                 "uop cache sets must be a power of two")
        _require(self.associativity >= 1, "uop cache needs >= 1 way")
        _require(self.line_bytes >= 16, "uop cache line too small")
        _require(self.uop_bits % 8 == 0, "uop size must be a whole number of bytes")
        _require(self.uop_bytes * 1 + self.metadata_bytes <= self.line_bytes,
                 "a line must fit at least one uop plus metadata")
        _require(self.max_uops_per_entry >= 1, "entries must allow >= 1 uop")
        _require(self.max_imm_disp_per_entry >= 0, "imm/disp limit must be >= 0")
        _require(self.max_ucoded_per_entry >= 0, "ucode limit must be >= 0")
        _require(self.bandwidth_uops_per_cycle >= 1, "OC bandwidth must be >= 1")
        _require(self.clasp_max_lines >= 2,
                 "CLASP must allow at least two I-cache lines")
        _require(self.max_entries_per_line >= 1,
                 "compaction needs >= 1 entry per line")
        _require(self.accumulation_buffer_entries >= 1,
                 "accumulation buffer must hold >= 1 entry")

    @property
    def uop_bytes(self) -> int:
        return self.uop_bits // 8

    @property
    def usable_line_bytes(self) -> int:
        """Line bytes available for uops + imm/disp after metadata."""
        return self.line_bytes - self.metadata_bytes

    @property
    def capacity_uops(self) -> int:
        """Nominal capacity in uops (sets x ways x max uops per entry)."""
        return self.num_sets * self.associativity * self.max_uops_per_entry

    def with_capacity_uops(self, capacity: int) -> "UopCacheConfig":
        """Return a copy scaled (by set count) to ``capacity`` nominal uops."""
        per_line = self.associativity * self.max_uops_per_entry
        if capacity % per_line:
            raise ConfigError(
                f"capacity {capacity} not divisible by ways*uops_per_entry={per_line}")
        return replace(self, num_sets=capacity // per_line)


@dataclass(frozen=True)
class LoopCacheConfig:
    """Loop buffer that captures tiny loops, bypassing both IC and OC paths."""

    enabled: bool = False
    capacity_uops: int = 32
    min_iterations_to_capture: int = 3

    def __post_init__(self) -> None:
        _require(self.capacity_uops >= 1, "loop cache capacity must be >= 1 uop")
        _require(self.min_iterations_to_capture >= 1,
                 "loop capture threshold must be >= 1")


@dataclass(frozen=True)
class BranchPredictorConfig:
    """TAGE + BTB front-end prediction resources (Table I)."""

    # TAGE
    num_tagged_tables: int = 6
    table_entries_log2: int = 13
    tag_bits: int = 9
    min_history: int = 4
    max_history: int = 128
    base_entries_log2: int = 14
    use_alt_threshold: int = 8
    # BTB
    btb_entries: int = 2048
    btb_branches_per_entry: int = 2
    btb_levels: int = 2
    # RAS
    ras_entries: int = 64
    # Prediction window construction
    max_not_taken_branches_per_pw: int = 2
    #: Limit-study switch: every branch predicted perfectly (no mispredicts,
    #: no BTB resteers).  Isolates front-end supply effects.
    perfect: bool = False

    def __post_init__(self) -> None:
        _require(self.num_tagged_tables >= 1, "TAGE needs >= 1 tagged table")
        _require(self.min_history >= 1, "TAGE min history must be >= 1")
        _require(self.max_history > self.min_history,
                 "TAGE max history must exceed min history")
        _require(self.btb_entries >= 1, "BTB must be non-empty")
        _require(self.ras_entries >= 1, "RAS must be non-empty")
        _require(self.max_not_taken_branches_per_pw >= 1,
                 "PW must allow at least one not-taken branch")


@dataclass(frozen=True)
class CacheLevelConfig:
    """One level of the conventional (instruction/data) cache hierarchy."""

    name: str
    size_bytes: int
    associativity: int
    line_bytes: int = 64
    hit_latency_cycles: int = 4
    replacement: ReplacementKind = ReplacementKind.LRU

    def __post_init__(self) -> None:
        _require(self.size_bytes >= self.line_bytes, "cache smaller than one line")
        _require(self.size_bytes % (self.line_bytes * self.associativity) == 0,
                 f"{self.name}: size must be divisible by line*ways")
        num_sets = self.size_bytes // (self.line_bytes * self.associativity)
        _require(num_sets & (num_sets - 1) == 0,
                 f"{self.name}: set count must be a power of two")
        _require(self.hit_latency_cycles >= 1, "hit latency must be >= 1 cycle")

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.associativity)


@dataclass(frozen=True)
class MemoryHierarchyConfig:
    """Three-level hierarchy plus DRAM (Table I)."""

    l1i: CacheLevelConfig = field(default_factory=lambda: CacheLevelConfig(
        name="L1I", size_bytes=32 * 1024, associativity=8, hit_latency_cycles=2))
    l1d: CacheLevelConfig = field(default_factory=lambda: CacheLevelConfig(
        name="L1D", size_bytes=32 * 1024, associativity=4, hit_latency_cycles=4))
    l2: CacheLevelConfig = field(default_factory=lambda: CacheLevelConfig(
        name="L2", size_bytes=512 * 1024, associativity=8, hit_latency_cycles=12))
    l3: CacheLevelConfig = field(default_factory=lambda: CacheLevelConfig(
        name="L3", size_bytes=2 * 1024 * 1024, associativity=16,
        hit_latency_cycles=35, replacement=ReplacementKind.RRIP))
    dram_latency_cycles: int = 180
    icache_fetch_bytes_per_cycle: int = 32
    icache_prefetch: bool = True

    def __post_init__(self) -> None:
        _require(self.dram_latency_cycles >= 1, "DRAM latency must be >= 1")
        _require(self.icache_fetch_bytes_per_cycle >= 1,
                 "I-cache fetch bandwidth must be >= 1 byte/cycle")


#: Event categories selectable in :class:`TelemetryConfig.events` (must match
#: ``repro.telemetry.events.EVENT_CATEGORIES``; duplicated here so config
#: stays import-light and validates without pulling in the telemetry package).
TELEMETRY_EVENT_CATEGORIES: Tuple[str, ...] = (
    "fetch", "uopcache", "loopcache", "interval", "service")


@dataclass(frozen=True)
class TelemetryConfig:
    """Structured event tracing (see :mod:`repro.telemetry`).

    Disabled by default: a disabled run constructs no hub at all, so the
    simulator's hot paths pay only a ``None`` test per serving action.
    """

    enabled: bool = False
    #: Event categories to record (subset of TELEMETRY_EVENT_CATEGORIES).
    events: Tuple[str, ...] = TELEMETRY_EVENT_CATEGORIES
    #: Width of the per-interval IPC/UPC sampling windows, in cycles.
    interval_cycles: int = 1024
    #: Default capacity of in-memory ring-buffer sinks.
    ring_buffer_capacity: int = 65536

    def __post_init__(self) -> None:
        _require(len(self.events) > 0,
                 "telemetry needs at least one event category")
        for category in self.events:
            _require(category in TELEMETRY_EVENT_CATEGORIES,
                     f"unknown telemetry event category {category!r} "
                     f"(valid: {', '.join(TELEMETRY_EVENT_CATEGORIES)})")
        _require(self.interval_cycles >= 1,
                 "telemetry interval must be >= 1 cycle")
        _require(self.ring_buffer_capacity >= 1,
                 "telemetry ring buffer must hold >= 1 event")


@dataclass(frozen=True)
class PowerConfig:
    """Decoder energy model (normalized reporting, Section IV-A)."""

    decode_energy_per_inst: float = 1.0
    decoder_active_cycle_energy: float = 0.35
    decoder_idle_cycle_energy: float = 0.02

    def __post_init__(self) -> None:
        _require(self.decode_energy_per_inst > 0, "decode energy must be positive")
        _require(self.decoder_active_cycle_energy >= 0, "active energy must be >= 0")
        _require(self.decoder_idle_cycle_energy >= 0, "idle energy must be >= 0")


@dataclass(frozen=True)
class SimulatorConfig:
    """Top-level configuration tying together all structures."""

    core: CoreConfig = field(default_factory=CoreConfig)
    decoder: DecoderConfig = field(default_factory=DecoderConfig)
    uop_cache: UopCacheConfig = field(default_factory=UopCacheConfig)
    loop_cache: LoopCacheConfig = field(default_factory=LoopCacheConfig)
    branch: BranchPredictorConfig = field(default_factory=BranchPredictorConfig)
    memory: MemoryHierarchyConfig = field(default_factory=MemoryHierarchyConfig)
    power: PowerConfig = field(default_factory=PowerConfig)
    telemetry: TelemetryConfig = field(default_factory=TelemetryConfig)
    warmup_instructions: int = 0
    max_instructions: Optional[int] = None
    #: Counters-only serve loop: skips telemetry hooks and per-uop object
    #: churn while producing a bit-identical :class:`SimulationResult`
    #: (equivalence enforced by oracle, golden, and property tests).
    fast_mode: bool = False

    def __post_init__(self) -> None:
        _require(self.warmup_instructions >= 0, "warmup must be >= 0")
        if self.max_instructions is not None:
            _require(self.max_instructions > 0, "max_instructions must be positive")
        _require(not (self.fast_mode and self.telemetry.enabled),
                 "fast_mode is counters-only and cannot be combined with "
                 "telemetry (disable telemetry or run in normal mode)")

    def with_fast_mode(self, enabled: bool = True) -> "SimulatorConfig":
        """Copy with the counters-only fast serve loop toggled."""
        return replace(self, fast_mode=enabled)

    def with_uop_cache(self, **kwargs: Any) -> "SimulatorConfig":
        """Copy with uop-cache fields replaced (convenience for sweeps)."""
        return replace(self, uop_cache=replace(self.uop_cache, **kwargs))

    def with_capacity_uops(self, capacity: int) -> "SimulatorConfig":
        return replace(self, uop_cache=self.uop_cache.with_capacity_uops(capacity))


def baseline_config(capacity_uops: int = 2048) -> SimulatorConfig:
    """The paper's baseline: 2K-uop OC, no CLASP, no compaction."""
    return SimulatorConfig().with_capacity_uops(capacity_uops)


def clasp_config(capacity_uops: int = 2048) -> SimulatorConfig:
    """CLASP only (Section V-A)."""
    return baseline_config(capacity_uops).with_uop_cache(clasp=True)


def compaction_config(policy: CompactionPolicy,
                      capacity_uops: int = 2048,
                      max_entries_per_line: int = 2) -> SimulatorConfig:
    """CLASP + the given compaction policy (all paper compaction results enable CLASP)."""
    return baseline_config(capacity_uops).with_uop_cache(
        clasp=True, compaction=policy, max_entries_per_line=max_entries_per_line)
