"""Deterministic integer mixing for RNG seed derivation.

Seed derivation must be a *bijective, avalanching* map: every (seed,
stream-name) pair needs a distinct, well-scrambled RNG seed, and no input
may collapse to a fixed point.  Multiplicative schemes like
``seed * KNUTH % 2**32`` fail both requirements — ``seed=0`` maps to 0 no
matter what else is mixed in, and low bits avalanche poorly.  SplitMix64
(Steele, Lea & Flood, OOPSLA 2014) is the standard finalizer for exactly
this job: cheap, bijective on 64-bit values, and statistically strong
enough to seed downstream PRNGs.
"""

from __future__ import annotations

_MASK64 = (1 << 64) - 1


def splitmix64(value: int) -> int:
    """SplitMix64 finalizer: bijectively scramble a 64-bit integer.

    Negative or oversized inputs are reduced modulo 2**64 first, so any
    Python int is accepted.
    """
    value &= _MASK64
    value = (value + 0x9E3779B97F4A7C15) & _MASK64
    value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    value = ((value ^ (value >> 27)) * 0x94D049BB133111EB) & _MASK64
    return value ^ (value >> 31)


def derive_stream_seed(seed: int, stream: str) -> int:
    """Derive an independent RNG seed for a named stream.

    Distinct ``(seed, stream)`` pairs yield distinct, decorrelated seeds;
    in particular ``seed=0`` does *not* collapse to RNG seed 0.  The stream
    name is hashed with a deterministic FNV-1a (not ``hash()``, which is
    salted per process) so derivation is stable across interpreter runs.
    """
    name_hash = 0xCBF29CE484222325
    for byte in stream.encode("utf-8"):
        name_hash = ((name_hash ^ byte) * 0x100000001B3) & _MASK64
    return splitmix64(splitmix64(seed) ^ name_hash)
