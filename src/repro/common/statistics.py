"""Lightweight statistics primitives used across all simulator components.

The simulator prefers explicit, named counters over ad-hoc attributes so that
every structure can dump a coherent, flat report.  Three primitives cover all
needs:

- :class:`Counter` — a named monotonically increasing count.
- :class:`Histogram` — integer-bucketed distribution with helpers for
  percentage breakdowns (used for e.g. entry-size distributions, Fig. 5).
- :class:`RunningMean` — a numerically stable streaming mean (e.g. branch
  misprediction latency).
"""

from __future__ import annotations

import warnings
from collections import defaultdict
from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Sequence, Tuple, cast

from .errors import ReproWarning


@dataclass
class Counter:
    """A named monotonically increasing counter."""

    name: str
    value: int = 0

    def increment(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name!r} cannot decrease (got {amount})")
        self.value += amount

    def reset(self) -> None:
        self.value = 0


class Histogram:
    """An integer histogram with named-range bucketing helpers."""

    def __init__(self, name: str) -> None:
        self.name = name
        self._counts: Dict[int, int] = defaultdict(int)

    def record(self, value: int, weight: int = 1) -> None:
        if weight < 0:
            raise ValueError("histogram weight must be non-negative")
        self._counts[int(value)] += weight

    @property
    def total(self) -> int:
        return sum(self._counts.values())

    @property
    def counts(self) -> Mapping[int, int]:
        return dict(self._counts)

    def mean(self) -> float:
        total = self.total
        if total == 0:
            return 0.0
        return sum(v * c for v, c in self._counts.items()) / total

    def fraction_in(self, low: int, high: int) -> float:
        """Fraction of samples with ``low <= value <= high``."""
        total = self.total
        if total == 0:
            return 0.0
        hits = sum(c for v, c in self._counts.items() if low <= v <= high)
        return hits / total

    def bucketed(self, edges: Sequence[Tuple[int, int]]) -> Dict[str, float]:
        """Return ``{"lo-hi": fraction}`` for each inclusive ``(lo, hi)`` edge pair."""
        return {f"{lo}-{hi}": self.fraction_in(lo, hi) for lo, hi in edges}

    def merge(self, other: "Histogram") -> None:
        for value, count in other._counts.items():
            self._counts[value] += count

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Histogram):
            return NotImplemented
        return self.name == other.name and dict(self._counts) == dict(other._counts)

    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form (keys stringified for JSON round-trips)."""
        return {"name": self.name,
                "counts": {str(value): count
                           for value, count in sorted(self._counts.items())}}

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Histogram":
        hist = cls(cast(str, data["name"]))
        counts = cast(Mapping[str, int], data.get("counts", {}))
        for value, count in counts.items():
            hist._counts[int(value)] += int(count)
        return hist


@dataclass
class RunningMean:
    """Numerically stable streaming mean with sample count."""

    name: str
    count: int = 0
    _mean: float = 0.0

    def record(self, value: float) -> None:
        self.count += 1
        self._mean += (value - self._mean) / self.count

    @property
    def mean(self) -> float:
        return self._mean if self.count else 0.0


class StatGroup:
    """A flat, ordered collection of counters/histograms/means for one component.

    Components create their stats through a group so that reports stay
    consistent: ``group.counter("hits")`` both registers and returns the stat.
    """

    def __init__(self, prefix: str) -> None:
        self.prefix = prefix
        self._counters: Dict[str, Counter] = {}
        self._histograms: Dict[str, Histogram] = {}
        self._means: Dict[str, RunningMean] = {}

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._counters[name] = Counter(f"{self.prefix}.{name}")
        return self._counters[name]

    def histogram(self, name: str) -> Histogram:
        if name not in self._histograms:
            self._histograms[name] = Histogram(f"{self.prefix}.{name}")
        return self._histograms[name]

    def running_mean(self, name: str) -> RunningMean:
        if name not in self._means:
            self._means[name] = RunningMean(f"{self.prefix}.{name}")
        return self._means[name]

    def as_dict(self) -> Dict[str, float]:
        """Flatten every stat into ``{fully.qualified.name: value}``."""
        report: Dict[str, float] = {}
        for counter in self._counters.values():
            report[counter.name] = counter.value
        for mean in self._means.values():
            report[f"{mean.name}.mean"] = mean.mean
            report[f"{mean.name}.count"] = mean.count
        for hist in self._histograms.values():
            report[f"{hist.name}.total"] = hist.total
            report[f"{hist.name}.mean"] = hist.mean()
        return report


def ratio(numerator: float, denominator: float) -> float:
    """A 0-safe division used throughout metric computation."""
    return numerator / denominator if denominator else 0.0


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of non-negative values (paper reports G. Mean UPC).

    Negative values are a caller bug and raise :class:`ValueError`.  A zero
    value is a legitimate degenerate measurement (e.g. a metric that never
    fired in a partial sweep) and makes the whole mean 0.0 — the mathematical
    limit of the product — rather than blowing up mid-aggregation.  Because a
    zero usually indicates a quarantined job or a dead counter upstream, the
    degenerate path emits a :class:`ReproWarning` instead of staying silent.
    """
    values = list(values)
    if not values:
        return 0.0
    if any(v < 0 for v in values):
        raise ValueError("geometric mean requires non-negative values")
    zeros = sum(1 for v in values if v == 0)
    if zeros:
        warnings.warn(
            f"geometric mean over {len(values)} value(s) containing {zeros} "
            "zero(s) is 0.0; zeros usually mean a metric never fired "
            "(quarantined job or dead counter?)",
            ReproWarning, stacklevel=2)
        return 0.0
    product = 1.0
    for value in values:
        product *= value
    return product ** (1.0 / len(values))


def arithmetic_mean(values: Iterable[float]) -> float:
    values = list(values)
    return sum(values) / len(values) if values else 0.0
