"""Checksummed JSON record envelopes.

The checkpoint journal and the content-addressed result store both persist
JSON records that must survive crashes and detect bit rot.  Both use the
same envelope: the record payload is serialized to a *canonical* JSON body
(sorted keys, no whitespace) and wrapped as ``{"body": <json string>,
"crc": <crc32 of the body bytes>}``.

Canonical bodies make equal payloads byte-equal on disk — which is what
lets the chaos harness assert that a fault-injected run's persisted state
is *byte-identical* to a fault-free run.  The CRC turns "whatever still
parses" into "verified data": a torn write usually fails JSON parsing, but
a bit flip inside a string would not, and the checksum catches it.
"""

from __future__ import annotations

import json
import zlib
from typing import Any, Dict


class IntegrityError(ValueError):
    """An envelope failed to parse or verify (torn write or bit rot)."""


def canonical_json(payload: Dict[str, Any]) -> str:
    """Canonical serialization: equal payloads produce equal bytes."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def crc32_of(text: str) -> int:
    return zlib.crc32(text.encode("utf-8")) & 0xFFFFFFFF


def encode_envelope(payload: Dict[str, Any]) -> str:
    """One checksummed record line (no trailing newline)."""
    body = canonical_json(payload)
    return json.dumps({"body": body, "crc": crc32_of(body)},
                      separators=(",", ":"))


def decode_envelope(text: str) -> Dict[str, Any]:
    """Parse and checksum-verify one record; raises :class:`IntegrityError`.

    The error message distinguishes parse failures (torn writes) from
    checksum mismatches (bit rot) because operators triage them differently.
    """
    try:
        envelope = json.loads(text)
    except json.JSONDecodeError as error:
        raise IntegrityError(f"unparseable record (torn write?): {error}") \
            from error
    if not isinstance(envelope, dict) or "body" not in envelope \
            or "crc" not in envelope:
        raise IntegrityError("record envelope missing body/crc fields")
    body = envelope["body"]
    if not isinstance(body, str):
        raise IntegrityError("record body is not a string")
    if crc32_of(body) != envelope["crc"]:
        raise IntegrityError("CRC mismatch (bit rot or torn write)")
    try:
        payload = json.loads(body)
    except json.JSONDecodeError as error:   # CRC passed but body unparseable
        raise IntegrityError(f"checksummed body is not JSON: {error}") \
            from error
    if not isinstance(payload, dict):
        raise IntegrityError("record payload is not an object")
    return payload
