"""Naive, obviously-correct reference models for the differential oracle.

These classes re-implement the uop cache and the accumulation buffer the
simple way: per-set lists of entry lists, linear search on every probe, LRU
tracked with monotonically increasing touch stamps, and every derived
quantity (sizes, imm/disp counts, covered I-cache lines) recomputed from
scratch on demand.  No index dicts, no incremental byte accounting, no
recency-order lists — the data structures are chosen so a reader can check
each method against the paper's prose directly, at the cost of asymptotic
slowness the oracle does not care about.

Shared with the optimized code: only the ISA types (:class:`repro.isa.uop.Uop`
and the :func:`repro.isa.uop.uops_storage_bytes` sizing rule) and the
configuration dataclasses.  Everything behavioural is re-derived here so a
bug in the optimized structures cannot be mirrored by construction.

Semantics mirrored (see ``repro/uopcache/cache.py`` and ``builder.py``):

- fills are tagged ALLOC / RAC / PWAC / F-PWAC / DUPLICATE with the same
  policy ladder (same-PW line first, forced merge under F-PWAC, then the
  MRU-most line with room, then LRU allocation);
- LRU victim selection prefers the lowest-numbered empty way, else the
  least-recently-touched way, with untouched ways ordered by way index;
- SMC invalidating probes search the line's own set plus, under CLASP, the
  sets of the up-to ``clasp_max_lines - 1`` preceding lines, in ascending
  set order;
- accumulation seals entries on non-sequential flow, I-cache line boundary
  (relaxed by CLASP), content limits in the order max-uops / max-imm-disp /
  max-ucode / line-full, and predicted-taken branches; single instructions
  that overflow a fresh entry bypass the cache entirely.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..common.config import CompactionPolicy, UopCacheConfig
from ..common.errors import OracleError
from ..isa.uop import Uop, uops_storage_bytes


@dataclass(frozen=True)
class RefEntry:
    """One reference-model cache entry (plain data, no behaviour)."""

    start_pc: int
    end_pc: int
    pw_id: int
    uops: Tuple[Uop, ...]
    termination: str

    @property
    def num_uops(self) -> int:
        return len(self.uops)

    def size_bytes(self, config: UopCacheConfig) -> int:
        return uops_storage_bytes(self.uops, config.uop_bytes,
                                  config.imm_disp_bytes)

    def covered_lines(self, line_bytes: int) -> List[int]:
        """I-cache line addresses of the covered instructions' start bytes."""
        return sorted({(uop.pc // line_bytes) * line_bytes
                       for uop in self.uops})


class _RefLine:
    """One physical line: entries plus the stamp of its last touch."""

    def __init__(self, initial_stamp: int) -> None:
        self.entries: List[RefEntry] = []
        self.stamp = initial_stamp


class ReferenceUopCache:
    """Dict-free, linear-search re-implementation of the uop cache."""

    def __init__(self, config: UopCacheConfig,
                 icache_line_bytes: int = 64) -> None:
        self.config = config
        self.icache_line_bytes = icache_line_bytes
        # Way i starts with stamp i - associativity: all negative (older than
        # any real touch) and increasing with way index, which reproduces the
        # optimized TrueLru's initial [0, 1, ..., n-1] recency order.
        self._sets: List[List[_RefLine]] = [
            [_RefLine(way - config.associativity)
             for way in range(config.associativity)]
            for _ in range(config.num_sets)]
        self._tick = 0
        self.counters: Dict[str, int] = {
            "hits": 0, "misses": 0, "fills": 0, "uops_delivered": 0,
            "duplicate_fills": 0, "evicted_entries": 0,
            "invalidated_entries": 0,
        }
        self.fill_kinds: Dict[str, int] = {
            kind: 0 for kind in ("alloc", "rac", "pwac", "f-pwac",
                                 "duplicate")}
        self.termination_counts: Dict[str, int] = {}

    # -- bookkeeping ---------------------------------------------------------

    def _touch(self, line: _RefLine) -> None:
        self._tick += 1
        line.stamp = self._tick

    def set_index(self, pc: int) -> int:
        return (pc // self.icache_line_bytes) % self.config.num_sets

    def _find(self, pc: int) -> Optional[Tuple[_RefLine, RefEntry]]:
        for line in self._sets[self.set_index(pc)]:
            for entry in line.entries:
                if entry.start_pc == pc:
                    return line, entry
        return None

    # -- lookup --------------------------------------------------------------

    def lookup(self, pc: int) -> Optional[RefEntry]:
        found = self._find(pc)
        if found is None:
            self.counters["misses"] += 1
            return None
        line, entry = found
        self._touch(line)
        self.counters["hits"] += 1
        self.counters["uops_delivered"] += entry.num_uops
        return entry

    # -- fill ----------------------------------------------------------------

    def fill(self, entry: RefEntry) -> str:
        """Install one sealed entry; returns the fill kind label."""
        cfg = self.config
        if entry.size_bytes(cfg) > cfg.usable_line_bytes:
            raise OracleError(
                f"reference fill at {entry.start_pc:#x} exceeds line capacity")
        if self._find(entry.start_pc) is not None:
            self.counters["duplicate_fills"] += 1
            self.fill_kinds["duplicate"] += 1
            return "duplicate"
        self.termination_counts[entry.termination] = \
            self.termination_counts.get(entry.termination, 0) + 1

        set_index = self.set_index(entry.start_pc)
        if cfg.compaction is CompactionPolicy.NONE:
            kind = self._fill_alloc(set_index, entry)
        else:
            kind = self._fill_compacting(set_index, entry)
        self.counters["fills"] += 1
        self.fill_kinds[kind] += 1
        return kind

    def _ways_mru_first(self, set_index: int) -> List[_RefLine]:
        return sorted(self._sets[set_index],
                      key=lambda line: line.stamp, reverse=True)

    def _accepts(self, line: _RefLine, entry: RefEntry) -> bool:
        cfg = self.config
        if not line.entries:
            return False
        if len(line.entries) >= cfg.max_entries_per_line:
            return False
        used = sum(resident.size_bytes(cfg) for resident in line.entries)
        return cfg.usable_line_bytes - used >= entry.size_bytes(cfg)

    def _fill_alloc(self, set_index: int, entry: RefEntry) -> str:
        victim = None
        for line in self._sets[set_index]:       # lowest-numbered empty way
            if not line.entries:
                victim = line
                break
        if victim is None:                        # least recently touched way
            victim = min(self._sets[set_index], key=lambda line: line.stamp)
        self._evict(set_index, victim)
        victim.entries.append(entry)
        self._touch(victim)
        return "alloc"

    def _fill_compacting(self, set_index: int, entry: RefEntry) -> str:
        cfg = self.config
        if cfg.compaction in (CompactionPolicy.PWAC, CompactionPolicy.F_PWAC):
            buddy = None
            for line in self._ways_mru_first(set_index):
                if any(resident.pw_id == entry.pw_id
                       for resident in line.entries):
                    buddy = line
                    break
            if buddy is not None:
                if self._accepts(buddy, entry):
                    buddy.entries.append(entry)
                    self._touch(buddy)
                    return "pwac"
                if cfg.compaction is CompactionPolicy.F_PWAC and \
                        self._force_pw_merge(set_index, buddy, entry):
                    return "f-pwac"
        for line in self._ways_mru_first(set_index):
            if self._accepts(line, entry):
                line.entries.append(entry)
                self._touch(line)
                return "rac"
        return self._fill_alloc(set_index, entry)

    def _force_pw_merge(self, set_index: int, buddy: _RefLine,
                        entry: RefEntry) -> bool:
        cfg = self.config
        same_pw = [e for e in buddy.entries if e.pw_id == entry.pw_id]
        foreign = [e for e in buddy.entries if e.pw_id != entry.pw_id]
        if not foreign:
            return False
        merged_bytes = sum(e.size_bytes(cfg) for e in same_pw) + \
            entry.size_bytes(cfg)
        if merged_bytes > cfg.usable_line_bytes or \
                len(same_pw) + 1 > cfg.max_entries_per_line:
            return False
        if cfg.associativity < 2:
            return False
        # Victim: the least-recently-touched line other than the buddy
        # (empty-way preference does not apply here; the optimized code walks
        # the raw recency order, which includes invalid ways).
        victim = min((line for line in self._sets[set_index]
                      if line is not buddy), key=lambda line: line.stamp)
        self._evict(set_index, victim)
        victim.entries = list(foreign)
        buddy.entries = list(same_pw)
        buddy.entries.append(entry)
        self._touch(victim)
        self._touch(buddy)
        return True

    # -- eviction / invalidation --------------------------------------------

    def _evict(self, set_index: int, line: _RefLine) -> None:
        self.counters["evicted_entries"] += len(line.entries)
        line.entries = []

    def invalidate_icache_line(self, line_address: int) -> int:
        line_address = (line_address // self.icache_line_bytes) * \
            self.icache_line_bytes
        probes = {self.set_index(line_address)}
        if self.config.clasp:
            for back in range(1, self.config.clasp_max_lines):
                probes.add(self.set_index(
                    line_address - back * self.icache_line_bytes))
        removed = 0
        for set_index in sorted(probes):
            for line in self._sets[set_index]:
                keep = [entry for entry in line.entries
                        if line_address not in
                        entry.covered_lines(self.icache_line_bytes)]
                removed += len(line.entries) - len(keep)
                line.entries = keep
        self.counters["invalidated_entries"] += removed
        return removed

    # -- structural view -----------------------------------------------------

    def resident_tags(self) -> List[List[Tuple[int, int, int, int]]]:
        """Same shape as :meth:`repro.uopcache.cache.UopCache.resident_tags`."""
        out: List[List[Tuple[int, int, int, int]]] = []
        for ways in self._sets:
            tags = sorted((entry.start_pc, entry.end_pc, entry.pw_id,
                           entry.num_uops)
                          for line in ways for entry in line.entries)
            out.append(tags)
        return out


class ReferenceAccumulator:
    """Recompute-everything re-implementation of the accumulation buffer.

    Holds the open entry as a list of per-instruction uop groups and derives
    the limit checks from the full list on every push, instead of keeping
    incremental counters like the optimized ``EntryBuilder``.
    """

    def __init__(self, config: UopCacheConfig,
                 icache_line_bytes: int = 64) -> None:
        self.config = config
        self.icache_line_bytes = icache_line_bytes
        self._groups: List[Tuple[Uop, ...]] = []
        self._start_pc = 0
        self._first_line = 0
        self._end_pc = 0
        self._pw_id = 0
        # The PW identity an entry carries is the one current when the entry
        # OPENED, not when it sealed (entries may stay open across actions).
        self._open_pw_id = 0
        self.bypassed_uops = 0

    def begin(self, pw_id: int) -> None:
        self._pw_id = pw_id

    def _violation(self, inst_uops: Sequence[Uop]) -> Optional[str]:
        """The limit a would-be add violates, in the optimized check order."""
        cfg = self.config
        current = [uop for group in self._groups for uop in group]
        if len(current) + len(inst_uops) > cfg.max_uops_per_entry:
            return "max-uops"
        num_imm = sum(1 for uop in current + list(inst_uops)
                      if uop.has_imm_disp)
        if num_imm > cfg.max_imm_disp_per_entry:
            return "max-imm-disp"
        if inst_uops[0].is_microcoded:
            ucoded = {uop.pc for uop in current if uop.is_microcoded}
            ucoded.add(inst_uops[0].pc)
            if len(ucoded) > cfg.max_ucoded_per_entry:
                return "max-ucode"
        total_bytes = uops_storage_bytes(
            current + list(inst_uops), cfg.uop_bytes, cfg.imm_disp_bytes)
        if total_bytes > cfg.usable_line_bytes:
            return "line-full"
        return None

    def _line_boundary_violation(self, line: int) -> bool:
        if line == self._first_line:
            return False
        if not self.config.clasp:
            return True
        span = line - self._first_line + 1
        return span > self.config.clasp_max_lines or line < self._first_line

    def _seal(self, termination: str) -> RefEntry:
        entry = RefEntry(
            start_pc=self._start_pc,
            end_pc=self._end_pc,
            pw_id=self._open_pw_id,
            uops=tuple(uop for group in self._groups for uop in group),
            termination=termination,
        )
        self._groups = []
        return entry

    def push(self, inst_uops: Sequence[Uop], taken: bool) -> List[RefEntry]:
        """Feed one decoded instruction; returns entries it sealed."""
        if not inst_uops:
            raise OracleError("push requires at least one uop")
        sealed: List[RefEntry] = []
        pc = inst_uops[0].pc
        line = pc // self.icache_line_bytes

        if self._groups:
            if pc != self._end_pc:
                sealed.append(self._seal("pw-end"))
            elif self._line_boundary_violation(line):
                sealed.append(self._seal("icache-line-boundary"))
            else:
                violation = self._violation(inst_uops)
                if violation is not None:
                    sealed.append(self._seal(violation))

        if not self._groups:
            self._start_pc = pc
            self._first_line = line
            self._end_pc = pc
            self._open_pw_id = self._pw_id

        if self._violation(inst_uops) is not None:
            # Oversized single instruction: never cached (microcode sequencer).
            self._groups = []
            self.bypassed_uops += len(inst_uops)
            return sealed

        self._groups.append(tuple(inst_uops))
        self._end_pc = inst_uops[0].next_sequential_pc
        if taken:
            sealed.append(self._seal("taken-branch"))
        return sealed

    def flush(self) -> List[RefEntry]:
        """Seal any partial entry (end of accumulation run)."""
        if not self._groups:
            return []
        return [self._seal("pw-end")]
