"""Differential runner: optimized simulator vs reference models, in lockstep.

One :class:`DifferentialRunner` replays a single trace through both the
optimized :class:`~repro.core.simulator.Simulator` and the naive
:class:`~repro.oracle.frontend.ReferenceFrontEnd`, comparing the full
architectural counter surface (``supply_counters``) after every fetch action
and the resident-entry structural view on a stride.  The first disagreement
raises (or records) a structured :class:`OracleDivergence` naming the action,
the counter, both values, and the last N telemetry events the optimized side
emitted before the split.

Branch outcomes are resolved once, up front, through a dedicated
:class:`BranchPredictionUnit`: the unit is deterministic per instance and
observes records in trace order regardless of serving path, so the resulting
per-record outcome stream is path-independent and can be shared by both
models without the reference touching predictor code.

Optional SMC probes (self-modifying-code invalidations) are applied to both
caches at identical action boundaries from a seeded, trace-derived schedule,
exercising the invalidation/dissolution paths the paper's Section II-B4
describes.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, List, Optional, Sequence

from ..branch.predictor import BranchPredictionUnit
from ..branch.window import PredictionWindowBuilder
from ..common.config import SimulatorConfig
from ..common.errors import CacheError, OracleError, SimulationError
from ..core.simulator import Simulator
from ..telemetry.hub import TelemetryHub
from ..telemetry.sinks import RingBufferSink
from ..workloads.trace import Trace
from .frontend import OUTCOME_NONE, ReferenceFrontEnd

_END = object()     # sentinel: a model's step stream is exhausted


class OracleDivergence(OracleError):
    """The two models disagreed: structured first-divergence report."""

    def __init__(self, workload: str, config_label: str, action: int,
                 counter: str, reference: Any, optimized: Any,
                 events: Sequence[Dict[str, Any]] = ()) -> None:
        self.workload = workload
        self.config_label = config_label
        #: Index of the fetch action after which the models first disagreed.
        self.action = action
        #: Counter (or structural probe) that diverged.
        self.counter = counter
        self.reference = reference
        self.optimized = optimized
        #: Last telemetry events (as dicts) before the divergence, oldest
        #: first, from the optimized side's ring buffer.
        self.events = list(events)
        super().__init__(self._message())

    def _message(self) -> str:
        lines = [
            f"oracle divergence: workload={self.workload!r} "
            f"config={self.config_label!r} action={self.action} "
            f"counter={self.counter!r}",
            f"  reference = {self.reference!r}",
            f"  optimized = {self.optimized!r}",
        ]
        if self.events:
            lines.append(f"  last {len(self.events)} telemetry events:")
            for event in self.events:
                lines.append(f"    {event!r}")
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "workload": self.workload,
            "config_label": self.config_label,
            "action": self.action,
            "counter": self.counter,
            "reference": self.reference,
            "optimized": self.optimized,
            "events": self.events,
        }


@dataclass
class DiffReport:
    """Outcome of one differential run."""

    workload: str
    config_label: str
    actions: int = 0
    divergence: Optional[OracleDivergence] = None
    #: Final optimized-side counters (empty when the run diverged early).
    counters: Dict[str, int] = field(default_factory=dict)
    #: Behavioural signals this input exercised (the fuzzer's coverage key).
    coverage: FrozenSet[str] = frozenset()

    @property
    def ok(self) -> bool:
        return self.divergence is None


def resolve_branch_outcomes(trace: Trace, config: SimulatorConfig,
                            limit: Optional[int] = None) -> List[str]:
    """Per-record branch outcome labels from one deterministic BPU pass."""
    bpu = BranchPredictionUnit(config.branch)
    program = trace.program
    outcomes: List[str] = []
    for record in trace.records[:limit]:
        inst = program.at(record.pc)
        if not inst.is_branch:
            outcomes.append(OUTCOME_NONE)
            continue
        taken = record.next_pc != inst.end_address
        resolution = bpu.observe(inst, taken, record.next_pc)
        outcomes.append(resolution.outcome.value)
    return outcomes


def _first_mismatch(reference: Dict[str, int],
                    optimized: Dict[str, int]) -> Optional[str]:
    for key in sorted(set(reference) | set(optimized)):
        if reference.get(key) != optimized.get(key):
            return key
    return None


def first_result_divergence(reference: Dict[str, Any],
                            optimized: Dict[str, Any],
                            prefix: str = "") -> Optional[tuple]:
    """First differing field between two ``SimulationResult.to_dict()``
    payloads as ``(dotted.path, reference_value, optimized_value)``, walking
    nested dicts in sorted key order; ``None`` when equal.  Shared by the
    fast-mode differential below and the golden/fast-mode test suites so a
    divergence is always reported at field granularity."""
    for key in sorted(set(reference) | set(optimized), key=str):
        path = f"{prefix}{key}"
        ref_value = reference.get(key)
        opt_value = optimized.get(key)
        if isinstance(ref_value, dict) and isinstance(opt_value, dict):
            nested = first_result_divergence(ref_value, opt_value,
                                             prefix=f"{path}.")
            if nested is not None:
                return nested
            continue
        if ref_value != opt_value:
            return (path, ref_value, opt_value)
    return None


def _result_coverage(sim: Simulator) -> FrozenSet[str]:
    """Behavioural signals of a completed (non-telemetry) run, mirroring the
    reference differential's coverage key so the fuzzer's corpus guidance
    works identically in ``--fast-mode``."""
    signals = set()
    oc = sim.uop_cache
    for kind, count in oc.fill_kind_counts.items():
        if count:
            signals.add(f"fill:{kind.value}")
    for reason, count in oc.termination_counts.items():
        if count:
            signals.add(f"term:{reason.value}")
    if oc.evicted_entries:
        signals.add("behavior:evict")
    if oc.invalidated_entries:
        signals.add("behavior:smc")
    if oc.duplicate_fills:
        signals.add("behavior:duplicate")
    if sim.accumulator.bypassed_uops:
        signals.add("behavior:bypass")
    if oc.spanning_fill_fraction > 0:
        signals.add("behavior:clasp-span")
    if sim._mispredicts:
        signals.add("behavior:mispredict")
    if sim.bpu.decode_resteers:
        signals.add("behavior:resteer")
    if sim._uops_from_loop:
        signals.add("behavior:loop-cache")
    return frozenset(signals)


def diff_fast_mode(trace: Trace, config: SimulatorConfig,
                   config_label: str = "",
                   raise_on_divergence: bool = False) -> DiffReport:
    """Run ``trace`` through the normal serve loop and the counters-only
    fast mode and require identical :class:`SimulationResult` payloads.

    Unlike the lockstep reference differential, both sides here are the
    production simulator — the loop cache, warmup snapshots and every design
    are in scope — and the comparison is the full end-of-run result surface
    (``to_dict()``), field by field.  The first differing field is reported
    as an :class:`OracleDivergence` with the dotted field path as the
    counter name.
    """
    if config.fast_mode:
        config = config.with_fast_mode(False)
    normal_sim = Simulator(trace, config, config_label)
    normal = normal_sim.run()
    fast_sim = Simulator(trace, config.with_fast_mode(), config_label)
    report = DiffReport(workload=trace.name, config_label=config_label)
    try:
        fast = fast_sim.run()
    except (CacheError, SimulationError) as error:
        report.divergence = OracleDivergence(
            trace.name, config_label, 0, "exception",
            "no exception", repr(error))
    else:
        split = first_result_divergence(normal.to_dict(), fast.to_dict())
        if split is not None:
            report.divergence = OracleDivergence(
                trace.name, config_label, 0, *split)
    report.actions = len(trace.records)
    if report.divergence is None:
        report.counters = fast_sim.supply_counters()
    report.coverage = _result_coverage(normal_sim)
    if raise_on_divergence and report.divergence is not None:
        raise report.divergence
    return report


def _coverage_signals(sim: Simulator, hub: TelemetryHub,
                      ref_counters: Dict[str, int]) -> FrozenSet[str]:
    signals = {f"event:{kind}" for kind in hub.summary()}
    oc = sim.uop_cache
    for kind, count in oc.fill_kind_counts.items():
        if count:
            signals.add(f"fill:{kind.value}")
    for reason, count in oc.termination_counts.items():
        if count:
            signals.add(f"term:{reason.value}")
    if oc.evicted_entries:
        signals.add("behavior:evict")
    if oc.invalidated_entries:
        signals.add("behavior:smc")
    if oc.duplicate_fills:
        signals.add("behavior:duplicate")
    if sim.accumulator.bypassed_uops:
        signals.add("behavior:bypass")
    if oc.spanning_fill_fraction > 0:
        signals.add("behavior:clasp-span")
    if ref_counters.get("mispredicts"):
        signals.add("behavior:mispredict")
    if ref_counters.get("resteers"):
        signals.add("behavior:resteer")
    return frozenset(signals)


class DifferentialRunner:
    """Runs one trace through both models and compares them in lockstep."""

    def __init__(self, trace: Trace, config: SimulatorConfig,
                 config_label: str = "",
                 smc_interval: int = 0, smc_seed: int = 0,
                 check_interval: int = 64,
                 telemetry_tail: int = 16) -> None:
        if config.loop_cache.enabled:
            raise OracleError(
                "differential runs require the loop cache disabled "
                "(the reference front-end does not model it)")
        self.trace = trace
        self.config = config
        self.config_label = config_label
        self.smc_interval = smc_interval
        self.smc_seed = smc_seed
        self.check_interval = check_interval
        self.telemetry_tail = telemetry_tail

    def run(self, raise_on_divergence: bool = False) -> DiffReport:
        trace = self.trace
        config = self.config
        label = self.config_label
        line_bytes = config.memory.l1i.line_bytes

        hub = TelemetryHub(categories=("fetch", "uopcache"))
        ring = RingBufferSink(capacity=max(self.telemetry_tail, 1))
        hub.add_sink(ring)
        sim = Simulator(trace, config, label, telemetry=hub)
        windows = PredictionWindowBuilder(
            trace, line_bytes=line_bytes, config=config.branch).all_windows()
        outcomes = resolve_branch_outcomes(trace, config)
        ref = ReferenceFrontEnd(trace, config, windows, outcomes)

        smc_rng = random.Random(self.smc_seed)
        records = trace.records
        report = DiffReport(workload=trace.name, config_label=label)

        def diverge(action: int, counter: str, reference: Any,
                    optimized: Any) -> OracleDivergence:
            return OracleDivergence(
                trace.name, label, action, counter, reference, optimized,
                events=[event.to_dict()
                        for event in ring.tail(self.telemetry_tail)])

        opt_steps = sim.steps()
        ref_steps = ref.steps()
        action = 0
        while report.divergence is None:
            try:
                opt_state = next(opt_steps, _END)
            except (CacheError, SimulationError) as error:
                report.divergence = diverge(action, "exception",
                                            "no exception", repr(error))
                break
            ref_state = next(ref_steps, _END)
            if (opt_state is _END) != (ref_state is _END):
                report.divergence = diverge(
                    action, "action-count",
                    "finished" if ref_state is _END else "still serving",
                    "finished" if opt_state is _END else "still serving")
                break
            if opt_state is _END:
                break
            opt_counters = sim.supply_counters()
            mismatch = _first_mismatch(ref_state, opt_counters)
            if mismatch is not None:
                report.divergence = diverge(
                    action, mismatch, ref_state.get(mismatch),
                    opt_counters.get(mismatch))
                break
            if self.smc_interval and \
                    (action + 1) % self.smc_interval == 0:
                probe_pc = records[smc_rng.randrange(len(records))].pc
                removed_opt = sim.uop_cache.invalidate_icache_line(probe_pc)
                removed_ref = ref.cache.invalidate_icache_line(probe_pc)
                if removed_opt != removed_ref:
                    report.divergence = diverge(
                        action, "smc-removed", removed_ref, removed_opt)
                    break
            if self.check_interval and \
                    (action + 1) % self.check_interval == 0:
                structural = self._compare_structure(sim, ref)
                if structural is not None:
                    report.divergence = diverge(action, *structural)
                    break
            action += 1
        report.actions = action

        if report.divergence is None:
            structural = self._compare_structure(sim, ref)
            if structural is not None:
                report.divergence = diverge(action, *structural)
        ref_final = ref.supply_counters()
        if report.divergence is None:
            report.counters = sim.supply_counters()
        report.coverage = _coverage_signals(sim, hub, ref_final)
        if raise_on_divergence and report.divergence is not None:
            raise report.divergence
        return report

    def _compare_structure(self, sim: Simulator,
                           ref: ReferenceFrontEnd) -> Optional[tuple]:
        """(counter, reference, optimized) on mismatch, else None."""
        try:
            sim.uop_cache.check_invariants()
        except CacheError as error:
            return ("invariant", "consistent", repr(error))
        opt_tags = sim.uop_cache.resident_tags()
        ref_tags = ref.resident_tags()
        for set_index, (ref_set, opt_set) in \
                enumerate(zip(ref_tags, opt_tags)):
            if ref_set != opt_set:
                return (f"resident-set-{set_index}", ref_set, opt_set)
        return None
