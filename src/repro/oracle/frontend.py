"""Reference front-end: naive serving-mode accounting over the PW stream.

Re-implements the *architectural* half of :class:`repro.core.simulator
.Simulator.steps` — which records are served from which supply path, what
the accumulation buffer seals, what the uop cache does — without any of the
timing machinery (cycles, latencies, backpressure, the back-end).  Branch
outcomes are not predicted here: the differential runner pre-resolves the
trace through one deterministic :class:`BranchPredictionUnit` pass and hands
this model a plain per-record outcome string, so the reference shares no
predictor code with the engine under test (outcomes are a path-independent
function of the record stream; see ``repro/oracle/runner.py``).

Intentionally NOT modelled (documented in DESIGN.md section 11): fetch/decode
cycle timing, the loop cache (the reference refuses loop-enabled configs),
SMT sharing, warmup snapshots, and power accounting.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence

from ..common.config import SimulatorConfig
from ..common.errors import OracleError
from ..workloads.trace import Trace
from .reference import ReferenceAccumulator, ReferenceUopCache

#: Per-record outcome labels the runner feeds us (PredictionOutcome values
#: plus "none" for non-branch records).
OUTCOME_NONE = "none"
OUTCOME_CORRECT = "correct"
OUTCOME_RESTEER = "decode-resteer"
OUTCOME_MISPREDICT = "mispredict"

_FILL_KINDS = ("alloc", "rac", "pwac", "f-pwac", "duplicate")
_TERMINATIONS = ("icache-line-boundary", "taken-branch", "max-uops",
                 "max-imm-disp", "max-ucode", "line-full", "pw-end")


class ReferenceFrontEnd:
    """Replays a trace through the reference models, one fetch action at a
    time, mirroring the optimized simulator's serving decisions."""

    def __init__(self, trace: Trace, config: SimulatorConfig,
                 windows: Sequence, outcomes: Sequence[str]) -> None:
        if config.loop_cache.enabled:
            raise OracleError(
                "the reference front-end does not model the loop cache; "
                "disable it for differential runs")
        if len(outcomes) < min(len(trace.records),
                               config.max_instructions or len(trace.records)):
            raise OracleError("outcome stream shorter than the trace limit")
        self.trace = trace
        self.config = config
        self.windows = list(windows)
        self.outcomes = list(outcomes)
        line_bytes = config.memory.l1i.line_bytes
        self.cache = ReferenceUopCache(config.uop_cache,
                                       icache_line_bytes=line_bytes)
        self.accumulator = ReferenceAccumulator(config.uop_cache,
                                                icache_line_bytes=line_bytes)
        self._instructions = 0
        self._uops_oc = 0
        self._uops_ic = 0
        self._branches = 0
        self._mispredicts = 0
        self._resteers = 0

    # -- per-record helpers --------------------------------------------------

    def _consume(self, cursor: int, from_oc: bool) -> str:
        """Account one record; returns its branch outcome label."""
        record = self.trace.records[cursor]
        uops = self.trace.program.uops_at(record.pc)
        if from_oc:
            self._uops_oc += len(uops)
        else:
            self._uops_ic += len(uops)
        self._instructions += 1
        outcome = self.outcomes[cursor]
        if outcome != OUTCOME_NONE:
            self._branches += 1
            if outcome == OUTCOME_MISPREDICT:
                self._mispredicts += 1
            elif outcome == OUTCOME_RESTEER:
                self._resteers += 1
        return outcome

    def _taken(self, cursor: int) -> bool:
        record = self.trace.records[cursor]
        inst = self.trace.program.at(record.pc)
        return record.next_pc != inst.end_address

    # -- the serving loop ----------------------------------------------------

    def steps(self) -> Iterator[Dict[str, int]]:
        """Yields :meth:`supply_counters` after every fetch action."""
        records = self.trace.records
        program = self.trace.program
        cfg = self.config
        max_insts = cfg.max_instructions or len(records)
        limit = min(len(records), max_insts)
        cursor = 0
        window_index = 0
        pw = self.windows[0]

        while cursor < limit:
            while pw.last < cursor:
                window_index += 1
                pw = self.windows[window_index]
            pc = records[cursor].pc
            entry = self.cache.lookup(pc)
            if entry is not None:
                # Path switch to the uop cache drains the accumulator.
                for sealed in self.accumulator.flush():
                    self.cache.fill(sealed)
                start, end = entry.start_pc, entry.end_pc
                while cursor < limit:
                    if not (start <= records[cursor].pc < end):
                        break
                    taken = self._taken(cursor)
                    outcome = self._consume(cursor, from_oc=True)
                    cursor += 1
                    if outcome in (OUTCOME_MISPREDICT, OUTCOME_RESTEER):
                        break
                    if taken:
                        break
            else:
                end_index = min(pw.last, limit - 1)
                self.accumulator.begin(pw.pw_id)
                while cursor <= end_index:
                    record = records[cursor]
                    uops = program.uops_at(record.pc)
                    taken = self._taken(cursor)
                    outcome = self._consume(cursor, from_oc=False)
                    cursor += 1
                    for sealed in self.accumulator.push(uops, taken):
                        self.cache.fill(sealed)
                    if outcome in (OUTCOME_MISPREDICT, OUTCOME_RESTEER):
                        break
            yield self.supply_counters()

    def run(self) -> Dict[str, int]:
        counters = self.supply_counters()
        for counters in self.steps():
            pass
        return counters

    # -- comparison surface --------------------------------------------------

    def supply_counters(self) -> Dict[str, int]:
        """Same keys/values as ``Simulator.supply_counters`` must produce."""
        cache = self.cache
        counters = {
            "instructions": self._instructions,
            "uops_oc": self._uops_oc,
            "uops_ic": self._uops_ic,
            "uops_loop": 0,
            "oc_hits": cache.counters["hits"],
            "oc_misses": cache.counters["misses"],
            "oc_fills": cache.counters["fills"],
            "oc_uops_delivered": cache.counters["uops_delivered"],
            "oc_duplicate_fills": cache.counters["duplicate_fills"],
            "oc_evicted_entries": cache.counters["evicted_entries"],
            "oc_invalidated_entries": cache.counters["invalidated_entries"],
            "bypassed_uops": self.accumulator.bypassed_uops,
            "branches": self._branches,
            "mispredicts": self._mispredicts,
            "resteers": self._resteers,
        }
        for kind in _FILL_KINDS:
            counters[f"fill_{kind}"] = cache.fill_kinds[kind]
        for reason in _TERMINATIONS:
            counters[f"term_{reason}"] = \
                cache.termination_counts.get(reason, 0)
        counters["loop_captures"] = 0
        counters["loop_uops_served"] = 0
        counters["loop_exits"] = 0
        return counters

    def resident_tags(self) -> List:
        return self.cache.resident_tags()
