"""Differential-testing oracle: naive reference models, lockstep runner,
and a coverage-guided workload fuzzer.

The modules here deliberately share only ISA and configuration types with
the optimized simulator — every cache/accounting decision is re-derived
from the paper's prose in the most obvious way possible, so the two
implementations fail independently.
"""

from .frontend import ReferenceFrontEnd
from .fuzzer import (FuzzInput, FuzzResult, WorkloadFuzzer, build_profile,
                     minimize, replay_repro, run_input, write_repro)
from .reference import ReferenceAccumulator, ReferenceUopCache, RefEntry
from .runner import (DiffReport, DifferentialRunner, OracleDivergence,
                     diff_fast_mode, first_result_divergence,
                     resolve_branch_outcomes)

__all__ = [
    "DiffReport",
    "DifferentialRunner",
    "FuzzInput",
    "FuzzResult",
    "OracleDivergence",
    "diff_fast_mode",
    "first_result_divergence",
    "RefEntry",
    "ReferenceAccumulator",
    "ReferenceFrontEnd",
    "ReferenceUopCache",
    "WorkloadFuzzer",
    "build_profile",
    "minimize",
    "replay_repro",
    "resolve_branch_outcomes",
    "run_input",
    "write_repro",
]
