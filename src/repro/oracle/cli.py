"""CLI front-end for the differential oracle: ``python -m repro fuzz``.

Exit codes (CI contract, mirroring ``repro lint``):

- 0 — the budget completed with zero divergences,
- 1 — a divergence was found (minimized repro written under ``--out-dir``),
- 2 — usage/configuration error (unknown design, unwritable output, ...).
"""

from __future__ import annotations

import argparse
import sys
from typing import List

from ..core.experiment import DEFAULT_SEED, POLICY_LABELS
from ..common.errors import OracleError
from ..workloads.cli import engine_params_from_args
from ..workloads.engine import engine_names
from .fuzzer import WorkloadFuzzer, replay_repro


def add_fuzz_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach fuzz options to the ``repro fuzz`` subparser."""
    parser.add_argument("--designs", default="all",
                        help="comma-separated designs to fuzz, or 'all' "
                             f"({', '.join(POLICY_LABELS)})")
    parser.add_argument("--budget", type=int, default=100,
                        help="number of fuzz inputs to run (default: 100)")
    parser.add_argument("--seed", type=int, default=DEFAULT_SEED,
                        help=f"fuzzer RNG seed (default: {DEFAULT_SEED})")
    parser.add_argument("--max-seconds", type=float, default=None,
                        help="wall-clock budget; stop starting new inputs "
                             "after this many seconds")
    parser.add_argument("--instructions", type=int, default=1000,
                        help="max trace length per fuzz input "
                             "(default: 1000)")
    parser.add_argument("--out-dir", default="tests/repros",
                        help="where minimized repros are written "
                             "(default: tests/repros)")
    # Replay is excluded: it replays one fixed trace file, so there is no
    # parameter space to fuzz.
    parser.add_argument("--engine", default="synthetic",
                        choices=[name for name in engine_names()
                                 if name != "replay"],
                        help="fuzz this workload engine's parameter space "
                             "instead of the synthetic profile space "
                             "(default: synthetic)")
    parser.add_argument("--engine-params", default="", metavar="JSON",
                        help="base engine parameters as a JSON object; "
                             "the mutator jitters them per input")
    parser.add_argument("--fast-mode", action="store_true",
                        help="fuzz the counters-only fast mode against the "
                             "normal serve loop (full-result equality) "
                             "instead of against the reference front-end")
    parser.add_argument("--replay", default=None, metavar="REPRO_JSON",
                        help="re-run a minimized repro file instead of "
                             "fuzzing")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress progress lines")


def parse_designs(value: str) -> List[str]:
    if value.strip() == "all":
        return list(POLICY_LABELS)
    designs = [name.strip() for name in value.split(",") if name.strip()]
    if not designs:
        raise OracleError("--designs must name at least one design")
    for design in designs:
        if design not in POLICY_LABELS:
            raise OracleError(
                f"unknown design {design!r}; "
                f"known: {', '.join(POLICY_LABELS)} (or 'all')")
    return designs


def run_fuzz(args: argparse.Namespace) -> int:
    if args.replay is not None:
        report = replay_repro(args.replay)
        if report.divergence is not None:
            print(report.divergence)
            return 1
        print(f"replay of {args.replay}: no divergence "
              f"({report.actions} actions)")
        return 0

    designs = parse_designs(args.designs)
    fuzzer = WorkloadFuzzer(
        designs=designs, seed=args.seed, budget=args.budget,
        max_seconds=args.max_seconds,
        max_instructions=args.instructions,
        out_dir=args.out_dir,
        fast_mode=args.fast_mode,
        engine=args.engine,
        engine_params=engine_params_from_args(args))
    progress = None if args.quiet else \
        (lambda line: print("  " + line, file=sys.stderr))
    result = fuzzer.run(progress=progress)

    print(f"fuzz: {result.runs} runs ({result.skipped} skipped) over "
          f"{', '.join(designs)}; coverage {len(result.coverage)} signals, "
          f"corpus {result.corpus_size}")
    if result.divergence is None:
        print("fuzz: no divergences")
        return 0
    assert result.divergence.divergence is not None
    print(result.divergence.divergence)
    minimized = result.minimized_input
    if minimized is not None:
        print(f"fuzz: minimized to {minimized.num_instructions} "
              f"instructions -> {result.repro_path}")
    return 1
