"""Coverage-guided workload fuzzer for the differential oracle.

The fuzzer mutates :class:`~repro.workloads.generator.WorkloadProfile`
parameters (branch density, basic-block sizes, loop nests, call behaviour —
which together set PW lengths), plus the cache geometry and the SMC probe
schedule, and replays each generated input through the
:class:`~repro.oracle.runner.DifferentialRunner`.  Inputs that exercise new
behavioural signals (telemetry event kinds, fill kinds, entry terminations,
eviction/invalidation/bypass paths — the run's ``coverage`` set) join the
corpus and seed further mutation, so the search concentrates on inputs that
reach new code paths rather than wandering a flat parameter space.

A diverging input is *minimized* before reporting: binary search shrinks the
trace length to the shortest prefix that still diverges (trace generation is
prefix-stable in the instruction count), then a greedy pass simplifies the
profile parameters, re-shrinking the length after each accepted
simplification.  The minimized repro is written as JSON under
``tests/repros/`` and can be replayed with :func:`replay_repro` or
``python -m repro fuzz --replay``.

Everything is seeded: same ``--seed`` + ``--budget`` + designs → the same
inputs in the same order, byte-identical repro files.
"""

from __future__ import annotations

import json
import random
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple, Union

from ..common.errors import OracleError, WorkloadError
from ..core.experiment import POLICY_LABELS, policy_config
from ..workloads.engine import create_engine
from ..workloads.generator import WorkloadProfile, generate_workload
from .runner import DiffReport, DifferentialRunner, diff_fast_mode

#: Uop cache capacities the fuzzer samples (all valid ``with_capacity_uops``
#: arguments for the default 8-way x 8-uop geometry, giving 2..16 sets).
_CAPACITIES = (128, 256, 512, 1024)

#: Trip-count menus the mutator chooses between.
_TRIP_MENUS = ((2,), (2, 3), (2, 3, 4, 8), (2, 3, 4, 8, 16, 50), (4, 16))

#: Profile fields the mutator may change, with their sampling ranges.
_DEFAULT_PARAMS: Dict[str, Any] = {
    "num_functions": 4,
    "blocks_per_function": (2, 6),
    "insts_per_block": (1, 8),
    "loop_fraction": 0.2,
    "call_fraction": 0.1,
    "uncond_fraction": 0.08,
    "indirect_fraction": 0.02,
    "hard_branch_fraction": 0.1,
    "easy_taken_bias": 0.5,
    "loop_trip_counts": (2, 3, 4, 8),
    "hot_function_zipf": 1.2,
    "driver_uniform_fraction": 0.2,
    "phase_length": 0,
    "indirect_stickiness": 24,
}

#: Per-engine parameter menus the mutator samples when fuzzing a
#: registered workload engine instead of the synthetic profile space.
#: Every combination drawn from a menu satisfies that engine's
#: ``_validate`` (e.g. every hot_fraction here <= every cold_fraction).
_PHASED_MENU: Dict[str, Tuple[Any, ...]] = {
    "gen_seed": (1, 2, 3, 5, 8),
    "segment_length": (200, 500, 1000, 4000),
    "hot_fraction": (0.05, 0.12, 0.3),
    "cold_fraction": (0.5, 0.75, 1.0),
}

_ENGINE_PARAM_MENUS: Dict[str, Dict[str, Tuple[Any, ...]]] = {
    "phased-static": dict(_PHASED_MENU),
    "phased-dynamic": dict(_PHASED_MENU),
    "oscillating": dict(_PHASED_MENU),
    "adv-fragment": {
        "num_blocks": (16, 64, 160, 320, 640),
        "cond_every": (1, 2, 4, 8, 16),
    },
    "adv-smc": {
        "lines": (2, 4, 6, 12),
        "back_edge_bias": (0.4, 0.65, 0.9),
        "code_store_fraction": (0.25, 0.6, 0.9),
    },
    "adv-pwconflict": {
        "num_functions": (4, 16, 48, 96),
        "stride": (64, 2048, 4096),
    },
}


@dataclass(frozen=True)
class FuzzInput:
    """One fuzzed test case: everything needed to rebuild the exact run."""

    design: str
    profile_params: Tuple[Tuple[str, Any], ...]
    gen_seed: int = 1
    walk_seed: int = 7
    num_instructions: int = 600
    capacity_uops: int = 256
    max_entries_per_line: int = 2
    smc_interval: int = 0
    smc_seed: int = 0
    #: When set, the input is checked fast-mode-vs-normal (full-result
    #: equality on the production simulator) instead of against the
    #: lockstep reference front-end.
    fast_mode: bool = False
    #: Workload engine the input runs.  ``synthetic`` keeps the historical
    #: path (profile_params drive :func:`generate_workload` directly, so
    #: the fuzzer can explore the full profile space); any other name
    #: routes through the engine registry and ``profile_params`` is unused.
    engine: str = "synthetic"
    engine_params: Tuple[Tuple[str, Any], ...] = ()
    #: Suite workload non-synthetic engines build on (phased engines read
    #: it; the adversarial engines construct their own programs).
    workload: str = "bm-x64"

    def params(self) -> Dict[str, Any]:
        return dict(self.profile_params)

    def with_params(self, params: Dict[str, Any],
                    **overrides: Any) -> "FuzzInput":
        values = self.to_dict()
        values["profile_params"] = params
        values.update(overrides)
        return FuzzInput.from_dict(values)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "design": self.design,
            "profile_params": self.params(),
            "gen_seed": self.gen_seed,
            "walk_seed": self.walk_seed,
            "num_instructions": self.num_instructions,
            "capacity_uops": self.capacity_uops,
            "max_entries_per_line": self.max_entries_per_line,
            "smc_interval": self.smc_interval,
            "smc_seed": self.smc_seed,
            "fast_mode": self.fast_mode,
            "engine": self.engine,
            "engine_params": dict(self.engine_params),
            "workload": self.workload,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FuzzInput":
        params = data["profile_params"]
        normalized = tuple(sorted(
            (key, tuple(value) if isinstance(value, list) else value)
            for key, value in dict(params).items()))
        return cls(
            design=data["design"],
            profile_params=normalized,
            gen_seed=int(data.get("gen_seed", 1)),
            walk_seed=int(data.get("walk_seed", 7)),
            num_instructions=int(data.get("num_instructions", 600)),
            capacity_uops=int(data.get("capacity_uops", 256)),
            max_entries_per_line=int(data.get("max_entries_per_line", 2)),
            smc_interval=int(data.get("smc_interval", 0)),
            smc_seed=int(data.get("smc_seed", 0)),
            fast_mode=bool(data.get("fast_mode", False)),
            engine=str(data.get("engine", "synthetic")),
            engine_params=tuple(sorted(
                dict(data.get("engine_params", {})).items())),
            workload=str(data.get("workload", "bm-x64")),
        )


def build_profile(fuzz_input: FuzzInput) -> WorkloadProfile:
    """Materialize the profile (raises WorkloadError on invalid params)."""
    return WorkloadProfile(name="fuzz", **fuzz_input.params())


def run_input(fuzz_input: FuzzInput,
              check_interval: int = 64) -> DiffReport:
    """Differentially run one fuzz input; never raises on divergence."""
    if fuzz_input.design not in POLICY_LABELS:
        raise OracleError(
            f"unknown design {fuzz_input.design!r}; "
            f"known: {', '.join(POLICY_LABELS)}")
    if fuzz_input.engine != "synthetic":
        engine = create_engine(fuzz_input.engine,
                               workload=fuzz_input.workload,
                               params=dict(fuzz_input.engine_params))
        trace = engine.build_trace(fuzz_input.num_instructions,
                                   fuzz_input.walk_seed)
    else:
        profile = build_profile(fuzz_input)
        workload = generate_workload(profile, seed=fuzz_input.gen_seed)
        trace = workload.trace(fuzz_input.num_instructions,
                               seed=fuzz_input.walk_seed)
    config = policy_config(fuzz_input.design, fuzz_input.capacity_uops,
                           fuzz_input.max_entries_per_line)
    if fuzz_input.fast_mode:
        # Fast-vs-normal differential: both sides are the production
        # simulator; the SMC probe schedule (a lockstep-runner concept)
        # does not apply.
        return diff_fast_mode(trace, config, fuzz_input.design)
    runner = DifferentialRunner(
        trace, config, config_label=fuzz_input.design,
        smc_interval=fuzz_input.smc_interval,
        smc_seed=fuzz_input.smc_seed,
        check_interval=check_interval)
    return runner.run()


# ---------------------------------------------------------------- mutation

def _clamp(value: float, lo: float, hi: float) -> float:
    return max(lo, min(hi, value))


def _mutate_params(rng: random.Random,
                   params: Dict[str, Any]) -> Dict[str, Any]:
    """Jitter 1-3 profile parameters, keeping the profile valid."""
    out = dict(params)
    for _ in range(rng.randint(1, 3)):
        key = rng.choice(sorted(_DEFAULT_PARAMS))
        if key == "num_functions":
            out[key] = rng.randint(1, 24)
        elif key == "blocks_per_function":
            lo, hi = sorted((rng.randint(1, 8), rng.randint(1, 8)))
            out[key] = (lo, hi)
        elif key == "insts_per_block":
            lo, hi = sorted((rng.randint(1, 12), rng.randint(1, 12)))
            out[key] = (lo, hi)
        elif key in ("loop_fraction", "call_fraction",
                     "uncond_fraction", "indirect_fraction"):
            out[key] = round(_clamp(rng.uniform(0.0, 0.35), 0.0, 0.35), 3)
        elif key == "hard_branch_fraction":
            out[key] = round(rng.uniform(0.0, 0.5), 3)
        elif key == "easy_taken_bias":
            out[key] = round(rng.uniform(0.0, 1.0), 3)
        elif key == "loop_trip_counts":
            out[key] = rng.choice(_TRIP_MENUS)
        elif key == "hot_function_zipf":
            out[key] = round(rng.uniform(0.8, 1.5), 3)
        elif key == "driver_uniform_fraction":
            out[key] = round(rng.uniform(0.0, 0.5), 3)
        elif key == "phase_length":
            out[key] = rng.choice((0, 0, 250, 500, 1500))
        elif key == "indirect_stickiness":
            out[key] = rng.randint(1, 32)
    # Terminator fractions must sum to <= 1.0; rescale when mutation
    # overshoots instead of rejecting the input.
    total = (out["loop_fraction"] + out["call_fraction"] +
             out["uncond_fraction"] + out["indirect_fraction"])
    if total > 0.95:
        scale = 0.95 / total
        for key in ("loop_fraction", "call_fraction",
                    "uncond_fraction", "indirect_fraction"):
            out[key] = round(out[key] * scale, 4)
    return out


def _mutate_engine_params(rng: random.Random, engine: str,
                          params: Dict[str, Any]) -> Dict[str, Any]:
    """Jitter 1-2 engine parameters from the engine's menu."""
    menu = _ENGINE_PARAM_MENUS.get(engine, {})
    out = dict(params)
    if not menu:
        return out
    for _ in range(rng.randint(1, 2)):
        key = rng.choice(sorted(menu))
        out[key] = rng.choice(menu[key])
    return out


def mutate(rng: random.Random, parent: FuzzInput, design: str,
           max_instructions: int = 1000) -> FuzzInput:
    """Derive a new input from ``parent`` for the given design."""
    if parent.engine != "synthetic":
        engine_params = _mutate_engine_params(
            rng, parent.engine, dict(parent.engine_params))
        profile_params = parent.profile_params
    else:
        engine_params = {}
        profile_params = tuple(sorted(
            _mutate_params(rng, parent.params()).items()))
    smc_interval = rng.choice((0, 0, 16, 48, 128))
    return FuzzInput(
        design=design,
        profile_params=profile_params,
        gen_seed=rng.randint(1, 1 << 16),
        walk_seed=rng.randint(1, 1 << 16),
        num_instructions=rng.randint(100, max_instructions),
        capacity_uops=rng.choice(_CAPACITIES),
        max_entries_per_line=rng.choice((2, 2, 3, 4)),
        smc_interval=0 if parent.fast_mode else smc_interval,
        smc_seed=rng.randint(0, 1 << 16),
        fast_mode=parent.fast_mode,
        engine=parent.engine,
        engine_params=tuple(sorted(engine_params.items())),
        workload=parent.workload,
    )


# ------------------------------------------------------------ minimization

#: Candidate simplifications the greedy minimizer tries, in order.
_SHRINK_CANDIDATES: Tuple[Tuple[str, Tuple[Any, ...]], ...] = (
    ("num_functions", (1, 2)),
    ("blocks_per_function", ((1, 2), (2, 3))),
    ("insts_per_block", ((1, 4), (2, 6))),
    ("phase_length", (0,)),
    ("indirect_fraction", (0.0,)),
    ("uncond_fraction", (0.0,)),
    ("call_fraction", (0.0,)),
    ("loop_fraction", (0.0,)),
    ("hard_branch_fraction", (0.0,)),
)


def _shrink_instructions(fuzz_input: FuzzInput,
                         budget: List[int]) -> Tuple[FuzzInput, DiffReport]:
    """Binary-search the shortest still-diverging trace prefix."""
    report = run_input(fuzz_input)
    if report.divergence is None:
        raise OracleError("cannot minimize an input that does not diverge")
    best_input, best_report = fuzz_input, report
    lo, hi = 1, fuzz_input.num_instructions
    while lo < hi and budget[0] > 0:
        mid = (lo + hi) // 2
        budget[0] -= 1
        candidate = fuzz_input.with_params(
            fuzz_input.params(), num_instructions=mid)
        candidate_report = run_input(candidate)
        if candidate_report.divergence is not None:
            best_input, best_report = candidate, candidate_report
            hi = mid
        else:
            lo = mid + 1
    return best_input, best_report


def minimize(fuzz_input: FuzzInput,
             max_runs: int = 80) -> Tuple[FuzzInput, DiffReport]:
    """Shrink a diverging input; returns the smallest found + its report."""
    budget = [max_runs]
    best_input, best_report = _shrink_instructions(fuzz_input, budget)
    if best_input.engine != "synthetic":
        # Engine inputs have no profile to simplify; instead try dropping
        # each explicit engine parameter back to its default.
        for name, _ in best_input.engine_params:
            if budget[0] <= 0:
                break
            params = dict(best_input.engine_params)
            del params[name]
            budget[0] -= 1
            try:
                candidate = best_input.with_params(
                    best_input.params(), engine_params=params)
                candidate_report = run_input(candidate)
            except WorkloadError:
                continue
            if candidate_report.divergence is not None:
                best_input, best_report = candidate, candidate_report
    else:
        for key, candidates in _SHRINK_CANDIDATES:
            for value in candidates:
                if budget[0] <= 0:
                    break
                params = best_input.params()
                if params.get(key) == value:
                    continue
                params[key] = value
                budget[0] -= 1
                try:
                    candidate = best_input.with_params(params)
                    build_profile(candidate)
                    candidate_report = run_input(candidate)
                except WorkloadError:
                    continue
                if candidate_report.divergence is not None:
                    best_input, best_report = candidate, candidate_report
                    break
    if budget[0] > 0:
        best_input, best_report = _shrink_instructions(best_input, budget)
    return best_input, best_report


# ------------------------------------------------------------- repro files

def write_repro(path: Union[str, Path], fuzz_input: FuzzInput,
                report: DiffReport) -> Path:
    """Write a replayable JSON repro for a minimized diverging input."""
    if report.divergence is None:
        raise OracleError("refusing to write a repro without a divergence")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "input": fuzz_input.to_dict(),
        "divergence": report.divergence.to_dict(),
        "actions": report.actions,
    }
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n",
                    encoding="utf-8")
    return path


def replay_repro(path: Union[str, Path]) -> DiffReport:
    """Re-run a repro file's input and return the fresh report."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    return run_input(FuzzInput.from_dict(data["input"]))


# -------------------------------------------------------------- fuzz loop

#: Corpus seeds: three behaviourally distinct starting points (dense loopy
#: code, branchy sprawling code, call-heavy phased code).
_CORPUS_SEEDS: Tuple[Dict[str, Any], ...] = (
    dict(_DEFAULT_PARAMS),
    {**_DEFAULT_PARAMS, "num_functions": 12, "insts_per_block": (1, 4),
     "hard_branch_fraction": 0.35, "loop_fraction": 0.05,
     "indirect_fraction": 0.1},
    {**_DEFAULT_PARAMS, "num_functions": 8, "call_fraction": 0.3,
     "phase_length": 400, "insts_per_block": (2, 10),
     "loop_trip_counts": (2, 3)},
)


@dataclass
class FuzzResult:
    """Summary of one fuzzing session."""

    runs: int = 0
    skipped: int = 0
    corpus_size: int = 0
    coverage: Set[str] = field(default_factory=set)
    divergence: Optional[DiffReport] = None
    diverging_input: Optional[FuzzInput] = None
    minimized_input: Optional[FuzzInput] = None
    repro_path: Optional[Path] = None

    @property
    def ok(self) -> bool:
        return self.divergence is None


class WorkloadFuzzer:
    """Coverage-guided differential fuzzing over generator parameters."""

    def __init__(self, designs: Sequence[str], seed: int = 7,
                 budget: int = 100, max_seconds: Optional[float] = None,
                 max_instructions: int = 1000,
                 out_dir: Union[str, Path] = "tests/repros",
                 minimize_runs: int = 80,
                 fast_mode: bool = False,
                 engine: str = "synthetic",
                 engine_params: Optional[Dict[str, Any]] = None,
                 workload: str = "bm-x64") -> None:
        for design in designs:
            if design not in POLICY_LABELS:
                raise OracleError(
                    f"unknown design {design!r}; "
                    f"known: {', '.join(POLICY_LABELS)}")
        if not designs:
            raise OracleError("fuzzing needs at least one design")
        if engine == "replay":
            raise OracleError(
                "the replay engine replays a fixed trace file and cannot "
                "be fuzzed; choose a generative engine")
        if engine != "synthetic":
            try:
                # Validates the engine name and the base parameters
                # before the fuzz loop starts mutating them.
                create_engine(engine, workload=workload,
                              params=dict(engine_params or {}))
            except WorkloadError as error:
                raise OracleError(str(error)) from error
        self.designs = list(designs)
        self.seed = seed
        self.budget = budget
        self.max_seconds = max_seconds
        self.max_instructions = max_instructions
        self.out_dir = Path(out_dir)
        self.minimize_runs = minimize_runs
        self.fast_mode = fast_mode
        self.engine = engine
        self.engine_params = dict(engine_params or {})
        self.workload = workload

    def run(self, progress=None) -> FuzzResult:
        rng = random.Random(self.seed)
        # For the synthetic engine the corpus holds profile-parameter
        # dicts; for a registered engine it holds engine-parameter dicts
        # (seeded with the caller's base parameters).
        if self.engine == "synthetic":
            corpus: List[Dict[str, Any]] = [dict(seed_params)
                                            for seed_params in _CORPUS_SEEDS]
        else:
            corpus = [dict(self.engine_params)]
        session = FuzzResult()
        started = time.monotonic()

        for iteration in range(self.budget):
            if self.max_seconds is not None and \
                    time.monotonic() - started > self.max_seconds:
                break
            design = self.designs[iteration % len(self.designs)]
            parent_params = rng.choice(corpus)
            if self.engine == "synthetic":
                parent = FuzzInput(design=design, profile_params=tuple(
                    sorted(parent_params.items())), fast_mode=self.fast_mode)
            else:
                parent = FuzzInput(
                    design=design, profile_params=(),
                    fast_mode=self.fast_mode, engine=self.engine,
                    engine_params=tuple(sorted(parent_params.items())),
                    workload=self.workload)
            candidate = mutate(rng, parent, design,
                               max_instructions=self.max_instructions)
            try:
                if self.engine == "synthetic":
                    build_profile(candidate)
                report = run_input(candidate)
            except WorkloadError:
                # Valid-looking parameters can still fail at generation
                # time (e.g. degenerate block layouts); skip, don't crash.
                session.skipped += 1
                continue
            session.runs += 1
            design_coverage = {f"{design}:{signal}"
                               for signal in report.coverage}
            novel = design_coverage - session.coverage
            if novel:
                session.coverage |= design_coverage
                corpus.append(candidate.params() if
                              self.engine == "synthetic"
                              else dict(candidate.engine_params))
            if progress is not None and \
                    (novel or session.runs % 25 == 0):
                progress(f"run {session.runs}/{self.budget} "
                         f"[{design}] coverage={len(session.coverage)} "
                         f"corpus={len(corpus)}")
            if report.divergence is not None:
                session.diverging_input = candidate
                minimized, min_report = minimize(
                    candidate, max_runs=self.minimize_runs)
                session.minimized_input = minimized
                session.divergence = min_report
                mode = "fast-" if self.fast_mode else ""
                tag = "" if self.engine == "synthetic" else \
                    f"{self.engine}-"
                session.repro_path = write_repro(
                    self.out_dir / f"divergence-{mode}{tag}{design}-"
                    f"seed{self.seed}-run{session.runs}.json",
                    minimized, min_report)
                break
        session.corpus_size = len(corpus)
        return session
