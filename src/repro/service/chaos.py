"""Deterministic chaos harness: prove recovery, don't assert it.

Simulation results are deterministic functions of their specs, which gives
fault tolerance a rare luxury: recovery correctness is *checkable by
equality*.  ``run_chaos`` runs the same sweep twice —

1. a **fault-free reference** run, producing a result store;
2. a **chaos** run in a fresh directory, under a seeded schedule of faults:

   - ``kill``   — worker SIGKILLs itself mid-job (process death);
   - ``hang``   — the job sleeps past the pool deadline (livelock);
   - ``freeze`` — the worker suppresses heartbeats and stalls (silent
     freeze, caught by the heartbeat monitor, not the deadline);
   - ``crash``  — an in-process exception (the classic transient fault);
   - ``tear``   — a crash mid-persist: the checkpoint journal's trailing
     record is physically truncated mid-line *and* the matching store
     object is deleted;
   - ``flip``   — one bit flipped inside a stored record (bit rot).

   File-level faults are applied after the first service incarnation exits,
   then a second incarnation starts on the same directories — exercising
   journal tail recovery, store corruption quarantine, journal-healing and
   recomputation — and re-submits every spec.

The harness then asserts the chaos store is **byte-identical** to the
reference store (canonical records make equality meaningful) and that every
injected fault produced the matching recovery telemetry.  A fault the
service survived by *silently wrong* data cannot pass this check.

Everything is derived from one seed: fault victims, worker jitter, and the
simulations themselves, so a failing chaos run is replayable exactly.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from ..common.errors import ChaosError
from ..common.hashing import derive_stream_seed
from .protocol import JobSpec
from .server import SimulationService
from .store import ResultStore
from .supervisor import PoolConfig

PathLike = Union[str, Path]


@dataclass(frozen=True)
class ChaosSpec:
    """How many faults of each kind the schedule injects."""

    kills: int = 1
    hangs: int = 1
    freezes: int = 1
    crashes: int = 1
    tears: int = 1       # 0 or 1: there is one journal tail to tear
    flips: int = 1

    def __post_init__(self) -> None:
        for name in ("kills", "hangs", "freezes", "crashes", "tears",
                     "flips"):
            if getattr(self, name) < 0:
                raise ChaosError(f"{name} must be >= 0")
        if self.tears > 1:
            raise ChaosError(
                "tears must be 0 or 1: a journal has one trailing record "
                "to tear per service incarnation")

    @property
    def process_faults(self) -> int:
        return self.kills + self.hangs + self.freezes + self.crashes


@dataclass
class ChaosReport:
    """What was injected, what recovered, and whether the states match."""

    jobs: int = 0
    injected: Dict[str, int] = field(default_factory=dict)
    worker_faults: Dict[str, List[str]] = field(default_factory=dict)
    recovered_events: Dict[str, int] = field(default_factory=dict)
    quarantined: List[str] = field(default_factory=list)
    store_diff: List[str] = field(default_factory=list)
    missing_recoveries: List[str] = field(default_factory=list)
    equivalent: bool = False

    @property
    def ok(self) -> bool:
        return self.equivalent and not self.quarantined \
            and not self.missing_recoveries

    def describe(self) -> str:
        lines = [f"chaos: {self.jobs} job(s) under "
                 f"{sum(self.injected.values())} injected fault(s)"]
        for kind in sorted(self.injected):
            victims = ", ".join(self.worker_faults.get(kind, [])) or "-"
            lines.append(f"  injected {kind:<7s} x{self.injected[kind]}"
                         f"  [{victims}]")
        for kind in sorted(self.recovered_events):
            lines.append(f"  observed {kind} x"
                         f"{self.recovered_events[kind]}")
        if self.quarantined:
            lines.append("  QUARANTINED (jobs lost despite retries): "
                         + ", ".join(self.quarantined))
        for missing in self.missing_recoveries:
            lines.append(f"  MISSING RECOVERY: {missing}")
        if self.store_diff:
            lines.append("  STORE DIVERGENCE (chaos vs fault-free):")
            for entry in self.store_diff:
                lines.append(f"    {entry}")
        lines.append("  result stores are "
                     + ("byte-identical: recovery is lossless"
                        if self.equivalent else "DIFFERENT: recovery lost "
                        "or corrupted data"))
        return "\n".join(lines)


def build_worker_faults(keys: Sequence[str], seed: int, spec: ChaosSpec,
                        deadline_seconds: float,
                        ) -> Dict[str, List[Optional[Dict]]]:
    """Assign process-level faults to deterministic victims.

    Each requested fault lands on a job's next unfaulted leading attempt,
    round-robin over a seeded shuffle, so any number of faults ≤
    ``jobs × retries`` can be scheduled while every job still has a
    fault-free attempt left to succeed on.
    """
    if not keys:
        raise ChaosError("cannot build a chaos schedule with no jobs")
    rng = random.Random(derive_stream_seed(seed, "chaos/schedule"))
    order = sorted(keys)
    rng.shuffle(order)
    plans: Dict[str, List[Optional[Dict]]] = {}
    directives: List[Dict] = []
    directives += [{"kill": True}] * spec.kills
    directives += [{"hang": deadline_seconds * 3}] * spec.hangs
    directives += [{"freeze": deadline_seconds * 10}] * spec.freezes
    directives += [{"crash": True}] * spec.crashes
    rng.shuffle(directives)
    for index, directive in enumerate(directives):
        victim = order[index % len(order)]
        plans.setdefault(victim, []).append(directive)
    return plans


def _tear_journal_tail(journal_path: Path, store: ResultStore) -> List[str]:
    """Simulate a crash mid-persist: torn journal line + lost store object.

    Returns the torn keys (for the report); empty if there is no journal.
    """
    if not journal_path.exists():
        raise ChaosError(f"no journal to tear at {journal_path}")
    raw = journal_path.read_bytes()
    lines = [line for line in raw.split(b"\n") if line.strip()]
    if not lines:
        raise ChaosError(f"journal {journal_path} is empty; nothing to tear")
    last = lines[-1]
    # Identify the victim key before mutilating the record.
    import json as _json
    victim_key = _json.loads(
        _json.loads(last.decode("utf-8"))["body"])["job_id"]
    keep = raw[:raw.rindex(last)]
    torn = last[:max(1, len(last) * 2 // 3)]     # cut mid-record
    journal_path.write_bytes(keep + torn)
    object_path = store.object_path(victim_key)
    if object_path.exists():
        object_path.unlink()       # the store write never landed either
    return [victim_key]


def _flip_store_bit(store: ResultStore, key: str, seed: int) -> None:
    """Flip one payload bit inside a stored record (deterministic position).

    The flip lands *inside the checksummed body*, past the envelope
    prelude, so it models silent data corruption rather than truncation.
    """
    path = store.object_path(key)
    data = bytearray(path.read_bytes())
    rng = random.Random(derive_stream_seed(seed, f"chaos/flip/{key}"))
    # Skip the envelope prefix {"body": "... so the flip hits record data.
    start = min(16, len(data) - 1)
    position = rng.randrange(start, len(data))
    data[position] ^= 1 << rng.randrange(8)
    path.write_bytes(bytes(data))


def diff_stores(reference: ResultStore, subject: ResultStore) -> List[str]:
    """Human-readable byte-level differences between two stores."""
    left = reference.snapshot()
    right = subject.snapshot()
    differences: List[str] = []
    for name in sorted(set(left) | set(right)):
        if name not in right:
            differences.append(f"missing from chaos store: {name}")
        elif name not in left:
            differences.append(f"extra in chaos store: {name}")
        elif left[name] != right[name]:
            differences.append(f"bytes differ: {name}")
    return differences


def run_chaos(specs: Sequence[JobSpec], workdir: PathLike,
              chaos: Optional[ChaosSpec] = None, seed: int = 7,
              workers: int = 2, retries: Optional[int] = None,
              deadline_seconds: float = 5.0,
              heartbeat_timeout_seconds: float = 1.0) -> ChaosReport:
    """Run the sweep clean and under chaos; verify byte-equivalence.

    ``retries`` defaults to enough attempts for the worst-faulted job to
    still reach its fault-free attempt (schedule depth + 1 margin).
    """
    chaos = chaos or ChaosSpec()
    if not specs:
        raise ChaosError("chaos needs at least one job spec")
    workdir = Path(workdir)
    ref_dir = workdir / "reference"
    chaos_dir = workdir / "chaos"

    keys = []
    seen = set()
    for spec in specs:
        if spec.key not in seen:
            seen.add(spec.key)
            keys.append(spec.key)

    worker_faults = build_worker_faults(keys, seed, chaos, deadline_seconds)
    max_stacked = max((len(plan) for plan in worker_faults.values()),
                      default=0)
    if retries is None:
        retries = max_stacked + 1
    elif retries < max_stacked:
        raise ChaosError(
            f"retries={retries} cannot absorb {max_stacked} stacked "
            "fault(s) on one job; raise retries or lower fault counts")

    def pool_config() -> PoolConfig:
        return PoolConfig(
            workers=workers, retries=retries,
            deadline_seconds=deadline_seconds,
            heartbeat_timeout_seconds=heartbeat_timeout_seconds,
            seed=seed)

    report = ChaosReport(jobs=len(keys))
    report.injected = {
        "kill": chaos.kills, "hang": chaos.hangs, "freeze": chaos.freezes,
        "crash": chaos.crashes, "tear": chaos.tears, "flip": chaos.flips}
    for key, plan in sorted(worker_faults.items()):
        for directive in plan:
            kind = next(iter(directive))
            report.worker_faults.setdefault(
                kind, []).append(key[:12])

    # ---- 1. fault-free reference ------------------------------------------
    with SimulationService(ref_dir / "store",
                           checkpoint_dir=ref_dir / "checkpoint",
                           pool_config=pool_config()) as reference_service:
        reference_batch = reference_service.execute(specs)
    if not reference_batch.ok:
        raise ChaosError(
            "fault-free reference run failed; fix the sweep before "
            "injecting faults: "
            + "; ".join(f"{key}: {errors[-1]}"
                        for key, errors in
                        sorted(reference_batch.failures.items())))

    # ---- 2. chaos run: process-level faults -------------------------------
    events: Dict[str, int] = {}

    def harvest(service: SimulationService) -> None:
        for kind, count in service.hub.summary().items():
            events[kind] = events.get(kind, 0) + count

    chaos_service = SimulationService(
        chaos_dir / "store", checkpoint_dir=chaos_dir / "checkpoint",
        pool_config=pool_config(), faults=worker_faults)
    with chaos_service:
        phase_one = chaos_service.execute(specs)
    harvest(chaos_service)
    report.quarantined.extend(sorted(phase_one.failures))

    # ---- 3. file-level faults between service incarnations ----------------
    journal_path = chaos_dir / "checkpoint" / "journal.jsonl"
    chaos_store = ResultStore(chaos_dir / "store")
    if chaos.tears:
        _tear_journal_tail(journal_path, chaos_store)
    flip_candidates = [key for key in sorted(chaos_store.keys())]
    rng = random.Random(derive_stream_seed(seed, "chaos/flips"))
    flip_victims = rng.sample(flip_candidates,
                              min(chaos.flips, len(flip_candidates)))
    for key in flip_victims:
        _flip_store_bit(chaos_store, key, seed)

    # ---- 4. recovery incarnation ------------------------------------------
    recovery_service = SimulationService(
        chaos_dir / "store", checkpoint_dir=chaos_dir / "checkpoint",
        pool_config=pool_config())
    with recovery_service:
        phase_two = recovery_service.execute(specs)
    harvest(recovery_service)
    report.quarantined.extend(sorted(phase_two.failures))
    report.recovered_events = dict(sorted(events.items()))

    # ---- 5. verify --------------------------------------------------------
    reference_store = ResultStore(ref_dir / "store")
    report.store_diff = diff_stores(reference_store,
                                    ResultStore(chaos_dir / "store"))
    report.equivalent = not report.store_diff and not report.quarantined \
        and set(phase_two.results) == set(keys)

    expectations = [
        ("kill", chaos.kills, "worker_restart"),
        ("hang", chaos.hangs, "worker_restart"),
        ("freeze", chaos.freezes, "worker_restart"),
        ("tear", chaos.tears, "checkpoint_recovered"),
        ("flip", len(flip_victims), "store_corrupt"),
    ]
    for fault, count, event in expectations:
        if count and events.get(event, 0) == 0:
            report.missing_recoveries.append(
                f"injected {count} {fault} fault(s) but no {event} event "
                "was observed — the fault did not exercise recovery")
    return report
