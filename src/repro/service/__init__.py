"""Crash-safe simulation-as-a-service layer.

Public surface::

    from repro.service import (
        JobSpec, ResultStore, PoolConfig, WorkerPool,
        SimulationService, ServiceServer, ChaosSpec, run_chaos,
    )

The service accepts (workload, config-overrides, design, seed) job
submissions, shards them across a supervised pool of worker processes, and
persists results in a content-addressed store keyed by a canonical
config+workload+seed hash — duplicate submissions are free cache hits.
Robustness is enforced by construction: worker supervision with heartbeats
and per-job deadlines, restart with jittered backoff, escalating
quarantine, checksummed atomic persistence with torn-tail recovery, and
graceful degradation to explicit-gap partial results.  The chaos harness
(:mod:`repro.service.chaos`, ``repro chaos``) proves the failure story by
injecting process- and file-level faults under a seeded schedule and
asserting the end state is byte-identical to a fault-free run.
"""

from .chaos import ChaosReport, ChaosSpec, run_chaos
from .protocol import JobSpec, execute_spec
from .server import ServiceBatchResult, ServiceServer, SimulationService
from .store import ResultStore
from .supervisor import BatchReport, PoolConfig, WorkerPool

__all__ = [
    "BatchReport",
    "ChaosReport",
    "ChaosSpec",
    "JobSpec",
    "PoolConfig",
    "ResultStore",
    "ServiceBatchResult",
    "ServiceServer",
    "SimulationService",
    "WorkerPool",
    "execute_spec",
    "run_chaos",
]
