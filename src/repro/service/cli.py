"""CLI entry points for the job service: ``repro serve`` / ``repro chaos``.

``serve`` runs the asyncio HTTP front end until interrupted.  ``chaos``
runs the fault-injection harness and exits nonzero unless the chaos run's
result store is byte-identical to the fault-free reference — so CI can use
it as a one-command crash-safety smoke test.
"""

from __future__ import annotations

import argparse
import asyncio
import sys
import tempfile
from typing import List

from ..workloads.cli import add_engine_arguments, engine_params_from_args
from .chaos import ChaosSpec, run_chaos
from .protocol import JobSpec
from .server import ServiceServer, SimulationService
from .supervisor import PoolConfig

#: Default chaos sweep: small but heterogeneous (different workloads and
#: designs so the stores hold distinguishable records).
_CHAOS_DESIGNS = ("baseline", "clasp", "pwac")


# ------------------------------------------------------------------- serve

def add_serve_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default: 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8180,
                        help="TCP port; 0 picks a free one (default: 8180)")
    parser.add_argument("--store-dir", default="service-store",
                        help="result store directory "
                             "(default: service-store)")
    parser.add_argument("--checkpoint-dir", default=None,
                        help="also journal results here (enables "
                             "store/journal cross-healing)")
    parser.add_argument("--workers", type=int, default=2,
                        help="simulation worker processes (default: 2)")
    parser.add_argument("--retries", type=int, default=2,
                        help="retries per failing job (default: 2)")
    parser.add_argument("--deadline", type=float, default=300.0,
                        help="per-job wall-clock deadline in seconds "
                             "(default: 300)")
    parser.add_argument("--seed", type=int, default=7,
                        help="backoff jitter seed (default: 7)")
    # Default engine injected into job specs that omit one; a spec's own
    # "engine" field always wins.
    add_engine_arguments(parser)


def run_serve(args: argparse.Namespace) -> int:
    config = PoolConfig(workers=args.workers, retries=args.retries,
                        deadline_seconds=args.deadline, seed=args.seed)
    service = SimulationService(args.store_dir,
                                checkpoint_dir=args.checkpoint_dir,
                                pool_config=config)
    server = ServiceServer(service, host=args.host, port=args.port,
                           default_engine=args.engine,
                           default_engine_params=engine_params_from_args(args))

    async def _serve() -> None:
        await server.start()
        print(f"repro service on http://{server.host}:{server.port} "
              f"({config.workers} worker(s), store: {args.store_dir})",
              file=sys.stderr)
        try:
            await server.serve_forever()
        finally:
            await server.stop()

    with service:
        try:
            asyncio.run(_serve())
        except KeyboardInterrupt:
            print("service interrupted; shutting down", file=sys.stderr)
    return 0


# ------------------------------------------------------------------- chaos

def add_chaos_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=7,
                        help="chaos schedule + simulation seed (default: 7)")
    parser.add_argument("--workloads", default="redis,nutch,jvm",
                        help="comma-separated workloads to sweep "
                             "(default: redis,nutch,jvm)")
    parser.add_argument("--instructions", type=int, default=6_000,
                        help="trace length per job (default: 6000; keep "
                             "small — every job runs at least twice)")
    parser.add_argument("--workers", type=int, default=2,
                        help="pool worker processes (default: 2)")
    parser.add_argument("--workdir", default=None,
                        help="run under this directory instead of a "
                             "temporary one (kept for inspection)")
    parser.add_argument("--kills", type=int, default=1,
                        help="worker SIGKILLs mid-job (default: 1)")
    parser.add_argument("--hangs", type=int, default=1,
                        help="jobs hanging past the deadline (default: 1)")
    parser.add_argument("--freezes", type=int, default=1,
                        help="workers freezing with heartbeats suppressed "
                             "(default: 1)")
    parser.add_argument("--crashes", type=int, default=1,
                        help="in-process worker exceptions (default: 1)")
    parser.add_argument("--tears", type=int, default=1, choices=(0, 1),
                        help="torn checkpoint journal writes (default: 1)")
    parser.add_argument("--flips", type=int, default=1,
                        help="bit-flipped store records (default: 1)")
    parser.add_argument("--deadline", type=float, default=5.0,
                        help="per-job deadline in seconds; hang faults "
                             "sleep past it, so each hang costs one "
                             "deadline of wall-clock (default: 5)")


def _chaos_specs(args: argparse.Namespace) -> List[JobSpec]:
    workloads = [name.strip() for name in args.workloads.split(",")
                 if name.strip()]
    specs: List[JobSpec] = []
    for index, workload in enumerate(workloads):
        design = _CHAOS_DESIGNS[index % len(_CHAOS_DESIGNS)]
        specs.append(JobSpec(workload=workload, design=design,
                             num_instructions=args.instructions,
                             seed=args.seed))
    return specs


def run_chaos_command(args: argparse.Namespace) -> int:
    spec = ChaosSpec(kills=args.kills, hangs=args.hangs,
                     freezes=args.freezes, crashes=args.crashes,
                     tears=args.tears, flips=args.flips)
    specs = _chaos_specs(args)

    def _run(workdir: str) -> int:
        report = run_chaos(specs, workdir, chaos=spec, seed=args.seed,
                           workers=args.workers,
                           deadline_seconds=args.deadline)
        print(report.describe())
        return 0 if report.ok else 1

    if args.workdir is not None:
        return _run(args.workdir)
    with tempfile.TemporaryDirectory(prefix="repro-chaos-") as workdir:
        return _run(workdir)
