"""Supervised worker pool: heartbeats, deadlines, restart, quarantine.

The pool owns ``workers`` long-lived processes and shards job specs across
them.  Supervision model, enforced from the parent side so no cooperation
from a sick worker is required:

- **Heartbeats.**  A working worker beats every ``heartbeat_interval``
  seconds from a side thread; a busy worker that goes silent for
  ``heartbeat_timeout`` is presumed frozen (GIL-stuck, suspended, swapped
  to death) and is killed and replaced.  Process *death* (SIGKILL, OOM,
  segfault) is detected directly from the closed pipe / dead process.
- **Per-job deadlines.**  An attempt running past ``deadline_seconds`` is
  killed even if it beats on time — a hung simulation is indistinguishable
  from an infinite loop and the rest of the sweep must not wait on it.
- **Restart with jittered backoff.**  A replaced worker slot respawns after
  a deterministic jittered delay that escalates with consecutive failures
  (:func:`repro.runner.backoff.jittered_backoff`), so a crash-looping host
  does not fork-bomb itself while still recovering quickly from one-off
  kills.
- **Escalating quarantine.**  A failed attempt is retried on a fresh worker
  up to ``retries`` times with the same jittered backoff discipline the
  sweep runner uses; a job that keeps failing is quarantined with its full
  error history and the *batch completes without it* — explicit-gap partial
  results instead of nothing.

Chaos directives (see :mod:`repro.service.chaos`) ride along with job
dispatch and execute *inside the worker*, so injected kills, hangs, freezes
and crashes exercise exactly the recovery paths real faults would.
"""

from __future__ import annotations

import multiprocessing
import os
import signal
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from ..common.errors import InjectedFaultError, ServiceError
from ..core.metrics import SimulationResult
from ..runner.backoff import jittered_backoff
from ..runner.executor import JobFailure
from ..telemetry.events import EventKind
from ..telemetry.hub import TelemetryHub
from .protocol import JobSpec, execute_spec

#: Fault directive keys a worker understands (everything else is rejected
#: at schedule build time, not silently ignored in the worker).
FAULT_KINDS = ("crash", "kill", "hang", "freeze")


@dataclass(frozen=True)
class PoolConfig:
    """Supervision policy of one worker pool."""

    workers: int = 2
    retries: int = 2                      # re-runs after the first failure
    deadline_seconds: Optional[float] = 60.0   # per-attempt budget
    heartbeat_interval_seconds: float = 0.1
    heartbeat_timeout_seconds: float = 2.0
    retry_backoff_seconds: float = 0.05   # base of the job retry backoff
    retry_backoff_cap_seconds: float = 2.0
    restart_backoff_seconds: float = 0.05  # base of the slot respawn backoff
    restart_backoff_cap_seconds: float = 2.0
    seed: int = 7                          # decorrelates slot respawn jitter
    poll_interval_seconds: float = 0.01

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ServiceError("pool needs at least one worker")
        if self.retries < 0:
            raise ServiceError("retries must be >= 0")
        if self.deadline_seconds is not None and self.deadline_seconds <= 0:
            raise ServiceError("deadline must be positive")
        if self.heartbeat_interval_seconds <= 0 or \
                self.heartbeat_timeout_seconds <= 0:
            raise ServiceError("heartbeat interval/timeout must be positive")
        if self.heartbeat_timeout_seconds <= \
                2 * self.heartbeat_interval_seconds:
            raise ServiceError(
                "heartbeat timeout must exceed twice the interval, or "
                "ordinary scheduling jitter reads as a frozen worker")


@dataclass
class BatchReport:
    """What actually happened while executing one batch."""

    total_jobs: int = 0
    executed: List[str] = field(default_factory=list)   # completion order
    retried: Dict[str, int] = field(default_factory=dict)
    quarantined: List[JobFailure] = field(default_factory=list)
    worker_restarts: int = 0
    elapsed_seconds: float = 0.0

    @property
    def ok(self) -> bool:
        return not self.quarantined

    def describe(self) -> str:
        lines = [f"batch: {len(self.executed)}/{self.total_jobs} jobs "
                 f"completed ({len(self.quarantined)} quarantined, "
                 f"{self.worker_restarts} worker restart(s)) "
                 f"in {self.elapsed_seconds:.1f}s"]
        for key, failures in sorted(self.retried.items()):
            lines.append(f"  retried {key}: succeeded after "
                         f"{failures} failed attempt(s)")
        for failure in self.quarantined:
            lines.append(f"  QUARANTINED {failure.job_id} after "
                         f"{failure.attempts} attempt(s):")
            for number, error in enumerate(failure.errors, 1):
                lines.append(f"    attempt {number}: {error}")
        return "\n".join(lines)


# --------------------------------------------------------------- worker side

def _apply_worker_fault(fault: Mapping[str, Any]) -> None:
    """Execute an injected fault directive inside the worker process."""
    if fault.get("crash"):
        raise InjectedFaultError("injected in-process crash")
    if fault.get("kill"):
        # Process-level death mid-job: no cleanup, no goodbye — exactly
        # what SIGKILL from an OOM killer or operator looks like.
        os.kill(os.getpid(), signal.SIGKILL)
    hang = float(fault.get("hang", 0.0) or 0.0)
    if hang > 0.0:
        time.sleep(hang)     # heartbeats keep flowing; the deadline trips
    freeze = float(fault.get("freeze", 0.0) or 0.0)
    if freeze > 0.0:
        time.sleep(freeze)   # heartbeats were suppressed; the monitor trips


def _worker_main(conn: Any, heartbeat_interval: float) -> None:
    """Worker loop: recv job -> beat -> simulate -> send outcome."""
    send_lock = threading.Lock()

    def send(message: Tuple[Any, ...]) -> None:
        with send_lock:
            try:
                conn.send(message)
            except (BrokenPipeError, OSError):
                pass     # parent gave up on us; nothing left to report to

    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message[0] == "stop":
            break
        _, key, spec_dict, attempt, fault = message
        stop_beating = threading.Event()

        def beat(job_key: str = key, stop: threading.Event = stop_beating
                 ) -> None:
            while not stop.wait(heartbeat_interval):
                send(("beat", job_key))

        # A "freeze" fault suppresses heartbeats entirely: the worker is
        # alive but silent, the failure mode the heartbeat monitor exists
        # to catch (a SIGKILL would also kill the beater, but then the
        # process death is visible; a freeze is invisible without beats).
        beater = threading.Thread(target=beat, daemon=True)
        if not (fault and fault.get("freeze")):
            beater.start()
        try:
            send(("beat", key))            # instant first beat on dispatch
            if fault:
                _apply_worker_fault(fault)
            spec = JobSpec.from_dict(spec_dict)
            result = execute_spec(spec)
            send(("ok", key, attempt, result.to_dict()))
        except BaseException as error:     # ship *any* failure to the parent
            send(("err", key, attempt, f"{type(error).__name__}: {error}"))
        finally:
            stop_beating.set()
    conn.close()


# ----------------------------------------------------------- supervisor side

@dataclass
class _Attempt:
    key: str
    spec: JobSpec
    attempt: int              # 0-based attempt counter
    eligible_at: float        # monotonic time before which it must not start
    order: int                # canonical submission position


class _Slot:
    """One supervised worker seat (the process in it comes and goes)."""

    __slots__ = ("index", "process", "conn", "busy", "started_at",
                 "last_beat", "respawn_at", "consecutive_failures")

    def __init__(self, index: int) -> None:
        self.index = index
        self.process: Optional[Any] = None
        self.conn: Optional[Any] = None
        self.busy: Optional[_Attempt] = None
        self.started_at = 0.0
        self.last_beat = 0.0
        self.respawn_at = 0.0
        self.consecutive_failures = 0

    @property
    def live(self) -> bool:
        return self.process is not None and self.process.is_alive()


class WorkerPool:
    """Supervised pool executing :class:`JobSpec` batches."""

    def __init__(self, config: Optional[PoolConfig] = None,
                 telemetry: Optional[TelemetryHub] = None,
                 faults: Optional[Mapping[str, Sequence[Optional[Dict]]]]
                 = None) -> None:
        self.config = config or PoolConfig()
        self.telemetry = telemetry
        #: ``key -> per-attempt fault directives`` (chaos injection).
        self.faults = dict(faults) if faults else {}
        self._slots: List[_Slot] = []
        self._started = False
        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError:   # platform without fork: specs must pickle
            self._ctx = multiprocessing.get_context()

    # ------------------------------------------------------------- lifecycle

    def start(self) -> None:
        if self._started:
            raise ServiceError("worker pool already started")
        self._slots = [_Slot(index) for index in range(self.config.workers)]
        for slot in self._slots:
            self._spawn(slot)
        self._started = True

    def stop(self) -> None:
        """Shut every worker down; forceful if they don't go quietly."""
        for slot in self._slots:
            if slot.conn is not None:
                try:
                    slot.conn.send(("stop",))
                except (BrokenPipeError, OSError):
                    pass     # already dead; reaped below
        for slot in self._slots:
            if slot.process is not None:
                slot.process.join(timeout=2)
                if slot.process.is_alive():
                    slot.process.terminate()
                    slot.process.join(timeout=2)
                if slot.process.is_alive():   # pragma: no cover - stubborn
                    slot.process.kill()
                    slot.process.join(timeout=2)
            if slot.conn is not None:
                slot.conn.close()
            slot.process = None
            slot.conn = None
        self._started = False

    def __enter__(self) -> "WorkerPool":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()

    # ----------------------------------------------------------- supervision

    def _spawn(self, slot: _Slot) -> None:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_worker_main,
            args=(child_conn, self.config.heartbeat_interval_seconds),
            daemon=True)
        process.start()
        child_conn.close()
        slot.process = process
        slot.conn = parent_conn
        slot.busy = None
        slot.respawn_at = 0.0

    def _replace(self, slot: _Slot, reason: str, report: BatchReport) -> None:
        """Kill (if needed) and schedule a respawn with escalating backoff."""
        if slot.process is not None:
            if slot.process.is_alive():
                slot.process.kill()
            slot.process.join(timeout=5)
        if slot.conn is not None:
            slot.conn.close()
        slot.process = None
        slot.conn = None
        slot.busy = None
        delay = jittered_backoff(
            self.config.restart_backoff_seconds,
            self.config.restart_backoff_cap_seconds,
            slot.consecutive_failures, self.config.seed,
            f"worker-slot/{slot.index}")
        slot.consecutive_failures += 1
        slot.respawn_at = time.monotonic() + delay
        report.worker_restarts += 1
        if self.telemetry is not None:
            self.telemetry.emit(EventKind.WORKER_RESTART, worker=slot.index,
                                reason=reason,
                                restarts=report.worker_restarts)

    def _fault_for(self, key: str, attempt: int) -> Optional[Dict]:
        plan = self.faults.get(key)
        if plan is None or attempt >= len(plan):
            return None
        return plan[attempt]

    # -------------------------------------------------------------- batching

    def run_batch(self, assignments: Sequence[Tuple[str, JobSpec]]
                  ) -> Tuple[Dict[str, SimulationResult], BatchReport]:
        """Execute ``(key, spec)`` assignments; returns ``(results, report)``.

        Results preserve canonical submission order; quarantined keys are
        simply absent (the report carries their error history).
        """
        if not self._started:
            raise ServiceError("worker pool is not started")
        seen: Dict[str, JobSpec] = {}
        for key, spec in assignments:
            if key in seen:
                raise ServiceError(f"duplicate batch key {key!r}")
            seen[key] = spec

        cfg = self.config
        started = time.monotonic()
        report = BatchReport(total_jobs=len(assignments))
        completed: Dict[str, SimulationResult] = {}
        errors: Dict[str, List[str]] = {}
        pending: List[_Attempt] = [
            _Attempt(key=key, spec=spec, attempt=0, eligible_at=0.0,
                     order=index)
            for index, (key, spec) in enumerate(assignments)]

        def fail_attempt(attempt: _Attempt, message: str) -> None:
            history = errors.setdefault(attempt.key, [])
            history.append(message)
            if attempt.attempt < cfg.retries:
                delay = jittered_backoff(
                    cfg.retry_backoff_seconds,
                    cfg.retry_backoff_cap_seconds, attempt.attempt,
                    attempt.spec.seed, f"service/{attempt.key}")
                pending.append(_Attempt(
                    key=attempt.key, spec=attempt.spec,
                    attempt=attempt.attempt + 1,
                    eligible_at=time.monotonic() + delay,
                    order=attempt.order))
            else:
                report.quarantined.append(JobFailure(
                    job_id=attempt.key, attempts=len(history),
                    errors=history))
                if self.telemetry is not None:
                    self.telemetry.emit(EventKind.JOB_QUARANTINED,
                                        job=attempt.key,
                                        attempts=len(history))

        def record_success(attempt: _Attempt, payload: Dict) -> None:
            failed_before = len(errors.get(attempt.key, []))
            if failed_before:
                report.retried[attempt.key] = failed_before
            completed[attempt.key] = SimulationResult.from_dict(payload)
            report.executed.append(attempt.key)

        while pending or any(slot.busy is not None for slot in self._slots):
            now = time.monotonic()
            progressed = False

            # Respawn replaced workers whose backoff has elapsed.
            for slot in self._slots:
                if slot.process is None and slot.respawn_at <= now:
                    self._spawn(slot)
                    progressed = True

            # Dispatch eligible attempts to idle live workers, canonical
            # order first so scheduling is as deterministic as timing allows.
            pending.sort(key=lambda a: (a.order, a.attempt))
            for slot in self._slots:
                if not pending or not slot.live or slot.busy is not None:
                    continue
                index = next((i for i, a in enumerate(pending)
                              if a.eligible_at <= now), None)
                if index is None:
                    break
                attempt = pending.pop(index)
                fault = self._fault_for(attempt.key, attempt.attempt)
                try:
                    assert slot.conn is not None
                    slot.conn.send(("job", attempt.key,
                                    attempt.spec.to_dict(), attempt.attempt,
                                    fault))
                except (BrokenPipeError, OSError):
                    # Worker died between polls; retry the dispatch after
                    # the slot respawns (the attempt itself never started).
                    pending.append(attempt)
                    self._replace(slot, "dispatch to dead worker", report)
                    continue
                slot.busy = attempt
                slot.started_at = now
                slot.last_beat = now
                progressed = True

            # Poll every slot: drain messages, then liveness and timers.
            for slot in self._slots:
                if slot.conn is None:
                    continue
                outcome = self._drain(slot)
                if outcome is not None:
                    progressed = True
                    status, attempt, payload = outcome
                    slot.busy = None
                    slot.consecutive_failures = 0
                    if status == "ok":
                        record_success(attempt, payload)
                    else:
                        fail_attempt(attempt, payload)
                    continue
                now = time.monotonic()
                if not slot.live:
                    attempt = slot.busy
                    exitcode = slot.process.exitcode \
                        if slot.process is not None else None
                    self._replace(slot, f"worker died (exit {exitcode})",
                                  report)
                    if attempt is not None:
                        fail_attempt(
                            attempt, "worker died without a result "
                            f"(exit code {exitcode}, attempt "
                            f"{attempt.attempt + 1})")
                    progressed = True
                elif slot.busy is not None:
                    attempt = slot.busy
                    if cfg.deadline_seconds is not None and \
                            now - slot.started_at > cfg.deadline_seconds:
                        self._replace(slot, "deadline exceeded", report)
                        fail_attempt(
                            attempt,
                            f"deadline exceeded after "
                            f"{cfg.deadline_seconds:g}s "
                            f"(attempt {attempt.attempt + 1})")
                        progressed = True
                    elif now - slot.last_beat > \
                            cfg.heartbeat_timeout_seconds:
                        self._replace(slot, "heartbeat lost", report)
                        fail_attempt(
                            attempt,
                            "heartbeat lost for "
                            f"{cfg.heartbeat_timeout_seconds:g}s "
                            f"(attempt {attempt.attempt + 1}); worker "
                            "presumed frozen")
                        progressed = True

            if not progressed:
                time.sleep(cfg.poll_interval_seconds)

        report.elapsed_seconds = time.monotonic() - started
        ordered = {key: completed[key]
                   for key, _spec in assignments if key in completed}
        return ordered, report

    def _drain(self, slot: _Slot
               ) -> Optional[Tuple[str, _Attempt, Any]]:
        """Consume queued worker messages; returns a completion, if any."""
        assert slot.conn is not None
        while True:
            try:
                if not slot.conn.poll():
                    return None
                message = slot.conn.recv()
            except (EOFError, OSError):
                return None       # death handled by the liveness check
            kind = message[0]
            if kind == "beat":
                slot.last_beat = time.monotonic()
                continue
            if kind in ("ok", "err") and slot.busy is not None:
                _, key, attempt_number, payload = message
                attempt = slot.busy
                if key != attempt.key or \
                        attempt_number != attempt.attempt:
                    # A straggler from an attempt we already wrote off
                    # (e.g. completion raced the deadline kill): ignore it —
                    # the retry is authoritative, double-recording is worse.
                    continue
                return message[0], attempt, payload
