"""The simulation job service: orchestrator + asyncio HTTP/JSON front end.

:class:`SimulationService` is the deduplicating, self-healing core:

1. submissions are canonicalized to content keys (duplicates collapse);
2. the result store answers what it can (``store_hit``), quarantining any
   record that fails its checksum instead of serving it;
3. a store miss is next looked up in the checkpoint journal — store and
   journal are independent persistence layers that *cross-heal*: a
   bit-flipped store record is rewritten byte-identically from the journal
   without recomputation, and a journal lost to a torn write is re-recorded
   from the store;
4. only genuinely unknown specs reach the supervised worker pool, and
   completed results are persisted to both layers before being returned;
5. jobs the pool quarantined come back as *explicit gaps* — the batch
   result names each failed key and its error history rather than
   pretending the sweep succeeded or dying wholesale.

:class:`ServiceServer` puts an HTTP/1.1 JSON API on top using
``asyncio.start_server`` (stdlib only; the protocol parser is deliberately
minimal).  Simulation batches run on a worker thread so the event loop
keeps serving health checks and store reads while the pool grinds; batches
are serialized through a lock because the pool is single-batch by design.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from ..common.errors import ProtocolError, ServiceError
from ..runner.checkpoint import CheckpointJournal
from ..telemetry.hub import TelemetryHub
from .protocol import JobSpec
from .store import ResultStore
from .supervisor import BatchReport, PoolConfig, WorkerPool

PathLike = Union[str, Path]

#: Maximum accepted request body (a batch of specs is tiny; anything larger
#: is a mistake or a hostile client).
MAX_BODY_BYTES = 1 << 20


@dataclass
class ServiceBatchResult:
    """Outcome of one batch: results, cache hits, and explicit gaps."""

    #: ``key -> result payload`` for every job that has a result.
    results: Dict[str, Dict[str, Any]] = field(default_factory=dict)
    #: Keys served straight from the store (no simulation ran).
    cached: List[str] = field(default_factory=list)
    #: ``key -> error history`` for quarantined jobs (the explicit gaps).
    failures: Dict[str, List[str]] = field(default_factory=dict)
    #: Pool execution report for the portion that ran (None if all cached).
    report: Optional[BatchReport] = None

    @property
    def ok(self) -> bool:
        return not self.failures

    def to_dict(self) -> Dict[str, Any]:
        return {
            "results": self.results,
            "cached": list(self.cached),
            "failures": {key: list(errors)
                         for key, errors in self.failures.items()},
            "complete": self.ok,
        }


class SimulationService:
    """Store-backed, journal-healed, pool-sharded job execution."""

    def __init__(self, store_dir: PathLike,
                 checkpoint_dir: Optional[PathLike] = None,
                 pool_config: Optional[PoolConfig] = None,
                 telemetry: Optional[TelemetryHub] = None,
                 faults: Optional[Dict] = None) -> None:
        self.hub = telemetry if telemetry is not None \
            else TelemetryHub(categories=("service",))
        self.store = ResultStore(store_dir, telemetry=self.hub)
        self.journal = CheckpointJournal(checkpoint_dir, telemetry=self.hub) \
            if checkpoint_dir is not None else None
        self.pool = WorkerPool(pool_config or PoolConfig(),
                               telemetry=self.hub, faults=faults)
        self._journal_payloads: Dict[str, Dict[str, Any]] = {}
        self._started = False

    # ------------------------------------------------------------- lifecycle

    def start(self) -> None:
        """Spawn workers and recover persisted state (journal tail repair)."""
        if self._started:
            raise ServiceError("service already started")
        if self.journal is not None:
            # load() drops a torn/corrupt trailing record with a warning
            # and a checkpoint_recovered event; what survives is verified.
            self._journal_payloads = {
                job_id: result.to_dict()
                for job_id, result in self.journal.load().items()}
        self.pool.start()
        self._started = True

    def close(self) -> None:
        if self._started:
            self.pool.stop()
            self._started = False

    def __enter__(self) -> "SimulationService":
        self.start()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()

    # ------------------------------------------------------------ submission

    def lookup(self, spec: JobSpec) -> Optional[Dict[str, Any]]:
        """Cached payload for a spec, healing across layers; None on miss."""
        key = spec.key
        payload = self.store.get(key)
        if payload is not None:
            return payload
        healed = self._journal_payloads.get(key)
        if healed is not None:
            # Store lost or corrupted the record but the journal kept it:
            # rewrite the store object (canonical, hence byte-identical to
            # what the original put produced) without recomputing.
            self.store.put(key, healed)
            return healed
        return None

    def execute(self, specs: Sequence[JobSpec]) -> ServiceBatchResult:
        """Run a batch: dedupe, serve from cache, simulate the rest."""
        if not self._started:
            raise ServiceError("service is not started")
        unique: Dict[str, JobSpec] = {}
        for spec in specs:
            unique.setdefault(spec.key, spec)

        batch = ServiceBatchResult()
        misses: List[Tuple[str, JobSpec]] = []
        for key, spec in unique.items():
            payload = self.lookup(spec)
            if payload is not None:
                batch.results[key] = payload
                batch.cached.append(key)
            else:
                misses.append((key, spec))

        if misses:
            results, report = self.pool.run_batch(misses)
            batch.report = report
            for key, result in results.items():
                payload = result.to_dict()
                self.store.put(key, payload)
                if self.journal is not None:
                    self.journal.record(key, result)
                    self._journal_payloads[key] = payload
                batch.results[key] = payload
            for failure in report.quarantined:
                batch.failures[failure.job_id] = list(failure.errors)
        return batch

    # ----------------------------------------------------------------- stats

    def stats(self) -> Dict[str, Any]:
        return {
            "workers": self.pool.config.workers,
            "store_records": len(self.store),
            "journal_records": (len(self.journal)
                                if self.journal is not None else 0),
            "events": self.hub.summary(),
        }


# ------------------------------------------------------------- HTTP front end

_REASONS = {200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 413: "Payload Too Large",
            500: "Internal Server Error"}


class ServiceServer:
    """Minimal asyncio HTTP/1.1 JSON API over a :class:`SimulationService`.

    Routes:

    - ``GET  /health``        liveness + counters
    - ``GET  /result/<key>``  stored payload or 404
    - ``POST /submit``        ``{"jobs": [...]}`` -> keys + cached flags
      (a dry lookup: nothing is scheduled)
    - ``POST /run``           ``{"jobs": [...]}`` -> full batch execution
      with explicit-gap partial results
    """

    def __init__(self, service: SimulationService,
                 host: str = "127.0.0.1", port: int = 0,
                 default_engine: str = "synthetic",
                 default_engine_params: Optional[Mapping[str, Any]] = None
                 ) -> None:
        self.service = service
        self.host = host
        self.port = port
        #: Engine injected into job specs that do not name one themselves
        #: (``repro serve --engine ...``).  A spec's own "engine" field
        #: always wins, so mixed-engine batches still work.
        self.default_engine = default_engine
        self.default_engine_params = dict(default_engine_params or {})
        self._server: Optional[asyncio.AbstractServer] = None
        self._batch_lock: Optional[asyncio.Lock] = None

    # ------------------------------------------------------------- lifecycle

    async def start(self) -> None:
        self._batch_lock = asyncio.Lock()
        self._server = await asyncio.start_server(
            self._handle, host=self.host, port=self.port)
        sockets = self._server.sockets or []
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    # -------------------------------------------------------------- protocol

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            status, payload = await self._respond(reader)
        except ProtocolError as error:
            status, payload = 400, {"error": str(error)}
        except Exception as error:   # the service must outlive bad requests
            status, payload = 500, {"error": f"{type(error).__name__}: "
                                             f"{error}"}
        body = json.dumps(payload).encode("utf-8")
        head = (f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}\r\n"
                f"Content-Type: application/json\r\n"
                f"Content-Length: {len(body)}\r\n"
                f"Connection: close\r\n\r\n").encode("ascii")
        try:
            writer.write(head + body)
            await writer.drain()
        except (ConnectionError, OSError):
            pass     # client hung up before the answer; nothing to salvage
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass     # close raced the client's reset; already gone

    async def _respond(self, reader: asyncio.StreamReader
                       ) -> Tuple[int, Dict[str, Any]]:
        request_line = (await reader.readline()).decode("ascii",
                                                        errors="replace")
        parts = request_line.split()
        if len(parts) != 3:
            raise ProtocolError(f"malformed request line {request_line!r}")
        method, target = parts[0].upper(), parts[1]
        content_length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("ascii", errors="replace") \
                                 .partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError as error:
                    raise ProtocolError("bad Content-Length") from error
        if content_length > MAX_BODY_BYTES:
            return 413, {"error": f"body exceeds {MAX_BODY_BYTES} bytes"}
        body = await reader.readexactly(content_length) \
            if content_length else b""
        return await self._route(method, target, body)

    async def _route(self, method: str, target: str, body: bytes
                     ) -> Tuple[int, Dict[str, Any]]:
        # Every store/journal touch reads (and sometimes heals, i.e.
        # writes) disk, so each one runs off the loop: a slow disk must
        # never stall health checks for every connected client (simlint A1
        # enforces this transitively).
        loop = asyncio.get_running_loop()
        if target == "/health" and method == "GET":
            stats = await loop.run_in_executor(None, self.service.stats)
            stats["status"] = "ok"
            return 200, stats
        if target.startswith("/result/") and method == "GET":
            key = target[len("/result/"):]
            payload = await loop.run_in_executor(
                None, self.service.store.get, key)
            if payload is None:
                return 404, {"error": f"no result for key {key!r}"}
            return 200, {"key": key, "result": payload}
        if target == "/submit" and method == "POST":
            specs = _parse_jobs(body, self.default_engine,
                                self.default_engine_params)
            jobs = await loop.run_in_executor(None, self._dry_lookup,
                                              specs)
            return 200, {"jobs": jobs}
        if target == "/run" and method == "POST":
            specs = _parse_jobs(body, self.default_engine,
                                self.default_engine_params)
            assert self._batch_lock is not None
            async with self._batch_lock:     # the pool is single-batch
                batch = await loop.run_in_executor(
                    None, self.service.execute, specs)
            payload = batch.to_dict()
            payload["keys"] = [spec.key for spec in specs]
            return 200, payload
        if target in ("/health", "/submit", "/run") or \
                target.startswith("/result/"):
            return 405, {"error": f"{method} not allowed on {target}"}
        return 404, {"error": f"unknown route {target}"}

    def _dry_lookup(self, specs: Sequence[JobSpec]
                    ) -> List[Dict[str, Any]]:
        """The /submit answer: store/journal lookups only, no scheduling.

        Runs on a worker thread — :meth:`SimulationService.lookup` reads
        the store and may heal it from the journal, both disk operations.
        """
        return [{"key": spec.key,
                 "cached": self.service.lookup(spec) is not None}
                for spec in specs]


def _parse_jobs(body: bytes, default_engine: str = "synthetic",
                default_engine_params: Optional[Mapping[str, Any]] = None
                ) -> List[JobSpec]:
    try:
        payload = json.loads(body or b"null")
    except json.JSONDecodeError as error:
        raise ProtocolError(f"request body is not JSON: {error}") from error
    if not isinstance(payload, dict) or "jobs" not in payload:
        raise ProtocolError('request body must be {"jobs": [...]}')
    jobs = payload["jobs"]
    if not isinstance(jobs, list) or not jobs:
        raise ProtocolError('"jobs" must be a non-empty list')
    specs: List[JobSpec] = []
    for item in jobs:
        if isinstance(item, dict) and "engine" not in item and \
                default_engine != "synthetic":
            item = dict(item)
            item["engine"] = default_engine
            if default_engine_params and "engine_params" not in item:
                item["engine_params"] = dict(default_engine_params)
        specs.append(JobSpec.from_dict(item))
    return specs
