"""Job-submission protocol: specs, validation, and canonical content keys.

A :class:`JobSpec` is the service's unit of work: one (workload, design,
config-overrides, seed) simulation request.  Its :attr:`~JobSpec.key` is a
SHA-256 over the *canonical* spec fields, which makes the result store
content-addressed: two submissions that mean the same simulation hash to
the same key no matter who sent them or in what field order, so duplicates
are free cache hits.  Results are deterministic functions of the spec, so a
key uniquely identifies a result — that identity is also what lets the
chaos harness assert byte-equivalence between a faulted and a clean run.

``KEY_VERSION`` is folded into the hash: any change to the spec fields or
to simulation semantics that should invalidate cached results must bump it,
which retires every old key at once instead of silently serving stale data.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, fields
from typing import Any, Dict, Mapping, Tuple

from ..common.errors import ProtocolError, WorkloadError
from ..common.integrity import canonical_json
from ..core.metrics import SimulationResult

# v2: workload-engine selection joined the spec (engine + engine_params);
# bumping retires every v1 key so cached results can never alias across
# the field change.
KEY_VERSION = 2

#: Designs a spec may name (mirrors ``repro.core.experiment.POLICY_LABELS``;
#: imported lazily there to keep this module import-light for workers).
_DESIGNS = ("baseline", "clasp", "rac", "pwac", "f-pwac")


@dataclass(frozen=True)
class JobSpec:
    """One simulation request, canonically identified by :attr:`key`."""

    workload: str
    design: str = "baseline"
    capacity_uops: int = 2048
    max_entries_per_line: int = 2
    num_instructions: int = 120_000
    warmup_instructions: int = 0
    seed: int = 7
    #: Workload engine and its parameters.  Parameters are normalized to a
    #: sorted tuple of (name, value) pairs so the spec stays hashable and
    #: two spellings of the same params produce the same content key.
    engine: str = "synthetic"
    engine_params: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        from ..workloads.engine import create_engine
        from ..workloads.suite import WORKLOAD_NAMES
        if self.workload not in WORKLOAD_NAMES:
            raise ProtocolError(
                f"unknown workload {self.workload!r}; "
                f"choose from {', '.join(WORKLOAD_NAMES)}")
        if self.design not in _DESIGNS:
            raise ProtocolError(
                f"unknown design {self.design!r}; "
                f"choose from {', '.join(_DESIGNS)}")
        for name in ("capacity_uops", "max_entries_per_line",
                     "num_instructions"):
            if getattr(self, name) <= 0:
                raise ProtocolError(f"{name} must be positive")
        if self.warmup_instructions < 0:
            raise ProtocolError("warmup_instructions must be >= 0")
        params = self.engine_params
        if isinstance(params, Mapping):
            params = tuple(params.items())
        try:
            normalized = tuple(sorted((str(name), value)
                                      for name, value in params))
        except (TypeError, ValueError) as error:
            raise ProtocolError(
                f"engine_params must be a mapping or (name, value) "
                f"pairs: {error}") from error
        object.__setattr__(self, "engine_params", normalized)
        try:
            # Instantiating validates the engine name and its parameter
            # names/types/ranges without running anything.
            create_engine(self.engine, workload=self.workload,
                          params=dict(normalized))
        except WorkloadError as error:
            raise ProtocolError(str(error)) from error

    def canonical(self) -> Dict[str, Any]:
        """The exact fields the content key hashes, version included."""
        payload: Dict[str, Any] = {"key_version": KEY_VERSION}
        for spec_field in fields(self):
            payload[spec_field.name] = getattr(self, spec_field.name)
        return payload

    @property
    def key(self) -> str:
        """Content address: SHA-256 of the canonical spec JSON."""
        digest = hashlib.sha256(
            canonical_json(self.canonical()).encode("utf-8"))
        return digest.hexdigest()

    def to_dict(self) -> Dict[str, Any]:
        payload = {spec_field.name: getattr(self, spec_field.name)
                   for spec_field in fields(self)}
        payload["engine_params"] = dict(self.engine_params)
        return payload

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "JobSpec":
        """Parse an untrusted submission; :class:`ProtocolError` on junk.

        Unknown fields are rejected rather than ignored: a client that
        misspells ``seed`` must hear about it, not silently get the default
        (and a cache hit for a simulation it didn't ask for).
        """
        if not isinstance(data, Mapping):
            raise ProtocolError(
                f"job spec must be an object, got {type(data).__name__}")
        known = {spec_field.name: spec_field for spec_field in fields(cls)}
        unknown = sorted(set(data) - set(known))
        if unknown:
            raise ProtocolError(
                f"unknown job spec field(s) {', '.join(unknown)}; "
                f"valid fields: {', '.join(sorted(known))}")
        if "workload" not in data:
            raise ProtocolError("job spec is missing required field "
                                "'workload'")
        kwargs: Dict[str, Any] = {}
        for name, value in data.items():
            if name in ("workload", "design", "engine"):
                if not isinstance(value, str):
                    raise ProtocolError(f"field {name!r} must be a string")
            elif name == "engine_params":
                if not isinstance(value, Mapping):
                    raise ProtocolError(
                        "field 'engine_params' must be an object")
                for param, param_value in value.items():
                    if not isinstance(param, str):
                        raise ProtocolError(
                            "engine_params keys must be strings")
                    if isinstance(param_value, bool) or not isinstance(
                            param_value, (str, int, float)):
                        raise ProtocolError(
                            f"engine_params[{param!r}] must be a string "
                            "or number")
            elif not isinstance(value, int) or isinstance(value, bool):
                raise ProtocolError(f"field {name!r} must be an integer")
            kwargs[name] = value
        return cls(**kwargs)


def execute_spec(spec: JobSpec, strict: bool = True) -> SimulationResult:
    """Run one spec to completion in the current process.

    Shared by pool workers and any inline caller, so service results are
    bit-identical to CLI runs of the same configuration: everything is
    rebuilt deterministically from the spec's primitives.
    """
    # Imported lazily: experiment.py sits above the runner this module's
    # pool reuses, so a module-level import would be circular.
    from ..core.experiment import policy_config, workload_trace
    from ..core.simulator import Simulator
    import dataclasses as _dataclasses

    config = policy_config(spec.design, spec.capacity_uops,
                           spec.max_entries_per_line)
    config = _dataclasses.replace(
        config, warmup_instructions=spec.warmup_instructions)
    if not config.telemetry.enabled:
        # Service jobs are counters-only (no hub is ever attached here),
        # so they can take the specialized fast serve loop; the result is
        # bit-identical to the stepped loop (tests/test_fast_mode.py and
        # the differential test in tests/test_service_protocol.py).
        config = config.with_fast_mode()
    trace = workload_trace(spec.workload, spec.num_instructions,
                           seed=spec.seed, engine=spec.engine,
                           engine_params=dict(spec.engine_params))
    return Simulator(trace, config, spec.design, strict=strict).run()
