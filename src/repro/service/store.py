"""Content-addressed, checksummed, atomic result store.

Layout: one file per result under ``objects/<key[:2]>/<key>.json``, where
``key`` is the :attr:`~repro.service.protocol.JobSpec.key` content hash.
Records use the shared checksummed envelope
(:mod:`repro.common.integrity`) over a canonical body, so:

- **writes are atomic** — temp file + fsync + ``os.replace``; a kill at any
  point leaves either the old record, the new record, or no record, never a
  torn one;
- **equal results are byte-equal files** — canonical JSON makes the store a
  checkable artifact: the chaos harness diffs two stores byte-for-byte;
- **corruption is detected, never served** — a record that fails its CRC
  (or names the wrong key) is *quarantined*: moved aside under
  ``quarantine/``, reported with a :class:`ReproWarning` and a
  ``store_corrupt`` telemetry event, and treated as a miss so the caller
  recomputes or heals it from the checkpoint journal.  Corrupt data is
  never returned as a result.
"""

from __future__ import annotations

import os
import warnings
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from ..common.errors import ReproWarning, StoreError
from ..common.integrity import IntegrityError, decode_envelope, encode_envelope
from ..telemetry.events import EventKind
from ..telemetry.hub import TelemetryHub

STORE_FORMAT = 1

PathLike = Union[str, Path]


class ResultStore:
    """Persistent ``key -> result payload`` map with integrity checking."""

    def __init__(self, directory: PathLike,
                 telemetry: Optional[TelemetryHub] = None) -> None:
        self.directory = Path(directory)
        self.objects_dir = self.directory / "objects"
        self.quarantine_dir = self.directory / "quarantine"
        self.telemetry = telemetry

    # ------------------------------------------------------------------ paths

    def object_path(self, key: str) -> Path:
        self._check_key(key)
        return self.objects_dir / key[:2] / f"{key}.json"

    @staticmethod
    def _check_key(key: str) -> None:
        if len(key) < 3 or not all(c in "0123456789abcdef" for c in key):
            raise StoreError(f"malformed store key {key!r}")

    # -------------------------------------------------------------------- api

    def put(self, key: str, payload: Dict[str, Any]) -> Path:
        """Durably persist one result (atomic write; idempotent)."""
        path = self.object_path(key)
        record = encode_envelope(
            {"format": STORE_FORMAT, "key": key, "payload": payload}) + "\n"
        data = record.encode("utf-8")
        try:
            if path.exists() and path.read_bytes() == data:
                return path      # identical record already on disk
            path.parent.mkdir(parents=True, exist_ok=True)
            tmp_path = path.with_suffix(".json.tmp")
            with open(tmp_path, "wb") as handle:
                handle.write(data)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp_path, path)
        except OSError as error:
            raise StoreError(
                f"cannot write store record {path}: {error}") from error
        return path

    def get(self, key: str) -> Optional[Dict[str, Any]]:
        """The stored payload, or ``None`` on miss *or* corruption.

        A record that fails integrity checking is quarantined and reported;
        returning ``None`` makes corruption indistinguishable from a miss
        to the caller, which is exactly right: the result must be recomputed
        or healed, never trusted.
        """
        path = self.object_path(key)
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            return None
        except OSError as error:
            raise StoreError(
                f"cannot read store record {path}: {error}") from error
        try:
            try:
                text = raw.decode("utf-8")
            except UnicodeDecodeError as error:
                raise IntegrityError(f"record is not UTF-8 ({error})") \
                    from error
            record = decode_envelope(text.strip())
            if record.get("format") != STORE_FORMAT:
                raise IntegrityError(
                    f"store format {record.get('format')!r} "
                    f"(expected {STORE_FORMAT})")
            if record.get("key") != key:
                raise IntegrityError(
                    f"record names key {record.get('key')!r}")
            payload = record["payload"]
            if not isinstance(payload, dict):
                raise IntegrityError("record payload is not an object")
        except IntegrityError as error:
            self._quarantine(key, path, str(error))
            return None
        if self.telemetry is not None:
            self.telemetry.emit(EventKind.STORE_HIT, key=key)
        return payload

    def __contains__(self, key: str) -> bool:
        return self.object_path(key).exists()

    def __len__(self) -> int:
        return len(self.keys())

    def keys(self) -> List[str]:
        """Every stored key, sorted (deterministic iteration)."""
        if not self.objects_dir.exists():
            return []
        return sorted(path.stem
                      for path in self.objects_dir.glob("*/*.json"))

    # --------------------------------------------------------------- recovery

    def _quarantine(self, key: str, path: Path, reason: str) -> None:
        """Move a corrupt record aside; it stays inspectable, not servable."""
        warnings.warn(
            f"result store record {path} is corrupt ({reason}); "
            "quarantined and treated as a miss — the result will be "
            "recomputed or healed from the journal, corrupt data is never "
            "served", ReproWarning, stacklevel=3)
        if self.telemetry is not None:
            self.telemetry.emit(EventKind.STORE_CORRUPT, key=key,
                                reason=reason)
        try:
            self.quarantine_dir.mkdir(parents=True, exist_ok=True)
            os.replace(path, self.quarantine_dir / path.name)
        except OSError as error:
            raise StoreError(
                f"cannot quarantine corrupt store record {path}: {error}"
            ) from error

    # ------------------------------------------------------------ comparison

    def snapshot(self) -> Dict[str, bytes]:
        """``relative path -> bytes`` of every live object, sorted.

        The unit of byte-equivalence checking: two stores holding the same
        results produce identical snapshots because records are canonical.
        Quarantined files are deliberately excluded — they are corpses kept
        for inspection, not part of the store's served state.
        """
        snapshot: Dict[str, bytes] = {}
        if not self.objects_dir.exists():
            return snapshot
        for path in sorted(self.objects_dir.glob("*/*.json")):
            snapshot[str(path.relative_to(self.objects_dir))] = \
                path.read_bytes()
        return snapshot
