"""The telemetry event bus.

A :class:`TelemetryHub` is the single emission point every instrumented
structure talks to.  Design constraints:

- **Zero overhead when disabled** — instrumented code holds ``None`` instead
  of a hub when telemetry is off, so the only cost on the hot path is one
  ``is not None`` test.  The hub itself never needs an "enabled" flag.
- **Category filtering at the source** — ``emit`` drops events whose category
  was not selected before any sink sees them, so a ``--events uopcache``
  trace pays nothing for fetch events.
- **Cheap always-on accounting** — the hub counts emitted events per kind
  regardless of sinks; :meth:`summary` feeds
  ``SimulationResult.telemetry_events`` (and through it the runner's
  checkpoint journal) without requiring a sink.

Simulated time: the owning simulator stores its front-end cycle into
:attr:`cycle` before each serving action; structures that cannot see the
clock (the uop cache, the loop buffer) timestamp their events from it.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional

from ..common.config import TelemetryConfig
from ..common.errors import ConfigError
from .events import EVENT_CATEGORIES, KIND_CATEGORY, EventKind, TelemetryEvent
from .sinks import TelemetrySink


class TelemetryHub:
    """Routes typed events from instrumented structures to attached sinks."""

    def __init__(self, categories: Optional[Iterable[str]] = None) -> None:
        if categories is None:
            selected = frozenset(EVENT_CATEGORIES)
        else:
            selected = frozenset(categories)
            unknown = selected - frozenset(EVENT_CATEGORIES)
            if unknown:
                raise ConfigError(
                    f"unknown telemetry categories {sorted(unknown)}; "
                    f"valid: {', '.join(EVENT_CATEGORIES)}")
        self.categories = selected
        #: Simulated front-end cycle; the owning simulator keeps it current.
        self.cycle = 0
        self.event_counts: Dict[str, int] = {}
        self._sinks: List[TelemetrySink] = []

    @classmethod
    def from_config(cls, config: TelemetryConfig) -> "TelemetryHub":
        return cls(categories=config.events)

    # ------------------------------------------------------------------ sinks

    def add_sink(self, sink: TelemetrySink) -> TelemetrySink:
        """Attach a sink; returns it for chaining."""
        self._sinks.append(sink)
        return sink

    def close(self) -> None:
        """Flush and close every attached sink."""
        for sink in self._sinks:
            sink.close()

    # --------------------------------------------------------------- emission

    def wants(self, kind: EventKind) -> bool:
        """Whether events of ``kind`` pass the category filter."""
        return KIND_CATEGORY[kind] in self.categories

    def emit(self, kind: EventKind, /, **args: Any) -> None:
        """Emit one event at the current simulated cycle.

        ``kind`` is positional-only so payload keys can never shadow it;
        emitting sites also keep payload names distinct from the envelope
        (``kind``/``cycle``) so ``to_dict`` stays collision-free.
        """
        if KIND_CATEGORY[kind] not in self.categories:
            return
        name = kind.value
        self.event_counts[name] = self.event_counts.get(name, 0) + 1
        if self._sinks:
            event = TelemetryEvent(kind, self.cycle, args)
            for sink in self._sinks:
                sink.accept(event)

    # ---------------------------------------------------------------- reports

    def summary(self) -> Dict[str, int]:
        """Events emitted per kind (insertion order = first-emission order)."""
        return dict(self.event_counts)
