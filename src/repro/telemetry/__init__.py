"""Cycle-level telemetry: structured event tracing for every serving path.

The subsystem has four pieces (DESIGN.md section 10):

- :mod:`~repro.telemetry.events` — the typed event taxonomy;
- :mod:`~repro.telemetry.hub` — the emission bus instrumented structures
  talk to (zero overhead when disabled: disabled code paths hold ``None``);
- :mod:`~repro.telemetry.sinks` — ring buffer, JSONL, aggregate counters,
  and Chrome ``trace_event`` export (Perfetto-loadable);
- :mod:`~repro.telemetry.replay` — folds an event stream back into the
  aggregate counters and cross-checks them against
  :class:`~repro.core.metrics.SimulationResult`.

Quick start::

    hub = TelemetryHub()
    ring = hub.add_sink(RingBufferSink(capacity=None))
    result = Simulator(trace, config, telemetry=hub).run()
    crosscheck(ring.events, result)     # raises TelemetryMismatch on desync

or from the command line::

    python -m repro trace bm-x64 --out trace.json --events uopcache,fetch
"""

from .events import (
    EVENT_CATEGORIES,
    KIND_CATEGORY,
    EventKind,
    TelemetryEvent,
)
from .hub import TelemetryHub
from .interval import IntervalTracker
from .replay import TelemetryMismatch, crosscheck, replay_counters
from .sinks import (
    ChromeTraceSink,
    CounterSink,
    JsonlSink,
    RingBufferSink,
    TelemetrySink,
)

__all__ = [
    "EVENT_CATEGORIES",
    "KIND_CATEGORY",
    "EventKind",
    "TelemetryEvent",
    "TelemetryHub",
    "IntervalTracker",
    "TelemetryMismatch",
    "crosscheck",
    "replay_counters",
    "ChromeTraceSink",
    "CounterSink",
    "JsonlSink",
    "RingBufferSink",
    "TelemetrySink",
]
