"""Event-stream replay: rebuild aggregate counters from telemetry events.

The telemetry layer is only trustworthy if the event stream and the
end-of-run counters tell the same story.  :func:`replay_counters` folds an
event stream back into the aggregate quantities
:class:`~repro.core.metrics.SimulationResult` reports, and
:func:`crosscheck` diffs the two, raising :class:`TelemetryMismatch` that
names the first diverging counter *and* the last event that contributed to
it — so a desync points at the offending emission site, not just at a wrong
number.

Replay requires a warmup-free run (``warmup_instructions=0``): the result's
rate counters subtract their warmup snapshot, while the event stream always
covers the whole run.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Dict, Iterable, Optional, Tuple

from ..common.errors import ReproError
from .events import EventKind, TelemetryEvent

if TYPE_CHECKING:   # pragma: no cover - import only for type checkers
    from ..core.metrics import SimulationResult


class TelemetryMismatch(ReproError):
    """The replayed event stream disagrees with the aggregate counters."""

    def __init__(self, counter: str, replayed: Any, reported: Any,
                 last_event: Optional[TelemetryEvent]) -> None:
        self.counter = counter
        self.replayed = replayed
        self.reported = reported
        self.last_event = last_event
        detail = (f"event replay of {counter!r} gives {replayed!r} but the "
                  f"simulation reported {reported!r}")
        if last_event is not None:
            detail += (f"; last contributing event: {last_event!r}")
        else:
            detail += "; no event of that kind was ever emitted"
        super().__init__(detail)


#: Fill kinds that count as compacted placements.
_COMPACTED_KINDS = ("rac", "pwac", "f-pwac")


def replay_counters(events: Iterable[TelemetryEvent]) -> Dict[str, Any]:
    """Fold an event stream into the aggregate counters it implies.

    Returns a flat dict whose keys mirror :class:`SimulationResult` counter
    names (plus ``fill_kind_counts``, keyed by fill-kind value strings).
    """
    counters: Dict[str, Any] = {
        "uop_cache_hits": 0,
        "uop_cache_lookups": 0,
        "uop_cache_fills": 0,
        "uops_from_uop_cache": 0,
        "uops_from_decoder": 0,
        "uops_from_loop_cache": 0,
        "uops": 0,
        "instructions": 0,
        "fill_kind_counts": {},
    }
    fill_kinds: Dict[str, int] = counters["fill_kind_counts"]
    source_field = {"oc": "uops_from_uop_cache",
                    "ic": "uops_from_decoder",
                    "loop": "uops_from_loop_cache"}
    for event in events:
        kind = event.kind
        if kind is EventKind.OC_HIT:
            counters["uop_cache_hits"] += 1
            counters["uop_cache_lookups"] += 1
        elif kind is EventKind.OC_MISS:
            counters["uop_cache_lookups"] += 1
        elif kind is EventKind.OC_FILL:
            fill_kind = event.args["fill_kind"]
            fill_kinds[fill_kind] = fill_kinds.get(fill_kind, 0) + 1
            if fill_kind != "duplicate":
                counters["uop_cache_fills"] += 1
        elif kind is EventKind.FETCH_ACTION:
            counters[source_field[event.args["source"]]] += \
                event.args["uops"]
            counters["uops"] += event.args["uops"]
            counters["instructions"] += event.args["insts"]
    return counters


def _last_event_of(events: Iterable[TelemetryEvent],
                   kinds: Tuple[EventKind, ...]) -> Optional[TelemetryEvent]:
    last = None
    for event in events:
        if event.kind in kinds:
            last = event
    return last


def crosscheck(events: Iterable[TelemetryEvent],
               result: "SimulationResult") -> Dict[str, Any]:
    """Verify the event stream reproduces ``result``'s counters exactly.

    Raises :class:`TelemetryMismatch` on the first diverging counter;
    returns the replayed counter dict on success.  The run must have used
    ``warmup_instructions=0`` (see module docstring).
    """
    events = list(events)
    replayed = replay_counters(events)

    #: counter -> (reported value, event kinds that feed it)
    checks: Dict[str, Tuple[Any, Tuple[EventKind, ...]]] = {
        "instructions": (result.instructions, (EventKind.FETCH_ACTION,)),
        "uops": (result.uops, (EventKind.FETCH_ACTION,)),
        "uops_from_uop_cache": (result.uops_from_uop_cache,
                                (EventKind.FETCH_ACTION,)),
        "uops_from_decoder": (result.uops_from_decoder,
                              (EventKind.FETCH_ACTION,)),
        "uops_from_loop_cache": (result.uops_from_loop_cache,
                                 (EventKind.FETCH_ACTION,)),
        "uop_cache_hits": (result.uop_cache_hits, (EventKind.OC_HIT,)),
        "uop_cache_lookups": (result.uop_cache_lookups,
                              (EventKind.OC_HIT, EventKind.OC_MISS)),
        "uop_cache_fills": (result.uop_cache_fills, (EventKind.OC_FILL,)),
    }
    for counter, (reported, kinds) in checks.items():
        if replayed[counter] != reported:
            raise TelemetryMismatch(counter, replayed[counter], reported,
                                    _last_event_of(events, kinds))

    reported_kinds = {kind.value: count
                      for kind, count in result.fill_kind_counts.items()
                      if count}
    if replayed["fill_kind_counts"] != reported_kinds:
        raise TelemetryMismatch("fill_kind_counts",
                                replayed["fill_kind_counts"], reported_kinds,
                                _last_event_of(events, (EventKind.OC_FILL,)))

    replayed_compacted = sum(replayed["fill_kind_counts"].get(kind, 0)
                             for kind in _COMPACTED_KINDS)
    reported_compacted = sum(reported_kinds.get(kind, 0)
                             for kind in _COMPACTED_KINDS)
    if replayed_compacted != reported_compacted:   # pragma: no cover
        raise TelemetryMismatch("compacted_fills", replayed_compacted,
                                reported_compacted,
                                _last_event_of(events, (EventKind.OC_FILL,)))
    return replayed
