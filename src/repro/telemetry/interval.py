"""Per-interval throughput sampling.

:class:`IntervalTracker` turns the simulator's running (cycle, instructions,
uops) totals into fixed-width interval samples: one
:data:`~repro.telemetry.events.EventKind.INTERVAL` event per completed
``interval_cycles`` window, carrying the window's instruction/uop deltas and
the derived IPC/UPC.  The tracker is pull-free — the simulator calls
:meth:`update` after every fetch action and :meth:`finish` at collection, so
no component ever needs a callback into the simulator.

A fetch action can advance the clock across several interval boundaries at
once (a long decode stall, a DRAM miss); the tracker then emits one sample
per crossed window, attributing the whole delta to the first crossed window
and zero-activity samples to the rest.  That keeps sample spacing exactly
periodic, which is what makes the Perfetto counter track readable.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from .events import EventKind

if TYPE_CHECKING:   # pragma: no cover - import only for type checkers
    from .hub import TelemetryHub


class IntervalTracker:
    """Emits one INTERVAL event per completed ``interval_cycles`` window."""

    def __init__(self, hub: "TelemetryHub", interval_cycles: int,
                 tid: int = 0) -> None:
        self.hub = hub
        self.interval_cycles = interval_cycles
        #: Chrome-trace thread id (the SMT coordinator renumbers threads).
        self.tid = tid
        self._window_start = 0
        self._insts_at_start = 0
        self._uops_at_start = 0
        self._last_insts = 0
        self._last_uops = 0

    def update(self, cycle: int, instructions: int, uops: int) -> None:
        """Report the running totals after one fetch action."""
        self._last_insts = instructions
        self._last_uops = uops
        end = self._window_start + self.interval_cycles
        while cycle >= end:
            self._emit(end, instructions, uops)
            self._window_start = end
            self._insts_at_start = instructions
            self._uops_at_start = uops
            end += self.interval_cycles

    def finish(self, cycle: int) -> None:
        """Emit the trailing partial window (if it saw any activity)."""
        if cycle <= self._window_start:
            return
        if self._last_insts == self._insts_at_start and \
                self._last_uops == self._uops_at_start:
            return
        self._emit(cycle, self._last_insts, self._last_uops)
        self._window_start = cycle
        self._insts_at_start = self._last_insts
        self._uops_at_start = self._last_uops

    def _emit(self, end: int, instructions: int, uops: int) -> None:
        width = end - self._window_start
        insts = instructions - self._insts_at_start
        delta_uops = uops - self._uops_at_start
        self.hub.emit(EventKind.INTERVAL,
                      start=self._window_start, end=end,
                      insts=insts, uops=delta_uops,
                      ipc=insts / width, upc=delta_uops / width,
                      tid=self.tid)
